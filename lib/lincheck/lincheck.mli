(** Linearizability checking for crash-prone histories, against any
    [Dssq_spec.Spec.t] state machine — including the [D<T>] machines of
    [Dssq_spec.Dss_spec], which makes the paper's formalism (Section 2)
    the executable oracle for its algorithm (Section 3, Theorem 1). *)

module History = Dssq_history.History
module Spec = Dssq_spec.Spec

(** Correctness condition for operations pending at a crash (Section 2.2
    of the paper, strongest first):
    - [Strict] (Aguilera & Frolund): linearize before the crash or never;
    - [Recoverable] (Berryhill, Golab & Tripunitara): additionally may
      linearize after the crash, but before the invoking process's next
      operation begins;
    - [Durable] (Izraelevitz, Mendes & Scott): a crashed operation may
      linearize at any later point (or never) — the condition under which
      thread ids are not reused and which the paper notes is inherently
      incompatible with DSS-style resolve (Section 2.2), provided here
      for checking the non-detectable baselines. *)
type mode = Strict | Recoverable | Durable

type ('op, 'r) verdict =
  | Linearizable of (int * 'op * [ `Took_effect | `Dropped ]) list
      (** witness: (tid, op, fate) in linearization order *)
  | Not_linearizable of Dssq_obs.Trace.entry list
      (** counterexample.  When the history was executed under an active
          tracer ([Dssq_obs.Trace.start]), the recorded event trace of
          the failing interleaving is attached — {!pp_verdict} prints it
          as a merged timeline, and [Trace.to_chrome_json] exports it for
          Perfetto.  Empty when tracing was off. *)

exception Too_many_operations of int
(** The search is exponential; histories are capped at {!max_operations}
    operations. *)

val max_operations : int
(** 62: the taken-set is a bit mask in one tagged OCaml [int].  A
    history of exactly this many operations checks; one more raises
    {!Too_many_operations}. *)

val check :
  ?mode:mode -> ('s, 'op, 'r) Spec.t -> ('op, 'r) History.t -> ('op, 'r) verdict
(** Wing-Gong-style memoized search.  Completed operations must match
    their recorded responses; crashed operations may take effect (with
    any spec-legal response) within their window, or be dropped. *)

val is_linearizable :
  ?mode:mode -> ('s, 'op, 'r) Spec.t -> ('op, 'r) History.t -> bool

val pp_verdict :
  (Format.formatter -> 'op -> unit) ->
  Format.formatter ->
  ('op, 'r) verdict ->
  unit
(** Prints the linearization witness, or — for a trace-carrying
    [Not_linearizable] — the recorded event timeline of the failing
    interleaving. *)
