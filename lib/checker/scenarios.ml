(** The litmus corpus: ready-made model-checking scenarios for all four
    DSS objects (queue, stack, register, hash map), 2–3 threads, with
    and without crashes, at configurable persist-line sizes.

    Every case wires the same pieces together: a fresh simulated heap
    (optionally behind a {!Mutants} interposer), the object built over
    it, a {!Dssq_history.Recorder} capturing every operation — prep/exec
    pairs for the detectable DSS calls, [Base] for plain calls, and the
    post-crash protocol (recovery, recorded [Resolve] per thread,
    exactly-once retries of pending operations, recorded drain reads) —
    and {!Oracle.assert_linearizable} as the per-execution check, so the
    explorer's verdict on each case is the paper's own correctness
    condition.

    Detectable operations are split direct-mode prep / explored exec:
    preps run (and are recorded) during setup, the scheduler interleaves
    the exec phases.  This keeps per-thread step counts near ten, which
    is what makes exhaustive crash enumeration affordable in CI.

    The hash map has no prep/exec split — [put]/[remove] are single
    detectable calls — so its oracle is plain strict linearizability of
    the map specification under crashes: crashed mutations may take
    effect or vanish, [resolve] only drives the exactly-once retries and
    is not itself a specification-level operation.  (Fabricating a
    completed [Prep] record around a fused call would let the checker
    demand announcements the implementation never promised — a false
    positive — so the [D<T>] alphabet is deliberately not used here.) *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Explore = Dssq_sim.Explore
module Trace = Dssq_obs.Trace
module Spec = Dssq_spec.Spec
module Dss_spec = Dssq_spec.Dss_spec
module Specs = Dssq_spec.Specs
module Recorder = Dssq_history.Recorder
module Lincheck = Dssq_lincheck.Lincheck
module Queue_intf = Dssq_core.Queue_intf

type params = {
  crashes : bool;
  line_size : int;
  coalesce : bool;  (** route flushes through the per-thread persist buffer *)
  combine : bool;
      (** flat-combining batch epochs: the heap runs in buffered strict
          persistency and every combine-capable object routes exec
          through its combining path, so the crash adversary lands
          inside batch epochs — before the install, mid-fold, and
          between the install and its persist epoch closing *)
  persistency : Heap.Persistency.t;
      (** sc: flushes are synchronous (modulo opt-in coalescing); px86:
          buffered persistency — flushes enqueue, only drains persist,
          and the crash adversary also draws buffer-drain prefixes *)
  mode : Lincheck.mode;
  mutation : Mutants.mutation option;
  max_preemptions : int;
  max_crash_lines : int;
  crash_samples : int;
  seed : int;
  adversary : Explore.adversary;
  limit : int;
}

let default_params =
  {
    crashes = false;
    line_size = 1;
    coalesce = false;
    combine = false;
    persistency = Heap.Persistency.Sc;
    mode = Lincheck.Strict;
    mutation = None;
    max_preemptions = 1;
    max_crash_lines = 4;
    crash_samples = 6;
    seed = 0;
    adversary = `Per_line;
    limit = 2_000_000;
  }

(* Every scenario presents the same face to the explorer: a bag of
   threads plus a [finish] closure holding the whole post-execution
   protocol and the oracle call, and a [reattach] closure the explorer
   invokes on every crashed execution (before [finish]) — the
   system-level [Recovery.reattach] that replays the WAL, re-attaches
   the root directory, runs every registered recover, and raises if
   the post-recovery audit finds a leaked node. *)
type world = { finish : crashed:bool -> unit; reattach : unit -> unit }

type case = {
  name : string;  (** e.g. ["queue/enq-deq/crash/ls1/px86"] *)
  obj : string;
  prog : string;
  crashes : bool;
  line_size : int;
  persistency : Heap.Persistency.t;
  nthreads : int;
  run : reduction:bool -> Explore.stats;
      (** explore; raises [Explore.Violation] on a failing execution *)
  replay : Explore.schedule -> [ `Completed | `Crashed ];
  explain : Explore.schedule -> Explore.outcome * Trace.entry list;
}

let explorer ~(params : params) ~reduction setup : world Explore.t =
  Explore.make ~crashes:params.crashes ~adversary:params.adversary
    ~max_crash_lines:params.max_crash_lines
    ~crash_samples:params.crash_samples ~seed:params.seed ~reduction
    ~limit:params.limit ~max_preemptions:params.max_preemptions
    ~on_crash:(fun w _heap -> w.reattach ())
    ~setup
    ~check:(fun w _heap ~crashed -> w.finish ~crashed)
    ()

(* The lost-batch mutant lives in the engine, behind a module-global
   hook ([Detectable.lost_batch_injection]): every setup below arms it
   through [memory], and the case closures disarm it on every exit path
   so a mutant case can never leak the injection into later cases. *)
let with_injection ~(params : params) f =
  if params.mutation = Some Mutants.Lost_batch then
    Fun.protect
      ~finally:(fun () -> Dssq_core.Detectable.lost_batch_injection := false)
      f
  else f ()

let case_of_setup ~(params : params) ~obj ~prog ~nthreads setup =
  let name =
    Printf.sprintf "%s/%s/%s/ls%d%s%s%s" obj prog
      (if params.crashes then "crash" else "nocrash")
      params.line_size
      (if params.coalesce then "/co" else "")
      (if params.combine then "/fc" else "")
      (if params.persistency = Heap.Persistency.Px86 then "/px86" else "")
  in
  {
    name;
    obj;
    prog;
    crashes = params.crashes;
    line_size = params.line_size;
    persistency = params.persistency;
    nthreads;
    run =
      (fun ~reduction ->
        with_injection ~params (fun () ->
            Explore.run (explorer ~params ~reduction setup)));
    replay =
      (fun sched ->
        with_injection ~params (fun () ->
            Explore.replay_schedule
              (explorer ~params ~reduction:true setup)
              sched));
    explain =
      (fun sched ->
        with_injection ~params (fun () ->
            Explore.explain (explorer ~params ~reduction:true setup) sched));
  }

let memory ~(params : params) heap =
  (* The reorder and short-drain mutants live in the heap, not the
     module interposer: they perturb the persist-buffer FIFO, which the
     first-class-module cell abstraction cannot reach from outside. *)
  (match params.mutation with
  | Some (Mutants.Reorder_persist pat) -> heap.Heap.reorder_pat <- Some pat
  | Some Mutants.Short_drain -> heap.Heap.short_drain <- true
  | Some Mutants.Lost_batch ->
      (* Engine-level mutant: arm the ordering-inversion hook; the case
         closures ([with_injection]) disarm it when the run ends. *)
      Dssq_core.Detectable.lost_batch_injection := true
  | _ -> ());
  let mem = Sim.memory ~coalesce:params.coalesce heap in
  match params.mutation with Some m -> Mutants.wrap m mem | None -> mem

(* ---------------------------------------------------------------------- *)
(* Queue and stack share the Queue_intf.resolved vocabulary.               *)

let queue_progs =
  [ "enq-deq"; "enq-enq"; "enq-enq-deq"; "mid-alloc"; "mid-link" ]

let queue_setup ~(params : params) ~prog () =
  let heap =
    Heap.create ~line_size:params.line_size ~persistency:params.persistency
      ~combine:params.combine ()
  in
  let (module M) = memory ~params heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let module Sys = Dssq_core.Recovery.Make (M) in
  let sys = Sys.create ~nthreads:3 ~wal_lane_capacity:16 ~root_capacity:4 () in
  (* [reclaim:false] keeps epoch-based reclamation out of the explored
     step space; node recycling has its own tests.  The pool's
     alloc/free intents go through the system WAL (log-then-link), so
     crashes landing mid-alloc or mid-log-append are recoverable. *)
  let q =
    Q.create ~wal:(Sys.wal sys)
      ~pool_id:(Sys.fresh_pool_id sys)
      ~reclaim:false ~combine:params.combine ~nthreads:3 ~capacity:8 ()
  in
  ignore
    (Sys.register sys ~name:"queue"
       ~audit:(fun () -> Dssq_core.Recovery.audit_of_pool (Q.audit q))
       (fun () -> Q.recover q)
      : int);
  let reattach () =
    let r = Sys.reattach sys in
    if r.Dssq_core.Recovery.leaked_total > 0 then
      failwith
        (Printf.sprintf "queue: %d node(s) leaked after reattach"
           r.Dssq_core.Recovery.leaked_total);
    match Q.recovered_violations q with
    | [] -> ()
    | vs ->
        failwith
          ("queue: recovered-structure violations: " ^ String.concat "; " vs)
  in
  let rec_ = Recorder.create () in
  let spec = Dss_spec.make ~nthreads:3 (Specs.Queue.spec ()) in
  let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
  let deq_response v : _ Dss_spec.response =
    if v = Queue_intf.empty_value then Dss_spec.Ret Specs.Queue.Empty
    else Dss_spec.Ret (Specs.Queue.Value v)
  in
  let resolved_response (r : Queue_intf.resolved) : _ Dss_spec.response =
    match r with
    | Queue_intf.Nothing -> Dss_spec.Status (None, None)
    | Queue_intf.Enq_pending v ->
        Dss_spec.Status (Some (Specs.Queue.Enqueue v), None)
    | Queue_intf.Enq_done v ->
        Dss_spec.Status (Some (Specs.Queue.Enqueue v), Some Specs.Queue.Ok)
    | Queue_intf.Deq_pending -> Dss_spec.Status (Some Specs.Queue.Dequeue, None)
    | Queue_intf.Deq_empty ->
        Dss_spec.Status (Some Specs.Queue.Dequeue, Some Specs.Queue.Empty)
    | Queue_intf.Deq_done v ->
        Dss_spec.Status (Some Specs.Queue.Dequeue, Some (Specs.Queue.Value v))
  in
  let prep_enq ~tid v =
    record ~tid
      (Dss_spec.Prep (Specs.Queue.Enqueue v))
      (fun () ->
        Q.prep_enqueue q ~tid v;
        Dss_spec.Ack)
  in
  let exec_enq ~tid v =
    record ~tid
      (Dss_spec.Exec (Specs.Queue.Enqueue v))
      (fun () ->
        Q.exec_enqueue q ~tid;
        Dss_spec.Ret Specs.Queue.Ok)
  in
  let prep_deq ~tid =
    record ~tid (Dss_spec.Prep Specs.Queue.Dequeue) (fun () ->
        Q.prep_dequeue q ~tid;
        Dss_spec.Ack)
  in
  let exec_deq ~tid =
    record ~tid (Dss_spec.Exec Specs.Queue.Dequeue) (fun () ->
        deq_response (Q.exec_dequeue q ~tid))
  in
  let base_deq ~tid =
    let v = ref Queue_intf.empty_value in
    record ~tid (Dss_spec.Base Specs.Queue.Dequeue) (fun () ->
        v := Q.dequeue q ~tid;
        deq_response !v);
    !v
  in
  let base_enq ~tid v =
    record ~tid
      (Dss_spec.Base (Specs.Queue.Enqueue v))
      (fun () ->
        Q.enqueue q ~tid v;
        Dss_spec.Ret Specs.Queue.Ok)
  in
  (* Seed one element in direct mode so dequeues race over both list
     shapes (empty and non-empty). *)
  base_enq ~tid:2 90;
  let threads, tids =
    match prog with
    | "enq-deq" ->
        prep_enq ~tid:0 5;
        prep_deq ~tid:1;
        ([ (fun () -> exec_enq ~tid:0 5); (fun () -> exec_deq ~tid:1) ], [ 0; 1 ])
    | "enq-enq" ->
        prep_enq ~tid:0 5;
        prep_enq ~tid:1 7;
        ( [ (fun () -> exec_enq ~tid:0 5); (fun () -> exec_enq ~tid:1 7) ],
          [ 0; 1 ] )
    | "enq-enq-deq" ->
        prep_enq ~tid:0 5;
        prep_enq ~tid:1 7;
        prep_deq ~tid:2;
        ( [
            (fun () -> exec_enq ~tid:0 5);
            (fun () -> exec_enq ~tid:1 7);
            (fun () -> exec_deq ~tid:2);
          ],
          [ 0; 1; 2 ] )
    (* The whole-recovery cases: a plain enqueue (and dequeue) explored
       end to end — allocation, WAL append, link, tail swing — so the
       crash adversary can land mid-alloc and mid-log-append, between
       the logged intent and the node becoming reachable.  Single
       explored thread: these probe crash coverage, not races (the
       prep/exec programs above cover those). *)
    | "mid-alloc" -> ([ (fun () -> base_enq ~tid:0 5) ], [])
    | "mid-link" ->
        ( [
            (fun () ->
              base_enq ~tid:0 5;
              ignore (base_deq ~tid:0));
          ],
          [] )
    | p -> invalid_arg ("Scenarios.queue_setup: unknown program " ^ p)
  in
  let drain () =
    let rec go guard =
      if guard > 0 && base_deq ~tid:2 <> Queue_intf.empty_value then
        go (guard - 1)
    in
    go 8
  in
  let resolve_retry ~tid =
    record ~tid Dss_spec.Resolve (fun () -> resolved_response (Q.resolve q ~tid));
    match Q.resolve q ~tid with
    | Queue_intf.Enq_pending v -> exec_enq ~tid v
    | Queue_intf.Deq_pending -> exec_deq ~tid
    | _ -> ()
  in
  let finish ~crashed =
    (* Planted bugs can destroy liveness (see {!Mutants.Livelock}); the
       budget bounds the direct-mode protocol and the oracle judges the
       history recorded so far — which already contains any stale
       resolve response. *)
    (try
       if crashed then begin
         (* [reattach] already ran: the explorer's crash hook routes
            every crashed execution through the system-level recovery
            (WAL replay, root re-attach, Q.recover, leak audit) before
            this protocol resumes. *)
         Recorder.crash rec_;
         List.iter (fun tid -> resolve_retry ~tid) tids
       end;
       drain ()
     with Mutants.Livelock ->
       (* Observation cut short: mark the in-flight operation as crashed
          so the truncated history is still checkable.  This only adds
          linearization freedom, so a violation found here is genuine. *)
       Recorder.crash rec_);
    Oracle.assert_linearizable ~mode:params.mode spec (Recorder.history rec_)
  in
  { Explore.ctx = { finish; reattach }; heap; threads }

let stack_progs = [ "push-pop"; "push-push" ]

let stack_setup ~(params : params) ~prog () =
  let heap =
    Heap.create ~line_size:params.line_size ~persistency:params.persistency
      ~combine:params.combine ()
  in
  let (module M) = memory ~params heap in
  let module S = Dssq_core.Dss_stack.Make (M) in
  let module Sys = Dssq_core.Recovery.Make (M) in
  let sys = Sys.create ~nthreads:3 ~wal_lane_capacity:16 ~root_capacity:4 () in
  let s =
    S.create ~wal:(Sys.wal sys)
      ~pool_id:(Sys.fresh_pool_id sys)
      ~reclaim:false ~combine:params.combine ~nthreads:3 ~capacity:8 ()
  in
  ignore
    (Sys.register sys ~name:"stack"
       ~audit:(fun () -> Dssq_core.Recovery.audit_of_pool (S.audit s))
       (fun () -> S.recover s)
      : int);
  let reattach () =
    let r = Sys.reattach sys in
    if r.Dssq_core.Recovery.leaked_total > 0 then
      failwith
        (Printf.sprintf "stack: %d node(s) leaked after reattach"
           r.Dssq_core.Recovery.leaked_total)
  in
  let rec_ = Recorder.create () in
  let spec = Dss_spec.make ~nthreads:3 (Specs.Stack.spec ()) in
  let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
  let pop_response v : _ Dss_spec.response =
    if v = Queue_intf.empty_value then Dss_spec.Ret Specs.Stack.Empty
    else Dss_spec.Ret (Specs.Stack.Value v)
  in
  let resolved_response (r : Queue_intf.resolved) : _ Dss_spec.response =
    match r with
    | Queue_intf.Nothing -> Dss_spec.Status (None, None)
    | Queue_intf.Enq_pending v ->
        Dss_spec.Status (Some (Specs.Stack.Push v), None)
    | Queue_intf.Enq_done v ->
        Dss_spec.Status (Some (Specs.Stack.Push v), Some Specs.Stack.Ok)
    | Queue_intf.Deq_pending -> Dss_spec.Status (Some Specs.Stack.Pop, None)
    | Queue_intf.Deq_empty ->
        Dss_spec.Status (Some Specs.Stack.Pop, Some Specs.Stack.Empty)
    | Queue_intf.Deq_done v ->
        Dss_spec.Status (Some Specs.Stack.Pop, Some (Specs.Stack.Value v))
  in
  let prep_push ~tid v =
    record ~tid
      (Dss_spec.Prep (Specs.Stack.Push v))
      (fun () ->
        S.prep_push s ~tid v;
        Dss_spec.Ack)
  in
  let exec_push ~tid v =
    record ~tid
      (Dss_spec.Exec (Specs.Stack.Push v))
      (fun () ->
        S.exec_push s ~tid;
        Dss_spec.Ret Specs.Stack.Ok)
  in
  let prep_pop ~tid =
    record ~tid (Dss_spec.Prep Specs.Stack.Pop) (fun () ->
        S.prep_pop s ~tid;
        Dss_spec.Ack)
  in
  let exec_pop ~tid =
    record ~tid (Dss_spec.Exec Specs.Stack.Pop) (fun () ->
        pop_response (S.exec_pop s ~tid))
  in
  let base_pop ~tid =
    let v = ref Queue_intf.empty_value in
    record ~tid (Dss_spec.Base Specs.Stack.Pop) (fun () ->
        v := S.pop s ~tid;
        pop_response !v);
    !v
  in
  record ~tid:2
    (Dss_spec.Base (Specs.Stack.Push 90))
    (fun () ->
      S.push s ~tid:2 90;
      Dss_spec.Ret Specs.Stack.Ok);
  let threads, tids =
    match prog with
    | "push-pop" ->
        prep_push ~tid:0 5;
        prep_pop ~tid:1;
        ( [ (fun () -> exec_push ~tid:0 5); (fun () -> exec_pop ~tid:1) ],
          [ 0; 1 ] )
    | "push-push" ->
        prep_push ~tid:0 5;
        prep_push ~tid:1 7;
        ( [ (fun () -> exec_push ~tid:0 5); (fun () -> exec_push ~tid:1 7) ],
          [ 0; 1 ] )
    | p -> invalid_arg ("Scenarios.stack_setup: unknown program " ^ p)
  in
  let drain () =
    let rec go guard =
      if guard > 0 && base_pop ~tid:2 <> Queue_intf.empty_value then
        go (guard - 1)
    in
    go 8
  in
  let resolve_retry ~tid =
    record ~tid Dss_spec.Resolve (fun () -> resolved_response (S.resolve s ~tid));
    match S.resolve s ~tid with
    | Queue_intf.Enq_pending v -> exec_push ~tid v
    | Queue_intf.Deq_pending -> exec_pop ~tid
    | _ -> ()
  in
  let finish ~crashed =
    (try
       if crashed then begin
         Recorder.crash rec_;
         List.iter (fun tid -> resolve_retry ~tid) tids
       end;
       drain ()
     with Mutants.Livelock ->
       (* Observation cut short: mark the in-flight operation as crashed
          so the truncated history is still checkable.  This only adds
          linearization freedom, so a violation found here is genuine. *)
       Recorder.crash rec_);
    Oracle.assert_linearizable ~mode:params.mode spec (Recorder.history rec_)
  in
  { Explore.ctx = { finish; reattach }; heap; threads }

(* ---------------------------------------------------------------------- *)
(* Register.                                                               *)

let register_progs = [ "write-write"; "write-read" ]

let register_setup ~(params : params) ~prog () =
  let heap =
    Heap.create ~line_size:params.line_size ~persistency:params.persistency
      ~combine:params.combine ()
  in
  let (module M) = memory ~params heap in
  let module R = Dssq_core.Dss_register.Make (M) in
  let module Sys = Dssq_core.Recovery.Make (M) in
  let sys = Sys.create ~nthreads:3 ~wal_lane_capacity:8 ~root_capacity:4 () in
  let r = R.create ~init:0 ~nthreads:3 () in
  ignore (Sys.register sys ~name:"register" (fun () -> R.recover r) : int);
  let reattach () =
    ignore (Sys.reattach sys : Dssq_core.Recovery.report)
  in
  let rec_ = Recorder.create () in
  let spec = Dss_spec.make ~nthreads:3 (Specs.Register.spec ~init:0 ()) in
  let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
  let prep_write ~tid v =
    record ~tid
      (Dss_spec.Prep (Specs.Register.Write v))
      (fun () ->
        R.prep_write r ~tid v;
        Dss_spec.Ack)
  in
  let exec_write ~tid v =
    record ~tid
      (Dss_spec.Exec (Specs.Register.Write v))
      (fun () ->
        R.exec_write r ~tid;
        Dss_spec.Ret Specs.Register.Ok)
  in
  let exec_read ~tid =
    record ~tid (Dss_spec.Exec Specs.Register.Read) (fun () ->
        Dss_spec.Ret (Specs.Register.Value (R.exec_read r ~tid)))
  in
  let base_read ~tid =
    record ~tid (Dss_spec.Base Specs.Register.Read) (fun () ->
        Dss_spec.Ret (Specs.Register.Value (R.read r ~tid)))
  in
  let resolved_response ~tid : _ Dss_spec.response =
    match R.resolve r ~tid with
    | R.Nothing -> Dss_spec.Status (None, None)
    | R.Write_pending v ->
        Dss_spec.Status (Some (Specs.Register.Write v), None)
    | R.Write_done v ->
        Dss_spec.Status (Some (Specs.Register.Write v), Some Specs.Register.Ok)
    | R.Read_pending -> Dss_spec.Status (Some Specs.Register.Read, None)
    | R.Read_done v ->
        Dss_spec.Status
          (Some Specs.Register.Read, Some (Specs.Register.Value v))
  in
  let threads, tids =
    match prog with
    | "write-write" ->
        prep_write ~tid:0 5;
        prep_write ~tid:1 7;
        ( [ (fun () -> exec_write ~tid:0 5); (fun () -> exec_write ~tid:1 7) ],
          [ 0; 1 ] )
    | "write-read" ->
        prep_write ~tid:0 5;
        ([ (fun () -> exec_write ~tid:0 5); (fun () -> base_read ~tid:1) ], [ 0 ])
    | p -> invalid_arg ("Scenarios.register_setup: unknown program " ^ p)
  in
  let resolve_retry ~tid =
    record ~tid Dss_spec.Resolve (fun () -> resolved_response ~tid);
    match R.resolve r ~tid with
    | R.Write_pending _v -> exec_write ~tid _v
    | R.Read_pending -> exec_read ~tid
    | _ -> ()
  in
  let finish ~crashed =
    (try
       if crashed then begin
         Recorder.crash rec_;
         List.iter (fun tid -> resolve_retry ~tid) tids
       end;
       base_read ~tid:2
     with Mutants.Livelock ->
       (* Observation cut short: mark the in-flight operation as crashed
          so the truncated history is still checkable.  This only adds
          linearization freedom, so a violation found here is genuine. *)
       Recorder.crash rec_);
    Oracle.assert_linearizable ~mode:params.mode spec (Recorder.history rec_)
  in
  { Explore.ctx = { finish; reattach }; heap; threads }

(* ---------------------------------------------------------------------- *)
(* Hash map: plain map linearizability; resolve drives retries only.       *)

let hashmap_progs = [ "put-put"; "put-remove" ]

let hashmap_setup ~(params : params) ~prog () =
  let heap =
    Heap.create ~line_size:params.line_size ~persistency:params.persistency
      ~combine:params.combine ()
  in
  let (module M) = memory ~params heap in
  let module H = Dssq_core.Dss_hashmap.Make (M) in
  let module Sys = Dssq_core.Recovery.Make (M) in
  let sys = Sys.create ~nthreads:3 ~wal_lane_capacity:8 ~root_capacity:4 () in
  let h = H.create ~nthreads:3 ~nbuckets:8 () in
  ignore (Sys.register sys ~name:"hashmap" (fun () -> H.recover h) : int);
  let reattach () =
    ignore (Sys.reattach sys : Dssq_core.Recovery.report)
  in
  let rec_ = Recorder.create () in
  let spec = Specs.Map.spec () in
  let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
  let put ~tid k v =
    record ~tid
      (Specs.Map.Put (k, v))
      (fun () ->
        H.put h ~tid k v;
        Specs.Map.Ok)
  in
  let remove ~tid k =
    record ~tid (Specs.Map.Remove k) (fun () ->
        H.remove h ~tid k;
        Specs.Map.Ok)
  in
  let find ~tid k =
    record ~tid (Specs.Map.Find k) (fun () ->
        match H.find h k with
        | Some v -> Specs.Map.Found v
        | None -> Specs.Map.Absent)
  in
  put ~tid:2 2 9;
  let threads, tids =
    match prog with
    | "put-put" ->
        ([ (fun () -> put ~tid:0 1 5); (fun () -> put ~tid:1 1 7) ], [ 0; 1 ])
    | "put-remove" ->
        ([ (fun () -> put ~tid:0 1 5); (fun () -> remove ~tid:1 2) ], [ 0; 1 ])
    | p -> invalid_arg ("Scenarios.hashmap_setup: unknown program " ^ p)
  in
  let resolve_retry ~tid =
    match H.resolve h ~tid with
    | H.Put_pending (k, v) -> put ~tid k v
    | H.Remove_pending k -> remove ~tid k
    | H.Nothing | H.Put_done _ | H.Remove_done _ -> ()
  in
  let finish ~crashed =
    (try
       if crashed then begin
         Recorder.crash rec_;
         List.iter (fun tid -> resolve_retry ~tid) tids
       end;
       find ~tid:2 1;
       find ~tid:2 2
     with Mutants.Livelock ->
       (* Observation cut short: mark the in-flight operation as crashed
          so the truncated history is still checkable.  This only adds
          linearization freedom, so a violation found here is genuine. *)
       Recorder.crash rec_);
    Oracle.assert_linearizable ~mode:params.mode spec (Recorder.history rec_)
  in
  { Explore.ctx = { finish; reattach }; heap; threads }

(* ---------------------------------------------------------------------- *)
(* Engine-made objects (Detectable.Make zoo): one generic scenario         *)
(* builder; each object contributes its spec, its functor application      *)
(* and a couple of program tables.                                         *)

(** The face a functor-made object presents to the generic builder —
    {!Dssq_core.Detectable_intf.GENERIC} flattened into closures so the
    builder needs no first-class-module plumbing per call. *)
type ('op, 'r) engine_ops = {
  e_prep : tid:int -> 'op -> unit;
  e_exec : tid:int -> 'r;
  e_base : tid:int -> 'op -> 'r;
  e_resolve : tid:int -> ('op, 'r) Dssq_core.Detectable_intf.resolved;
  e_recover : unit -> unit;
}

(** A small explored program over one engine object: [seed] runs as
    direct-mode base ops during setup, each [preps] entry is prepped in
    setup and its exec explored as one thread, [base_threads] are
    explored plain (Axiom 4) calls, and [observe] is the direct-mode
    read-back that anchors the final state in the history. *)
type 'op engine_prog = {
  seed : (int * 'op) list;
  preps : (int * 'op) list;
  base_threads : (int * 'op) list;
  observe : int * 'op list;
}

(* The generic engine-object scenario: the record/resolve/retry protocol
   is object-independent because resolve speaks the uniform
   [(A[p], R[p])] vocabulary — exactly the dedup the registry below
   exists for.  New functor-made objects get crash coverage by adding a
   descriptor, not a bespoke setup. *)
let engine_setup (type s op r) ~(params : params) ~(spec : (s, op, r) Spec.t)
    ~(instantiate : (module Dssq_memory.Memory_intf.S) -> (op, r) engine_ops)
    ~(eprog : op engine_prog) () =
  let heap =
    Heap.create ~line_size:params.line_size ~persistency:params.persistency
      ~combine:params.combine ()
  in
  let mem = memory ~params heap in
  let o = instantiate mem in
  let module MM = (val mem) in
  let module Sys = Dssq_core.Recovery.Make (MM) in
  let sys = Sys.create ~nthreads:3 ~wal_lane_capacity:8 ~root_capacity:4 () in
  ignore
    (Sys.register sys ~name:spec.Spec.name (fun () -> o.e_recover ()) : int);
  let reattach () = ignore (Sys.reattach sys : Dssq_core.Recovery.report) in
  let rec_ = Recorder.create () in
  let dspec = Dss_spec.make ~nthreads:3 spec in
  let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
  let prep ~tid op =
    record ~tid (Dss_spec.Prep op) (fun () ->
        o.e_prep ~tid op;
        Dss_spec.Ack)
  in
  let exec ~tid op =
    record ~tid (Dss_spec.Exec op) (fun () -> Dss_spec.Ret (o.e_exec ~tid))
  in
  let base ~tid op =
    record ~tid (Dss_spec.Base op) (fun () -> Dss_spec.Ret (o.e_base ~tid op))
  in
  let resolved_response ~tid : _ Dss_spec.response =
    match o.e_resolve ~tid with
    | Dssq_core.Detectable_intf.Nothing -> Dss_spec.Status (None, None)
    | Pending op -> Dss_spec.Status (Some op, None)
    | Done (op, r) -> Dss_spec.Status (Some op, Some r)
  in
  List.iter (fun (tid, op) -> base ~tid op) eprog.seed;
  List.iter (fun (tid, op) -> prep ~tid op) eprog.preps;
  let threads =
    List.map (fun (tid, op) () -> exec ~tid op) eprog.preps
    @ List.map (fun (tid, op) () -> base ~tid op) eprog.base_threads
  in
  let tids = List.map fst eprog.preps in
  let resolve_retry ~tid =
    record ~tid Dss_spec.Resolve (fun () -> resolved_response ~tid);
    match o.e_resolve ~tid with Pending op -> exec ~tid op | _ -> ()
  in
  let finish ~crashed =
    (try
       if crashed then begin
         Recorder.crash rec_;
         List.iter (fun tid -> resolve_retry ~tid) tids
       end;
       let otid, obs = eprog.observe in
       List.iter (fun op -> base ~tid:otid op) obs
     with Mutants.Livelock ->
       (* Observation cut short: mark the in-flight operation as crashed
          so the truncated history is still checkable. *)
       Recorder.crash rec_);
    Oracle.assert_linearizable ~mode:params.mode dspec (Recorder.history rec_)
  in
  { Explore.ctx = { finish; reattach }; heap; threads }

let swap_progs = [ "swap-swap"; "swap-read" ]

let swap_setup ~params ~prog () =
  let eprog =
    let open Specs.Swap in
    match prog with
    | "swap-swap" ->
        {
          seed = [];
          preps = [ (0, Swap 5); (1, Swap 7) ];
          base_threads = [];
          observe = (2, [ Read ]);
        }
    | "swap-read" ->
        {
          seed = [ (2, Swap 90) ];
          preps = [ (0, Swap 5) ];
          base_threads = [ (1, Read) ];
          observe = (2, [ Read ]);
        }
    | p -> invalid_arg ("Scenarios.swap_setup: unknown program " ^ p)
  in
  engine_setup ~params ~spec:(Specs.Swap.spec ())
    ~instantiate:(fun (module M : Dssq_memory.Memory_intf.S) ->
      let module O = Dssq_core.Dss_swap.Make (M) in
      let o = O.create ~combine:params.combine ~nthreads:3 () in
      {
        e_prep = (fun ~tid op -> O.prep o ~tid op);
        e_exec = (fun ~tid -> O.exec o ~tid);
        e_base = (fun ~tid op -> O.base o ~tid op);
        e_resolve = (fun ~tid -> O.resolve o ~tid);
        e_recover = (fun () -> O.recover o);
      })
    ~eprog ()

let deque_progs = [ "front-back"; "push-pop" ]

let deque_setup ~params ~prog () =
  let eprog =
    let open Specs.Deque in
    match prog with
    | "front-back" ->
        {
          seed = [ (2, Push_back 90) ];
          preps = [ (0, Push_front 5); (1, Push_back 7) ];
          base_threads = [];
          observe = (2, [ Pop_front; Pop_front; Pop_front ]);
        }
    | "push-pop" ->
        {
          seed = [ (2, Push_back 90) ];
          preps = [ (0, Push_front 5); (1, Pop_back) ];
          base_threads = [];
          observe = (2, [ Pop_front; Pop_front ]);
        }
    | p -> invalid_arg ("Scenarios.deque_setup: unknown program " ^ p)
  in
  engine_setup ~params ~spec:(Specs.Deque.spec ())
    ~instantiate:(fun (module M : Dssq_memory.Memory_intf.S) ->
      let module O = Dssq_core.Dss_deque.Make (M) in
      let o = O.create ~combine:params.combine ~nthreads:3 () in
      {
        e_prep = (fun ~tid op -> O.prep o ~tid op);
        e_exec = (fun ~tid -> O.exec o ~tid);
        e_base = (fun ~tid op -> O.base o ~tid op);
        e_resolve = (fun ~tid -> O.resolve o ~tid);
        e_recover = (fun () -> O.recover o);
      })
    ~eprog ()

let pqueue_progs = [ "ins-ins"; "ins-extract" ]

let pqueue_setup ~params ~prog () =
  let eprog =
    let open Specs.Pqueue in
    match prog with
    | "ins-ins" ->
        {
          seed = [ (2, Insert 90) ];
          preps = [ (0, Insert 5); (1, Insert 7) ];
          base_threads = [];
          observe = (2, [ Extract_min; Extract_min; Extract_min ]);
        }
    | "ins-extract" ->
        {
          seed = [ (2, Insert 90) ];
          preps = [ (0, Insert 5); (1, Extract_min) ];
          base_threads = [];
          observe = (2, [ Extract_min; Extract_min ]);
        }
    | p -> invalid_arg ("Scenarios.pqueue_setup: unknown program " ^ p)
  in
  engine_setup ~params ~spec:(Specs.Pqueue.spec ())
    ~instantiate:(fun (module M : Dssq_memory.Memory_intf.S) ->
      let module O = Dssq_core.Dss_pqueue.Make (M) in
      let o = O.create ~combine:params.combine ~nthreads:3 () in
      {
        e_prep = (fun ~tid op -> O.prep o ~tid op);
        e_exec = (fun ~tid -> O.exec o ~tid);
        e_base = (fun ~tid op -> O.base o ~tid op);
        e_resolve = (fun ~tid -> O.resolve o ~tid);
        e_recover = (fun () -> O.recover o);
      })
    ~eprog ()

let bcounter_progs = [ "inc-inc"; "inc-dec" ]

let bcounter_setup ~params ~prog () =
  let eprog =
    let open Specs.Bcounter in
    match prog with
    | "inc-inc" ->
        {
          seed = [];
          preps = [ (0, Increment); (1, Increment) ];
          base_threads = [];
          observe = (2, [ Get ]);
        }
    | "inc-dec" ->
        (* Decrement can race Increment at 0: both orders of the failing
           and succeeding outcomes must linearize. *)
        {
          seed = [];
          preps = [ (0, Increment); (1, Decrement) ];
          base_threads = [];
          observe = (2, [ Get ]);
        }
    | p -> invalid_arg ("Scenarios.bcounter_setup: unknown program " ^ p)
  in
  engine_setup ~params
    ~spec:(Specs.Bcounter.spec ~bound:Dssq_core.Dss_bcounter.bound ())
    ~instantiate:(fun (module M : Dssq_memory.Memory_intf.S) ->
      let module O = Dssq_core.Dss_bcounter.Make (M) in
      let o = O.create ~combine:params.combine ~nthreads:3 () in
      {
        e_prep = (fun ~tid op -> O.prep o ~tid op);
        e_exec = (fun ~tid -> O.exec o ~tid);
        e_base = (fun ~tid op -> O.base o ~tid op);
        e_resolve = (fun ~tid -> O.resolve o ~tid);
        e_recover = (fun () -> O.recover o);
      })
    ~eprog ()

(* ---------------------------------------------------------------------- *)
(* Corpus assembly: the object registry.                                   *)

(** One corpus entry per object.  [cases] below and every by-name lookup
    ([objects], [progs_of_obj], [build]) derive from this list, so a new
    object gets crash coverage by adding a descriptor — there is no
    hand-maintained match to forget to extend. *)
type descriptor = {
  d_obj : string;
  d_progs : string list;
  d_nthreads : string -> int;  (** explored threads, per program *)
  d_setup : params:params -> prog:string -> unit -> world Explore.scenario;
}

let registry =
  [
    {
      d_obj = "queue";
      d_progs = queue_progs;
      d_nthreads =
        (fun prog ->
          match prog with
          | "enq-enq-deq" -> 3
          | "mid-alloc" | "mid-link" -> 1
          | _ -> 2);
      d_setup = queue_setup;
    };
    {
      d_obj = "stack";
      d_progs = stack_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = stack_setup;
    };
    {
      d_obj = "register";
      d_progs = register_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = register_setup;
    };
    {
      d_obj = "hashmap";
      d_progs = hashmap_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = hashmap_setup;
    };
    {
      d_obj = "swap";
      d_progs = swap_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = swap_setup;
    };
    {
      d_obj = "deque";
      d_progs = deque_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = deque_setup;
    };
    {
      d_obj = "pqueue";
      d_progs = pqueue_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = pqueue_setup;
    };
    {
      d_obj = "bcounter";
      d_progs = bcounter_progs;
      d_nthreads = (fun _ -> 2);
      d_setup = bcounter_setup;
    };
  ]

let objects = List.map (fun d -> d.d_obj) registry

let descriptor_of_obj name =
  match List.find_opt (fun d -> d.d_obj = name) registry with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "Scenarios: unknown object %s (known: %s)" name
           (String.concat ", " objects))

let progs_of_obj obj = (descriptor_of_obj obj).d_progs

let build ~params ~obj ~prog =
  let d = descriptor_of_obj obj in
  case_of_setup ~params ~obj ~prog ~nthreads:(d.d_nthreads prog)
    (d.d_setup ~params ~prog)

(** Assemble the corpus.  A [mutation] restricts the corpus to the queue
    (the seeded mutants target queue cell names).  Three-thread programs
    are kept crash-free: with a crash adversary their branching factor
    would put a single case past the CI budget. *)
let cases ?(objects = objects) ?(crash_modes = [ false; true ])
    ?(line_sizes = [ 1; 8 ]) ?(coalesce = false) ?(combine = false)
    ?(persistency = Heap.Persistency.Sc) ?mutation ?(mode = Lincheck.Strict)
    ?(max_preemptions = 1) ?(max_crash_lines = 4) ?(crash_samples = 6)
    ?(seed = 0) ?(adversary = `Per_line) ?(limit = 2_000_000) () =
  let objects =
    (* Memory-layer mutants are seeded against queue cell names; the
       engine-level lost-batch mutant targets the combining engine, so
       its hunt runs over the engine-made objects instead. *)
    match mutation with
    | Some Mutants.Lost_batch -> [ "swap"; "deque"; "pqueue"; "bcounter" ]
    | Some _ -> [ "queue" ]
    | None -> objects
  in
  List.concat_map
    (fun obj ->
      List.concat_map
        (fun prog ->
          List.concat_map
            (fun crashes ->
              if crashes && prog = "enq-enq-deq" then []
              else
                List.map
                  (fun line_size ->
                    let params =
                      {
                        crashes;
                        line_size;
                        coalesce;
                        combine;
                        persistency;
                        mode;
                        mutation;
                        max_preemptions;
                        max_crash_lines;
                        crash_samples;
                        seed;
                        adversary;
                        limit;
                      }
                    in
                    build ~params ~obj ~prog)
                  line_sizes)
            crash_modes)
        (progs_of_obj obj))
    objects

let find_case ~cases:cs name = List.find_opt (fun c -> c.name = name) cs
