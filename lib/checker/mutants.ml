(** Seeded fault injection at the memory layer.

    A mutant wraps a backend module with an interposer that silently
    drops selected persistence (or detectability) events, planting the
    classic crash-consistency bugs the model checker must be able to
    find: code that is correct except for one missing flush, one stale
    announcement word, or a write-back that is issued but never drained.
    The wrapped module still satisfies {!Dssq_memory.Memory_intf.S}, so
    any algorithm functor instantiates over it unchanged — the mutation
    is invisible until a crash makes the lost persistence observable.

    Selection is by cell {e name} substring, using the names algorithms
    already give their cells for tracing (queue nodes are
    [node<i>[0..2]] for value/next/deq_tid, announcements are
    [X[<tid>]]). *)

module Intf = Dssq_memory.Memory_intf

type mutation =
  | Skip_flush of string
      (** drop flushes whose cell name contains the substring — the
          "forgot the flush before the CAS" bug *)
  | Stale_write of string
      (** drop every write after the first to matching cells — the
          announcement word keeps its prep-time contents, so
          detectability state goes stale *)
  | Unfenced
      (** drop {e every} flush: write-backs are issued but never
          drained, so nothing added after initialization persists *)
  | Drop_drain
      (** drop every [drain]: coalesced flushes are buffered but the
          batch write-back at the persistence point never happens — the
          coalescing analogue of {!Unfenced}.  Only observable against a
          coalescing backend (eager backends drain at every flush), so
          it lives outside {!all} and is hunted by the coalescing
          corpus. *)
  | Skip_drain of string
      (** drop the first [drain] after a flush of a matching cell — the
          "flushed but forgot the sfence before the dependent publish"
          bug.  Invisible under sc (eager flushes are synchronous, so
          the dropped drain was already a no-op); under px86 the
          matching flushes stay buffered across the publish CAS and a
          crash can persist the link to a node whose fields never made
          it to the persistence domain. *)
  | Short_drain
      (** every px86 drain misses the newest buffered entry — the
          off-by-one persist barrier that covers each pwb except the one
          issued just before it.  Invisible under sc (eager flushes
          leave nothing pending); under px86 it hollows out exactly the
          hardening drains the objects interpose between a flush and the
          CAS that depends on it, reverting them to their unhardened
          crash behaviour.  Implemented in the heap
          ([Heap.short_drain]) because the module interposer cannot see
          which buffered entry a drain would write back; {!wrap} passes
          operations through unchanged. *)
  | Lost_batch
      (** a flat-combining install publishes its batch's completion
          records durably {e before} the state's persist epoch — the
          ordering bug the combiner's single-epoch discipline exists to
          rule out.  A crash between the two leaves durable [Done]
          evidence for effects that rolled back, so exactly-once retries
          never happen for operations that must re-execute (the dual of
          {!Stale_write}: evidence without effect instead of effect
          without evidence).  Only meaningful on a combining corpus;
          implemented in the engine ([Detectable.lost_batch_injection] —
          the ordering inversion spans an algorithm-level epoch the
          module interposer cannot see), so {!wrap} passes operations
          through unchanged and the scenario runner flips the hook. *)
  | Reorder_persist of string
      (** flushes of matching cells jump to the {e front} of the
          thread's px86 persist-buffer FIFO — a persist that overtakes
          program order.  Invisible under sc (no buffer to reorder), and
          {e provably masked} in the hardened objects: every inter-line
          persistence dependence is mediated by a drain barrier, so
          buffers hold at most one entry at each dependence point and
          there is nothing to reorder past.  Registered so the px86
          corpus passing under it is a standing robustness regression
          (drain-mediation suffices against pure persist reordering).
          Implemented in the heap ([Heap.reorder_pat]) because the
          module interposer cannot reach the buffer; {!wrap} passes
          operations through unchanged. *)

let describe = function
  | Skip_flush pat -> Printf.sprintf "drop flushes of cells matching %S" pat
  | Stale_write pat ->
      Printf.sprintf "drop 2nd+ writes to cells matching %S (stale state)" pat
  | Unfenced -> "drop all flushes (write-backs never drained)"
  | Drop_drain -> "drop all drains (coalesced flushes never written back)"
  | Skip_drain pat ->
      Printf.sprintf "drop the drain after flushes of cells matching %S" pat
  | Short_drain -> "every drain misses the newest buffered entry (off-by-one)"
  | Lost_batch ->
      "combining installs publish batch completions before the persist epoch"
  | Reorder_persist pat ->
      Printf.sprintf "persist flushes of cells matching %S out of order" pat

(** The seeded DSS-queue mutants of the regression suite. *)

let skip_flush_link = Skip_flush "[1]"
(** Node [next] pointers are never persisted: the link CASed into the
    list can vanish at a crash after the enqueue reported completion. *)

let skip_flush_mark = Skip_flush "[2]"
(** Dequeue claim marks ([deq_tid]) are never persisted: a crash can
    forget who dequeued a value, breaking exactly-once recovery. *)

let stale_announce = Stale_write "X["
(** Per-thread announcement words keep their prep-time contents: the
    completion update is lost, so [resolve] reports a finished operation
    as still pending and the retry duplicates it. *)

let unfenced = Unfenced

let drop_drain = Drop_drain
(** The persistence points of coalescing-annotated code never drain: X
    announcements and final link/claim flushes stay buffered when the
    operation returns.  Meaningless against eager backends (their [drain]
    is already a no-op), so it is registered separately from {!all} and
    the regression suite hunts it on a [~coalesce:true] corpus. *)

let skip_drain_node = Skip_drain "node"
(** Node-field flushes (value, next) are issued but the drain ordering
    them before the publish CAS is dropped: SC-safe (the eager flush
    already persisted), relaxed-buggy (the link can persist while the
    node it points at is lost). *)

let short_drain = Short_drain
(** Every drain persists all but the newest buffered entry: SC-safe (the
    eager flush already persisted before the drain was a no-op),
    relaxed-buggy (the flush each hardening drain was interposed for is
    exactly the one it misses, so the publish CAS races a link that never
    reached the persistence domain). *)

let lost_batch = Lost_batch
(** Completion-before-epoch ordering inversion in the flat-combining
    engine.  Invisible with combining off (eager installs publish after
    their own drain by construction) and not part of {!all}; the
    combining corpus hunts it by name ("lost-batch") under both sc and
    px86. *)

let reorder_completion = Reorder_persist "X["
(** Announcement-word flushes jump the persist FIFO.  SC-safe (no
    buffer); under px86 the hardened objects mask it — see
    {!Reorder_persist} — so the px86 corpus {e passing} this mutant is
    the drain-mediation robustness regression, hunted by name
    ("reorder-persist") like {!drop_drain}. *)

let all =
  [
    ("skip-flush-link", skip_flush_link);
    ("skip-flush-mark", skip_flush_mark);
    ("stale-announce", stale_announce);
    ("unfenced", unfenced);
  ]

(** SC-safe, relaxed-buggy mutants: the sc corpus must pass them, the
    px86 corpus must catch them.  Outside {!all} for the same reason as
    {!drop_drain} — the plain sc regression suite asserts every {!all}
    entry is caught, which these deliberately are not. *)
let relaxed =
  [
    ("skip-drain", skip_drain_node);
    ("short-drain", short_drain);
  ]

let by_name n =
  match n with
  | "drop-drain" -> Some drop_drain
  | "reorder-persist" -> Some reorder_completion
  | "lost-batch" -> Some lost_batch
  | _ -> (
      match List.assoc_opt n relaxed with
      | Some m -> Some m
      | None -> List.assoc_opt n all)

exception Livelock
(** A mutated execution exceeded its memory-operation budget.  Planted
    bugs can destroy liveness, not just safety — e.g. a stale
    announcement makes the exactly-once retry re-link an already-linked
    node, and the next dequeue spins forever helping a tail that is
    already in place.  The budget turns that unbounded direct-mode loop
    into an exception the scenario can contain; the safety oracle still
    judges the history recorded up to that point. *)

let budget = 100_000
(** Memory operations per wrapped-module instance (one instance per
    explored execution).  Corpus executions use a few hundred. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(** Interpose [mutation] on a backend. *)
let wrap mutation (module M : Intf.S) : (module Intf.S) =
  (module struct
    type 'a cell = { inner : 'a M.cell; cname : string; mutable writes : int }

    let ops = ref 0

    let spend () =
      incr ops;
      if !ops > budget then raise Livelock

    let mk cname inner = { inner; cname; writes = 0 }

    let alloc ?(name = "") ?placement v =
      mk name (M.alloc ~name ?placement v)

    let alloc_block ?(name = "") vs =
      List.mapi
        (fun i c ->
          let cname =
            if name = "" then "" else Printf.sprintf "%s[%d]" name i
          in
          mk cname c)
        (M.alloc_block ~name vs)

    (* Recovery-infrastructure cells — the write-ahead log's slot words
       ("wal[i][j]") and the root directory ("roots.*") — are exempt
       from every mutation.  Planted bugs model object-code mistakes;
       mutating the log would surface as [Wal.Corrupted] at reattach
       instead of the oracle violation the regression suite asserts. *)
    let infra c =
      let has_prefix p =
        String.length c.cname >= String.length p
        && String.sub c.cname 0 (String.length p) = p
      in
      has_prefix "wal" || has_prefix "roots"

    let hits pat c = (not (infra c)) && contains c.cname pat

    let read c =
      spend ();
      M.read c.inner

    let write c v =
      spend ();
      c.writes <- c.writes + 1;
      match mutation with
      | Stale_write pat when hits pat c && c.writes > 1 -> ()
      | _ -> M.write c.inner v

    let cas c ~expected ~desired =
      spend ();
      M.cas c.inner ~expected ~desired

    (* Skip_drain: a matching flush since the last drain arms the trap;
       the next drain is swallowed and disarms it. *)
    let armed = ref false

    let flush c =
      spend ();
      match mutation with
      | Unfenced when not (infra c) -> ()
      | Skip_flush pat when hits pat c -> ()
      | Skip_drain pat ->
          if hits pat c then armed := true;
          M.flush c.inner
      | _ -> M.flush c.inner

    let fence () = M.fence ()

    let drain () =
      match mutation with
      | Drop_drain -> ()
      | Skip_drain _ when !armed -> armed := false
      | _ -> M.drain ()
  end)

let () =
  Printexc.register_printer (function
    | Livelock ->
        Some "Mutants.Livelock: memory-operation budget exhausted (planted \
              bug destroyed liveness)"
    | _ -> None)
