(** Seeded fault injection at the memory layer.

    A mutant wraps a backend module with an interposer that silently
    drops selected persistence (or detectability) events, planting the
    classic crash-consistency bugs the model checker must be able to
    find: code that is correct except for one missing flush, one stale
    announcement word, or a write-back that is issued but never drained.
    The wrapped module still satisfies {!Dssq_memory.Memory_intf.S}, so
    any algorithm functor instantiates over it unchanged — the mutation
    is invisible until a crash makes the lost persistence observable.

    Selection is by cell {e name} substring, using the names algorithms
    already give their cells for tracing (queue nodes are
    [node<i>[0..2]] for value/next/deq_tid, announcements are
    [X[<tid>]]). *)

module Intf = Dssq_memory.Memory_intf

type mutation =
  | Skip_flush of string
      (** drop flushes whose cell name contains the substring — the
          "forgot the flush before the CAS" bug *)
  | Stale_write of string
      (** drop every write after the first to matching cells — the
          announcement word keeps its prep-time contents, so
          detectability state goes stale *)
  | Unfenced
      (** drop {e every} flush: write-backs are issued but never
          drained, so nothing added after initialization persists *)
  | Drop_drain
      (** drop every [drain]: coalesced flushes are buffered but the
          batch write-back at the persistence point never happens — the
          coalescing analogue of {!Unfenced}.  Only observable against a
          coalescing backend (eager backends drain at every flush), so
          it lives outside {!all} and is hunted by the coalescing
          corpus. *)

let describe = function
  | Skip_flush pat -> Printf.sprintf "drop flushes of cells matching %S" pat
  | Stale_write pat ->
      Printf.sprintf "drop 2nd+ writes to cells matching %S (stale state)" pat
  | Unfenced -> "drop all flushes (write-backs never drained)"
  | Drop_drain -> "drop all drains (coalesced flushes never written back)"

(** The seeded DSS-queue mutants of the regression suite. *)

let skip_flush_link = Skip_flush "[1]"
(** Node [next] pointers are never persisted: the link CASed into the
    list can vanish at a crash after the enqueue reported completion. *)

let skip_flush_mark = Skip_flush "[2]"
(** Dequeue claim marks ([deq_tid]) are never persisted: a crash can
    forget who dequeued a value, breaking exactly-once recovery. *)

let stale_announce = Stale_write "X["
(** Per-thread announcement words keep their prep-time contents: the
    completion update is lost, so [resolve] reports a finished operation
    as still pending and the retry duplicates it. *)

let unfenced = Unfenced

let drop_drain = Drop_drain
(** The persistence points of coalescing-annotated code never drain: X
    announcements and final link/claim flushes stay buffered when the
    operation returns.  Meaningless against eager backends (their [drain]
    is already a no-op), so it is registered separately from {!all} and
    the regression suite hunts it on a [~coalesce:true] corpus. *)

let all =
  [
    ("skip-flush-link", skip_flush_link);
    ("skip-flush-mark", skip_flush_mark);
    ("stale-announce", stale_announce);
    ("unfenced", unfenced);
  ]

let by_name n =
  match n with
  | "drop-drain" -> Some drop_drain
  | _ -> List.assoc_opt n all

exception Livelock
(** A mutated execution exceeded its memory-operation budget.  Planted
    bugs can destroy liveness, not just safety — e.g. a stale
    announcement makes the exactly-once retry re-link an already-linked
    node, and the next dequeue spins forever helping a tail that is
    already in place.  The budget turns that unbounded direct-mode loop
    into an exception the scenario can contain; the safety oracle still
    judges the history recorded up to that point. *)

let budget = 100_000
(** Memory operations per wrapped-module instance (one instance per
    explored execution).  Corpus executions use a few hundred. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(** Interpose [mutation] on a backend. *)
let wrap mutation (module M : Intf.S) : (module Intf.S) =
  (module struct
    type 'a cell = { inner : 'a M.cell; cname : string; mutable writes : int }

    let ops = ref 0

    let spend () =
      incr ops;
      if !ops > budget then raise Livelock

    let mk cname inner = { inner; cname; writes = 0 }

    let alloc ?(name = "") ?placement v =
      mk name (M.alloc ~name ?placement v)

    let alloc_block ?(name = "") vs =
      List.mapi
        (fun i c ->
          let cname =
            if name = "" then "" else Printf.sprintf "%s[%d]" name i
          in
          mk cname c)
        (M.alloc_block ~name vs)

    (* Recovery-infrastructure cells — the write-ahead log's slot words
       ("wal[i][j]") and the root directory ("roots.*") — are exempt
       from every mutation.  Planted bugs model object-code mistakes;
       mutating the log would surface as [Wal.Corrupted] at reattach
       instead of the oracle violation the regression suite asserts. *)
    let infra c =
      let has_prefix p =
        String.length c.cname >= String.length p
        && String.sub c.cname 0 (String.length p) = p
      in
      has_prefix "wal" || has_prefix "roots"

    let hits pat c = (not (infra c)) && contains c.cname pat

    let read c =
      spend ();
      M.read c.inner

    let write c v =
      spend ();
      c.writes <- c.writes + 1;
      match mutation with
      | Stale_write pat when hits pat c && c.writes > 1 -> ()
      | _ -> M.write c.inner v

    let cas c ~expected ~desired =
      spend ();
      M.cas c.inner ~expected ~desired

    let flush c =
      spend ();
      match mutation with
      | Unfenced when not (infra c) -> ()
      | Skip_flush pat when hits pat c -> ()
      | _ -> M.flush c.inner

    let fence () = M.fence ()

    let drain () =
      match mutation with Drop_drain -> () | _ -> M.drain ()
  end)

let () =
  Printexc.register_printer (function
    | Livelock ->
        Some "Mutants.Livelock: memory-operation budget exhausted (planted \
              bug destroyed liveness)"
    | _ -> None)
