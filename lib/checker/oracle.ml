(** Lincheck-as-oracle: the bridge that lets {!Dssq_sim.Explore} judge
    every explored execution by the paper's Section 2 formalism instead
    of ad-hoc asserts.  A scenario records a {!Dssq_history.History.t}
    while its threads run; at the end of each execution (complete or
    crashed) the history — recovery, resolves, exactly-once retries and
    drain reads included — goes through {!Dssq_lincheck.Lincheck.check},
    and a non-linearizable verdict raises, which the explorer converts
    into a replayable {!Dssq_sim.Explore.Violation}. *)

module Spec = Dssq_spec.Spec
module History = Dssq_history.History
module Lincheck = Dssq_lincheck.Lincheck

exception Not_linearizable of string
(** Carries the pretty-printed failing history (the trace timeline is
    recovered separately by replaying the violation's schedule under
    [Explore.explain]). *)

let mode_name = function
  | Lincheck.Strict -> "strict"
  | Lincheck.Recoverable -> "recoverable"
  | Lincheck.Durable -> "durable"

let mode_of_name = function
  | "strict" -> Some Lincheck.Strict
  | "recoverable" -> Some Lincheck.Recoverable
  | "durable" -> Some Lincheck.Durable
  | _ -> None

(** Check one recorded history against [spec] under [mode]; raise
    {!Not_linearizable} with the printed history on failure. *)
let assert_linearizable ?(mode = Lincheck.Strict) (spec : _ Spec.t) history =
  match Lincheck.check ~mode spec history with
  | Lincheck.Linearizable _ -> ()
  | Lincheck.Not_linearizable _ ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      History.pp ~pp_op:spec.Spec.pp_op ~pp_response:spec.Spec.pp_response fmt
        history;
      Format.pp_print_flush fmt ();
      raise
        (Not_linearizable
           (Printf.sprintf "history not %s-linearizable w.r.t. %s:\n%s"
              (mode_name mode) spec.Spec.name (Buffer.contents buf)))

let () =
  Printexc.register_printer (function
    | Not_linearizable msg -> Some ("Oracle.Not_linearizable: " ^ msg)
    | _ -> None)
