(** Schema-versioned JSON encoding and decoding of explore-corpus runs:
    the [dssq-explore-report] document written by [dssq explore --json]
    and consumed by CI artifact tooling and the regression suite.

    Version history:
    - v1: per-case status, executions/pruned/crash counts, tokens.
    - v2: coverage telemetry per case — branches, sleep_hit_rate,
      crash_points split into enumerated/sampled, wall_s.
    - v3: the buffered (px86) persistency axis — every case carries a
      ["persistency"] field, stats gain [drain_points]/[drain_branches],
      the run params record the swept mode, and a top-level
      ["coverage"] object totals branch/crash-point counts per
      persistency mode.

    {!decode} accepts v1-v3: fields introduced later read back as their
    pre-introduction defaults (drain counts 0, persistency ["sc"]), so
    archived v2 reports keep decoding bit-compatibly. *)

module Json = Dssq_obs.Json
module Explore = Dssq_sim.Explore

let schema = "dssq-explore-report"
let version = 3

(** One corpus case's outcome under the reduced (and optionally the
    naive) search. *)
type case_result = {
  xcase : Scenarios.case;
  verdict : (Explore.stats, Explore.schedule * exn) result;
  naive : (Explore.stats, Explore.schedule * exn) result option;
}

let run_case (c : Scenarios.case) ~reduction =
  match c.Scenarios.run ~reduction with
  | s -> Ok s
  | exception Explore.Violation { schedule; exn } -> Error (schedule, exn)

(* ------------------------------- encode ------------------------------- *)

let stats_fields prefix = function
  | Ok (s : Explore.stats) ->
      let hit_denom = s.pruned + s.branches in
      [
        (prefix ^ "executions", Json.Int s.executions);
        (prefix ^ "pruned", Json.Int s.pruned);
        (prefix ^ "crash_branches", Json.Int s.crash_branches);
        (prefix ^ "branches", Json.Int s.branches);
        ( prefix ^ "sleep_hit_rate",
          Json.Float
            (if hit_denom = 0 then 0.
             else float_of_int s.pruned /. float_of_int hit_denom) );
        (prefix ^ "crash_points", Json.Int s.crash_points);
        (prefix ^ "crash_enumerated", Json.Int s.crash_enumerated);
        (prefix ^ "crash_sampled", Json.Int s.crash_sampled);
        (prefix ^ "drain_points", Json.Int s.drain_points);
        (prefix ^ "drain_branches", Json.Int s.drain_branches);
        (prefix ^ "wall_s", Json.Float s.wall_s);
      ]
  | Error (sched, exn) ->
      [
        (prefix ^ "token", Json.String (Explore.schedule_to_string sched));
        (prefix ^ "error", Json.String (Printexc.to_string exn));
      ]

let case_json (r : case_result) =
  let c = r.xcase in
  Json.Obj
    ([
       ("name", Json.String c.Scenarios.name);
       ("object", Json.String c.Scenarios.obj);
       ("program", Json.String c.Scenarios.prog);
       ("crashes", Json.Bool c.Scenarios.crashes);
       ("line_size", Json.Int c.Scenarios.line_size);
       ( "persistency",
         Json.String
           (Dssq_pmem.Heap.Persistency.to_string c.Scenarios.persistency) );
       ("nthreads", Json.Int c.Scenarios.nthreads);
       ( "status",
         Json.String (match r.verdict with Ok _ -> "pass" | Error _ -> "fail")
       );
     ]
    @ stats_fields "" r.verdict
    @
    match r.naive with
    | None -> []
    | Some n ->
        ( "naive_status",
          Json.String (match n with Ok _ -> "pass" | Error _ -> "fail") )
        :: stats_fields "naive_" n)

(** Branch/crash-point totals of the passing cases, grouped by
    persistency mode — the at-a-glance answer to "how much of the
    relaxed state space did this run actually cover?". *)
let coverage_json results =
  let modes =
    List.sort_uniq compare
      (List.map
         (fun r ->
           Dssq_pmem.Heap.Persistency.to_string r.xcase.Scenarios.persistency)
         results)
  in
  Json.Obj
    (List.map
       (fun mode ->
         let rs =
           List.filter
             (fun r ->
               Dssq_pmem.Heap.Persistency.to_string
                 r.xcase.Scenarios.persistency
               = mode)
             results
         in
         let tot f =
           List.fold_left
             (fun acc r ->
               match r.verdict with Ok s -> acc + f s | Error _ -> acc)
             0 rs
         in
         ( mode,
           Json.Obj
             [
               ("cases", Json.Int (List.length rs));
               ( "failures",
                 Json.Int
                   (List.length
                      (List.filter
                         (fun r ->
                           match r.verdict with Error _ -> true | Ok _ -> false)
                         rs)) );
               ("executions", Json.Int (tot (fun s -> s.Explore.executions)));
               ("branches", Json.Int (tot (fun s -> s.Explore.branches)));
               ( "crash_branches",
                 Json.Int (tot (fun s -> s.Explore.crash_branches)) );
               ("crash_points", Json.Int (tot (fun s -> s.Explore.crash_points)));
               ("drain_points", Json.Int (tot (fun s -> s.Explore.drain_points)));
               ( "drain_branches",
                 Json.Int (tot (fun s -> s.Explore.drain_branches)) );
             ] ))
       modes)

let encode ~params results =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ("git_rev", Json.String (Dssq_obs.Run_report.git_rev ()));
      ("params", Json.Obj params);
      ("coverage", coverage_json results);
      ("cases", Json.List (List.map case_json results));
    ]

(* ------------------------------- decode ------------------------------- *)

(** Decoded view of one case: stats of a passing case, token of a
    failing one.  Fields a document's version predates read back as
    their defaults, recorded per field below. *)
type case_summary = {
  s_name : string;
  s_obj : string;
  s_persistency : string;  (** ["sc"] when absent (v1/v2 documents) *)
  s_status : string;
  s_executions : int;  (** 0 for failing cases *)
  s_branches : int;
  s_crash_branches : int;
  s_crash_points : int;
  s_drain_points : int;  (** 0 when absent (v1/v2 documents) *)
  s_drain_branches : int;  (** 0 when absent (v1/v2 documents) *)
  s_token : string option;  (** counterexample token of a failing case *)
}

type summary = {
  s_version : int;
  s_git_rev : string;
  s_params : (string * Json.t) list;
  s_cases : case_summary list;
}

let int_or d = function Json.Null -> d | j -> Json.to_int j
let str_or d = function Json.Null -> d | j -> Json.to_str j

let decode doc =
  (match Json.member "schema" doc with
  | Json.String s when s = schema -> ()
  | j ->
      raise
        (Json.Parse_error
           (Printf.sprintf "expected schema %S, got %s" schema
              (Json.to_string ~indent:false j))));
  let v = Json.to_int (Json.member "version" doc) in
  if v < 1 || v > version then
    raise
      (Json.Parse_error
         (Printf.sprintf "unsupported %s version %d (max %d)" schema v version));
  let case j =
    {
      s_name = Json.to_str (Json.member "name" j);
      s_obj = Json.to_str (Json.member "object" j);
      s_persistency = str_or "sc" (Json.member "persistency" j);
      s_status = Json.to_str (Json.member "status" j);
      s_executions = int_or 0 (Json.member "executions" j);
      s_branches = int_or 0 (Json.member "branches" j);
      s_crash_branches = int_or 0 (Json.member "crash_branches" j);
      s_crash_points = int_or 0 (Json.member "crash_points" j);
      s_drain_points = int_or 0 (Json.member "drain_points" j);
      s_drain_branches = int_or 0 (Json.member "drain_branches" j);
      s_token =
        (match Json.member "token" j with
        | Json.Null -> None
        | j -> Some (Json.to_str j));
    }
  in
  {
    s_version = v;
    s_git_rev = str_or "" (Json.member "git_rev" doc);
    s_params = Json.to_obj (Json.member "params" doc);
    s_cases = List.map case (Json.to_list (Json.member "cases" doc));
  }

let decode_string s = decode (Json.of_string s)
