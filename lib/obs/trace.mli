(** Low-overhead event tracing: per-thread bounded ring buffers of typed,
    timestamped events covering the whole crash/recovery life cycle —
    operation begin/end, the five memory events, crashes (with per-cell
    evict verdicts), recovery phases, and DSS resolve outcomes.

    Emission goes through {!sink}, which is a no-op closure while tracing
    is off, so instrumented call sites cost one load and one branch on
    the uninstrumented hot path.  Buffers are bounded and drop the oldest
    entry on overflow (counting drops), so a tracer can stay attached to
    an arbitrarily long run and always hold the most recent window —
    which is the part that explains a crash. *)

type mem_op = [ `Read | `Write | `Cas | `Flush | `Fence ]

type event =
  | Op_begin of { op : string; args : string }
  | Op_end of { op : string; result : string }
  | Mem of {
      op : mem_op;
      cell : int;
      cell_name : string;
      line : int;
      dirty : bool;
    }
      (** one memory event; [line] is the persist line the cell lives in
          (what a flush writes back and a crash evicts as a unit);
          [dirty] is the cell's dirtiness {e after} the event ([cell =
          -1] when the backend has no cell identity, e.g. the native
          backend; [line = -1] for fences, which have no target) *)
  | Crash of { verdicts : (int * string * bool) list }
      (** per dirty cell at the crash: (id, name, [true] if the line was
          evicted to persistence before power loss, [false] if lost) *)
  | Recovery_begin
  | Recovery_end
  | Resolve of { outcome : string }

type entry = { seq : int; ts_ns : float; tid : int; event : event }
(** [seq] is a global, gap-free emission index (the merged-timeline
    order); [ts_ns] is wall-clock; [tid] is the emitting thread
    ([-1] = system context: initialization, crash, recovery). *)

type t

val start : ?capacity:int -> unit -> t
(** Install a fresh tracer as the active sink and return it.  [capacity]
    (default 4096) bounds each per-thread ring.  Also attaches the native
    backend's counted-memory hook.  Stops any previously active tracer
    first. *)

val stop : unit -> unit
(** Detach the active tracer (its recorded entries stay readable). *)

val is_on : unit -> bool
val active : unit -> t option

val sink : (event -> unit) ref
(** The emission point.  Physically equal to a no-op closure while
    tracing is off; {!start}/{!stop} swap it. *)

val set_tid : int -> unit
(** Set the thread id attributed to subsequent events ([-1] = system);
    the sim scheduler calls this at every step. *)

val current_tid : unit -> int

(** Typed emitters.  All are no-ops (and build no event) when off. *)

val op_begin : string -> args:string -> unit
val op_end : string -> result:string -> unit
val mem : mem_op -> cell:int -> name:string -> line:int -> dirty:bool -> unit
val crash : verdicts:(int * string * bool) list -> unit
val recovery_begin : unit -> unit
val recovery_end : unit -> unit
val resolve : outcome:string -> unit

val entries : t -> entry list
(** All retained entries, merged across threads in emission ([seq])
    order. *)

val capture : ?capacity:int -> (unit -> 'a) -> 'a * entry list
(** Run the thunk under a fresh tracer (installed with {!start}) and
    return its result with the merged entries recorded during the call;
    the tracer is detached afterwards.  On raise the tracer is detached
    and the exception propagates. *)

val recorded : t -> int
(** Total events emitted (including dropped ones). *)

val dropped : t -> int
(** Events evicted from ring buffers by overflow.  Also counted in the
    ["trace.dropped_events"] registry metric, so run reports record
    truncated traces without holding the tracer handle. *)

val dropped_by_thread : t -> (int * int) list
(** [(tid, drops)] for each ring that overflowed, ascending by tid
    ([-1] = system context); empty when nothing was dropped. *)

val pp_event : Format.formatter -> event -> unit

val pp_timeline : Format.formatter -> entry list -> unit
(** Human-readable merged timeline, one line per entry. *)

val to_chrome_json : ?process:string -> entry list -> Json.t
(** Chrome trace-event JSON (the [traceEvents] array format), loadable in
    Perfetto ({:https://ui.perfetto.dev}) and chrome://tracing.
    Timestamps are the logical [seq] indices (in microseconds), so the
    rendered timeline is the deterministic interleaving, not wall
    clock. *)

val write_chrome : string -> entry list -> unit
(** {!to_chrome_json} serialized to a file.
    @raise Sys_error on I/O failure. *)
