(** Schema-versioned, archivable benchmark run reports: per-series
    throughput samples, per-operation latency histograms, and
    memory-event counter deltas, plus provenance (git revision, backend,
    parameters).  Decoders reject foreign schemas and newer versions. *)

module MI = Dssq_memory.Memory_intf

val schema_name : string

val schema_version : int
(** Currently 6 (v6 added the top-level [recovery] list of
    crash-to-reattach latency points); v1-v5 documents still decode,
    missing keys reading as 0 / the empty map / the empty list. *)

(** One instrumented measurement (one repeat at one x). *)
type sample = {
  mops : float;  (** throughput, million operations per second *)
  ops : int;  (** operations completed during the measured phase *)
  events : MI.counters;  (** memory-event delta over the measured phase *)
  latency : Histogram.t option;  (** per-operation latency, nanoseconds *)
}

(** Repeats merged at one x. *)
type point = {
  x : int;
  samples : float list;
  ops : int;
  events : MI.counters;
  latency : Histogram.t option;
}

type series = { label : string; points : point list }

(** One crash-to-reattach measurement: how long a system-level
    [Recovery.reattach] took for one registered object. *)
type recovery_point = {
  r_object : string;  (** registry name, e.g. ["dss-queue"] *)
  r_backend : string;  (** ["sim"] (modelled ns) or ["native"] *)
  r_ms : float;  (** crash-to-reattach latency, milliseconds *)
  r_replayed : int;  (** WAL records replayed during reattach *)
  r_leaked : int;  (** nodes the post-recovery audit found leaked *)
}

type t = {
  version : int;
  git_rev : string;
  backend : string;
  experiment : string;
  x_label : string;
  y_label : string;
  params : (string * string) list;
  series : series list;
  metrics : (string * int) list;
  provenance : (string * string) list;
      (** run conditions: git commit, line size, coalescing, threads *)
  recovery : recovery_point list;
      (** crash-to-reattach latency points (empty before schema v6) *)
}

val point_of_samples : x:int -> sample list -> point
(** Merge repeats: throughput samples collected, events summed, latency
    histograms merged. *)

val git_rev : unit -> string
(** Short revision of the working tree, or ["unknown"]. *)

val make :
  ?params:(string * string) list ->
  ?metrics:(string * int) list ->
  ?git_rev:string ->
  ?provenance:(string * string) list ->
  ?recovery:recovery_point list ->
  backend:string ->
  experiment:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  t
(** Defaults: [git_rev] probed from the working tree, [metrics] from
    {!Metrics.snapshot}, [provenance] and [recovery] empty. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
val of_json : Json.t -> t
(** @raise Json.Parse_error on a foreign schema or newer version. *)

val to_string : t -> string
val of_string : string -> t
val write : string -> t -> unit
val read : string -> t

val pp : Format.formatter -> t -> unit
(** Compact human summary (not the JSON). *)
