(** Schema-versioned, archivable benchmark run reports: per-series
    throughput samples, per-operation latency histograms, and
    memory-event counter deltas, plus provenance (git revision, backend,
    parameters).  Decoders reject foreign schemas and newer versions. *)

module MI = Dssq_memory.Memory_intf

val schema_name : string

val schema_version : int
(** Currently 5 (v5 added the top-level [provenance] map); v1-v4
    documents still decode, missing keys reading as 0 / the empty map. *)

(** One instrumented measurement (one repeat at one x). *)
type sample = {
  mops : float;  (** throughput, million operations per second *)
  ops : int;  (** operations completed during the measured phase *)
  events : MI.counters;  (** memory-event delta over the measured phase *)
  latency : Histogram.t option;  (** per-operation latency, nanoseconds *)
}

(** Repeats merged at one x. *)
type point = {
  x : int;
  samples : float list;
  ops : int;
  events : MI.counters;
  latency : Histogram.t option;
}

type series = { label : string; points : point list }

type t = {
  version : int;
  git_rev : string;
  backend : string;
  experiment : string;
  x_label : string;
  y_label : string;
  params : (string * string) list;
  series : series list;
  metrics : (string * int) list;
  provenance : (string * string) list;
      (** run conditions: git commit, line size, coalescing, threads *)
}

val point_of_samples : x:int -> sample list -> point
(** Merge repeats: throughput samples collected, events summed, latency
    histograms merged. *)

val git_rev : unit -> string
(** Short revision of the working tree, or ["unknown"]. *)

val make :
  ?params:(string * string) list ->
  ?metrics:(string * int) list ->
  ?git_rev:string ->
  ?provenance:(string * string) list ->
  backend:string ->
  experiment:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  t
(** Defaults: [git_rev] probed from the working tree, [metrics] from
    {!Metrics.snapshot}, [provenance] empty. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
val of_json : Json.t -> t
(** @raise Json.Parse_error on a foreign schema or newer version. *)

val to_string : t -> string
val of_string : string -> t
val write : string -> t -> unit
val read : string -> t

val pp : Format.formatter -> t -> unit
(** Compact human summary (not the JSON). *)
