(** Persistence heatmap: per-line attribution of persist traffic.

    The counters ([Dssq_memory.Memory_intf.counters], {!Dssq_pmem}'s
    stats) answer "how many flushes"; this module answers "which line
    pays them".  Both backends report every persist-relevant event with
    the persist-line id the {!Line} allocator stamped at allocation
    time; the heatmap aggregates them per line, labels lines with the
    allocation-site cell name (the first named cell placed on the line)
    and buckets labels by owning object (the name prefix before ['.'] or
    ['[']), so hot lines are rankable and attributable.

    Zero-cost when off, by the same discipline as {!Trace}: every
    emitter is guarded by {!is_on} (one load + one branch), the sim heap
    calls the emitters directly, and the native Counted backends go
    through the [heat_hook] this module installs ({!start}) — the
    dependency inversion [Dssq_memory] already uses for [trace_hook].
    Recording takes a mutex, acceptable for a measurement mode (same
    argument as the tracer). *)

type event =
  [ `Pwrite  (** a store or successful CAS mutated a word on the line *)
  | `Flush  (** effective write-back of the line *)
  | `Elide  (** flush of a clean line, skipped *)
  | `Coalesce  (** duplicate flush absorbed by a persist buffer *)
  | `Fence
  | `Fence_elided
  | `Evict  (** crash verdict: the dirty line survived to persistence *)
  | `Drop  (** crash verdict: the dirty line was lost *) ]
(** The shared attribution vocabulary ({!Profile.event} consumes the
    same type).  Fences carry no line and are ignored here. *)

type row = {
  h_line : int;
  h_label : string;  (** allocation-site name, "" if the line is unnamed *)
  h_object : string;  (** owning-object bucket derived from the label *)
  h_writes : int;
  h_flushes : int;
  h_elides : int;
  h_coalesces : int;
  h_evicts : int;
  h_drops : int;
}

type counts = {
  mutable label : string;
  mutable writes : int;
  mutable flushes : int;
  mutable elides : int;
  mutable coalesces : int;
  mutable evicts : int;
  mutable drops : int;
}

let on = ref false
let lock = Mutex.create ()
let table : (int, counts) Hashtbl.t = Hashtbl.create 64
let is_on () = !on

let slot line =
  match Hashtbl.find_opt table line with
  | Some c -> c
  | None ->
      let c =
        {
          label = "";
          writes = 0;
          flushes = 0;
          elides = 0;
          coalesces = 0;
          evicts = 0;
          drops = 0;
        }
      in
      Hashtbl.add table line c;
      c

(** Label line [line] with the allocation-site name of a cell placed on
    it.  The first non-empty name wins: with co-located cells it is the
    block's first member, which is the most recognizable. *)
let note ~line ~name =
  if !on && name <> "" && line >= 0 then begin
    Mutex.lock lock;
    let c = slot line in
    if c.label = "" then c.label <- name;
    Mutex.unlock lock
  end

let record (ev : event) ~line =
  if !on && line >= 0 then begin
    Mutex.lock lock;
    let c = slot line in
    (match ev with
    | `Pwrite -> c.writes <- c.writes + 1
    | `Flush -> c.flushes <- c.flushes + 1
    | `Elide -> c.elides <- c.elides + 1
    | `Coalesce -> c.coalesces <- c.coalesces + 1
    | `Evict -> c.evicts <- c.evicts + 1
    | `Drop -> c.drops <- c.drops + 1
    | `Fence | `Fence_elided -> ());
    Mutex.unlock lock
  end

(* Owning-object bucket: the label prefix before the first ['.'] (the
   engine's [name.suffix] convention) or ['['] (announce and pool
   arrays), the whole label when neither occurs, "?" when unnamed. *)
let bucket label =
  if label = "" then "?"
  else
    let cut =
      List.filter_map (fun ch -> String.index_opt label ch) [ '.'; '[' ]
    in
    match cut with
    | [] -> label
    | cuts -> String.sub label 0 (List.fold_left min (String.length label) cuts)

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

(** Zero the event counts but keep line labels: run this after object
    construction so the measured window starts clean without losing the
    allocation-site names recorded during setup. *)
let reset_counts () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ c ->
      c.writes <- 0;
      c.flushes <- 0;
      c.elides <- 0;
      c.coalesces <- 0;
      c.evicts <- 0;
      c.drops <- 0)
    table;
  Mutex.unlock lock

let stop () =
  on := false;
  Dssq_memory.Native.alloc_hook := None;
  Dssq_memory.Native.heat_hook := None

let start () =
  on := true;
  (* The native backend sits below this library, so it exposes hooks we
     point back here (the [trace_hook] pattern). *)
  Dssq_memory.Native.alloc_hook := Some (fun ~name ~line -> note ~line ~name);
  Dssq_memory.Native.heat_hook := Some (fun ev ~line -> record ev ~line)

let rows () =
  Mutex.lock lock;
  let rows =
    Hashtbl.fold
      (fun line c acc ->
        {
          h_line = line;
          h_label = c.label;
          h_object = bucket c.label;
          h_writes = c.writes;
          h_flushes = c.flushes;
          h_elides = c.elides;
          h_coalesces = c.coalesces;
          h_evicts = c.evicts;
          h_drops = c.drops;
        }
        :: acc)
      table []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.h_line b.h_line) rows

(** Rank rows by persist cost — effective flushes first (the paid
    write-backs), then writes — and keep the top [n]. *)
let top ~n rows =
  let ranked =
    List.sort
      (fun a b ->
        match compare b.h_flushes a.h_flushes with
        | 0 -> (
            match compare b.h_writes a.h_writes with
            | 0 -> compare a.h_line b.h_line
            | c -> c)
        | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < n) ranked

let row_to_json r : Json.t =
  Json.Obj
    [
      ("line", Json.Int r.h_line);
      ("label", Json.String r.h_label);
      ("object", Json.String r.h_object);
      ("writes", Json.Int r.h_writes);
      ("flushes", Json.Int r.h_flushes);
      ("elided", Json.Int r.h_elides);
      ("coalesced", Json.Int r.h_coalesces);
      ("evicted", Json.Int r.h_evicts);
      ("dropped", Json.Int r.h_drops);
    ]

let rows_to_json rows : Json.t = Json.List (List.map row_to_json rows)

let pp_rows fmt rows =
  Format.fprintf fmt "%6s  %-24s %8s %8s %8s %8s %6s %6s@." "line" "label"
    "writes" "flushes" "elided" "coal" "evict" "drop";
  List.iter
    (fun r ->
      Format.fprintf fmt "%6d  %-24s %8d %8d %8d %8d %6d %6d@." r.h_line
        (if r.h_label = "" then "?" else r.h_label)
        r.h_writes r.h_flushes r.h_elides r.h_coalesces r.h_evicts r.h_drops)
    rows
