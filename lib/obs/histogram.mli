(** Log-bucketed latency histograms (HdrHistogram-style): bucket [i]
    covers [gamma^i, gamma^(i+1)), bounding relative quantile error by
    [sqrt gamma] at any latency scale.  Sum/min/max are exact; quantiles
    are bucket-resolution approximations clamped into [min, max].
    Sub-1 values (the unit is nanoseconds) clamp into bucket 0. *)

type t

val default_gamma : float
(** 1.25 — ≤ 12% relative quantile error. *)

val create : ?gamma:float -> unit -> t
(** @raise Invalid_argument if [gamma <= 1]. *)

val copy : t -> t
val add : t -> float -> unit
val total : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty, like the quantiles. *)

val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1] (clamped). *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val merge : t -> t -> t
(** Pure; @raise Invalid_argument on a gamma mismatch. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** One-line summary: n, mean, min, p50/p90/p99, max. *)

val pp_bars : ?width:int -> Format.formatter -> t -> unit
(** Bucket-by-bucket ASCII bar chart; [width] is clamped to ≥ 1. *)

val to_json : t -> Json.t
(** Includes derived p50/p90/p99 fields for consumers; {!of_json}
    ignores them. *)

val of_json : Json.t -> t
(** @raise Json.Parse_error on schema mismatch. *)
