(** Prometheus text exposition (format 0.0.4) for the observability
    layer: metrics snapshots, heatmap rows and phase-profiler rows as
    labeled samples.  Names are sanitized to the legal character set;
    label values use the format's backslash escaping, with an exact
    inverse for round-trip testing. *)

type sample = {
  s_name : string;  (** sanitized on render *)
  s_labels : (string * string) list;  (** values escaped on render *)
  s_value : float;
}

val sanitize_name : string -> string
(** Map to [[a-zA-Z_:][a-zA-Z0-9_:]*]: illegal characters (dots
    included) become ['_']. *)

val escape_label : string -> string
(** Escape backslash, double quote and newline — the three escapes the
    text format defines. *)

val unescape_label : string -> string
(** Exact inverse of {!escape_label}; unknown escape sequences keep
    their backslash literally, as Prometheus parsers do. *)

val sample_to_string : sample -> string
(** One exposition line, without the trailing newline.  Integer values
    render without an exponent so files diff cleanly. *)

val render : sample list -> string
(** All samples, one line each, newline-terminated. *)

val metric_samples : (string * int) list -> sample list
(** A {!Metrics.snapshot} as [dssq_<name>] samples. *)

val heatmap_samples : Heatmap.row list -> sample list
(** [dssq_heatmap_*] samples labeled by line / label / object. *)

val phase_samples : Profile.phase_row list -> sample list
(** [dssq_profile_*] samples labeled by phase, including p50/p90/p99
    latency quantiles for non-empty phases. *)

val write : string -> sample list -> unit
(** {!render} to a file.  @raise Sys_error on I/O failure. *)
