(** Phase-attributed profiler: scope every memory event and span with
    the engine phase it occurred in.

    The detectable-object engine runs each operation through a fixed
    phase taxonomy — {!Announce} (prep: persist the announce record),
    {!Exec} (apply + install + completion), {!Resolve} (post-crash
    detection), {!Recovery_scan} (structural recovery passes) and
    {!Recovery_complete} (completing effective operations' announce
    state).  Instrumented code brackets each phase with
    {!begin_span}/{!end_span}; memory events reported while a thread is
    inside a span are charged to that thread's current phase, and
    everything outside any span lands in {!Other} — so the per-phase
    event counts always sum to the backend totals.

    Per-thread phase slots make attribution correct under the
    simulator's interleaving: each simulated thread carries its own
    current phase, and the heap charges each event to the thread the
    scheduler is stepping ([Heap.cur_tid]).  On the native backend
    events resolve their thread through {!Trace.current_tid}, which the
    profiled zoo runner pins per worker.

    Span latency is wall-clock: real per-phase cost on the native
    backend; on the simulator it includes interleaved steps of other
    threads, so treat sim latencies as relative weights, not absolutes.

    Costs nothing when off: every entry point is one load + one branch,
    {!begin_span} returns a shared dummy span (no allocation), and no
    instrumented call site ever touches backend memory — event streams
    and counters are bit-for-bit identical whether profiling is on or
    off. *)

type phase =
  | Announce
  | Exec
  | Combine
      (** flat-combining persist epoch: the combiner's batch drain plus
          result publication — nested inside {!Exec}, so exec keeps the
          apply/install cost and combine isolates the epoch's *)
  | Resolve
  | Recovery_scan
  | Recovery_complete
  | Other

let phase_name = function
  | Announce -> "announce"
  | Exec -> "exec"
  | Combine -> "combine"
  | Resolve -> "resolve"
  | Recovery_scan -> "recovery-scan"
  | Recovery_complete -> "recovery-complete"
  | Other -> "other"

let phases =
  [ Announce; Exec; Combine; Resolve; Recovery_scan; Recovery_complete; Other ]

let nphases = List.length phases

let phase_index = function
  | Announce -> 0
  | Exec -> 1
  | Combine -> 2
  | Resolve -> 3
  | Recovery_scan -> 4
  | Recovery_complete -> 5
  | Other -> 6

let other_index = phase_index Other

type span = { sp_phase : int; sp_prev : int; sp_t0 : float }

(* Returned by [begin_span] when profiling is off: physically
   distinguished, so a span opened while off is ignored by [end_span]
   even if profiling was switched on in between. *)
let dummy_span = { sp_phase = other_index; sp_prev = other_index; sp_t0 = 0. }

let on = ref false
let is_on () = !on
let lock = Mutex.create ()

(* Per-thread current phase, indexed by [tid + 1] ([-1] = system
   context), grown on demand — the ring layout {!Trace} uses. *)
let slots = ref (Array.make 8 other_index)

let slot_index tid =
  let idx = tid + 1 in
  if idx >= Array.length !slots then begin
    let grown =
      Array.make (max (idx + 1) (2 * Array.length !slots)) other_index
    in
    Array.blit !slots 0 grown 0 (Array.length !slots);
    slots := grown
  end;
  idx

(* Per-phase accounting: spans completed, their wall time, and the six
   persist-relevant event kinds. *)
let ops = Array.make nphases 0
let pwrites = Array.make nphases 0
let flushes = Array.make nphases 0
let elides = Array.make nphases 0
let coalesces = Array.make nphases 0
let fences = Array.make nphases 0
let elided_fences = Array.make nphases 0
let lat = Array.init nphases (fun _ -> Histogram.create ())

let reset () =
  Mutex.lock lock;
  Array.iteri
    (fun i _ ->
      ops.(i) <- 0;
      pwrites.(i) <- 0;
      flushes.(i) <- 0;
      elides.(i) <- 0;
      coalesces.(i) <- 0;
      fences.(i) <- 0;
      elided_fences.(i) <- 0;
      lat.(i) <- Histogram.create ())
    ops;
  Array.fill !slots 0 (Array.length !slots) other_index;
  Mutex.unlock lock

let begin_span ~tid phase =
  if not !on then dummy_span
  else begin
    Mutex.lock lock;
    let idx = slot_index tid in
    let prev = !slots.(idx) in
    let p = phase_index phase in
    !slots.(idx) <- p;
    Mutex.unlock lock;
    { sp_phase = p; sp_prev = prev; sp_t0 = Unix.gettimeofday () }
  end

let end_span ~tid sp =
  if !on && sp != dummy_span then begin
    let dt_ns = (Unix.gettimeofday () -. sp.sp_t0) *. 1e9 in
    Mutex.lock lock;
    let idx = slot_index tid in
    !slots.(idx) <- sp.sp_prev;
    ops.(sp.sp_phase) <- ops.(sp.sp_phase) + 1;
    Histogram.add lat.(sp.sp_phase) (Float.max 0. dt_ns);
    Mutex.unlock lock
  end

let current_phase ~tid =
  Mutex.lock lock;
  let p = !slots.(slot_index tid) in
  Mutex.unlock lock;
  List.nth phases p

let event ~tid (ev : Heatmap.event) =
  if !on then begin
    Mutex.lock lock;
    let p = !slots.(slot_index tid) in
    (match ev with
    | `Pwrite -> pwrites.(p) <- pwrites.(p) + 1
    | `Flush -> flushes.(p) <- flushes.(p) + 1
    | `Elide -> elides.(p) <- elides.(p) + 1
    | `Coalesce -> coalesces.(p) <- coalesces.(p) + 1
    | `Fence -> fences.(p) <- fences.(p) + 1
    | `Fence_elided -> elided_fences.(p) <- elided_fences.(p) + 1
    | `Evict | `Drop -> () (* crash verdicts are the heatmap's *));
    Mutex.unlock lock
  end

let stop () =
  on := false;
  Dssq_memory.Native.phase_hook := None

let start () =
  on := true;
  (* Same inversion as [Trace]/[Heatmap]: the native Counted backends
     report events through a hook this side points back here.  Thread
     identity comes from the tracer's tid pin, which profiled native
     runs set per worker. *)
  Dssq_memory.Native.phase_hook :=
    Some (fun ev ~line:_ -> event ~tid:(Trace.current_tid ()) ev)

(* ------------------------------ reporting ----------------------------- *)

type phase_row = {
  ph_phase : string;
  ph_ops : int;  (** spans completed in this phase *)
  ph_pwrites : int;
  ph_flushes : int;
  ph_elides : int;
  ph_coalesces : int;
  ph_fences : int;
  ph_elided_fences : int;
  ph_latency : Histogram.t;  (** span wall time, nanoseconds *)
}

let rows () =
  Mutex.lock lock;
  let rows =
    List.map
      (fun phase ->
        let i = phase_index phase in
        {
          ph_phase = phase_name phase;
          ph_ops = ops.(i);
          ph_pwrites = pwrites.(i);
          ph_flushes = flushes.(i);
          ph_elides = elides.(i);
          ph_coalesces = coalesces.(i);
          ph_fences = fences.(i);
          ph_elided_fences = elided_fences.(i);
          ph_latency = Histogram.copy lat.(i);
        })
      phases
  in
  Mutex.unlock lock;
  rows

let row_to_json r : Json.t =
  Json.Obj
    [
      ("phase", Json.String r.ph_phase);
      ("ops", Json.Int r.ph_ops);
      ("pwrites", Json.Int r.ph_pwrites);
      ("flushes", Json.Int r.ph_flushes);
      ("elided_flushes", Json.Int r.ph_elides);
      ("coalesced_flushes", Json.Int r.ph_coalesces);
      ("fences", Json.Int r.ph_fences);
      ("elided_fences", Json.Int r.ph_elided_fences);
      ("latency", Histogram.to_json r.ph_latency);
    ]

let rows_to_json rows : Json.t = Json.List (List.map row_to_json rows)

let pp_rows fmt rows =
  Format.fprintf fmt "%-18s %7s %8s %8s %8s %8s %7s %10s@." "phase" "spans"
    "pwrites" "flushes" "elided" "coal" "fences" "p50-ns";
  List.iter
    (fun r ->
      if
        r.ph_ops > 0 || r.ph_pwrites > 0 || r.ph_flushes > 0
        || r.ph_elides > 0 || r.ph_coalesces > 0 || r.ph_fences > 0
      then
        Format.fprintf fmt "%-18s %7d %8d %8d %8d %8d %7d %10.0f@."
          r.ph_phase r.ph_ops r.ph_pwrites r.ph_flushes r.ph_elides
          r.ph_coalesces r.ph_fences
          (let p = Histogram.p50 r.ph_latency in
           if Float.is_nan p then 0. else p))
    rows
