(** Event tracing with per-thread bounded ring buffers.

    Design notes (see DESIGN.md §7):
    - the active tracer is global, emission is [sink]-indirected, and the
      off state is a physically-distinguished no-op closure, so tracing
      costs one load + branch when disabled;
    - rings drop the {e oldest} entry on overflow and count drops: an
      attached tracer always holds the most recent window of each
      thread's activity, which is the part that explains a crash;
    - a single mutex serializes emission.  On the cooperative simulator
      there is no contention at all; on the native backend tracing is a
      debugging mode, not a measurement mode, so the lock is acceptable. *)

type mem_op = [ `Read | `Write | `Cas | `Flush | `Fence ]

type event =
  | Op_begin of { op : string; args : string }
  | Op_end of { op : string; result : string }
  | Mem of {
      op : mem_op;
      cell : int;
      cell_name : string;
      line : int;
      dirty : bool;
    }
  | Crash of { verdicts : (int * string * bool) list }
  | Recovery_begin
  | Recovery_end
  | Resolve of { outcome : string }

type entry = { seq : int; ts_ns : float; tid : int; event : event }

type ring = {
  buf : entry array;
  mutable start : int; (* index of the oldest retained entry *)
  mutable len : int;
  mutable ring_dropped : int;
}

type t = {
  capacity : int;
  mutable rings : ring option array; (* index = tid + 1; grown on demand *)
  mutable seq : int;
  lock : Mutex.t;
}

let dummy_entry = { seq = 0; ts_ns = 0.; tid = -1; event = Recovery_begin }

(* Drops are also published as a registry metric so run reports carry
   them even when nobody kept the tracer handle around. *)
let dropped_metric = Metrics.counter "trace.dropped_events"

let ring_push r e =
  let cap = Array.length r.buf in
  if r.len < cap then begin
    r.buf.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    r.ring_dropped <- r.ring_dropped + 1;
    Metrics.incr dropped_metric
  end

let ring_entries r =
  List.init r.len (fun i -> r.buf.((r.start + i) mod Array.length r.buf))

(* --------------------------- global tracer ---------------------------- *)

let noop : event -> unit = fun _ -> ()
let sink = ref noop
let active_tracer : t option ref = ref None
let cur_tid = ref (-1)

let is_on () = !sink != noop
let active () = !active_tracer
let set_tid tid = cur_tid := tid
let current_tid () = !cur_tid

let ring_for t tid =
  let idx = tid + 1 in
  if idx >= Array.length t.rings then begin
    let rings = Array.make (max (idx + 1) (2 * Array.length t.rings)) None in
    Array.blit t.rings 0 rings 0 (Array.length t.rings);
    t.rings <- rings
  end;
  match t.rings.(idx) with
  | Some r -> r
  | None ->
      let r =
        {
          buf = Array.make t.capacity dummy_entry;
          start = 0;
          len = 0;
          ring_dropped = 0;
        }
      in
      t.rings.(idx) <- Some r;
      r

let record t event =
  Mutex.lock t.lock;
  let seq = t.seq in
  t.seq <- seq + 1;
  let tid = !cur_tid in
  ring_push (ring_for t tid)
    { seq; ts_ns = Unix.gettimeofday () *. 1e9; tid; event };
  Mutex.unlock t.lock

let stop () =
  sink := noop;
  active_tracer := None;
  cur_tid := -1;
  Dssq_memory.Native.trace_hook := None

let start ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.start: capacity must be positive";
  stop ();
  let t = { capacity; rings = Array.make 8 None; seq = 0; lock = Mutex.create () } in
  active_tracer := Some t;
  sink := record t;
  (* The native Counted backend cannot depend on this library (it sits
     below it), so it exposes a hook that we point back here. *)
  Dssq_memory.Native.trace_hook :=
    Some
      (fun op ~line ~dirty ->
        record t (Mem { op; cell = -1; cell_name = ""; line; dirty }));
  t

(* ----------------------------- emitters ------------------------------- *)

let op_begin op ~args = if is_on () then !sink (Op_begin { op; args })
let op_end op ~result = if is_on () then !sink (Op_end { op; result })

let mem op ~cell ~name ~line ~dirty =
  if is_on () then !sink (Mem { op; cell; cell_name = name; line; dirty })

let crash ~verdicts = if is_on () then !sink (Crash { verdicts })
let recovery_begin () = if is_on () then !sink Recovery_begin
let recovery_end () = if is_on () then !sink Recovery_end
let resolve ~outcome = if is_on () then !sink (Resolve { outcome })

(* ----------------------------- accessors ------------------------------ *)

let fold_rings t f init =
  Array.fold_left
    (fun acc r -> match r with None -> acc | Some r -> f acc r)
    init t.rings

let entries t =
  fold_rings t (fun acc r -> List.rev_append (ring_entries r) acc) []
  |> List.sort (fun (a : entry) (b : entry) -> compare a.seq b.seq)

let recorded t = t.seq
let dropped t = fold_rings t (fun acc r -> acc + r.ring_dropped) 0

let dropped_by_thread t =
  let acc = ref [] in
  Array.iteri
    (fun idx r ->
      match r with
      | Some r when r.ring_dropped > 0 -> acc := (idx - 1, r.ring_dropped) :: !acc
      | _ -> ())
    t.rings;
  List.rev !acc

(** Run [f] under a fresh tracer and return its result together with the
    merged entries recorded during the call.  The tracer is detached
    afterwards (also on raise; the exception propagates). *)
let capture ?capacity f =
  let t = start ?capacity () in
  let finally () =
    match !active_tracer with Some t' when t' == t -> stop () | _ -> ()
  in
  match f () with
  | v ->
      let es = entries t in
      finally ();
      (v, es)
  | exception e ->
      finally ();
      raise e

(* ------------------------------ rendering ----------------------------- *)

let mem_op_name : mem_op -> string = function
  | `Read -> "read"
  | `Write -> "write"
  | `Cas -> "cas"
  | `Flush -> "flush"
  | `Fence -> "fence"

let cell_label cell name =
  if cell < 0 then name else Printf.sprintf "%s#%d" name cell

let verdict_summary verdicts =
  let names ok =
    List.filter_map
      (fun (id, name, evicted) ->
        if evicted = ok then Some (cell_label id name) else None)
      verdicts
  in
  let part label = function
    | [] -> None
    | cells -> Some (Printf.sprintf "%s {%s}" label (String.concat ", " cells))
  in
  match
    List.filter_map Fun.id
      [ part "evicted" (names true); part "lost" (names false) ]
  with
  | [] -> "no dirty cells"
  | parts -> String.concat "; " parts

let pp_event fmt = function
  | Op_begin { op; args } -> Format.fprintf fmt "begin %s(%s)" op args
  | Op_end { op; result } -> Format.fprintf fmt "end   %s -> %s" op result
  | Mem { op; cell; cell_name; line; dirty } ->
      Format.fprintf fmt "%-5s %s%s%s" (mem_op_name op)
        (cell_label cell cell_name)
        (if line < 0 then "" else Printf.sprintf "@L%d" line)
        (if dirty then "*" else "")
  | Crash { verdicts } ->
      Format.fprintf fmt "CRASH: %s" (verdict_summary verdicts)
  | Recovery_begin -> Format.pp_print_string fmt "recovery begin"
  | Recovery_end -> Format.pp_print_string fmt "recovery end"
  | Resolve { outcome } -> Format.fprintf fmt "resolve -> %s" outcome

let thread_label tid = if tid < 0 then "sys" else Printf.sprintf "t%d" tid

let pp_timeline fmt entries =
  List.iter
    (fun (e : entry) ->
      Format.fprintf fmt "[%5d] %-4s %a@." e.seq (thread_label e.tid) pp_event
        e.event)
    entries

(* --------------------------- Chrome export ---------------------------- *)

(* Perfetto wants non-negative thread ids; shift ours by one so the
   system context (-1) renders as tid 0 with a proper name. *)
let chrome_tid tid = tid + 1

let to_chrome_json ?(process = "dssq") entries =
  let ev ?(extra = []) ~name ~cat ~ph (e : entry) =
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String ph);
         ("pid", Json.Int 1);
         ("tid", Json.Int (chrome_tid e.tid));
         ("ts", Json.Int e.seq);
       ]
      @ extra)
  in
  let instant ?(scope = "t") ?(args = []) ~name ~cat e =
    ev ~name ~cat ~ph:"i"
      ~extra:
        (("s", Json.String scope)
         ::
         (match args with [] -> [] | args -> [ ("args", Json.Obj args) ]))
      e
  in
  let of_entry (e : entry) =
    match e.event with
    | Op_begin { op; args } ->
        ev ~name:op ~cat:"op" ~ph:"B"
          ~extra:[ ("args", Json.Obj [ ("args", Json.String args) ]) ]
          e
    | Op_end { op; result } ->
        ev ~name:op ~cat:"op" ~ph:"E"
          ~extra:[ ("args", Json.Obj [ ("result", Json.String result) ]) ]
          e
    | Mem { op; cell; cell_name; line; dirty } ->
        instant
          ~name:
            (Printf.sprintf "%s %s" (mem_op_name op) (cell_label cell cell_name))
          ~cat:"mem"
          ~args:
            [
              ("cell", Json.Int cell);
              ("line", Json.Int line);
              ("dirty", Json.Bool dirty);
            ]
          e
    | Crash { verdicts } ->
        instant ~name:"crash" ~cat:"crash" ~scope:"g"
          ~args:
            [
              ( "verdicts",
                Json.List
                  (List.map
                     (fun (id, name, evicted) ->
                       Json.Obj
                         [
                           ("cell", Json.Int id);
                           ("name", Json.String name);
                           ("evicted", Json.Bool evicted);
                         ])
                     verdicts) );
            ]
          e
    | Recovery_begin -> ev ~name:"recovery" ~cat:"recovery" ~ph:"B" e
    | Recovery_end -> ev ~name:"recovery" ~cat:"recovery" ~ph:"E" e
    | Resolve { outcome } ->
        instant ~name:"resolve" ~cat:"resolve"
          ~args:[ ("outcome", Json.String outcome) ]
          e
  in
  let tids =
    List.sort_uniq compare (List.map (fun (e : entry) -> e.tid) entries)
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String process) ]);
      ]
    :: List.map
         (fun tid ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int (chrome_tid tid));
               ("args", Json.Obj [ ("name", Json.String (thread_label tid)) ]);
             ])
         tids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.map of_entry entries));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome file entries =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (to_chrome_json entries)))
