(** A process-wide registry of named monotonic counters and gauges.

    Harness code registers a metric once (idempotent by name) and bumps
    it from any domain; [snapshot] returns a stable, sorted view that the
    run report embeds.  Values are [Atomic.t] and registration is
    mutex-protected, so native-backend workers may record concurrently.
    Cost when a metric is never touched: zero — there is no global
    "enabled" check on any hot path; instrumented harness variants are
    separate code paths (see DESIGN.md §observability). *)

type kind = Counter | Gauge
type metric = { name : string; kind : kind; v : int Atomic.t }

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let register name kind =
  Mutex.lock lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m ->
        if m.kind <> kind then begin
          Mutex.unlock lock;
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered with another kind"
               name)
        end;
        m
    | None ->
        let m = { name; kind; v = Atomic.make 0 } in
        Hashtbl.add registry name m;
        m
  in
  Mutex.unlock lock;
  m

let counter name = register name Counter
let gauge name = register name Gauge

let incr ?(by = 1) m =
  if m.kind <> Counter then invalid_arg "Metrics.incr: not a counter";
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  ignore (Atomic.fetch_and_add m.v by)

let set m x =
  if m.kind <> Gauge then invalid_arg "Metrics.set: not a gauge";
  Atomic.set m.v x

let get m = Atomic.get m.v
let name m = m.name

let snapshot () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun _ m acc -> (m.name, Atomic.get m.v) :: acc) registry [] in
  Mutex.unlock lock;
  List.sort compare all

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ m -> Atomic.set m.v 0) registry;
  Mutex.unlock lock

(* Snapshot isolation for repeated harness runs in one process: [mark]
   then [delta_since] yields each counter's increase over the window
   (counters are monotonic, so the subtraction is exact), while gauges
   pass through at their current value — a gauge is a level, not a
   flow.  Metrics registered after the mark show their full value. *)
let mark = snapshot

let delta_since marked =
  Mutex.lock lock;
  let all =
    Hashtbl.fold
      (fun _ m acc ->
        let v = Atomic.get m.v in
        let v =
          match m.kind with
          | Gauge -> v
          | Counter -> (
              match List.assoc_opt m.name marked with
              | Some base -> v - base
              | None -> v)
        in
        (m.name, v) :: acc)
      registry []
  in
  Mutex.unlock lock;
  List.sort compare all
