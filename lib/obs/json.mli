(** Minimal JSON tree, printer and parser for the run-report schema (no
    dependency outside the stdlib).  Integer-written numbers parse back
    as [Int]; floats print with enough digits to round-trip exactly;
    nan/inf encode as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation. *)

val of_string : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

(** Accessors; all raise {!Parse_error} on a type mismatch. *)

val member : string -> t -> t
(** Field of an object, [Null] if absent or not an object. *)

val path : string list -> t -> t
(** [path ["a"; "b"] j] is [member "b" (member "a" j)]: descend through
    nested objects, [Null] as soon as a step is absent.  [path [] j] is
    [j]. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
(** [Null] reads back as [nan] (the encoding of nan/inf). *)

val to_str : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list
