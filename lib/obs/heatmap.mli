(** Persistence heatmap: aggregates per-line write / flush / elide /
    coalesce / evict counts from both memory backends, labeled by
    allocation site and bucketed by owning object, so hot persist lines
    are rankable.  All emitters are one load + one branch when off (the
    {!Trace} discipline); see the implementation header for the hook
    architecture. *)

type event =
  [ `Pwrite  (** store or successful CAS on the line *)
  | `Flush  (** effective write-back *)
  | `Elide  (** clean-line flush, skipped *)
  | `Coalesce  (** duplicate flush absorbed by a persist buffer *)
  | `Fence  (** ignored here (no line); consumed by {!Profile} *)
  | `Fence_elided  (** ignored here; consumed by {!Profile} *)
  | `Evict  (** crash verdict: dirty line survived to persistence *)
  | `Drop  (** crash verdict: dirty line lost *) ]
(** Shared attribution vocabulary, also consumed by {!Profile.event}. *)

type row = {
  h_line : int;
  h_label : string;  (** allocation-site name, "" if unnamed *)
  h_object : string;  (** owning-object bucket derived from the label *)
  h_writes : int;
  h_flushes : int;
  h_elides : int;
  h_coalesces : int;
  h_evicts : int;
  h_drops : int;
}

val start : unit -> unit
(** Enable aggregation and install the native backend's allocation and
    event hooks.  Does not clear previously aggregated state — call
    {!reset} for a fresh run. *)

val stop : unit -> unit
(** Disable aggregation and detach the native hooks.  Aggregated rows
    stay readable. *)

val is_on : unit -> bool

val reset : unit -> unit
(** Drop every line (labels included). *)

val reset_counts : unit -> unit
(** Zero the event counts but keep line labels — the post-construction
    measurement-window reset. *)

val note : line:int -> name:string -> unit
(** Label [line] with an allocation-site cell name (first non-empty name
    wins).  The sim heap calls this from [alloc]; the native backend's
    [alloc_hook] routes here. *)

val record : event -> line:int -> unit
(** Count one event against [line].  No-op when off, for fences, and for
    negative lines. *)

val rows : unit -> row list
(** Aggregated rows, ascending by line id. *)

val top : n:int -> row list -> row list
(** Rank by effective flushes (then writes) descending; keep [n]. *)

val bucket : string -> string
(** Owning-object bucket of a label: the prefix before the first ['.']
    or ['[']; ["?"] for the empty label. *)

val row_to_json : row -> Json.t
val rows_to_json : row list -> Json.t
val pp_rows : Format.formatter -> row list -> unit
