(** Process-wide registry of named monotonic counters and gauges.
    Registration is idempotent by name; values are atomic, so
    native-backend workers may record concurrently.  [snapshot] feeds
    the run report. *)

type kind = Counter | Gauge
type metric

val counter : string -> metric
(** Find-or-register a monotonic counter.
    @raise Invalid_argument if the name is registered as a gauge. *)

val gauge : string -> metric
(** Find-or-register a gauge. *)

val incr : ?by:int -> metric -> unit
(** @raise Invalid_argument on a gauge or a negative [by]. *)

val set : metric -> int -> unit
(** @raise Invalid_argument on a counter. *)

val get : metric -> int
val name : metric -> string

val snapshot : unit -> (string * int) list
(** All registered metrics, sorted by name. *)

val reset : unit -> unit
(** Zero every registered metric (tests and fresh runs). *)
