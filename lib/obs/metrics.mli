(** Process-wide registry of named monotonic counters and gauges.
    Registration is idempotent by name; values are atomic, so
    native-backend workers may record concurrently.  [snapshot] feeds
    the run report. *)

type kind = Counter | Gauge
type metric

val counter : string -> metric
(** Find-or-register a monotonic counter.
    @raise Invalid_argument if the name is registered as a gauge. *)

val gauge : string -> metric
(** Find-or-register a gauge. *)

val incr : ?by:int -> metric -> unit
(** @raise Invalid_argument on a gauge or a negative [by]. *)

val set : metric -> int -> unit
(** @raise Invalid_argument on a counter. *)

val get : metric -> int
val name : metric -> string

val snapshot : unit -> (string * int) list
(** All registered metrics, sorted by name. *)

val reset : unit -> unit
(** Zero every registered metric (tests and fresh runs). *)

val mark : unit -> (string * int) list
(** Snapshot to subtract from later with {!delta_since} — isolates one
    harness run's metrics when several run in the same process. *)

val delta_since : (string * int) list -> (string * int) list
(** Counter increases since the {!mark} (gauges pass through at their
    current value), sorted by name.  Metrics registered after the mark
    report their full value. *)
