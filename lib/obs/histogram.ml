(** Log-bucketed latency histograms.

    Bucket [i] covers the half-open range [gamma^i, gamma^(i+1)), so the
    relative quantile error is bounded by [sqrt gamma] regardless of the
    latency scale — the standard trick of HdrHistogram/DDSketch, sized
    here for nanosecond latencies.  Values below 1 (sub-nanosecond) are
    clamped into bucket 0; the exact [sum]/[min]/[max] are tracked on the
    side so means and range stay exact while quantiles are approximate. *)

type t = {
  gamma : float;
  mutable counts : int array; (* counts.(i): values in [gamma^i, gamma^(i+1)) *)
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let default_gamma = 1.25

let create ?(gamma = default_gamma) () =
  if gamma <= 1. then invalid_arg "Histogram.create: gamma must be > 1";
  {
    gamma;
    counts = [||];
    total = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let copy t = { t with counts = Array.copy t.counts }

let bucket_of t v =
  if v < t.gamma then 0 else int_of_float (Float.log v /. Float.log t.gamma)

let ensure t i =
  if i >= Array.length t.counts then begin
    let counts = Array.make (max (i + 1) (2 * Array.length t.counts + 8)) 0 in
    Array.blit t.counts 0 counts 0 (Array.length t.counts);
    t.counts <- counts
  end

let add t v =
  let i = bucket_of t (Float.max v 1.) in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let total t = t.total
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax
let mean t = if t.total = 0 then Float.nan else t.sum /. float_of_int t.total

(** Representative value of bucket [i]: the geometric midpoint of its
    range, clamped into the observed [min, max]. *)
let representative t i =
  let v = Float.pow t.gamma (float_of_int i +. 0.5) in
  Float.min t.vmax (Float.max t.vmin v)

let quantile t q =
  if t.total = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.round (q *. float_of_int (t.total - 1))) in
    let rec walk i seen =
      if i >= Array.length t.counts then t.vmax
      else begin
        let seen = seen + t.counts.(i) in
        if seen > rank then representative t i else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let merge a b =
  if a.gamma <> b.gamma then
    invalid_arg "Histogram.merge: gamma mismatch";
  let n = max (Array.length a.counts) (Array.length b.counts) in
  let counts = Array.make n 0 in
  let blend (h : t) =
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) h.counts
  in
  blend a;
  blend b;
  {
    gamma = a.gamma;
    counts;
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax;
  }

(* Trailing-zero-free view of the counts, used by equality and JSON so
   that growth-policy artifacts never distinguish equal histograms. *)
let sparse_counts t =
  let acc = ref [] in
  Array.iteri (fun i c -> if c > 0 then acc := (i, c) :: !acc) t.counts;
  List.rev !acc

let equal a b =
  a.gamma = b.gamma && a.total = b.total
  && sparse_counts a = sparse_counts b
  && a.sum = b.sum
  && (a.total = 0 || (a.vmin = b.vmin && a.vmax = b.vmax))

(* ------------------------------ rendering ----------------------------- *)

let pp fmt t =
  if t.total = 0 then Format.pp_print_string fmt "(empty)"
  else
    Format.fprintf fmt
      "n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f" t.total
      (mean t) t.vmin (p50 t) (p90 t) (p99 t) t.vmax

(** Bucket-by-bucket bar chart (one row per populated bucket).  [width]
    is clamped to at least 1 so a degenerate terminal width still renders
    one mark per populated bucket. *)
let pp_bars ?(width = 40) fmt t =
  let width = max 1 width in
  let buckets = sparse_counts t in
  let peak = List.fold_left (fun m (_, c) -> max m c) 1 buckets in
  List.iter
    (fun (i, c) ->
      let bar = max 1 (c * width / peak) in
      Format.fprintf fmt "%10.0f .. %10.0f |%-*s %d@."
        (Float.pow t.gamma (float_of_int i))
        (Float.pow t.gamma (float_of_int (i + 1)))
        width (String.make bar '#') c)
    buckets

(* -------------------------------- JSON -------------------------------- *)

let to_json t : Json.t =
  Json.Obj
    [
      ("gamma", Json.Float t.gamma);
      ("total", Json.Int t.total);
      ("sum", Json.Float t.sum);
      ("min", Json.Float (if t.total = 0 then 0. else t.vmin));
      ("max", Json.Float (if t.total = 0 then 0. else t.vmax));
      ( "counts",
        Json.List
          (List.map
             (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
             (sparse_counts t)) );
      (* Derived, for human/tool consumption; ignored by [of_json]. *)
      ("p50", Json.Float (p50 t));
      ("p90", Json.Float (p90 t));
      ("p99", Json.Float (p99 t));
    ]

let of_json (j : Json.t) =
  let t = create ~gamma:(Json.to_float (Json.member "gamma" j)) () in
  List.iter
    (fun pair ->
      match Json.to_list pair with
      | [ i; c ] ->
          let i = Json.to_int i and c = Json.to_int c in
          ensure t i;
          t.counts.(i) <- c
      | _ -> raise (Json.Parse_error "histogram counts: expected [i, c]"))
    (Json.to_list (Json.member "counts" j));
  t.total <- Json.to_int (Json.member "total" j);
  t.sum <- Json.to_float (Json.member "sum" j);
  if t.total > 0 then begin
    t.vmin <- Json.to_float (Json.member "min" j);
    t.vmax <- Json.to_float (Json.member "max" j)
  end;
  t
