(** Prometheus text exposition format (version 0.0.4) for the
    observability layer: metrics registry snapshots, persistence-heatmap
    rows and phase-profiler rows rendered as labeled samples, e.g.

    {v
    dssq_heatmap_flushes{line="3",label="q.state",object="q"} 128
    dssq_profile_flushes{phase="announce"} 1600
    v}

    Only the exposition subset the repo needs: metric names sanitized to
    the legal character set, label values escaped per the format's
    backslash rules (with an exact inverse for round-trip testing), and
    integer-valued samples printed without an exponent so the files diff
    cleanly across runs. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Anything else becomes '_'
   (the conventional flattening for dotted registry names). *)
let sanitize_name name =
  let ok_head c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_head c || (c >= '0' && c <= '9') in
  if name = "" then "_"
  else
    String.mapi
      (fun i c -> if (if i = 0 then ok_head c else ok c) then c else '_')
      name

(* Label values: escape backslash, double quote and newline — exactly
   the three escapes the text format defines. *)
let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Exact inverse of {!escape_label}.  Unknown escapes keep the
   backslash literally, as Prometheus parsers do; a trailing lone
   backslash is kept too. *)
let unescape_label s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | '"' -> Buffer.add_char buf '"'
       | 'n' -> Buffer.add_char buf '\n'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

(* Integers render exactly ("128", not "1.28e+02"); everything else
   falls back to shortest-roundtrip-ish %g at high precision. *)
let value_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let sample_to_string s =
  let labels =
    match s.s_labels with
    | [] -> ""
    | ls ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label v))
               ls)
        ^ "}"
  in
  Printf.sprintf "%s%s %s" (sanitize_name s.s_name) labels
    (value_to_string s.s_value)

let render samples =
  String.concat "" (List.map (fun s -> sample_to_string s ^ "\n") samples)

(* ------------------------- source adapters ---------------------------- *)

let metric_samples metrics =
  List.map
    (fun (name, v) ->
      { s_name = "dssq_" ^ name; s_labels = []; s_value = float_of_int v })
    metrics

let heatmap_samples rows =
  List.concat_map
    (fun (r : Heatmap.row) ->
      let labels =
        [
          ("line", string_of_int r.Heatmap.h_line);
          ("label", r.Heatmap.h_label);
          ("object", r.Heatmap.h_object);
        ]
      in
      List.map
        (fun (field, v) ->
          {
            s_name = "dssq_heatmap_" ^ field;
            s_labels = labels;
            s_value = float_of_int v;
          })
        [
          ("writes", r.Heatmap.h_writes);
          ("flushes", r.Heatmap.h_flushes);
          ("elided_flushes", r.Heatmap.h_elides);
          ("coalesced_flushes", r.Heatmap.h_coalesces);
          ("evicted_lines", r.Heatmap.h_evicts);
          ("dropped_lines", r.Heatmap.h_drops);
        ])
    rows

let phase_samples rows =
  List.concat_map
    (fun (r : Profile.phase_row) ->
      let labels = [ ("phase", r.Profile.ph_phase) ] in
      let counts =
        List.map
          (fun (field, v) ->
            {
              s_name = "dssq_profile_" ^ field;
              s_labels = labels;
              s_value = float_of_int v;
            })
          [
            ("spans", r.Profile.ph_ops);
            ("pwrites", r.Profile.ph_pwrites);
            ("flushes", r.Profile.ph_flushes);
            ("elided_flushes", r.Profile.ph_elides);
            ("coalesced_flushes", r.Profile.ph_coalesces);
            ("fences", r.Profile.ph_fences);
            ("elided_fences", r.Profile.ph_elided_fences);
          ]
      in
      let h = r.Profile.ph_latency in
      let lat =
        if Histogram.total h = 0 then []
        else
          List.map
            (fun (q, v) ->
              {
                s_name = "dssq_profile_latency_ns";
                s_labels = labels @ [ ("quantile", q) ];
                s_value = v;
              })
            [
              ("0.5", Histogram.p50 h);
              ("0.9", Histogram.p90 h);
              ("0.99", Histogram.p99 h);
            ]
      in
      counts @ lat)
    rows

let write path samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render samples))
