(** Phase-attributed profiler: per-phase latency histograms and
    persist-event tables scoped by engine phase (announce / exec /
    resolve / recovery-scan / recovery-complete, plus [other] for
    everything unscoped).  Per-phase event counts always sum to the
    backend totals.  Zero-cost when off; instrumented sites never touch
    backend memory, so event streams are identical either way.  See the
    implementation header for the attribution model. *)

type phase =
  | Announce
  | Exec
  | Combine
      (** flat-combining persist epoch (batch drain + result
          publication), nested inside {!Exec} spans *)
  | Resolve
  | Recovery_scan
  | Recovery_complete
  | Other

val phase_name : phase -> string
(** ["announce"], ["exec"], ["combine"], ["resolve"], ["recovery-scan"],
    ["recovery-complete"], ["other"]. *)

val phases : phase list
(** All phases, in reporting order ({!Other} last). *)

type span
(** An open phase span: created by {!begin_span}, closed by
    {!end_span}.  A shared dummy (no allocation) while off. *)

val start : unit -> unit
(** Enable profiling and install the native backend's event hook.  Does
    not clear prior state — call {!reset} for a fresh run. *)

val stop : unit -> unit
(** Disable profiling and detach the hook; accumulated rows stay
    readable. *)

val is_on : unit -> bool

val reset : unit -> unit
(** Zero all per-phase accounting and reset every thread to {!Other}. *)

val begin_span : tid:int -> phase -> span
(** Enter [phase] on thread [tid] ([-1] = system context).  Returns the
    span to close; nests — {!end_span} restores the enclosing phase. *)

val end_span : tid:int -> span -> unit
(** Close the span: restore the previous phase and record the span's
    wall time in the phase's latency histogram. *)

val current_phase : tid:int -> phase

val event : tid:int -> Heatmap.event -> unit
(** Charge one persist event to [tid]'s current phase.  The sim heap
    calls this directly with its stepping tid; the native backends route
    through the installed hook.  Crash verdicts ([`Evict]/[`Drop]) are
    ignored (they belong to the heatmap). *)

type phase_row = {
  ph_phase : string;
  ph_ops : int;  (** spans completed in this phase *)
  ph_pwrites : int;
  ph_flushes : int;
  ph_elides : int;
  ph_coalesces : int;
  ph_fences : int;
  ph_elided_fences : int;
  ph_latency : Histogram.t;  (** span wall time, nanoseconds *)
}

val rows : unit -> phase_row list
(** One row per phase, in {!phases} order (zero rows included, so sums
    over the list equal backend totals). *)

val row_to_json : phase_row -> Json.t
val rows_to_json : phase_row list -> Json.t

val pp_rows : Format.formatter -> phase_row list -> unit
(** Human table; all-zero phases are omitted. *)
