(** Schema-versioned, archivable benchmark run reports.

    A report captures everything the paper's evaluation (Section 4)
    reports for a figure — per-series throughput samples, per-operation
    latency histograms, and memory-event (flush/fence/CAS) counter
    deltas — plus the provenance needed to compare runs across commits:
    git revision, backend, and experiment parameters.  The JSON encoding
    carries an explicit [schema]/[version] pair; decoders reject foreign
    schemas and newer versions instead of misreading them. *)

module MI = Dssq_memory.Memory_intf

let schema_name = "dssq.run-report"

(* v1: initial schema.
   v2: event objects gained an ["elided_flushes"] key (clean-line flushes
       skipped under cache-line-granular persistence).  v1 documents
       still decode — a missing key reads as 0.
   v3: event objects gained ["coalesced_flushes"] (duplicate flushes
       absorbed by the per-thread persist buffer) and ["elided_fences"]
       (fences folded into a buffered drain).  v1 and v2 documents still
       decode the same way: missing event keys read as 0.
   v4: event objects gained ["pwrites"] (persistent-word mutations:
       stores plus successful CAS), the numerator of the
       [persistent_words_per_op] space metric.  v1-v3 documents still
       decode: the missing key reads as 0.
   v5: top level gained ["provenance"], a string map of run conditions
       (git commit, line size, coalescing flag, thread count, ...) so
       archived reports say how they were produced.  v1-v4 documents
       still decode: the missing key reads as the empty map.
   v6: top level gained ["recovery"], a list of crash-to-reattach
       latency points (object, backend, milliseconds, WAL records
       replayed, nodes leaked) produced by the recovery-latency
       experiment.  v1-v5 documents still decode: the missing key reads
       as the empty list. *)
let schema_version = 6

(** One instrumented measurement (one repeat at one x). *)
type sample = {
  mops : float;  (** throughput, million operations per second *)
  ops : int;  (** operations completed during the measured phase *)
  events : MI.counters;  (** memory-event delta over the measured phase *)
  latency : Histogram.t option;  (** per-operation latency, nanoseconds *)
}

(** Repeats merged at one x: throughput samples side by side with the
    summed event deltas and the merged latency histogram. *)
type point = {
  x : int;
  samples : float list;
  ops : int;
  events : MI.counters;
  latency : Histogram.t option;
}

type series = { label : string; points : point list }

(** One crash-to-reattach measurement: how long a system-level
    [Recovery.reattach] took for one registered object, with the log
    replay volume and the leak audit's verdict. *)
type recovery_point = {
  r_object : string;  (** registry name, e.g. ["dss-queue"] *)
  r_backend : string;  (** ["sim"] (modelled ns) or ["native"] *)
  r_ms : float;  (** crash-to-reattach latency, milliseconds *)
  r_replayed : int;  (** WAL records replayed during reattach *)
  r_leaked : int;  (** nodes the post-recovery audit found leaked *)
}

type t = {
  version : int;
  git_rev : string;
  backend : string;
  experiment : string;
  x_label : string;
  y_label : string;
  params : (string * string) list;
  series : series list;
  metrics : (string * int) list;
  provenance : (string * string) list;
  recovery : recovery_point list;
}

let point_of_samples ~x (samples : sample list) : point =
  let latency =
    match List.filter_map (fun (s : sample) -> s.latency) samples with
    | [] -> None
    | h :: rest -> Some (List.fold_left Histogram.merge (Histogram.copy h) rest)
  in
  {
    x;
    samples = List.map (fun (s : sample) -> s.mops) samples;
    ops = List.fold_left (fun acc (s : sample) -> acc + s.ops) 0 samples;
    events =
      List.fold_left
        (fun acc (s : sample) -> MI.Counters.add acc s.events)
        MI.Counters.zero samples;
    latency;
  }

let git_rev () =
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let make ?(params = []) ?metrics ?git_rev:rev ?(provenance = [])
    ?(recovery = []) ~backend ~experiment ~x_label ~y_label series =
  {
    version = schema_version;
    git_rev = (match rev with Some r -> r | None -> git_rev ());
    backend;
    experiment;
    x_label;
    y_label;
    params;
    series;
    metrics = (match metrics with Some m -> m | None -> Metrics.snapshot ());
    provenance;
    recovery;
  }

(* ------------------------------ equality ------------------------------ *)

let equal_point a b =
  a.x = b.x && a.samples = b.samples && a.ops = b.ops && a.events = b.events
  && Option.equal Histogram.equal a.latency b.latency

let equal_series a b =
  a.label = b.label
  && List.length a.points = List.length b.points
  && List.for_all2 equal_point a.points b.points

let equal a b =
  a.version = b.version && a.git_rev = b.git_rev && a.backend = b.backend
  && a.experiment = b.experiment && a.x_label = b.x_label
  && a.y_label = b.y_label && a.params = b.params && a.metrics = b.metrics
  && a.provenance = b.provenance && a.recovery = b.recovery
  && List.length a.series = List.length b.series
  && List.for_all2 equal_series a.series b.series

(* -------------------------------- JSON -------------------------------- *)

let events_to_json (c : MI.counters) : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (MI.Counters.to_assoc c))

let events_of_json j =
  MI.Counters.of_assoc
    (List.map (fun (k, v) -> (k, Json.to_int v)) (Json.to_obj j))

let point_to_json p : Json.t =
  Json.Obj
    ([
       ("x", Json.Int p.x);
       ("samples", Json.List (List.map (fun s -> Json.Float s) p.samples));
       ("ops", Json.Int p.ops);
       ("events", events_to_json p.events);
     ]
    @ match p.latency with
      | None -> []
      | Some h -> [ ("latency", Histogram.to_json h) ])

let point_of_json j =
  {
    x = Json.to_int (Json.member "x" j);
    samples = List.map Json.to_float (Json.to_list (Json.member "samples" j));
    ops = Json.to_int (Json.member "ops" j);
    events = events_of_json (Json.member "events" j);
    latency =
      (match Json.member "latency" j with
      | Json.Null -> None
      | h -> Some (Histogram.of_json h));
  }

let series_to_json s : Json.t =
  Json.Obj
    [
      ("label", Json.String s.label);
      ("points", Json.List (List.map point_to_json s.points));
    ]

let series_of_json j =
  {
    label = Json.to_str (Json.member "label" j);
    points = List.map point_of_json (Json.to_list (Json.member "points" j));
  }

let recovery_point_to_json r : Json.t =
  Json.Obj
    [
      ("object", Json.String r.r_object);
      ("backend", Json.String r.r_backend);
      ("ms", Json.Float r.r_ms);
      ("replayed", Json.Int r.r_replayed);
      ("leaked", Json.Int r.r_leaked);
    ]

let recovery_point_of_json j =
  {
    r_object = Json.to_str (Json.member "object" j);
    r_backend = Json.to_str (Json.member "backend" j);
    r_ms = Json.to_float (Json.member "ms" j);
    r_replayed = Json.to_int (Json.member "replayed" j);
    r_leaked = Json.to_int (Json.member "leaked" j);
  }

let to_json t : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema_name);
      ("version", Json.Int t.version);
      ("git_rev", Json.String t.git_rev);
      ("backend", Json.String t.backend);
      ("experiment", Json.String t.experiment);
      ("x_label", Json.String t.x_label);
      ("y_label", Json.String t.y_label);
      ( "params",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.params) );
      ("series", Json.List (List.map series_to_json t.series));
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.metrics) );
      ( "provenance",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.provenance) );
      ("recovery", Json.List (List.map recovery_point_to_json t.recovery));
    ]

let of_json j =
  let schema = Json.to_str (Json.member "schema" j) in
  if schema <> schema_name then
    raise
      (Json.Parse_error
         (Printf.sprintf "not a %s document (schema = %S)" schema_name schema));
  let version = Json.to_int (Json.member "version" j) in
  if version > schema_version then
    raise
      (Json.Parse_error
         (Printf.sprintf
            "run report version %d is newer than this reader (max %d)" version
            schema_version));
  {
    version;
    git_rev = Json.to_str (Json.member "git_rev" j);
    backend = Json.to_str (Json.member "backend" j);
    experiment = Json.to_str (Json.member "experiment" j);
    x_label = Json.to_str (Json.member "x_label" j);
    y_label = Json.to_str (Json.member "y_label" j);
    params =
      List.map
        (fun (k, v) -> (k, Json.to_str v))
        (Json.to_obj (Json.member "params" j));
    series = List.map series_of_json (Json.to_list (Json.member "series" j));
    metrics =
      List.map
        (fun (k, v) -> (k, Json.to_int v))
        (Json.to_obj (Json.member "metrics" j));
    provenance =
      (* absent before v5: the missing key reads as the empty map *)
      (match Json.member "provenance" j with
      | Json.Null -> []
      | p -> List.map (fun (k, v) -> (k, Json.to_str v)) (Json.to_obj p));
    recovery =
      (* absent before v6: the missing key reads as the empty list *)
      (match Json.member "recovery" j with
      | Json.Null -> []
      | r -> List.map recovery_point_of_json (Json.to_list r));
  }

let to_string t = Json.to_string (to_json t)
let of_string s = of_json (Json.of_string s)

let reports_written = Metrics.counter "obs.reports_written"

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t));
  Metrics.incr reports_written

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------ rendering ----------------------------- *)

let pp fmt t =
  Format.fprintf fmt "%s@%s on %s (%s vs %s), schema v%d@." t.experiment
    t.git_rev t.backend t.y_label t.x_label t.version;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %s:@." s.label;
      List.iter
        (fun p ->
          Format.fprintf fmt "    x=%-6d mean=%.3f  %a" p.x
            (match p.samples with
            | [] -> Float.nan
            | l ->
                List.fold_left ( +. ) 0. l /. float_of_int (List.length l))
            MI.Counters.pp p.events;
          (match p.latency with
          | Some h when Histogram.total h > 0 ->
              Format.fprintf fmt "  lat[%a]" Histogram.pp h
          | _ -> ());
          Format.fprintf fmt "@.")
        s.points)
    t.series;
  List.iter
    (fun r ->
      Format.fprintf fmt "  recovery %s/%s: %.3f ms (%d replayed, %d leaked)@."
        r.r_object r.r_backend r.r_ms r.r_replayed r.r_leaked)
    t.recovery
