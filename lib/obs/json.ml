(** Minimal JSON tree, printer and parser — enough for the run-report
    schema, with no dependency outside the stdlib (the container has no
    yojson).  Numbers are kept as [Int] when they are written without a
    fraction or exponent, so integer counters round-trip exactly; floats
    are printed with 17 significant digits, which round-trips every
    finite [float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------ printing ----------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level (v : t) =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let seq left right items emit =
    if items = [] then (
      Buffer.add_char buf left;
      Buffer.add_char buf right)
    else begin
      Buffer.add_char buf left;
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          emit item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf right
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.is_integer (f /. 0.) then
        (* JSON has no nan/inf; null is the conventional encoding. *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_literal f)
  | String s -> escape buf s
  | List items ->
      seq '[' ']' items (fun item -> write buf ~indent ~level:(level + 1) item)
  | Obj fields ->
      seq '{' '}' fields (fun (k, item) ->
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write buf ~indent ~level:(level + 1) item)

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------ parsing ------------------------------ *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %C at offset %d, found %C" ch c.pos x
  | None -> parse_error "expected %C at offset %d, found end of input" ch c.pos

let literal c word (v : t) =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    v
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then
              parse_error "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> parse_error "bad \\u escape %S" hex
            in
            (* Only the codepoints we ever emit (< 0x80); others are kept
               as a replacement to stay total. *)
            Buffer.add_char buf
              (if code < 0x80 then Char.chr code else '?');
            go ()
        | _ -> parse_error "bad escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let lit = String.sub c.s start (c.pos - start) in
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') lit
  in
  if is_float then
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> parse_error "bad number %S" lit
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> parse_error "bad number %S" lit)

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected %C at offset %d" ch c.pos

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    parse_error "trailing garbage at offset %d" c.pos;
  v

(* ----------------------------- accessors ----------------------------- *)

let member key = function
  | Obj fields -> Option.value ~default:Null (List.assoc_opt key fields)
  | _ -> Null

let path keys j = List.fold_left (fun j key -> member key j) j keys

let to_bool = function
  | Bool b -> b
  | v -> parse_error "expected bool, got %s" (to_string ~indent:false v)

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | v -> parse_error "expected int, got %s" (to_string ~indent:false v)

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | Null -> Float.nan (* nan/inf are encoded as null *)
  | v -> parse_error "expected number, got %s" (to_string ~indent:false v)

let to_str = function
  | String s -> s
  | v -> parse_error "expected string, got %s" (to_string ~indent:false v)

let to_list = function
  | List l -> l
  | v -> parse_error "expected array, got %s" (to_string ~indent:false v)

let to_obj = function
  | Obj fields -> fields
  | v -> parse_error "expected object, got %s" (to_string ~indent:false v)
