(** A detectable recoverable read/write register — [D<register>] of
    Section 2.2, in two implementations sharing one interface:

    - {!Make}, the post-refactor register: an instantiation of the
      generic {!Detectable} engine over the register specification
      ([Dssq_spec.Specs.Register]).  The announce records, helping,
      provenance-carrying state word and [resolve] all come from the
      shared functor; this file only maps the generic vocabulary onto
      the register's.
    - {!Packed}, the pre-refactor original: everything about an
      operation packed into single failure-atomic 64-bit words (the
      real-hardware discipline the paper sketches for base objects) —
      value (40 bits), writer id and an 8-bit wrapping sequence number
      in the register word; value, sequence number and PREP/COMPL/READ
      tags in the per-thread X word.

    The two are observationally equivalent on random operation/crash
    schedules (QCheck property in [test/test_detectable.ml]); {!Packed}
    is kept as that test's oracle and as the bit-packing exemplar. *)

module type S = sig
  type t

  type resolved =
    | Nothing
    | Write_pending of int
    | Write_done of int
    | Read_pending
    | Read_done of int

  val pp_resolved : Format.formatter -> resolved -> unit
  val create : ?init:int -> nthreads:int -> unit -> t
  val read : t -> tid:int -> int
  val write : t -> tid:int -> int -> unit
  val prep_write : t -> tid:int -> int -> unit
  val exec_write : t -> tid:int -> unit
  val prep_read : t -> tid:int -> unit
  val exec_read : t -> tid:int -> int
  val resolve : t -> tid:int -> resolved
  val recover : t -> unit
  val stats : t -> Detectable_intf.stats
end

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module E = Detectable.Make_any (M)
  module R = Dssq_spec.Specs.Register

  (* Same value range as {!Packed} (what fits beside provenance in one
     packed word), enforced here too so the two implementations reject
     exactly the same inputs. *)
  let value_bits = 40
  let value_mask = (1 lsl value_bits) - 1

  type t = (int, R.op, R.response) E.t

  type resolved =
    | Nothing
    | Write_pending of int
    | Write_done of int
    | Read_pending
    | Read_done of int

  let pp_resolved fmt = function
    | Nothing -> Format.pp_print_string fmt "(_|_, _|_)"
    | Write_pending v -> Format.fprintf fmt "(write %d, _|_)" v
    | Write_done v -> Format.fprintf fmt "(write %d, OK)" v
    | Read_pending -> Format.pp_print_string fmt "(read, _|_)"
    | Read_done v -> Format.fprintf fmt "(read, %d)" v

  let create ?(init = 0) ~nthreads () =
    if init < 0 || init > value_mask then invalid_arg "Dss_register.create";
    E.create ~name:"register"
      ~placement:Dssq_memory.Memory_intf.Line.Isolated ~init ~nthreads
      (R.spec ())

  (* ------------------------- non-detectable ------------------------- *)

  let read t ~tid =
    match E.base t ~tid R.Read with R.Value v -> v | R.Ok -> assert false

  let write t ~tid v =
    if v < 0 || v > value_mask then invalid_arg "Dss_register.write";
    match E.base t ~tid (R.Write v) with R.Ok -> () | R.Value _ -> assert false

  (* --------------------------- detectable --------------------------- *)

  let prep_write t ~tid v =
    if v < 0 || v > value_mask then invalid_arg "Dss_register.prep_write";
    E.prep t ~tid (R.Write v)

  let exec_write t ~tid = ignore (E.exec t ~tid)
  let prep_read t ~tid = E.prep t ~tid R.Read

  let exec_read t ~tid =
    match E.exec t ~tid with R.Value v -> v | R.Ok -> assert false

  (* ---------------------------- detection --------------------------- *)

  let resolve t ~tid =
    match E.resolve t ~tid with
    | Detectable_intf.Nothing -> Nothing
    | Pending (R.Write v) -> Write_pending v
    | Done (R.Write v, _) -> Write_done v
    | Pending R.Read -> Read_pending
    | Done (R.Read, R.Value v) -> Read_done v
    | Done (R.Read, R.Ok) -> assert false

  let recover = E.recover
  let stats = E.stats
end

module Packed (M : Dssq_memory.Memory_intf.S) = struct
  (* Register word: value (bits 0-39) | writer+1 (12 bits, 40-51) |
     seq (8 bits, 52-59).  writer+1 so that 0 encodes "initial value, no
     writer"; everything stays below bit 62 (OCaml ints are 63-bit). *)
  let value_bits = 40
  let value_mask = (1 lsl value_bits) - 1
  let writer_shift = value_bits
  let writer_mask = 0xFFF
  let seq_shift = value_bits + 12
  let seq_mask = 0xFF

  let pack ~value ~writer ~seq =
    value
    lor (((writer + 1) land writer_mask) lsl writer_shift)
    lor ((seq land seq_mask) lsl seq_shift)

  let value_of w = w land value_mask
  let writer_of w = ((w lsr writer_shift) land writer_mask) - 1
  let seq_of w = (w lsr seq_shift) land seq_mask

  (* X word: value (bits 0-39) | seq (8 bits, 48-55) | tags (56-58). *)
  let x_seq_shift = 48
  let x_prep = 1 lsl 58
  let x_compl = 1 lsl 57
  let x_read = 1 lsl 56

  let x_pack ~value ~seq ~tags =
    value lor ((seq land seq_mask) lsl x_seq_shift) lor tags

  let x_value w = w land value_mask
  let x_seq w = (w lsr x_seq_shift) land seq_mask
  let x_has w tag = w land tag <> 0

  type t = {
    reg : int M.cell;
    x : int M.cell array;
    seqs : int array; (* volatile per-thread operation counters *)
    nthreads : int;
  }

  type resolved =
    | Nothing
    | Write_pending of int
    | Write_done of int
    | Read_pending
    | Read_done of int

  let pp_resolved fmt = function
    | Nothing -> Format.pp_print_string fmt "(_|_, _|_)"
    | Write_pending v -> Format.fprintf fmt "(write %d, _|_)" v
    | Write_done v -> Format.fprintf fmt "(write %d, OK)" v
    | Read_pending -> Format.pp_print_string fmt "(read, _|_)"
    | Read_done v -> Format.fprintf fmt "(read, %d)" v

  let create ?(init = 0) ~nthreads () =
    if init < 0 || init > value_mask then invalid_arg "Dss_register.create";
    let reg =
      M.alloc ~name:"register" ~placement:Dssq_memory.Memory_intf.Line.Isolated
        (pack ~value:init ~writer:(-1) ~seq:0)
    in
    M.flush reg;
    M.drain ();
    {
      reg;
      x =
        Array.init nthreads (fun i ->
            M.alloc
              ~name:(Printf.sprintf "Xr[%d]" i)
              ~placement:Dssq_memory.Memory_intf.Line.Isolated 0);
      seqs = Array.make nthreads 0;
      nthreads;
    }

  (* Mark the write currently stored in [word] complete in its writer's
     X — persistently — so that overwriting it cannot erase the evidence
     of its success.  CAS keeps helpers of different generations from
     clobbering each other. *)
  let help_complete t word =
    let w = writer_of word in
    if w >= 0 && w < t.nthreads then begin
      let x = M.read t.x.(w) in
      if
        x_has x x_prep
        && (not (x_has x x_compl))
        && (not (x_has x x_read))
        && x_seq x = seq_of word
        && x_value x = value_of word
      then begin
        if M.cas t.x.(w) ~expected:x ~desired:(x lor x_compl) then
          M.flush t.x.(w)
      end
    end

  (* ------------------------- non-detectable ------------------------- *)

  (* Persist what we are about to expose.  Without the flush, a reader
     can return a value installed by a not-yet-persisted CAS; a crash
     then drops the register line, the writer resolves as pending and
     re-executes — and no linearization can place the completed read
     (model-checker counterexample: explore
     --case register/write-read/crash/ls1).  Flushing the observed line
     before returning is durable linearizability's flush-on-read. *)
  let read t ~tid:_ =
    let w = M.read t.reg in
    M.flush t.reg;
    M.drain () (* the flush-on-read must complete before we return *);
    value_of w

  (* Even a non-detectable write must help the previous writer before
     destroying its evidence. *)
  let rec write t ~tid v =
    if v < 0 || v > value_mask then invalid_arg "Dss_register.write";
    let cur = M.read t.reg in
    help_complete t cur;
    (* Non-detectable writes carry no provenance. *)
    if M.cas t.reg ~expected:cur ~desired:(pack ~value:v ~writer:(-1) ~seq:0)
    then begin
      M.flush t.reg;
      M.drain ()
    end
    else write t ~tid v

  (* --------------------------- detectable --------------------------- *)

  let prep_write t ~tid v =
    if v < 0 || v > value_mask then invalid_arg "Dss_register.prep_write";
    t.seqs.(tid) <- (t.seqs.(tid) + 1) land seq_mask;
    M.write t.x.(tid) (x_pack ~value:v ~seq:t.seqs.(tid) ~tags:x_prep);
    M.flush t.x.(tid);
    M.drain () (* persistence point: prep durable on return *)

  let exec_write t ~tid =
    let x = M.read t.x.(tid) in
    let v = x_value x and seq = x_seq x in
    let desired = pack ~value:v ~writer:tid ~seq in
    let rec loop () =
      let cur = M.read t.reg in
      help_complete t cur;
      if M.cas t.reg ~expected:cur ~desired then begin
        M.flush t.reg;
        (* Record our own completion; a helper may have done it already. *)
        let x' = M.read t.x.(tid) in
        if x_has x' x_prep && not (x_has x' x_compl) then
          if M.cas t.x.(tid) ~expected:x' ~desired:(x' lor x_compl) then
            M.flush t.x.(tid)
      end
      else loop ()
    in
    loop ();
    M.drain () (* persistence point *)

  let prep_read t ~tid =
    t.seqs.(tid) <- (t.seqs.(tid) + 1) land seq_mask;
    M.write t.x.(tid) (x_pack ~value:0 ~seq:t.seqs.(tid) ~tags:x_read);
    M.flush t.x.(tid);
    M.drain ()

  let exec_read t ~tid =
    let v = value_of (M.read t.reg) in
    M.flush t.reg (* flush-on-read: see [read] *);
    let x = M.read t.x.(tid) in
    M.write t.x.(tid)
      (x_pack ~value:v ~seq:(x_seq x) ~tags:(x_read lor x_compl));
    M.flush t.x.(tid);
    M.drain ();
    v

  (* ---------------------------- detection --------------------------- *)

  let resolve t ~tid =
    let x = M.read t.x.(tid) in
    if x = 0 then Nothing
    else if x_has x x_read then
      if x_has x x_compl then Read_done (x_value x) else Read_pending
    else if x_has x x_compl then Write_done (x_value x)
    else begin
      (* No completion recorded: the write took effect iff the register
         still carries our provenance (anyone overwriting it would have
         persisted our completion first). *)
      let cur = M.read t.reg in
      if writer_of cur = tid && seq_of cur = x_seq x && value_of cur = x_value x
      then Write_done (x_value x)
      else Write_pending (x_value x)
    end

  (** No recovery procedure is needed: detection state is maintained
      inline by the helping protocol.  Provided for interface symmetry. *)
  let recover (_ : t) = ()

  let stats t : Detectable_intf.stats =
    { state_words = 1; announce_words = t.nthreads }
end
