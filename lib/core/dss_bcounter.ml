(** Detectable bounded counter — [D<bcounter>], {!Detectable.Make} over
    the saturating-counter specification (value confined to
    [0 .. bound]; increments at the bound and decrements at zero return
    [Fail] without moving the state).  This is the object family of the
    Ben-Baruch, Hendler & Rusanovsky space lower bound for detectable
    objects (PAPERS.md): the interesting measure is how few persistent
    words per operation detectability costs, which is exactly what
    [persistent_words_per_op] in the zoo report tracks.  Failing
    operations take the engine's read-only path: no install, just
    flush-on-read plus the announce-word completion. *)

module S = Dssq_spec.Specs.Bcounter

(** The packaged specification fixes the bound; [bound] is exported so
    workloads can generate in-range schedules. *)
let bound = 7

module Make (M : Dssq_memory.Memory_intf.S) = struct
  include
    Detectable.Make
      (struct
        type state = int
        type op = S.op
        type response = S.response

        let spec = S.spec ~bound ()
      end)
      (M)

  let pp_resolved fmt r =
    Detectable_intf.pp_resolved S.pp_op S.pp_response fmt r

  (* Typed non-detectable operations: [true] = took effect, [false] =
     saturated. *)

  let incr t ~tid =
    match base t ~tid S.Increment with
    | S.Ok -> true
    | S.Fail -> false
    | S.Value _ -> assert false

  let decr t ~tid =
    match base t ~tid S.Decrement with
    | S.Ok -> true
    | S.Fail -> false
    | S.Value _ -> assert false

  let get t ~tid =
    match base t ~tid S.Get with S.Value v -> v | _ -> assert false

  (* Detectable pairs: [prep_*] then the functor's [exec]. *)

  let prep_incr t ~tid = prep t ~tid S.Increment
  let prep_decr t ~tid = prep t ~tid S.Decrement
  let prep_get t ~tid = prep t ~tid S.Get
end
