(** Detectable priority queue — [D<pqueue>], {!Detectable.Make} over the
    insert/extract-min specification.  State is kept sorted ascending in
    one boxed list (the specification maintains the invariant), so
    [extract_min] is a head pop and structurally equal states are
    semantically equal for the model checker's memoization.  Empty
    extracts return [Empty] via the engine's read-only path. *)

module S = Dssq_spec.Specs.Pqueue

module Make (M : Dssq_memory.Memory_intf.S) = struct
  include
    Detectable.Make
      (struct
        type state = int list
        type op = S.op
        type response = S.response

        let spec = S.spec ()
      end)
      (M)

  let pp_resolved fmt r =
    Detectable_intf.pp_resolved S.pp_op S.pp_response fmt r

  (* Typed non-detectable operations. *)

  let insert t ~tid v = ignore (base t ~tid (S.Insert v))

  let extract_min t ~tid =
    match base t ~tid S.Extract_min with
    | S.Value v -> Some v
    | S.Empty -> None
    | S.Ok -> assert false

  (* Detectable pairs: [prep_*] then the functor's [exec]. *)

  let prep_insert t ~tid v = prep t ~tid (S.Insert v)
  let prep_extract_min t ~tid = prep t ~tid S.Extract_min

  let to_list t = peek t
end
