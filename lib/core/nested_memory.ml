(** Application-managed nesting, made literal.

    Section 2.2 of the paper: "Any base object of type T in this
    algorithm can be replaced with a strictly linearizable implementation
    of either T or D<T>, since D<T> provides all the non-detectable
    operations of T.  Thus, D<queue> can be constructed using
    implementations of D<read/write register> and D<CAS>."

    This functor does exactly that replacement: it presents the [MEMORY]
    interface, but every cell is a {!Dss_cell} detectable object over the
    base memory.  Instantiating [Dss_queue.Make (Nested_memory.Make (...))]
    therefore runs the unmodified DSS queue algorithm where every base
    word is itself a [D<register>/D<CAS>] object — the nesting the paper
    describes, with the outer object using the inner objects'
    non-detectable operations, while the inner objects' own [prep]/[exec]/
    [resolve] remain available to the application (see
    [test/test_nested.ml], which exercises both levels at once).

    [Config.nthreads] bounds the thread ids that may use the inner
    objects' detectable operations. *)

module type CONFIG = sig
  val nthreads : int
end

module Make (Base : Dssq_memory.Memory_intf.S) (Config : CONFIG) :
  Dssq_memory.Memory_intf.S with type 'a cell = 'a Dss_cell.Make(Base).t =
struct
  module C = Dss_cell.Make (Base)

  type 'a cell = 'a C.t

  (* Dss_cell spreads one logical word over several base cells, so inner
     placement is the base memory's business; the [placement] hint has no
     meaningful nested analogue and is ignored. *)
  let alloc ?name ?placement v =
    ignore placement;
    C.create ?name ~nthreads:Config.nthreads v

  let alloc_block ?name vs =
    List.mapi
      (fun i v ->
        let name =
          match name with
          | None -> None
          | Some n -> Some (Printf.sprintf "%s[%d]" n i)
        in
        alloc ?name v)
      vs

  let read c = C.read c
  let write c v = C.write c v
  let cas c ~expected ~desired = C.cas c ~expected ~desired
  let flush c = C.flush c
  let fence () = Base.fence ()
  let drain () = Base.drain ()
end
