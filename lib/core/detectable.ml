(** One detectability functor, many objects.

    The paper's central claim is that detectability is a property of the
    {e specification}: [D<T>] is derived mechanically from any
    sequential type [T] (Section 2.1).  This module is that derivation
    as executable code — {!Make} takes a packaged base specification
    ([Dssq_spec.Dss_spec.S]) and a memory backend and produces a
    detectable, recoverable object, owning everything that used to be
    re-implemented per object:

    - the per-thread announce records (the tagged [X] words) and their
      prep-time persistence point;
    - per-thread operation sequence numbers;
    - the exec loop: help the previous operation persist its completion
      before destroying the evidence, apply the specification, install
      the new state with a single boxed CAS, self-record the result;
    - [resolve] after a crash, answering from the announce record or the
      state word's provenance;
    - the flush/drain persistence points.

    The protocol is {!Dss_cell}'s, generalized from register/CAS cells
    to any sequential specification: state lives in one failure-atomic
    word holding a boxed [(s, writer, seq, resp)] record, CAS is
    physical equality on the exact record read (the boxed-CAS idiom,
    ABA-immune), and anyone about to overwrite first persists the
    victim's completion into the victim's own announce word (helping).

    Read-only steps — operations whose [apply] returns the physically
    identical state (reads, failed CAS, pops of an empty container) —
    install nothing; the engine instead {e flushes the state it read}
    before answering, so the returned value can never be rolled back by
    a crash (strict linearizability; the flush-on-read discipline
    {!Dss_register} adopted after its PR-4 audit).

    Linked structures whose exec step is a multi-word pointer swing
    (queue, stack) cannot route it through one state-word CAS; they keep
    their object-specific swing behind a
    {!Detectable_intf.LINEARIZATION_HOOK} and share the {!Announce} and
    {!Recovery} scaffolding below instead. *)

module Spec = Dssq_spec.Spec
module Profile = Dssq_obs.Profile

(** Checker hook for the [lost-batch] mutant: when set, a combining
    install publishes its batch's completions durably {e before} the
    state's persist epoch — the exact ordering bug flat combining must
    not have (a crash between the two leaves durable [Done] evidence
    for effects that rolled back, so the owner re-executes an applied
    operation).  Shared across all functor instantiations so the
    scenario runner can flip it without threading it through object
    constructors; always [false] outside mutant runs. *)
let lost_batch_injection = ref false

(** The engine, polymorphic in the specification — {!Make} is a thin
    monomorphizing wrapper.  Types are concrete so sibling modules
    ({!Dss_cell}, {!Dss_register}) can build variant vocabularies on
    top without re-deriving the protocol. *)
module Make_any (M : Dssq_memory.Memory_intf.S) = struct
  (** The state word: base state plus the provenance of the operation
      that installed it.  [writer = -1] for the initial state and for
      non-detectable (base) operations; [resp] is the installing
      operation's response, which is what helpers persist into the
      writer's announce word and what [resolve] answers from when the
      announce word's completion was lost.

      [batch] is the flat-combining extension: when a combiner folds
      several announced operations into one install, the entry carries
      the [(writer, seq, resp)] provenance of every folded operation
      beyond the primary one, so a crash that keeps the state line but
      loses the announce completions still resolves {e each} operation
      of the batch individually.  Eager installs always carry
      [batch = []], keeping the combining-off path bit-for-bit
      identical.

      [e] is the install's position in the CAS chain (strictly
      increasing: successor of the entry it replaced).  The combining
      path compares it against the volatile durable-epoch marker to
      learn whether this install's persist epoch has closed; eager
      paths maintain it (a pure field copy, no memory events) and never
      read it. *)
  type ('s, 'r) entry = {
    s : 's;
    writer : int;
    seq : int;
    resp : 'r option;
    batch : (int * int * 'r option) list;
    e : int;
  }

  (** One thread's announce record: the prepared operation, its sequence
      number, and the result once the operation took effect. *)
  type ('op, 'r) announce = { aop : 'op; aseq : int; result : 'r option }

  type ('s, 'op, 'r) t = {
    spec : ('s, 'op, 'r) Spec.t;
    nthreads : int;
    combine : bool;  (** route [exec] through the flat-combining path *)
    state : ('s, 'r) entry M.cell;
    epoch : int M.cell;
        (** durable-epoch marker: the highest install id [e] whose
            persist epoch (state flush + drain) is known closed.  Purely
            volatile — never flushed; a crash may revert it, which only
            sends post-crash losers down the help-persist slow path. *)
    x : ('op, 'r) announce option M.cell array;
    active : bool array;
        (** volatile fold-eligibility flags: [active.(i)] is true only
            while thread [i] is inside [exec_combine].  Combiners may
            fold an announced operation only while its owner is actively
            executing it; without the guard, a {e post-crash} retry
            would fold a peer's announced-but-never-executed operation,
            and the peer's [resolve] would report Done for an operation
            that linearized after the crash — a strict-linearizability
            violation.  Being volatile is the point: a crash clears the
            flags, so nothing is foldable until its owner re-enters
            [exec]. *)
    seqs : int array;  (** volatile per-thread operation counters *)
    mutable batches : int;  (** volatile telemetry: combining installs *)
    mutable folded : int;  (** volatile telemetry: ops folded, total *)
  }

  let create ?(name = "") ?placement ?init ?(combine = false) ~nthreads
      (spec : ('s, 'op, 'r) Spec.t) =
    let init = Option.value ~default:spec.Spec.init init in
    let cname suffix = if name = "" then suffix else name ^ "." ^ suffix in
    let state =
      M.alloc ~name:(cname "state") ?placement
        { s = init; writer = -1; seq = 0; resp = None; batch = []; e = 0 }
    in
    M.flush state;
    M.drain ();
    {
      spec;
      nthreads;
      combine;
      state;
      epoch = M.alloc ~name:(cname "epoch") ?placement 0;
      x =
        Array.init nthreads (fun i ->
            M.alloc ~name:(cname (Printf.sprintf "X[%d]" i)) ?placement None);
      active = Array.make nthreads false;
      seqs = Array.make nthreads 0;
      batches = 0;
      folded = 0;
    }

  (* Persist the completion of the operation that installed [cur] into
     its writer's announce word, before [cur] can be overwritten.  The
     drain is load-bearing: without it, a crash can persist the
     overwriting install while dropping this completion's line, and the
     victim — whose provenance the overwrite destroyed — resolves
     Pending and re-executes an operation that took effect.  For a
     register that is harmless (the retried write linearizes after the
     overwriter); for a value-returning operation like swap it is a
     linearization cycle (model-checker counterexample:
     explore --case swap/swap-swap/crash/ls1). *)
  (* Record [resp] as the completion of thread [w]'s operation [seq],
     helping-style: retry CAS races until the record is in place, and
     flush so it enters the persist pipeline before the caller's drain. *)
  let rec publish_result t ~w ~seq resp =
    if w >= 0 && w < t.nthreads then begin
      let xc = t.x.(w) in
      match M.read xc with
      | Some ({ aseq; result = None; _ } as a) as x when aseq = seq ->
          if M.cas xc ~expected:x ~desired:(Some { a with result = resp })
          then M.flush xc
          else publish_result t ~w ~seq resp
      | Some { aseq; result = Some _; _ } when aseq = seq -> M.flush xc
      | _ -> ()
    end

  let rec help_complete t (cur : _ entry) =
    let w = cur.writer in
    if w >= 0 && w < t.nthreads then begin
      let xc = t.x.(w) in
      match M.read xc with
      | Some ({ result = None; _ } as a) as x when a.aseq = cur.seq ->
          (* [cur] is the victim's install and may itself still be
             sitting in cache: make the effect durable before its
             completion evidence, or a crash could keep the evidence and
             drop the effect — a Done response from a state that never
             existed.  (If the state word has moved on since we read
             [cur], this persists the newer entry — harmless, and the
             CAS below fails.) *)
          M.flush t.state;
          M.drain ();
          if M.cas xc ~expected:x ~desired:(Some { a with result = cur.resp })
          then begin
            M.flush xc;
            M.drain ()
          end
          else help_complete t cur (* lost a race; re-check, then persist *)
      | Some { result = Some _; aseq; _ } when aseq = cur.seq ->
          (* Completion already recorded — possibly only in cache, by the
             victim itself, whose own drain has not run yet.  Persist it
             anyway: an already-drained line makes these free. *)
          M.flush xc;
          M.drain ()
      | _ -> ()
    end;
    (* A combining install carries more provenances than its primary:
       the whole batch's completions must be durable before the entry
       can be overwritten, by the same argument as above.  Eager entries
       always have [batch = []], so this adds nothing (not even a read)
       to the combining-off path. *)
    if cur.batch <> [] then begin
      let unrecorded (w, q, _) =
        w >= 0 && w < t.nthreads
        &&
        match M.read t.x.(w) with
        | Some { aseq; result = None; _ } -> aseq = q
        | _ -> false
      in
      if List.exists unrecorded cur.batch then begin
        M.flush t.state;
        M.drain ();
        List.iter (fun (w, q, r) -> publish_result t ~w ~seq:q r) cur.batch
      end
      else
        (* Every completion is recorded — but possibly only volatile:
           folded owners self-record with a buffered flush once the
           durable-epoch marker passes their install.  Those lines must
           be durable before [cur]'s batch provenance is destroyed, or a
           crash persisting our overwrite drops the records of effects
           it carries.  Flushing an already-durable line is free. *)
        List.iter
          (fun (w, _, _) -> if w >= 0 && w < t.nthreads then M.flush t.x.(w))
          cur.batch;
      M.drain ()
    end

  let apply t ~tid op s =
    match t.spec.Spec.apply s ~tid op with
    | Some r -> r
    | None ->
        invalid_arg
          (Format.asprintf "Detectable(%s): operation %a not enabled"
             t.spec.Spec.name t.spec.Spec.pp_op op)

  (* ------------------------- non-detectable ------------------------- *)

  (** The plain operation (Axiom 4).  Read-only steps flush the state
      they answer from instead of installing anything. *)
  let base t ~tid op =
    let sp = Profile.begin_span ~tid Profile.Exec in
    let rec loop () =
      let cur = M.read t.state in
      let s', resp = apply t ~tid op cur.s in
      if s' == cur.s then begin
        M.flush t.state;
        M.drain ();
        resp
      end
      else begin
        help_complete t cur;
        if
          M.cas t.state ~expected:cur
            ~desired:
              {
                s = s';
                writer = -1;
                seq = 0;
                resp = None;
                batch = [];
                e = cur.e + 1;
              }
        then begin
          M.flush t.state;
          M.drain ();
          resp
        end
        else loop ()
      end
    in
    let r = loop () in
    Profile.end_span ~tid sp;
    r

  (* --------------------------- detectable --------------------------- *)

  let prep t ~tid op =
    let sp = Profile.begin_span ~tid Profile.Announce in
    t.seqs.(tid) <- t.seqs.(tid) + 1;
    let xc = t.x.(tid) in
    M.write xc (Some { aop = op; aseq = t.seqs.(tid); result = None });
    M.flush xc;
    M.drain () (* persistence point: prep durable on return *);
    Profile.end_span ~tid sp

  (* Record [resp] as the caller's completion, unless a helper got there
     first. *)
  let record_result t ~tid resp =
    let xc = t.x.(tid) in
    (match M.read xc with
    | Some ({ result = None; _ } as a) as x ->
        if M.cas xc ~expected:x ~desired:(Some { a with result = Some resp })
        then M.flush xc
    | _ -> ());
    ()

  (* ------------------------- flat combining ------------------------- *)

  (* CAS-max the volatile durable-epoch marker up to install id [e]:
     every install at or below the marker has had its persist epoch
     closed (state flushed and drained while the line held that install
     or a successor — and a successor can only have been installed after
     [help_complete] made the victim's completions durable, so either
     way the marked install's effects and provenances are safe). *)
  let rec advance_epoch t e =
    let m = M.read t.epoch in
    if m < e && not (M.cas t.epoch ~expected:m ~desired:e) then
      advance_epoch t e

  (* One combining pass (opt-in via [~combine:true]): help the current
     entry complete, fold {e every} announced-but-unapplied operation —
     the caller's included — into a single boxed install whose [batch]
     field carries the folded provenances, then pay ONE persist epoch
     (flush state, drain) for the whole batch.  Announced operations are
     already durable intents (prep drained them), which is exactly what
     makes them safe to apply on the owner's behalf: a crash at any
     point leaves each folded operation either absent or resolvable from
     the batch provenance.

     Combining here is helping, not locking: a thread whose operation
     was folded by another combiner never waits — it reads its response
     from the installed entry.  Completion records are the owners' own
     business: once the durable-epoch marker reaches the install, each
     folded owner records its own result with a buffered flush (no
     barrier — the state's durability is what licensed the answer, and
     [help_complete] persists the record before the entry's provenance
     can be destroyed).  An owner that finds the epoch still open closes
     it itself instead of waiting, which keeps the pass lock-free. *)
  let exec_combine t ~tid aop aseq =
    t.active.(tid) <- true;
    Fun.protect ~finally:(fun () -> t.active.(tid) <- false) @@ fun () ->
    let rec attempt () =
      let cur = M.read t.state in
      (* Did another combiner already fold our operation into [cur]? *)
      let mine =
        if cur.writer = tid && cur.seq = aseq then cur.resp
        else
          List.fold_left
            (fun acc (w, q, r) -> if w = tid && q = aseq then r else acc)
            None cur.batch
      in
      match mine with
      | Some r ->
          (match M.read t.x.(tid) with
          | Some { aseq = q; result = Some _; _ } when q = aseq ->
              () (* a helper recorded it for us; its flush is in flight *)
          | _ ->
              (* Poll the durable-epoch marker a bounded number of times
                 before helping: the combiner's drain is usually already
                 in flight, and a read costs an order of magnitude less
                 than closing the epoch ourselves.  The bound keeps the
                 pass lock-free. *)
              let rec settle polls =
                if M.read t.epoch >= cur.e then
                  (* The install's persist epoch is closed: the effect
                     is durable (or superseded — which required
                     persisting our completion first), so record our own
                     result with a buffered flush and no barrier. *)
                  record_result t ~tid r
                else if polls > 0 then settle (polls - 1)
                else begin
                  (* Close the epoch ourselves rather than wait any
                     longer for the combiner.  If the state word has
                     moved past [cur] by now this persists the newer
                     entry, which is still correct: a successor install
                     implies our completion is already durable. *)
                  M.flush t.state;
                  M.drain ();
                  advance_epoch t cur.e;
                  record_result t ~tid r
                end
              in
              settle 4);
          r
      | None ->
          help_complete t cur;
          let s0, my_resp = apply t ~tid aop cur.s in
          let s = ref s0 in
          let others = ref [] in
          for i = 0 to t.nthreads - 1 do
            (* Fold only operations whose owner is actively executing
               (see [active]): announced intent alone is not license to
               linearize it — after a crash it must wait for its owner's
               retry, or resolve would report a post-crash
               linearization. *)
            if i <> tid && t.active.(i) then
              match M.read t.x.(i) with
              | Some { aop = o; aseq = q; result = None }
                when (not (cur.writer = i && cur.seq = q))
                     && not
                          (List.exists
                             (fun (w, sq, _) -> w = i && sq = q)
                             cur.batch) -> (
                  match t.spec.Spec.apply !s ~tid:i o with
                  | Some (s', r) ->
                      s := s';
                      others := (i, q, Some r) :: !others
                  | None -> () (* not enabled at this fold point *))
              | _ -> ()
          done;
          let s' = !s in
          let batch = List.rev !others in
          (* Always install — even when our own step is read-only and
             nothing was folded.  The eager path's no-install fast path
             is unsound here: between our read of [cur] and answering, a
             concurrent combiner may fold {e our} operation into its own
             install with a response computed from a fresher state, and
             a locally decided answer would then contradict the batch
             provenance (model-checker counterexample:
             bcounter/inc-dec/nocrash/ls1/fc — a stale dec answers FAIL
             while the combiner's fold answered OK).  Routing every
             response through the state CAS makes the install the single
             linearization point: a stale attempt fails the CAS, retries,
             and finds its folded response in [mine]. *)
          begin
            let e' = cur.e + 1 in
            if
              M.cas t.state ~expected:cur
                ~desired:
                  {
                    s = s';
                    writer = tid;
                    seq = aseq;
                    resp = Some my_resp;
                    batch;
                    e = e';
                  }
            then begin
              t.batches <- t.batches + 1;
              t.folded <- t.folded + 1 + List.length batch;
              let sp = Profile.begin_span ~tid Profile.Combine in
              if !lost_batch_injection then begin
                (* Mutant: completions durable before the effect — and
                   the marker advanced before the drain, so folded
                   owners buffer theirs early too. *)
                advance_epoch t e';
                record_result t ~tid my_resp;
                List.iter (fun (w, q, r) -> publish_result t ~w ~seq:q r) batch;
                M.drain ();
                M.flush t.state;
                M.drain ()
              end
              else begin
                (* THE persist epoch: one flush+drain makes the install
                   — and with it every folded effect and provenance —
                   durable at once.  Advancing the marker then hands the
                   completion records over to their owners, whose
                   buffered flushes need no further barrier here. *)
                M.flush t.state;
                M.drain ();
                advance_epoch t e';
                record_result t ~tid my_resp
              end;
              Profile.end_span ~tid sp;
              my_resp
            end
            else attempt ()
          end
    in
    attempt ()

  let exec_unprofiled t ~tid =
    match M.read t.x.(tid) with
    | None -> invalid_arg "Detectable.exec: no operation prepared"
    | Some { result = Some r; _ } -> r (* already took effect: idempotent *)
    | Some { aop; aseq; result = None } when t.combine ->
        exec_combine t ~tid aop aseq
    | Some { aop; aseq; result = None } ->
        let rec loop () =
          let cur = M.read t.state in
          let s', resp = apply t ~tid aop cur.s in
          if s' == cur.s then begin
            (* Read-only: nothing to install.  Persist the state we are
               answering from — durably, before recording our
               completion: if the completion's line survived a crash
               that dropped the state's, resolve would report a response
               observed from a state that never existed. *)
            M.flush t.state;
            M.drain ();
            record_result t ~tid resp;
            resp
          end
          else begin
            help_complete t cur;
            if
              M.cas t.state ~expected:cur
                ~desired:
                  {
                    s = s';
                    writer = tid;
                    seq = aseq;
                    resp = Some resp;
                    batch = [];
                    e = cur.e + 1;
                  }
            then begin
              (* Same ordering as the read-only path: the install must
                 be durable before the completion record can be — the
                 provenance in the state entry already serves as durable
                 evidence from here on. *)
              M.flush t.state;
              M.drain ();
              record_result t ~tid resp;
              resp
            end
            else loop ()
          end
        in
        let r = loop () in
        M.drain () (* persistence point *);
        r

  let exec t ~tid =
    let sp = Profile.begin_span ~tid Profile.Exec in
    let r = exec_unprofiled t ~tid in
    Profile.end_span ~tid sp;
    r

  (* ---------------------------- detection --------------------------- *)

  let resolve_unprofiled t ~tid : _ Detectable_intf.resolved =
    match M.read t.x.(tid) with
    | None -> Nothing
    | Some { aop; result = Some r; _ } -> Done (aop, r)
    | Some { aop; aseq; result = None } -> (
        let cur = M.read t.state in
        if cur.writer = tid && cur.seq = aseq then
          (* Our install is visible but the completion write to our own
             announce word was lost: the state word's provenance carries
             the response. *)
          match cur.resp with
          | Some r -> Done (aop, r)
          | None -> Pending aop
        else
          (* Combining: our operation may have been folded into another
             thread's install — its batch provenance answers then. *)
          let folded =
            List.find_opt (fun (w, q, _) -> w = tid && q = aseq) cur.batch
          in
          match folded with
          | Some (_, _, Some r) -> Done (aop, r)
          | Some (_, _, None) | None -> Pending aop)

  let resolve t ~tid =
    let sp = Profile.begin_span ~tid Profile.Resolve in
    let r = resolve_unprofiled t ~tid in
    Profile.end_span ~tid sp;
    r

  (** No persistent repairs are needed (helping keeps detection state
      consistent inline); restore the volatile per-thread sequence
      counters from the persisted announce records so post-crash preps
      cannot reuse a live sequence number. *)
  let recover t =
    let sp = Profile.begin_span ~tid:(-1) Profile.Recovery_scan in
    let cur = M.read t.state in
    for i = 0 to t.nthreads - 1 do
      let s = match M.read t.x.(i) with Some a -> a.aseq | None -> 0 in
      let s = if cur.writer = i then max s cur.seq else s in
      (* Batch provenances are live sequence numbers too. *)
      let s =
        List.fold_left
          (fun acc (w, q, _) -> if w = i then max acc q else acc)
          s cur.batch
      in
      if s > t.seqs.(i) then t.seqs.(i) <- s
    done;
    Profile.end_span ~tid:(-1) sp

  let stats t : Detectable_intf.stats =
    { state_words = 1; announce_words = t.nthreads }

  (** Volatile combining telemetry: [(passes, ops_folded)] — the mean
      batch size is [ops_folded / passes].  Both 0 with combining off. *)
  let combining_stats t = (t.batches, t.folded)

  let peek t = (M.read t.state).s
end

(** Shared scaffolding for the linked structures (queue, stack) whose
    exec step is a multi-word pointer swing the one-word engine cannot
    own: the per-thread tagged announce words and their posting
    discipline ({!Announce}), and the Figure-6 recovery passes over them
    ({!Recovery}).  The object keeps its structural code — the swing
    itself and the {!Detectable_intf.LINEARIZATION_HOOK}-shaped
    [took_effect] predicate recovery consults. *)
module Linked (M : Dssq_memory.Memory_intf.S) = struct
  module Pool = Node_pool.Make (M)

  (* Tag added to the popper/deqThreadID mark by non-detectable removals
     so that resolve never mistakes them for the caller's detectable one
     (Section 3.2, last paragraph).  Thread ids must stay below it. *)
  let nondet_mark = 1 lsl 20

  module Announce = struct
    (** Everything detectability-related that queue and stack used to
        carry in their own records: the node pool, the announce words
        [X[0..n-1]], reclamation state, and the deferred-retirement
        lists that keep [resolve]'s targets out of reuse. *)
    type t = {
      pool : Pool.t;
      x : int M.cell array; (* X[1..n] of the paper, indexed by tid *)
      ebr : int Dssq_ebr.Ebr.t;
      deferred : int list ref array;
          (* nodes whose retirement waits until X[tid] is overwritten *)
      reclaim : bool;
      combine : bool;  (* flat-combining batch epochs (DESIGN.md §14) *)
      nthreads : int;
    }

    let create ?wal ?pool_id ?(combine = false) ~xname ~reclaim ~nthreads
        ~capacity () =
      let pool = Pool.create ?wal ?pool_id ~capacity ~nthreads () in
      {
        pool;
        x =
          Array.init nthreads (fun i ->
              M.alloc
                ~name:(Printf.sprintf "%s[%d]" xname i)
                ~placement:Dssq_memory.Memory_intf.Line.Isolated 0);
        ebr =
          Dssq_ebr.Ebr.create ~nthreads
            ~free:(fun ~tid node -> Pool.free pool ~tid node)
            ();
        deferred = Array.init nthreads (fun _ -> ref []);
        reclaim;
        combine;
        nthreads;
      }

    (* Retire the nodes whose reclamation was deferred while X[tid]
       still referenced them; called exactly when X[tid] is about to
       move on. *)
    let release_deferred a ~tid =
      if a.reclaim then begin
        List.iter
          (fun n -> Dssq_ebr.Ebr.retire a.ebr ~tid n)
          !(a.deferred.(tid));
        a.deferred.(tid) := []
      end

    let retire a ~tid node =
      if a.reclaim then Dssq_ebr.Ebr.retire a.ebr ~tid node

    let defer_retire a ~tid node =
      if a.reclaim then a.deferred.(tid) := node :: !(a.deferred.(tid))

    (* Allocate and persist a fresh node holding [v] (the caller flushes
       [next] too if its object initializes it at alloc time). *)
    let make_node a ~objname ~tid v =
      if v < 0 then
        invalid_arg (objname ^ ": values must be non-negative");
      let node =
        if a.reclaim then Pool.alloc_reclaiming a.pool ~ebr:a.ebr ~tid ~value:v
        else Pool.alloc a.pool ~tid ~value:v
      in
      M.flush (Pool.value a.pool node);
      node

    (* Post [word] into the caller's announce word, persistently. *)
    let post a ~tid word =
      M.write a.x.(tid) word;
      M.flush a.x.(tid)

    (* [post] plus the prep persistence point: a crash after [announce]
       returns must resolve to the announced operation.  The leading
       drain is px86 hardening: the node-field flushes the caller issued
       (see [make_node]) must be durable before the announce word is
       even written — a crash can write the dirty announce line back by
       cache eviction while those flushes still sit in the persist
       buffer, persisting an announcement whose node contents were
       lost.  Eager backends drain at every flush, so both drains are
       no-ops there.  Under combine the backend buffers in per-thread
       store order, so the announce write cannot persist ahead of the
       node-field flushes issued before it — the leading drain is
       subsumed; the trailing drain stays (it is the prep persistence
       point, and the announce must be durable before the operation's
       effect can, which later CASes by {e other} threads' helpers may
       persist out of this thread's FIFO). *)
    let announce a ~tid word =
      if not a.combine then M.drain ();
      post a ~tid word;
      M.drain ()

    (* Add [tag] to the caller's current announce word, persistently
       (completion and EMPTY markers). *)
    let tag a ~tid tg = post a ~tid (Tagged.with_tag (M.read a.x.(tid)) tg)

    (* Decode an ENQ_PREP-tagged announce word (push and enqueue share
       the layout: node index plus completion bit). *)
    let resolve_push a x =
      let v = M.read (Pool.value a.pool (Tagged.idx x)) in
      if Tagged.has x Tagged.enq_compl then Queue_intf.Enq_done v
      else Queue_intf.Enq_pending v

    (** Drop all volatile runtime state (reclamation epochs and limbo
        lists, deferred retirements).  Models the process restart that
        precedes any recovery: this state does not survive a real crash,
        and in the simulator it must be discarded explicitly. *)
    let reset_volatile a =
      Dssq_ebr.Ebr.clear a.ebr;
      Array.iter (fun l -> l := []) a.deferred

    let stats a ~state_words : Detectable_intf.stats =
      { state_words; announce_words = a.nthreads }
  end

  module Recovery = struct
    (* Set of pool nodes reachable from [start] through [next] links. *)
    let reachable_from (a : Announce.t) start =
      let seen = Array.make (a.pool.Pool.capacity + 1) false in
      let rec go n =
        if n <> Tagged.null && not seen.(n) then begin
          seen.(n) <- true;
          go (M.read (Pool.next a.pool n))
        end
      in
      go start;
      seen

    (* Complete the detectability state of effective insertions (queue
       lines 70-76): any announce word still ENQ_PREP-without-COMPL
       whose node [took_effect] — survived into the post-crash structure
       or was already removed-and-marked — gains its completion tag.
       [took_effect] is the object's
       {!Detectable_intf.LINEARIZATION_HOOK} predicate. *)
    let complete_effective (a : Announce.t) ~took_effect =
      let sp = Profile.begin_span ~tid:(-1) Profile.Recovery_complete in
      for i = 0 to a.nthreads - 1 do
        let x = M.read a.x.(i) in
        let d = Tagged.idx x in
        if
          d <> Tagged.null
          && Tagged.has x Tagged.enq_prep
          && (not (Tagged.has x Tagged.enq_compl))
          && took_effect d
        then begin
          M.write a.x.(i) (Tagged.with_tag x Tagged.enq_compl);
          M.flush a.x.(i)
        end
      done;
      Profile.end_span ~tid:(-1) sp

    (* Rebuild the volatile free lists.  Keep nodes that are (a)
       reachable from [new_root], or (b) referenced by some X entry
       (resolve may read them), or (c) whatever [extra] adds (the
       queue's DEQ-successor case: resolve-dequeue reads X->next).
       Kept-but-unreachable nodes are handed to the deferred retirement
       of their referencing thread so they are reclaimed once that
       thread's X moves on.

       Several X entries can reference the SAME node (two removers that
       saved the same predecessor; a DEQ successor that is another
       thread's inserted node).  Defer each node exactly once, or it
       would be retired and freed twice — and a double-freed node gets
       allocated twice and linked into the structure in two places. *)
    let rebuild (a : Announce.t) ~new_root ~extra =
      let sp = Profile.begin_span ~tid:(-1) Profile.Recovery_scan in
      let live = reachable_from a new_root in
      let keep = Array.copy live in
      let deferred_once = Array.make (a.pool.Pool.capacity + 1) false in
      let defer_to i n =
        keep.(n) <- true;
        if (not live.(n)) && not deferred_once.(n) then begin
          deferred_once.(n) <- true;
          a.deferred.(i) := n :: !(a.deferred.(i))
        end
      in
      for i = 0 to a.nthreads - 1 do
        let x = M.read a.x.(i) in
        let d = Tagged.idx x in
        if d <> Tagged.null then begin
          defer_to i d;
          extra ~defer:defer_to i x
        end
      done;
      Pool.rebuild_free_lists a.pool ~keep:(fun i -> keep.(i));
      Profile.end_span ~tid:(-1) sp

    (* The keep predicate [rebuild] uses, recomputed without mutating
       anything: reachable from [new_root], referenced by some X entry,
       plus whatever [extra] pins.  This is the reference partition the
       post-recovery audit checks the rebuilt free lists against. *)
    let keep_array (a : Announce.t) ~new_root ~extra =
      let keep = reachable_from a new_root in
      let defer_to _i n = keep.(n) <- true in
      for i = 0 to a.nthreads - 1 do
        let x = M.read a.x.(i) in
        let d = Tagged.idx x in
        if d <> Tagged.null then begin
          defer_to i d;
          extra ~defer:defer_to i x
        end
      done;
      keep

    (** Post-recovery leak audit (read-only): check the free lists and
        the kept set partition the pool exactly.  Call after the
        object's [recover] has run. *)
    let audit (a : Announce.t) ~new_root ~extra =
      let keep = keep_array a ~new_root ~extra in
      Pool.audit a.pool ~keep:(fun i -> keep.(i))
  end
end

(** The detectability functor of the ISSUE/ROADMAP: a new detectable
    object is one packaged specification plus this application. *)
module Make (B : Dssq_spec.Dss_spec.S) (M : Dssq_memory.Memory_intf.S) :
  Detectable_intf.GENERIC
    with type state = B.state
     and type op = B.op
     and type response = B.response = struct
  module E = Make_any (M)

  type state = B.state
  type op = B.op
  type response = B.response
  type t = (state, op, response) E.t

  let name = B.spec.Spec.name

  let create ?name ?combine ?init ~nthreads () =
    E.create ?name ~placement:Dssq_memory.Memory_intf.Line.Isolated ?combine
      ?init ~nthreads B.spec

  let prep = E.prep
  let exec = E.exec
  let base = E.base
  let resolve = E.resolve
  let recover = E.recover
  let stats = E.stats
  let combining_stats = E.combining_stats
  let peek = E.peek
end
