(** The DSS queue (Section 3): a lock-free, strictly linearizable,
    detectable FIFO queue for persistent memory with a volatile cache.

    The algorithm extends Michael & Scott's lock-free queue and Friedman
    et al.'s durable queue with a per-thread word [X] that realizes the
    [A]/[R] components of the detectable sequential specification
    [D<queue>]: [prep-*] records the intended operation in [X],
    [exec-*] performs it and marks completion in [X], and [resolve]
    decodes [X] (plus the persistent list structure) into
    [(A[p], R[p])].  Line numbers in comments refer to Figures 3, 4
    and 6 of the paper.

    Memory reclamation (not in the paper's pseudocode, but used in its
    evaluation): dequeued sentinels are retired through epoch-based
    reclamation.  A node still referenced by the calling thread's own
    [X] entry has its retirement deferred until [X] moves on, so that
    [resolve] never chases a recycled pointer. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Pool = Node_pool.Make (M)
  module Trace = Dssq_obs.Trace

  let name = "dss-queue"

  (* Operation-level trace events.  Guarded at each call site so argument
     strings are never built when tracing is off; [set_tid] pins the
     attribution for direct-mode (non-simulated) callers, where the
     scheduler is not around to do it. *)
  let trace_begin ~tid op args =
    if Trace.is_on () then begin
      Trace.set_tid tid;
      Trace.op_begin op ~args
    end

  let trace_end op result = if Trace.is_on () then Trace.op_end op ~result

  let deq_result v =
    if v = Queue_intf.empty_value then "empty" else string_of_int v

  (* Tag added to deqThreadID by non-detectable dequeues so that resolve
     never mistakes them for the caller's detectable dequeue
     (Section 3.2, last paragraph).  Thread ids must stay below it. *)
  let nondet_mark = 1 lsl 20

  type t = {
    pool : Pool.t;
    head : int M.cell;
    tail : int M.cell;
    x : int M.cell array; (* X[1..n] of the paper, indexed by tid *)
    ebr : int Dssq_ebr.Ebr.t;
    deferred : int list ref array;
        (* nodes whose retirement waits until X[tid] is overwritten *)
    reclaim : bool;
    nthreads : int;
  }

  let create ?(reclaim = true) ~nthreads ~capacity () =
    let pool = Pool.create ~capacity ~nthreads in
    let sentinel = Pool.alloc pool ~tid:0 ~value:0 in
    M.flush (Pool.value pool sentinel);
    M.flush (Pool.next pool sentinel);
    let head = M.alloc ~name:"head" ~placement:Dssq_memory.Memory_intf.Line.Isolated sentinel in
    let tail = M.alloc ~name:"tail" ~placement:Dssq_memory.Memory_intf.Line.Isolated sentinel in
    M.flush head;
    M.flush tail;
    M.drain ();
    let deferred = Array.init nthreads (fun _ -> ref []) in
    let ebr =
      Dssq_ebr.Ebr.create ~nthreads
        ~free:(fun ~tid node -> Pool.free pool ~tid node)
        ()
    in
    {
      pool;
      head;
      tail;
      x =
        Array.init nthreads (fun i ->
            M.alloc
              ~name:(Printf.sprintf "X[%d]" i)
              ~placement:Dssq_memory.Memory_intf.Line.Isolated 0);
      ebr;
      deferred;
      reclaim;
      nthreads;
    }

  let of_config (cfg : Queue_intf.config) =
    create ~reclaim:cfg.reclaim ~nthreads:cfg.nthreads ~capacity:cfg.capacity
      ()

  (* Retire the nodes whose reclamation was deferred while X[tid] still
     referenced them; called exactly when X[tid] is about to move on. *)
  let release_deferred t ~tid =
    if t.reclaim then begin
      List.iter (fun n -> Dssq_ebr.Ebr.retire t.ebr ~tid n) !(t.deferred.(tid));
      t.deferred.(tid) := []
    end

  let retire t ~tid node =
    if t.reclaim then Dssq_ebr.Ebr.retire t.ebr ~tid node

  let defer_retire t ~tid node =
    if t.reclaim then t.deferred.(tid) := node :: !(t.deferred.(tid))

  (* ------------------------------------------------------------------ *)
  (* Enqueue (Figure 3)                                                  *)
  (* ------------------------------------------------------------------ *)

  (* Allocate and persist a fresh node holding [v] (FLUSH(node), line 2;
     per-word flushes here, see DESIGN.md on flush granularity). *)
  let make_node t ~tid v =
    if v < 0 then invalid_arg "Dss_queue: values must be non-negative";
    let node =
      if t.reclaim then
        Pool.alloc_reclaiming t.pool ~ebr:t.ebr ~tid ~value:v
      else Pool.alloc t.pool ~tid ~value:v
    in
    M.flush (Pool.value t.pool node);
    M.flush (Pool.next t.pool node);
    node

  let prep_enqueue t ~tid v =
    trace_begin ~tid "prep-enqueue" (string_of_int v);
    release_deferred t ~tid;
    let node = make_node t ~tid v in
    (* lines 3-4 *)
    M.write t.x.(tid) (Tagged.with_tag node Tagged.enq_prep);
    M.flush t.x.(tid);
    (* Persistence point: prep must be durable when it returns (a crash
       after prep must resolve to the prepared operation).  Eager
       backends drain at every flush, so this is a no-op there. *)
    M.drain ();
    trace_end "prep-enqueue" "ok"

  (* Body shared by exec-enqueue and the non-detectable enqueue; the
     latter omits every access to X (Section 3.1). *)
  let enqueue_node t ~tid ~detectable node =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool last) in
      if last = M.read t.tail then
        if next = Tagged.null then begin
          (* at tail: line 11 *)
          if M.cas (Pool.next t.pool last) ~expected:Tagged.null ~desired:node
          then begin
            M.flush (Pool.next t.pool last) (* line 12 *);
            if detectable then begin
              (* lines 13-14 *)
              M.write t.x.(tid)
                (Tagged.with_tag (M.read t.x.(tid)) Tagged.enq_compl);
              M.flush t.x.(tid)
            end;
            ignore (M.cas t.tail ~expected:last ~desired:node) (* line 15 *)
          end
          else loop ()
        end
        else begin
          (* help another enqueuing thread: lines 18-19 *)
          M.flush (Pool.next t.pool last);
          ignore (M.cas t.tail ~expected:last ~desired:next);
          loop ()
        end
      else loop ()
    in
    loop ();
    (* Persistence point: the operation's flushes (link, X completion)
       must land before the node can enter reclamation — drain while
       still EBR-protected, before grace can elapse. *)
    M.drain ();
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let exec_enqueue t ~tid =
    trace_begin ~tid "exec-enqueue" "";
    let node = Tagged.idx (M.read t.x.(tid)) in
    enqueue_node t ~tid ~detectable:true node;
    trace_end "exec-enqueue" "ok"

  let enqueue t ~tid v =
    trace_begin ~tid "enqueue" (string_of_int v);
    let node = make_node t ~tid v in
    enqueue_node t ~tid ~detectable:false node;
    trace_end "enqueue" "ok"

  (* ------------------------------------------------------------------ *)
  (* Dequeue (Figure 4)                                                  *)
  (* ------------------------------------------------------------------ *)

  let prep_dequeue t ~tid =
    trace_begin ~tid "prep-dequeue" "";
    release_deferred t ~tid;
    (* lines 32-33 *)
    M.write t.x.(tid) Tagged.deq_prep;
    M.flush t.x.(tid);
    M.drain () (* persistence point, as in prep_enqueue *);
    trace_end "prep-dequeue" "ok"

  (* Body shared by exec-dequeue and the non-detectable dequeue.  The
     non-detectable variant omits X accesses and marks deqThreadID with
     [tid lor nondet_mark] instead of the bare tid. *)
  let dequeue_body t ~tid ~detectable =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let mark = if detectable then tid else tid lor nondet_mark in
    let rec loop () =
      let first = M.read t.head in
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool first) in
      if first = M.read t.head then
        if first = last then
          if next = Tagged.null then begin
            (* empty queue: lines 40-43 *)
            if detectable then begin
              M.write t.x.(tid)
                (Tagged.with_tag (M.read t.x.(tid)) Tagged.empty);
              M.flush t.x.(tid)
            end;
            Queue_intf.empty_value
          end
          else begin
            (* tail is lagging: lines 44-45.  The flush guarantees that
               any node reachable once tail moves has a persisted link. *)
            M.flush (Pool.next t.pool last);
            ignore (M.cas t.tail ~expected:last ~desired:next);
            loop ()
          end
        else begin
          if detectable then begin
            (* save predecessor of the node to be dequeued: lines 47-48 *)
            M.write t.x.(tid) (Tagged.with_tag first Tagged.deq_prep);
            M.flush t.x.(tid)
          end;
          if
            M.cas (Pool.deq_tid t.pool next) ~expected:(-1) ~desired:mark
            (* line 49 *)
          then begin
            M.flush (Pool.deq_tid t.pool next) (* line 50 *);
            ignore (M.cas t.head ~expected:first ~desired:next) (* line 51 *);
            let v = M.read (Pool.value t.pool next) in
            (* Persist the head advance before the old sentinel can be
               recycled, so a reused node is never reachable from the
               persisted head (the paper's pseudocode omits reclamation;
               this flush is what makes EBR reuse crash-safe — see
               DESIGN.md deviations). *)
            if t.reclaim then M.flush t.head;
            (* The old sentinel [first] is now unreachable.  If X[tid]
               references it (detectable path), resolve may still need
               it, so defer its retirement until X moves on. *)
            if detectable then defer_retire t ~tid first
            else retire t ~tid first;
            v
          end
          else if M.read t.head = first then begin
            (* help another dequeuing thread: lines 53-55 *)
            M.flush (Pool.deq_tid t.pool next);
            ignore (M.cas t.head ~expected:first ~desired:next);
            loop ()
          end
          else loop ()
        end
      else loop ()
    in
    let v = loop () in
    (* Persistence point — before [Ebr.exit], so the head-advance flush
       lands before the old sentinel can be recycled and reused. *)
    M.drain ();
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  let exec_dequeue t ~tid =
    trace_begin ~tid "exec-dequeue" "";
    let v = dequeue_body t ~tid ~detectable:true in
    trace_end "exec-dequeue" (deq_result v);
    v

  let dequeue t ~tid =
    trace_begin ~tid "dequeue" "";
    let v = dequeue_body t ~tid ~detectable:false in
    trace_end "dequeue" (deq_result v);
    v

  (* ------------------------------------------------------------------ *)
  (* Detection (resolve, resolve-enqueue, resolve-dequeue)               *)
  (* ------------------------------------------------------------------ *)

  let resolve_enqueue t x =
    let v = M.read (Pool.value t.pool (Tagged.idx x)) in
    if Tagged.has x Tagged.enq_compl then Queue_intf.Enq_done v (* line 29 *)
    else Queue_intf.Enq_pending v (* line 31 *)

  let resolve_dequeue t ~tid x =
    if x = Tagged.deq_prep then Queue_intf.Deq_pending (* lines 56-57 *)
    else if x = Tagged.deq_prep lor Tagged.empty then Queue_intf.Deq_empty
      (* lines 58-59 *)
    else begin
      let first = Tagged.idx x in
      let next = M.read (Pool.next t.pool first) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) = tid then
        Queue_intf.Deq_done (M.read (Pool.value t.pool next)) (* lines 60-61 *)
      else Queue_intf.Deq_pending (* lines 62-63 *)
    end

  let resolve t ~tid =
    if Trace.is_on () then Trace.set_tid tid;
    let x = M.read t.x.(tid) in
    let r =
      if Tagged.has x Tagged.enq_prep then resolve_enqueue t x (* lines 20-22 *)
      else if Tagged.has x Tagged.deq_prep then resolve_dequeue t ~tid x
        (* lines 23-25 *)
      else Queue_intf.Nothing (* lines 26-27 *)
    in
    if Trace.is_on () then
      Trace.resolve
        ~outcome:(Format.asprintf "%a" Queue_intf.pp_resolved r);
    r

  (* ------------------------------------------------------------------ *)
  (* Recovery (Figure 6 / Appendix A)                                    *)
  (* ------------------------------------------------------------------ *)

  let reachable_from t start =
    let seen = Array.make (t.pool.Pool.capacity + 1) false in
    let rec go n =
      if n <> Tagged.null && not seen.(n) then begin
        seen.(n) <- true;
        go (M.read (Pool.next t.pool n))
      end
    in
    go start;
    seen

  let last_reachable t start =
    let rec go n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then n else go next
    in
    go start

  (** Drop all volatile runtime state (reclamation epochs and limbo
      lists, deferred retirements).  Models the process restart that
      precedes any recovery: this state does not survive a real crash,
      and in the simulator it must be discarded explicitly.  [recover]
      calls it; call it directly before decentralized
      [recover_thread]-style recovery. *)
  let reset_volatile t =
    Dssq_ebr.Ebr.clear t.ebr;
    Array.iter (fun l -> l := []) t.deferred

  (** Centralized single-threaded recovery, run after the crash semantics
      have been applied to the heap and before application threads
      resume.  Extends Figure 6 with free-list reconstruction (the paper:
      "extended straightforwardly to prevent memory leaks"). *)
  let recover t =
    Trace.recovery_begin ();
    reset_volatile t;
    let old_head = M.read t.head in
    (* line 64: set of queue nodes reachable from head *)
    let all_nodes = reachable_from t old_head in
    (* lines 65-66 *)
    M.write t.tail (last_reachable t old_head);
    M.flush t.tail;
    (* lines 67-69: advance head past the marked prefix *)
    let rec advance n =
      let next = M.read (Pool.next t.pool n) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) <> -1 then
        advance next
      else n
    in
    let new_head = advance old_head in
    M.write t.head new_head;
    M.flush t.head;
    (* lines 70-76: complete detectability state of effective enqueues *)
    for i = 0 to t.nthreads - 1 do
      let x = M.read t.x.(i) in
      let d = Tagged.idx x in
      if
        d <> Tagged.null
        && Tagged.has x Tagged.enq_prep
        && not (Tagged.has x Tagged.enq_compl)
        && (all_nodes.(d) (* enqueued and still in the linked list *)
           || M.read (Pool.deq_tid t.pool d) <> -1
              (* enqueued, dequeued, already marked *))
      then begin
        M.write t.x.(i) (Tagged.with_tag x Tagged.enq_compl);
        M.flush t.x.(i)
      end
    done;
    (* Our extension: rebuild the volatile free lists.  Keep nodes that
       are (a) reachable from the new head, or (b) referenced by some X
       entry (resolve may read them), or (c) the successor of a node
       referenced by a DEQ-prepared X entry (resolve-dequeue reads
       X->next).  Kept-but-unreachable nodes are handed to the deferred
       retirement of their referencing thread so they are reclaimed once
       that thread's X moves on. *)
    let live = reachable_from t new_head in
    let keep = Array.copy live in
    Array.iter (fun l -> l := []) t.deferred;
    (* Several X entries can reference the SAME node (two dequeuers that
       saved the same predecessor; a DEQ successor that is another
       thread's enqueued node).  Defer each node exactly once, or it
       would be retired and freed twice — and a double-freed node gets
       allocated twice and linked into the list in two places. *)
    let deferred_once = Array.make (t.pool.Pool.capacity + 1) false in
    let defer_to i n =
      keep.(n) <- true;
      if (not live.(n)) && not deferred_once.(n) then begin
        deferred_once.(n) <- true;
        t.deferred.(i) := n :: !(t.deferred.(i))
      end
    in
    for i = 0 to t.nthreads - 1 do
      let x = M.read t.x.(i) in
      let d = Tagged.idx x in
      if d <> Tagged.null then begin
        defer_to i d;
        if Tagged.has x Tagged.deq_prep then begin
          let succ = M.read (Pool.next t.pool d) in
          if succ <> Tagged.null then defer_to i succ
        end
      end
    done;
    Pool.rebuild_free_lists t.pool ~keep:(fun i -> keep.(i));
    M.drain ();
    Trace.recovery_end ()

  (** Decentralized recovery (Section 3.3): thread [tid] repairs only its
      own X entry, with no centralized phase and no auxiliary state.
      Safe to run concurrently with other threads' recovery and normal
      operations (the thread is EBR-protected while it scans). *)
  let recover_thread t ~tid =
    if Trace.is_on () then Trace.set_tid tid;
    Trace.recovery_begin ();
    let x = M.read t.x.(tid) in
    if
      Tagged.idx x <> Tagged.null
      && Tagged.has x Tagged.enq_prep
      && not (Tagged.has x Tagged.enq_compl)
    then begin
      let d = Tagged.idx x in
      Dssq_ebr.Ebr.enter t.ebr ~tid;
      let marked () = M.read (Pool.deq_tid t.pool d) <> -1 in
      let in_list () =
        let rec go n =
          n = d || (n <> Tagged.null && go (M.read (Pool.next t.pool n)))
        in
        go (M.read t.head)
      in
      let took_effect = marked () || in_list () || marked () in
      Dssq_ebr.Ebr.exit t.ebr ~tid;
      if took_effect then begin
        M.write t.x.(tid) (Tagged.with_tag x Tagged.enq_compl);
        M.flush t.x.(tid)
      end
    end;
    M.drain ();
    Trace.recovery_end ()

  (* ------------------------------------------------------------------ *)
  (* Introspection (tests and debugging; quiescent use only)             *)
  (* ------------------------------------------------------------------ *)

  (** Structural invariants that must hold right after [recover] (used by
      the crash-injection tests).  Returns human-readable violations. *)
  let recovered_violations t =
    let violations = ref [] in
    let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let head = M.read t.head in
    let tail = M.read t.tail in
    (* Walk the list once. *)
    let rec walk n acc =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then List.rev (n :: acc) else walk next (n :: acc)
    in
    let chain = walk head [] in
    let last = List.nth chain (List.length chain - 1) in
    if tail <> last then add "tail %d is not the last reachable node %d" tail last;
    (* After recovery, no node after head may be marked (head was advanced
       past the marked prefix). *)
    List.iteri
      (fun i n ->
        if i > 0 && M.read (Pool.deq_tid t.pool n) <> -1 then
          add "marked node %d still reachable after head" n)
      chain;
    (* X entries tagged ENQ_PREP|ENQ_COMPL must reference a node that is
       either still in the list or marked as dequeued. *)
    let in_chain n = List.mem n chain in
    for i = 0 to t.nthreads - 1 do
      let x = M.read t.x.(i) in
      let d = Tagged.idx x in
      if
        Tagged.has x Tagged.enq_prep
        && Tagged.has x Tagged.enq_compl
        && d <> Tagged.null
        && (not (in_chain d))
        && M.read (Pool.deq_tid t.pool d) = -1
      then add "X[%d] claims completion but node %d neither queued nor dequeued" i d
    done;
    List.rev !violations

  let to_list t =
    let rec skip_marked n =
      let next = M.read (Pool.next t.pool n) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) <> -1 then
        skip_marked next
      else n
    in
    let rec collect acc n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then List.rev acc
      else collect (M.read (Pool.value t.pool next) :: acc) next
    in
    collect [] (skip_marked (M.read t.head))

  let free_count t = Pool.free_count t.pool
end
