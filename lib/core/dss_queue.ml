(** The DSS queue (Section 3): a lock-free, strictly linearizable,
    detectable FIFO queue for persistent memory with a volatile cache.

    The algorithm extends Michael & Scott's lock-free queue and Friedman
    et al.'s durable queue with a per-thread word [X] that realizes the
    [A]/[R] components of the detectable sequential specification
    [D<queue>]: [prep-*] records the intended operation in [X],
    [exec-*] performs it and marks completion in [X], and [resolve]
    decodes [X] (plus the persistent list structure) into
    [(A[p], R[p])].  Line numbers in comments refer to Figures 3, 4
    and 6 of the paper.

    The announce words, deferred-retirement bookkeeping and the generic
    recovery passes (complete effective insertions, rebuild free lists)
    are the shared {!Detectable.Linked} scaffolding; this file owns the
    queue-specific structural code — the Michael-Scott swing, the
    [deqThreadID] claim, and the [took_effect] predicate.

    Memory reclamation (not in the paper's pseudocode, but used in its
    evaluation): dequeued sentinels are retired through epoch-based
    reclamation.  A node still referenced by the calling thread's own
    [X] entry has its retirement deferred until [X] moves on, so that
    [resolve] never chases a recycled pointer. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module L = Detectable.Linked (M)
  module Pool = L.Pool
  module A = L.Announce
  module Trace = Dssq_obs.Trace
  module Profile = Dssq_obs.Profile

  let name = "dss-queue"

  (* Operation-level trace events.  Guarded at each call site so argument
     strings are never built when tracing is off; [set_tid] pins the
     attribution for direct-mode (non-simulated) callers, where the
     scheduler is not around to do it. *)
  let trace_begin ~tid op args =
    if Trace.is_on () then begin
      Trace.set_tid tid;
      Trace.op_begin op ~args
    end

  let trace_end op result = if Trace.is_on () then Trace.op_end op ~result

  let deq_result v =
    if v = Queue_intf.empty_value then "empty" else string_of_int v

  type t = {
    an : A.t; (* announce words + pool + reclamation (shared scaffolding) *)
    head : int M.cell;
    tail : int M.cell;
    combine : bool;
        (* flat-combining batch epochs: the backend buffers flushes in
           per-thread store-order FIFOs (Heap combine mode), which
           subsumes the intra-thread hardening drains — those are elided
           below, so enqueues share one persist epoch.  Cross-thread
           orderings (claim attribution, mark-before-head-advance,
           reclamation) keep their drains: the FIFO argument is
           per-thread only. *)
  }

  let create ?wal ?pool_id ?(reclaim = true) ?(combine = false) ~nthreads
      ~capacity () =
    let an =
      A.create ?wal ?pool_id ~xname:"X" ~reclaim ~combine ~nthreads ~capacity ()
    in
    let sentinel = Pool.alloc an.A.pool ~tid:0 ~value:0 in
    M.flush (Pool.value an.A.pool sentinel);
    M.flush (Pool.next an.A.pool sentinel);
    let head =
      M.alloc ~name:"head" ~placement:Dssq_memory.Memory_intf.Line.Isolated
        sentinel
    in
    let tail =
      M.alloc ~name:"tail" ~placement:Dssq_memory.Memory_intf.Line.Isolated
        sentinel
    in
    M.flush head;
    M.flush tail;
    M.drain ();
    { an; head; tail; combine }

  let of_config ?wal ?pool_id (cfg : Queue_intf.config) =
    create ?wal ?pool_id ~reclaim:cfg.reclaim ~combine:cfg.combine
      ~nthreads:cfg.nthreads ~capacity:cfg.capacity ()

  let pool t = t.an.A.pool
  let x t = t.an.A.x
  let nthreads t = t.an.A.nthreads

  (* ------------------------------------------------------------------ *)
  (* Enqueue (Figure 3)                                                  *)
  (* ------------------------------------------------------------------ *)

  (* Allocate and persist a fresh node holding [v] (FLUSH(node), line 2;
     per-word flushes here, see DESIGN.md on flush granularity). *)
  let make_node t ~tid v =
    let node = A.make_node t.an ~objname:"Dss_queue" ~tid v in
    M.flush (Pool.next (pool t) node);
    node

  let prep_enqueue t ~tid v =
    trace_begin ~tid "prep-enqueue" (string_of_int v);
    let sp = Profile.begin_span ~tid Profile.Announce in
    A.release_deferred t.an ~tid;
    let node = make_node t ~tid v in
    (* lines 3-4; persistence point: prep durable on return (a crash
       after prep must resolve to the prepared operation) *)
    A.announce t.an ~tid (Tagged.with_tag node Tagged.enq_prep);
    Profile.end_span ~tid sp;
    trace_end "prep-enqueue" "ok"

  (* Body shared by exec-enqueue and the non-detectable enqueue; the
     latter omits every access to X (Section 3.1). *)
  let enqueue_node t ~tid ~detectable node =
    Dssq_ebr.Ebr.enter t.an.A.ebr ~tid;
    let rec loop () =
      let last = M.read t.tail in
      let next = M.read (Pool.next (pool t) last) in
      if last = M.read t.tail then
        if next = Tagged.null then begin
          (* at tail: line 11 *)
          if
            M.cas (Pool.next (pool t) last) ~expected:Tagged.null ~desired:node
          then begin
            M.flush (Pool.next (pool t) last) (* line 12 *);
            (* px86 hardening: the link flush must be durable before the
               completion tag can persist — the tag's write dirties X and
               a crash can write X back (cache eviction) while the link
               flush still sits in the persist buffer, persisting a
               completion claim for a node that never became reachable.
               No-op under sc (eager flushes already drained).  NOT
               elidable under combine: buffered persistency orders
               flushes of {e distinct} lines only through a drain (a
               line writeback can overtake the FIFO), so the X line can
               persist the completion tag while the link flush is lost —
               durable Done evidence for a node that was never linked
               (model-checker counterexample for the elision:
               queue/enq-enq/crash/ls1/fc, recovered-structure check
               "X[1] claims completion but node neither queued nor
               dequeued"). *)
            M.drain ();
            if detectable then
              A.tag t.an ~tid Tagged.enq_compl (* lines 13-14 *);
            ignore (M.cas t.tail ~expected:last ~desired:node) (* line 15 *)
          end
          else loop ()
        end
        else begin
          (* help another enqueuing thread: lines 18-19.  px86
             hardening: the helped link must be durable before the tail
             can advance — once tail moves, this thread links its own
             node after [next], and a crash may persist that second link
             while the first still sits in the helper's persist buffer,
             leaving a persisted next-chain that skips into nodes the
             recovered structure never linked (re-execution then links
             them twice and the chain cycles).  No-op under sc. *)
          M.flush (Pool.next (pool t) last);
          (* Under combine: a helped link persisting early is harmless
             (its owner's announce is already durable), and a lost one
             truncates the recovered chain at worst — the owner retries
             after stale-next normalization.  Elide the barrier. *)
          if not t.combine then M.drain ();
          ignore (M.cas t.tail ~expected:last ~desired:next);
          loop ()
        end
      else loop ()
    in
    loop ();
    (* Persistence point: the operation's flushes (link, X completion)
       must land before the enqueue reports completion — and before the
       node can enter reclamation, so drain while still EBR-protected.
       NOT elidable under combine: once this returns, the operation is
       complete to the caller, and strict linearizability requires a
       crash from here on to resolve it Done (model-checker
       counterexample for the elision: queue/enq-deq/crash/ls1/fc — the
       buffered completion tag is lost and resolve reports an
       already-completed enqueue as pending).  Combine still elides the
       intra-operation hazard drains above; this one drain is the
       operation's batch-epoch close. *)
    M.drain ();
    Dssq_ebr.Ebr.exit t.an.A.ebr ~tid

  let exec_enqueue t ~tid =
    trace_begin ~tid "exec-enqueue" "";
    let sp = Profile.begin_span ~tid Profile.Exec in
    let node = Tagged.idx (M.read (x t).(tid)) in
    enqueue_node t ~tid ~detectable:true node;
    Profile.end_span ~tid sp;
    trace_end "exec-enqueue" "ok"

  let enqueue t ~tid v =
    trace_begin ~tid "enqueue" (string_of_int v);
    let sp = Profile.begin_span ~tid Profile.Exec in
    let node = make_node t ~tid v in
    (* px86 hardening: the detectable path gets this durability point
       from [A.announce]; the plain path must drain the node-field
       flushes itself before the link CAS can persist a pointer to a
       node whose contents were lost.  No-op under sc; kept under
       combine — buffered persistency does not order distinct lines
       without a drain, so the link line could persist ahead of the
       node-field flushes. *)
    M.drain ();
    enqueue_node t ~tid ~detectable:false node;
    Profile.end_span ~tid sp;
    trace_end "enqueue" "ok"

  (* ------------------------------------------------------------------ *)
  (* Dequeue (Figure 4)                                                  *)
  (* ------------------------------------------------------------------ *)

  let prep_dequeue t ~tid =
    trace_begin ~tid "prep-dequeue" "";
    let sp = Profile.begin_span ~tid Profile.Announce in
    A.release_deferred t.an ~tid;
    (* lines 32-33; persistence point, as in prep_enqueue *)
    A.announce t.an ~tid Tagged.deq_prep;
    Profile.end_span ~tid sp;
    trace_end "prep-dequeue" "ok"

  (* Body shared by exec-dequeue and the non-detectable dequeue.  The
     non-detectable variant omits X accesses and marks deqThreadID with
     [tid lor nondet_mark] instead of the bare tid. *)
  let dequeue_body t ~tid ~detectable =
    Dssq_ebr.Ebr.enter t.an.A.ebr ~tid;
    let mark = if detectable then tid else tid lor L.nondet_mark in
    let rec loop () =
      let first = M.read t.head in
      let last = M.read t.tail in
      let next = M.read (Pool.next (pool t) first) in
      if first = M.read t.head then
        if first = last then
          if next = Tagged.null then begin
            (* empty queue: lines 40-43 *)
            if detectable then A.tag t.an ~tid Tagged.empty;
            Queue_intf.empty_value
          end
          else begin
            (* tail is lagging: lines 44-45.  The flush guarantees that
               any node reachable once tail moves has a persisted link;
               px86 hardening: drain so the guarantee holds before the
               advance (see the enqueue help path).  No-op under sc;
               elided under combine like the enqueue help path. *)
            M.flush (Pool.next (pool t) last);
            if not t.combine then M.drain ();
            ignore (M.cas t.tail ~expected:last ~desired:next);
            loop ()
          end
        else begin
          if detectable then begin
            (* save predecessor of the node to be dequeued: lines 47-48 *)
            A.post t.an ~tid (Tagged.with_tag first Tagged.deq_prep);
            (* px86 hardening: the posted predecessor must be durable
               before the claim mark can persist — the claim CAS dirties
               deq_tid, and a crash can write that line back while the
               X post's flush still sits in the persist buffer, leaving
               a persisted claim that no announcement attributes (the
               value is consumed by nobody).  No-op under sc. *)
            M.drain ()
          end;
          if
            M.cas (Pool.deq_tid (pool t) next) ~expected:(-1) ~desired:mark
            (* line 49 *)
          then begin
            M.flush (Pool.deq_tid (pool t) next) (* line 50 *);
            (* px86 hardening: the claim mark must be durable before the
               head advance can persist, or a crash strands a persisted
               head past an unmarked node.  No-op under sc. *)
            M.drain ();
            ignore (M.cas t.head ~expected:first ~desired:next) (* line 51 *);
            let v = M.read (Pool.value (pool t) next) in
            (* Persist the head advance before the old sentinel can be
               recycled, so a reused node is never reachable from the
               persisted head (the paper's pseudocode omits reclamation;
               this flush is what makes EBR reuse crash-safe — see
               DESIGN.md deviations). *)
            if t.an.A.reclaim then M.flush t.head;
            (* The old sentinel [first] is now unreachable.  If X[tid]
               references it (detectable path), resolve may still need
               it, so defer its retirement until X moves on. *)
            if detectable then A.defer_retire t.an ~tid first
            else A.retire t.an ~tid first;
            v
          end
          else if M.read t.head = first then begin
            (* help another dequeuing thread: lines 53-55 (same
               mark-before-head-advance ordering as above) *)
            M.flush (Pool.deq_tid (pool t) next);
            M.drain ();
            ignore (M.cas t.head ~expected:first ~desired:next);
            loop ()
          end
          else loop ()
        end
      else loop ()
    in
    let v = loop () in
    (* Persistence point — before [Ebr.exit], so the head-advance flush
       lands before the old sentinel can be recycled and reused. *)
    M.drain ();
    Dssq_ebr.Ebr.exit t.an.A.ebr ~tid;
    v

  let exec_dequeue t ~tid =
    trace_begin ~tid "exec-dequeue" "";
    let sp = Profile.begin_span ~tid Profile.Exec in
    let v = dequeue_body t ~tid ~detectable:true in
    Profile.end_span ~tid sp;
    trace_end "exec-dequeue" (deq_result v);
    v

  let dequeue t ~tid =
    trace_begin ~tid "dequeue" "";
    let sp = Profile.begin_span ~tid Profile.Exec in
    let v = dequeue_body t ~tid ~detectable:false in
    Profile.end_span ~tid sp;
    trace_end "dequeue" (deq_result v);
    v

  (* ------------------------------------------------------------------ *)
  (* Detection (resolve, resolve-enqueue, resolve-dequeue)               *)
  (* ------------------------------------------------------------------ *)

  let resolve_dequeue t ~tid x =
    if x = Tagged.deq_prep then Queue_intf.Deq_pending (* lines 56-57 *)
    else if x = Tagged.deq_prep lor Tagged.empty then Queue_intf.Deq_empty
      (* lines 58-59 *)
    else begin
      let first = Tagged.idx x in
      let next = M.read (Pool.next (pool t) first) in
      if next <> Tagged.null && M.read (Pool.deq_tid (pool t) next) = tid then
        Queue_intf.Deq_done (M.read (Pool.value (pool t) next))
        (* lines 60-61 *)
      else Queue_intf.Deq_pending (* lines 62-63 *)
    end

  let resolve t ~tid =
    if Trace.is_on () then Trace.set_tid tid;
    let sp = Profile.begin_span ~tid Profile.Resolve in
    let xw = M.read (x t).(tid) in
    let r =
      if Tagged.has xw Tagged.enq_prep then
        A.resolve_push t.an xw (* lines 20-22, 29, 31 *)
      else if Tagged.has xw Tagged.deq_prep then resolve_dequeue t ~tid xw
        (* lines 23-25 *)
      else Queue_intf.Nothing (* lines 26-27 *)
    in
    Profile.end_span ~tid sp;
    if Trace.is_on () then
      Trace.resolve
        ~outcome:(Format.asprintf "%a" Queue_intf.pp_resolved r);
    r

  (* ------------------------------------------------------------------ *)
  (* Recovery (Figure 6 / Appendix A)                                    *)
  (* ------------------------------------------------------------------ *)

  module R = L.Recovery

  let last_reachable t start =
    let rec go n =
      let next = M.read (Pool.next (pool t) n) in
      if next = Tagged.null then n else go next
    in
    go start

  (** Drop all volatile runtime state (reclamation epochs and limbo
      lists, deferred retirements).  Models the process restart that
      precedes any recovery; [recover] calls it, call it directly before
      decentralized [recover_thread]-style recovery. *)
  let reset_volatile t = A.reset_volatile t.an

  (* The extra-pin closure recovery hands to [R.rebuild]; the audit must
     use the same one so both compute the same partition. *)
  let extra_pins t ~defer i xw =
    if Tagged.has xw Tagged.deq_prep then begin
      let succ = M.read (Pool.next (pool t) (Tagged.idx xw)) in
      if succ <> Tagged.null then defer i succ
    end

  (** Centralized single-threaded recovery, run after the crash semantics
      have been applied to the heap and before application threads
      resume.  Extends Figure 6 with free-list reconstruction (the paper:
      "extended straightforwardly to prevent memory leaks"). *)
  let recover t =
    Trace.recovery_begin ();
    let sp = Profile.begin_span ~tid:(-1) Profile.Recovery_scan in
    reset_volatile t;
    let old_head = M.read t.head in
    (* line 64: set of queue nodes reachable from head *)
    let all_nodes = R.reachable_from t.an old_head in
    (* lines 65-66 *)
    M.write t.tail (last_reachable t old_head);
    M.flush t.tail;
    (* lines 67-69: advance head past the marked prefix *)
    let rec advance n =
      let next = M.read (Pool.next (pool t) n) in
      if next <> Tagged.null && M.read (Pool.deq_tid (pool t) next) <> -1 then
        advance next
      else n
    in
    let new_head = advance old_head in
    M.write t.head new_head;
    M.flush t.head;
    (* lines 70-76: complete detectability state of effective enqueues —
       the queue's [took_effect]: enqueued and still in the linked list,
       or enqueued, dequeued and already marked *)
    R.complete_effective t.an ~took_effect:(fun d ->
        all_nodes.(d) || M.read (Pool.deq_tid (pool t) d) <> -1);
    (* Stale-next normalization (combine mode, harmless otherwise): an
       enqueue whose link was lost at the crash will be re-executed, but
       its node's [next] field may hold a durable pointer from an
       earlier linking attempt.  Re-linking such a node at the new tail
       with a non-null [next] would splice the stale successor chain
       into the queue.  Clear [next] on every retry candidate — ENQ-
       prepared, uncompleted, not reachable, unmarked — so the retry
       starts from a null link like a fresh node. *)
    let xs = x t in
    for i = 0 to Array.length xs - 1 do
      let xw = M.read xs.(i) in
      if
        Tagged.idx xw <> Tagged.null
        && Tagged.has xw Tagged.enq_prep
        && not (Tagged.has xw Tagged.enq_compl)
      then begin
        let d = Tagged.idx xw in
        if
          (not all_nodes.(d))
          && M.read (Pool.deq_tid (pool t) d) = -1
          && M.read (Pool.next (pool t) d) <> Tagged.null
        then begin
          M.write (Pool.next (pool t) d) Tagged.null;
          M.flush (Pool.next (pool t) d)
        end
      end
    done;
    (* Rebuild the volatile free lists; beyond the X-referenced nodes the
       generic pass keeps, a DEQ-prepared X entry also pins its saved
       predecessor's successor (resolve-dequeue reads X->next). *)
    R.rebuild t.an ~new_root:new_head ~extra:(fun ~defer i xw ->
        extra_pins t ~defer i xw);
    M.drain ();
    Profile.end_span ~tid:(-1) sp;
    Trace.recovery_end ()

  (** Post-recovery leak audit (read-only): free lists vs the kept set
      — reachable from head, X-referenced, DEQ successors.  See
      {!Node_pool.audit_report}. *)
  let audit t =
    R.audit t.an ~new_root:(M.read t.head) ~extra:(fun ~defer i xw ->
        extra_pins t ~defer i xw)

  (** Decentralized recovery (Section 3.3): thread [tid] repairs only its
      own X entry, with no centralized phase and no auxiliary state.
      Safe to run concurrently with other threads' recovery and normal
      operations (the thread is EBR-protected while it scans). *)
  let recover_thread t ~tid =
    if Trace.is_on () then Trace.set_tid tid;
    Trace.recovery_begin ();
    let sp = Profile.begin_span ~tid Profile.Recovery_scan in
    let xw = M.read (x t).(tid) in
    if
      Tagged.idx xw <> Tagged.null
      && Tagged.has xw Tagged.enq_prep
      && not (Tagged.has xw Tagged.enq_compl)
    then begin
      let d = Tagged.idx xw in
      Dssq_ebr.Ebr.enter t.an.A.ebr ~tid;
      let marked () = M.read (Pool.deq_tid (pool t) d) <> -1 in
      let in_list () =
        let rec go n =
          n = d || (n <> Tagged.null && go (M.read (Pool.next (pool t) n)))
        in
        go (M.read t.head)
      in
      let took_effect = marked () || in_list () || marked () in
      Dssq_ebr.Ebr.exit t.an.A.ebr ~tid;
      if took_effect then A.post t.an ~tid (Tagged.with_tag xw Tagged.enq_compl)
    end;
    M.drain ();
    Profile.end_span ~tid sp;
    Trace.recovery_end ()

  (* ------------------------------------------------------------------ *)
  (* Introspection (tests and debugging; quiescent use only)             *)
  (* ------------------------------------------------------------------ *)

  let stats t = A.stats t.an ~state_words:2 (* head + tail *)

  (** Structural invariants that must hold right after [recover] (used by
      the crash-injection tests).  Returns human-readable violations. *)
  let recovered_violations t =
    let violations = ref [] in
    let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let head = M.read t.head in
    let tail = M.read t.tail in
    (* Walk the list once. *)
    let rec walk n acc =
      let next = M.read (Pool.next (pool t) n) in
      if next = Tagged.null then List.rev (n :: acc) else walk next (n :: acc)
    in
    let chain = walk head [] in
    let last = List.nth chain (List.length chain - 1) in
    if tail <> last then add "tail %d is not the last reachable node %d" tail last;
    (* After recovery, no node after head may be marked (head was advanced
       past the marked prefix). *)
    List.iteri
      (fun i n ->
        if i > 0 && M.read (Pool.deq_tid (pool t) n) <> -1 then
          add "marked node %d still reachable after head" n)
      chain;
    (* X entries tagged ENQ_PREP|ENQ_COMPL must reference a node that is
       either still in the list or marked as dequeued. *)
    let in_chain n = List.mem n chain in
    for i = 0 to nthreads t - 1 do
      let xw = M.read (x t).(i) in
      let d = Tagged.idx xw in
      if
        Tagged.has xw Tagged.enq_prep
        && Tagged.has xw Tagged.enq_compl
        && d <> Tagged.null
        && (not (in_chain d))
        && M.read (Pool.deq_tid (pool t) d) = -1
      then add "X[%d] claims completion but node %d neither queued nor dequeued" i d
    done;
    List.rev !violations

  let to_list t =
    let rec skip_marked n =
      let next = M.read (Pool.next (pool t) n) in
      if next <> Tagged.null && M.read (Pool.deq_tid (pool t) next) <> -1 then
        skip_marked next
      else n
    in
    let rec collect acc n =
      let next = M.read (Pool.next (pool t) n) in
      if next = Tagged.null then List.rev acc
      else collect (M.read (Pool.value (pool t) next) :: acc) next
    in
    collect [] (skip_marked (M.read t.head))

  let free_count t = Pool.free_count (pool t)
end
