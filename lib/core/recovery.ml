(** Whole-system recovery: one entry point that re-attaches every
    registered object after a crash.

    Before this module, recovery was strictly per-object: each
    structure rebuilt its own free lists from whatever volatile
    references the test harness happened to still hold.  A real
    restart holds nothing volatile, so the system needs three durable
    pieces, all owned here:

    - a checksummed write-ahead log ({!Dssq_pmem.Wal}) that records
      allocation/free intents and registrations before they take
      effect (log-then-link);
    - a persistent root directory ({!Dssq_pmem.Roots}) mapping object
      names to their registration slots, so the recovered process can
      find its objects again;
    - a registration list pairing each named object with its [recover]
      procedure and a post-recovery leak [audit].

    {!Make.reattach} is the crash-to-running path: replay the WAL
    (dropping a detectably-torn tail, refusing corruption), re-attach
    the root directory, run every object's [recover] in registration
    order, then audit every pool and fail loudly on a leak.
    {!Make.fsck} is the strict read-mostly variant behind [dssq fsck]:
    verification errors — including torn tails — become reportable
    errors instead of silent repairs. *)

module Metrics = Dssq_obs.Metrics

(** Per-object leak audit summary, as reported by {!report}. *)
type audit = { live : int; free : int; leaked : int }

let no_audit = { live = 0; free = 0; leaked = 0 }

let audit_of_pool (a : Node_pool.audit_report) =
  {
    live = a.Node_pool.kept_nodes;
    free = a.Node_pool.free_nodes;
    (* dual-membership is as fatal as a leak: count it as one *)
    leaked = List.length a.Node_pool.leaked + List.length a.Node_pool.dual;
  }

type object_report = { o_name : string; o_audit : audit }

(** What one {!Make.reattach} did. *)
type report = {
  replayed : int;  (** valid WAL records replayed *)
  torn_dropped : int;  (** torn tail records detected and dropped *)
  in_flight : int;  (** logged alloc intents with no matching free *)
  roots_attached : int;  (** durable root-directory entries found *)
  objects : object_report list;  (** per-object recovery + audit *)
  leaked_total : int;  (** sum of per-object leaks — must be 0 *)
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>wal: %d records replayed, %d torn dropped, %d alloc intents \
     in flight@,roots: %d attached@,%a@,leaked nodes: %d@]"
    r.replayed r.torn_dropped r.in_flight r.roots_attached
    (Format.pp_print_list (fun ppf o ->
         Format.fprintf ppf "  %-16s live %d  free %d  leaked %d" o.o_name
           o.o_audit.live o.o_audit.free o.o_audit.leaked))
    r.objects r.leaked_total

let m_leaked = Metrics.counter "leaked_nodes"

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Wal = Dssq_pmem.Wal.Make (M)
  module Roots = Dssq_pmem.Roots.Make (M)

  type entry = {
    e_name : string;
    e_recover : unit -> unit;
    e_audit : unit -> audit;
  }

  type t = {
    wal : Wal.t;
    roots : Roots.t;
    mutable objects : entry list;  (* reverse registration order *)
    mutable next_pool_id : int;
  }

  let create ?(nthreads = 1) ?(wal_lane_capacity = 256) ?(root_capacity = 16)
      () =
    {
      wal = Wal.create ~lanes:(max 1 nthreads) ~lane_capacity:wal_lane_capacity ();
      roots = Roots.create ~capacity:root_capacity ();
      objects = [];
      next_pool_id = 0;
    }

  let wal t = t.wal
  let roots t = t.roots

  (** Distinct id for each pool sharing this system's log. *)
  let fresh_pool_id t =
    let id = t.next_pool_id in
    t.next_pool_id <- id + 1;
    id

  (** Register a named object: a root-directory entry is made durable
      (with a WAL record logged first — the directory itself follows
      log-then-link), and [recover]/[audit] run on every [reattach],
      in registration order.  Registration happens at setup time, from
      a single thread (lane 0). *)
  let register t ~name ?(audit = fun () -> no_audit) recover =
    Wal.append t.wal ~lane:0 ~kind:Dssq_pmem.Wal.Codec.kind_root
      ~a:(Roots.count t.roots) ~b:0;
    let idx = Roots.register t.roots ~name ~value:(List.length t.objects) in
    t.objects <- { e_name = name; e_recover = recover; e_audit = audit }
                 :: t.objects;
    idx

  let registered t = List.rev_map (fun e -> e.e_name) t.objects

  (* Alloc intents that never saw a matching free: the crash landed
     between the logged intent and the node's retirement.  Recovery
     handles them by construction (the rebuild returns unreachable
     nodes to the free lists); the count is reported so the corpus can
     see crashes really do land mid-alloc. *)
  let count_in_flight records =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let key = (r.Dssq_pmem.Wal.r_a, r.r_b, r.r_lane) in
        if r.r_kind = Dssq_pmem.Wal.Codec.kind_alloc then
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        else if r.r_kind = Dssq_pmem.Wal.Codec.kind_free then
          Hashtbl.replace tbl key (Option.value ~default:0 (Hashtbl.find_opt tbl key) - 1))
      records;
    Hashtbl.fold (fun _ n acc -> acc + max 0 n) tbl 0

  (** The single crash-to-running entry point.  Raises
      [Dssq_pmem.Wal.Corrupted] on a corrupt log and [Failure] on a
      corrupt root directory; a successful return with
      [leaked_total = 0] certifies no node was lost.  When [truncate]
      (default) the WAL is persistently reset afterwards — the rebuilt
      free lists are a checkpoint superseding the old intents — which
      also makes a second crash during normal operation replay only
      post-recovery records. *)
  let reattach ?(truncate = true) t =
    let records, torn_dropped = Wal.replay t.wal in
    let roots_attached = Roots.reattach t.roots in
    let objects =
      List.rev_map
        (fun e ->
          e.e_recover ();
          { o_name = e.e_name; o_audit = e.e_audit () })
        t.objects
    in
    let leaked_total =
      List.fold_left (fun acc o -> acc + o.o_audit.leaked) 0 objects
    in
    for _ = 1 to leaked_total do
      Metrics.incr m_leaked
    done;
    if truncate then Wal.truncate t.wal;
    {
      replayed = List.length records;
      torn_dropped;
      in_flight = count_in_flight records;
      roots_attached;
      objects;
      leaked_total;
    }

  (** Validate-and-report, the strict mode behind [dssq fsck]: any WAL
      irregularity (torn tail included), root-directory damage, or
      post-recovery leak is an [Error] instead of a repair.  On a
      clean log this still runs the full recovery (without truncating)
      so the report carries real audit numbers. *)
  let fsck t =
    match Wal.verify t.wal with
    | Error e -> Error e
    | Ok _ -> (
        match Roots.verify t.roots with
        | Error e -> Error e
        | Ok _ -> (
            match reattach ~truncate:false t with
            | exception Dssq_pmem.Wal.Corrupted { lane; slot } ->
                Error
                  (Printf.sprintf "wal: lane %d corrupt at slot %d" lane slot)
            | exception Failure e -> Error e
            | r ->
                if r.leaked_total > 0 then
                  Error
                    (Printf.sprintf
                       "audit: %d node(s) leaked after recovery"
                       r.leaked_total)
                else Ok r))
end
