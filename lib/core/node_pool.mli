(** Pre-allocated persistent queue-node pools with thread-local free
    lists (the paper's evaluation methodology, Section 4).  A node is a
    triple of persistent words — value, next (0 = NULL), and the
    [deqThreadID] claim mark (-1 = unmarked), laid out as one
    line-aligned block per node so a single flush persists the whole
    node at realistic line sizes.  Node 0 is reserved as NULL; valid
    indices are [1 .. capacity].  Free lists are volatile,
    strictly thread-local, and rebuilt from the persistent structure
    after a crash.  Each free-list head is padded to a cache-line stride
    ({!Dssq_memory.Memory_intf.Padded}) so per-domain push/pop traffic on
    neighbouring shards does not false-share. *)

exception Pool_exhausted of int  (** carries the starved thread id *)

(** Post-recovery free-list audit: a correct recovery leaves [leaked]
    (nodes in neither the kept set nor any free list) and [dual]
    (nodes in both, or on two free lists) empty. *)
type audit_report = {
  kept_nodes : int;
  free_nodes : int;
  leaked : int list;
  dual : int list;
}

module Make (M : Dssq_memory.Memory_intf.S) : sig
  module Wal : module type of Dssq_pmem.Wal.Make (M)

  type t = {
    value : int M.cell array;
    next : int M.cell array;
    deq_tid : int M.cell array;
    capacity : int;
    nthreads : int;
    free_lists : int list Dssq_memory.Memory_intf.Padded.t array;
    wal : Wal.t option;
    pool_id : int;
  }

  val create :
    ?wal:Wal.t -> ?pool_id:int -> capacity:int -> nthreads:int -> unit -> t
  (** With [?wal], every alloc/free intent is appended (lane = calling
      thread, payload = node index and [pool_id]) and persisted before
      the node's state changes — the log-then-link discipline. *)

  val value : t -> int -> int M.cell
  val next : t -> int -> int M.cell
  val deq_tid : t -> int -> int M.cell

  val alloc : t -> tid:int -> value:int -> int
  (** Pop from [tid]'s free list; initializes value/next (volatile;
      callers flush per their persistence protocol).
      @raise Pool_exhausted when the free list is empty. *)

  val alloc_reclaiming :
    t -> ebr:int Dssq_ebr.Ebr.t -> tid:int -> value:int -> int
  (** Like {!alloc}, but paces reclamation forward and retries when the
      list is momentarily dry because retired nodes await their grace
      period (typical on oversubscribed cores). *)

  val free : t -> tid:int -> int -> unit
  (** Return a node to its home thread's free list; persists the
      unmarked state. *)

  val free_count : t -> int

  val rebuild_free_lists : t -> keep:(int -> bool) -> unit
  (** Post-crash: every node for which [keep] is false becomes available
      again, striped across threads, with its fields reset persistently. *)

  val audit : t -> keep:(int -> bool) -> audit_report
  (** Read-only partition check of [1 .. capacity] against [keep] and
      the current free lists; see {!audit_report}. *)
end
