(** Detectable swap object — [D<swap>]: a register whose write returns
    the value it displaced.  The canonical detectability case study
    (Lev-Ari, Attiya & Hendler's nesting-safe recoverable linearizable
    swap; see PAPERS.md): unlike a plain write, swap is {e not}
    idempotent-by-observation, so recovery genuinely needs the announce
    record to avoid returning two different displaced values for one
    invocation.  Everything here is {!Detectable.Make} over the
    two-operation specification. *)

module S = Dssq_spec.Specs.Swap

module Make (M : Dssq_memory.Memory_intf.S) = struct
  include
    Detectable.Make
      (struct
        type state = int
        type op = S.op
        type response = S.response

        let spec = S.spec ()
      end)
      (M)

  let pp_resolved fmt r =
    Detectable_intf.pp_resolved S.pp_op S.pp_response fmt r

  (* Typed non-detectable operations. *)

  let read t ~tid = match base t ~tid S.Read with S.Value v -> v

  let swap t ~tid v = match base t ~tid (S.Swap v) with S.Value prev -> prev

  (* Typed detectable pairs; [exec] itself (from the functor) returns the
     displaced value as [S.Value]. *)

  let prep_swap t ~tid v = prep t ~tid (S.Swap v)
  let exec_swap t ~tid = match exec t ~tid with S.Value prev -> prev
end
