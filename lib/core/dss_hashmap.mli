(** A detectable persistent hash map composed from detectable cells —
    open addressing with linear probing, every mutation a detectable CAS
    on one slot, plus one persistent announcement word per thread that
    lets [resolve] find and cross-check the slot operation.  No recovery
    procedure.

    Keys are in [1 .. 2^20-1], values in [0 .. 2^20-1]; capacity is
    fixed. *)

exception Full

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type t

  type resolved =
    | Nothing
    | Put_pending of int * int
    | Put_done of int * int
    | Remove_pending of int
    | Remove_done of int

  val pp_resolved : Format.formatter -> resolved -> unit

  val create : nthreads:int -> nbuckets:int -> unit -> t

  val find : t -> int -> int option
  val mem : t -> int -> bool

  val put : t -> tid:int -> int -> int -> unit
  (** Detectable insert-or-update; retry exactly-once via {!resolve}.
      @raise Full when no slot is available. *)

  val remove : t -> tid:int -> int -> unit
  (** Detectable removal; no-op if the key is absent. *)

  val resolve : t -> tid:int -> resolved

  val recover : t -> unit
  (** No-op: announcements and cells are self-describing. *)

  val stats : t -> Detectable_intf.stats
  (** Composed persistent footprint: one cell per bucket (state word +
      per-thread announce words) plus the map's own per-thread
      announcement word. *)

  val to_alist : t -> (int * int) list
  (** Sorted (key, value) pairs; quiescent use only. *)

  val length : t -> int
end
