(** Common interfaces for the queue implementations in this repository
    (the DSS queue and every baseline it is evaluated against). *)

let empty_value = -1
(** The EMPTY response of a dequeue on an empty queue (Section 3.2).
    Application values must therefore be non-negative. *)

(** Outcome of [resolve] (Axiom 3), i.e. the pair [(A[p], R[p])] of the
    detectable sequential specification instantiated for the queue type. *)
type resolved =
  | Nothing  (** (bottom, bottom): no operation was prepared *)
  | Enq_pending of int  (** (enqueue v, bottom): prepared, did not take effect *)
  | Enq_done of int  (** (enqueue v, OK): prepared and took effect *)
  | Deq_pending  (** (dequeue, bottom): prepared, did not take effect *)
  | Deq_empty  (** (dequeue, EMPTY): took effect on an empty queue *)
  | Deq_done of int  (** (dequeue, v): took effect, dequeued v *)

let pp_resolved fmt = function
  | Nothing -> Format.pp_print_string fmt "(_|_, _|_)"
  | Enq_pending v -> Format.fprintf fmt "(enqueue %d, _|_)" v
  | Enq_done v -> Format.fprintf fmt "(enqueue %d, OK)" v
  | Deq_pending -> Format.pp_print_string fmt "(dequeue, _|_)"
  | Deq_empty -> Format.pp_print_string fmt "(dequeue, EMPTY)"
  | Deq_done v -> Format.fprintf fmt "(dequeue, %d)" v

let equal_resolved (a : resolved) (b : resolved) = a = b

(** Shared constructor configuration, so every implementation (and the
    registry dispatching over all of them) is built the same way.
    [capacity] bounds the number of live queue nodes (per-thread
    pre-allocated pools, as in the paper's evaluation); [reclaim]
    recycles dequeued nodes through EBR where the implementation
    supports it and is ignored elsewhere.  [line_size] records the
    persist-line size (words per line) the run's memory backend is
    configured with — 1 is the legacy word-granular model; the harness
    that creates the backend is responsible for keeping the two in
    sync (see [Dssq_workload]).  [coalesce] likewise records whether
    the backend coalesces flushes into per-thread persist buffers
    (again the harness keeps backend and config in sync); it is
    carried for reporting — the algorithms themselves are oblivious,
    they just call [drain] at their persistence points.  [persistency]
    records the persistency model the backend runs under
    ({!Dssq_memory.Memory_intf.Persistency}): [Sc] is the legacy
    synchronous-flush model, [Px86] the buffered model where flushes
    enqueue into per-thread persist buffers and only drains (or the
    crash adversary) make them durable.  Like [line_size] and
    [coalesce] it is descriptive — this record is the {e single}
    interface carrying the memory-model axes; object signatures live in
    {!Detectable_intf.LINKED_CORE} and restate none of it. *)
type config = {
  nthreads : int;
  capacity : int;
  reclaim : bool;
  line_size : int;
  coalesce : bool;
  persistency : Dssq_memory.Memory_intf.Persistency.t;
  combine : bool;
      (** flat-combining batch epochs: the backend buffers flushes
          without auto-draining and the objects elide the hardening
          drains the buffer order subsumes (DESIGN.md §14); the harness
          keeps backend and config in sync like the other axes *)
}

let config ?(reclaim = true) ?(line_size = 1) ?(coalesce = false)
    ?(persistency = Dssq_memory.Memory_intf.Persistency.Sc)
    ?(combine = false) ~nthreads ~capacity () =
  if nthreads <= 0 then invalid_arg "Queue_intf.config: nthreads must be > 0";
  if capacity <= 0 then invalid_arg "Queue_intf.config: capacity must be > 0";
  if line_size <= 0 then
    invalid_arg "Queue_intf.config: line_size must be > 0";
  { nthreads; capacity; reclaim; line_size; coalesce; persistency; combine }

(** Closure record for heterogeneous dispatch in workloads and benches,
    hiding the functor-generated type [t]. *)
type ops = {
  name : string;
  enqueue : tid:int -> int -> unit;
  dequeue : tid:int -> int;
  d_enqueue : tid:int -> int -> unit;  (** prep + exec, detectable *)
  d_dequeue : tid:int -> int;  (** prep + exec, detectable *)
  recover : unit -> unit;  (** post-crash recovery; no-op if unsupported *)
  resolve : tid:int -> resolved;  (** [Nothing] if detection unsupported *)
  stats : unit -> (string * int) list;
      (** implementation-specific gauges (pool occupancy, …) surfaced
          without downcasting; [[]] for implementations without any.
          Quiescent use only. *)
}
