(** A detectable recoverable lock-free stack, [D<stack>], built with the
    DSS queue's methodology (Section 3) applied to Treiber's stack —
    demonstrating that the paper's recipe is not queue-specific.

    LIFO makes the claim protocol subtly harder than the queue's: in the
    queue, a dequeuer claims the successor of a validated head; in a
    stack, marking a node observed at the top is racy — a concurrent
    push can bury it first, and a mark on a buried node would "pop" it
    from the middle of the chain.  The claim therefore goes through the
    {e top word itself}: phase 1 CASes [top] from the unclaimed node to
    the node tagged with the claimer's mark (atomic with top-ness);
    phase 2 persists the mark into the node's [popper] field (the
    durable evidence resolve uses, analogous to [deqThreadID]); phase 3
    swings [top] to the successor and flushes it.  Anyone — pushers
    included — who finds the top claimed completes phases 2-3 first.

    The announce words, flush-before-publish posting and the generic
    Figure-6 recovery passes are the shared {!Detectable.Linked}
    scaffolding (as in {!Dss_queue}); this file owns the claim protocol
    and the stack's [took_effect] predicate. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module L = Detectable.Linked (M)
  module Pool = L.Pool
  module A = L.Announce
  module R = L.Recovery
  module Profile = Dssq_obs.Profile

  let name = "dss-stack"

  (* Top word: node index (bits 0-39) | mark+1 of the claimer (bits
     40-61); 0 in the high bits = unclaimed. *)
  let claim_shift = 40
  let idx_of w = w land Tagged.index_mask
  let claim_of w = (w lsr claim_shift) - 1 (* -1 = unclaimed *)
  let claimed w = w lsr claim_shift <> 0
  let with_claim node mark = node lor ((mark + 1) lsl claim_shift)

  type t = {
    an : A.t; (* pool (deq_tid doubles as the popper mark), X, EBR *)
    top : int M.cell;
    combine : bool;
        (* batch persist epochs: elide the same-thread hardening drains
           that store-order buffering subsumes (DESIGN.md §14); drains
           guarding against cross-thread top flushes stay *)
  }

  let create ?wal ?pool_id ?(reclaim = true) ?(combine = false) ~nthreads
      ~capacity () =
    let an =
      A.create ?wal ?pool_id ~xname:"Xs" ~reclaim ~combine ~nthreads ~capacity
        ()
    in
    let top =
      M.alloc ~name:"top" ~placement:Dssq_memory.Memory_intf.Line.Isolated
        Tagged.null
    in
    M.flush top;
    M.drain ();
    { an; top; combine }

  let pool t = t.an.A.pool
  let x t = t.an.A.x
  let make_node t ~tid v = A.make_node t.an ~objname:"Dss_stack" ~tid v

  (* Complete a claimed top [w]: persist the claimer's mark in the node,
     then swing top past it and persist the swing.  Idempotent; callable
     by anyone. *)
  let help_complete t w =
    let node = idx_of w in
    let mark = claim_of w in
    M.write (Pool.deq_tid (pool t) node) mark;
    M.flush (Pool.deq_tid (pool t) node);
    (* px86 hardening: the claimer's mark must be durable before the
       top swing can persist — a crash could write the swung top back
       while the mark's flush still sits in the persist buffer, removing
       a node no announcement accounts for.  No-op under sc. *)
    M.drain ();
    let next = M.read (Pool.next (pool t) node) in
    ignore (M.cas t.top ~expected:w ~desired:next);
    (* Persist the removal before the node can be recycled. *)
    M.flush t.top

  (* ------------------------------ push ------------------------------ *)

  let prep_push t ~tid v =
    let sp = Profile.begin_span ~tid Profile.Announce in
    A.release_deferred t.an ~tid;
    let node = make_node t ~tid v in
    (* Persistence point: prep is durable when it returns. *)
    A.announce t.an ~tid (Tagged.with_tag node Tagged.enq_prep);
    Profile.end_span ~tid sp

  let push_node t ~tid ~detectable node =
    Dssq_ebr.Ebr.enter t.an.A.ebr ~tid;
    let rec loop () =
      let w = M.read t.top in
      if claimed w then begin
        help_complete t w;
        loop ()
      end
      else begin
        M.write (Pool.next (pool t) node) (idx_of w);
        M.flush (Pool.next (pool t) node);
        (* px86 hardening: the link flush must be durable before the
           publication can persist — the CAS dirties top, and a crash
           can write top back while the node's next flush still sits in
           the persist buffer, persisting a stack whose tail is lost.
           No-op under sc. *)
        M.drain ();
        if M.cas t.top ~expected:w ~desired:node then begin
          (* Persist the publication before reporting success. *)
          M.flush t.top;
          (* px86 hardening: the publication flush must be durable
             before the completion tag can persist — a crash could
             write the dirty X line back while top's flush still sits
             in the persist buffer, claiming completion for a push that
             never became reachable.  No-op under sc.  NOT elidable
             under combine: buffered persistency orders distinct lines
             only through a drain, so the X line can persist the
             completion tag while top's flush is lost (see the queue's
             link/tag barrier). *)
          M.drain ();
          if detectable then A.tag t.an ~tid Tagged.enq_compl
        end
        else loop ()
      end
    in
    loop ();
    (* Persistence point, while still EBR-protected.  NOT elidable under
       combine: the push is complete to the caller once this returns, so
       its completion evidence must be durable here or a crash would
       resolve a completed push as pending (see the queue's enqueue
       persistence point).  Combine elides only the intra-operation
       hazard drains above. *)
    M.drain ();
    Dssq_ebr.Ebr.exit t.an.A.ebr ~tid

  let exec_push t ~tid =
    let sp = Profile.begin_span ~tid Profile.Exec in
    let node = Tagged.idx (M.read (x t).(tid)) in
    push_node t ~tid ~detectable:true node;
    Profile.end_span ~tid sp

  let push t ~tid v =
    let sp = Profile.begin_span ~tid Profile.Exec in
    let node = make_node t ~tid v in
    (* px86 hardening: the detectable path gets this durability point
       from [A.announce]; the plain path must drain the node-field
       flushes itself (see the queue's plain enqueue).  No-op under sc;
       kept under combine for the same cross-line ordering reason. *)
    M.drain ();
    push_node t ~tid ~detectable:false node;
    Profile.end_span ~tid sp

  (* ------------------------------ pop ------------------------------- *)

  let prep_pop t ~tid =
    let sp = Profile.begin_span ~tid Profile.Announce in
    A.release_deferred t.an ~tid;
    A.announce t.an ~tid Tagged.deq_prep;
    Profile.end_span ~tid sp

  let pop_body t ~tid ~detectable =
    Dssq_ebr.Ebr.enter t.an.A.ebr ~tid;
    let mark = if detectable then tid else tid lor L.nondet_mark in
    let rec loop () =
      let w = M.read t.top in
      if claimed w then begin
        help_complete t w;
        loop ()
      end
      else if idx_of w = Tagged.null then begin
        if detectable then A.tag t.an ~tid Tagged.empty;
        Queue_intf.empty_value
      end
      else begin
        let node = idx_of w in
        if detectable then begin
          (* Save the node we are about to claim. *)
          A.post t.an ~tid (Tagged.with_tag node Tagged.deq_prep);
          (* px86 hardening: the posted claim target must be durable
             before the claim (through the top word) can persist, or a
             crash leaves a claimed node no announcement attributes.
             No-op under sc. *)
          M.drain ()
        end;
        (* Phase 1: claim through the top word — atomic with top-ness. *)
        if M.cas t.top ~expected:w ~desired:(with_claim node mark) then begin
          (* Phases 2-3 (helpers may race us; all steps idempotent). *)
          help_complete t (with_claim node mark);
          let v = M.read (Pool.value (pool t) node) in
          if detectable then A.defer_retire t.an ~tid node
          else A.retire t.an ~tid node;
          v
        end
        else loop ()
      end
    in
    let v = loop () in
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.an.A.ebr ~tid;
    v

  let exec_pop t ~tid =
    let sp = Profile.begin_span ~tid Profile.Exec in
    let v = pop_body t ~tid ~detectable:true in
    Profile.end_span ~tid sp;
    v

  let pop t ~tid =
    let sp = Profile.begin_span ~tid Profile.Exec in
    let v = pop_body t ~tid ~detectable:false in
    Profile.end_span ~tid sp;
    v

  (* ---------------------------- detection --------------------------- *)

  let resolve t ~tid =
    let sp = Profile.begin_span ~tid Profile.Resolve in
    let xw = M.read (x t).(tid) in
    let r =
      if Tagged.has xw Tagged.enq_prep then A.resolve_push t.an xw
      else if Tagged.has xw Tagged.deq_prep then begin
        if xw = Tagged.deq_prep then Queue_intf.Deq_pending
        else if xw = Tagged.deq_prep lor Tagged.empty then Queue_intf.Deq_empty
        else begin
          let node = Tagged.idx xw in
          if M.read (Pool.deq_tid (pool t) node) = tid then
            Queue_intf.Deq_done (M.read (Pool.value (pool t) node))
          else Queue_intf.Deq_pending
        end
      end
      else Queue_intf.Nothing
    in
    Profile.end_span ~tid sp;
    r

  (* ----------------------------- recovery --------------------------- *)

  let recover t =
    let sp = Profile.begin_span ~tid:(-1) Profile.Recovery_scan in
    A.reset_volatile t.an;
    (* Complete a claim that survived in the persisted top word. *)
    let w = M.read t.top in
    if claimed w then begin
      let node = idx_of w in
      M.write (Pool.deq_tid (pool t) node) (claim_of w);
      M.flush (Pool.deq_tid (pool t) node);
      M.write t.top (M.read (Pool.next (pool t) node));
      M.flush t.top
    end;
    let old_top = idx_of (M.read t.top) in
    let all_nodes = R.reachable_from t.an old_top in
    (* Skip the marked prefix (marks are flushed before the top swing
       persists, so a marked node's pop took effect). *)
    let rec advance n =
      if n <> Tagged.null && M.read (Pool.deq_tid (pool t) n) <> -1 then
        advance (M.read (Pool.next (pool t) n))
      else n
    in
    let new_top = advance old_top in
    M.write t.top new_top;
    M.flush t.top;
    (* Complete detectability state of effective pushes: still in the
       chain, or already popped-and-marked. *)
    R.complete_effective t.an ~took_effect:(fun d ->
        all_nodes.(d) || M.read (Pool.deq_tid (pool t) d) <> -1);
    (* Rebuild free lists, keeping live and X-referenced nodes (no extra
       pins: resolve reads the claimed node itself, never a successor). *)
    R.rebuild t.an ~new_root:new_top ~extra:(fun ~defer:_ _ _ -> ());
    M.drain ();
    Profile.end_span ~tid:(-1) sp

  (** Post-recovery leak audit (read-only): free lists vs the kept set
      — reachable from top plus X-referenced nodes. *)
  let audit t =
    R.audit t.an
      ~new_root:(idx_of (M.read t.top))
      ~extra:(fun ~defer:_ _ _ -> ())

  (* ----------------------- introspection ---------------------------- *)

  let stats t = A.stats t.an ~state_words:1 (* the top word *)

  (** Contents, top first, skipping claimed/marked nodes.  Quiescent use
      only. *)
  let to_list t =
    let rec collect acc n guard =
      if n = Tagged.null || guard = 0 then List.rev acc
      else begin
        let next = M.read (Pool.next (pool t) n) in
        if M.read (Pool.deq_tid (pool t) n) <> -1 then
          collect acc next (guard - 1)
        else collect (M.read (Pool.value (pool t) n) :: acc) next (guard - 1)
      end
    in
    collect [] (idx_of (M.read t.top)) ((pool t).Pool.capacity + 2)

  let free_count t = Pool.free_count (pool t)
end
