(** A detectable recoverable lock-free stack, [D<stack>], built with the
    DSS queue's methodology (Section 3) applied to Treiber's stack —
    demonstrating that the paper's recipe is not queue-specific.

    LIFO makes the claim protocol subtly harder than the queue's: in the
    queue, a dequeuer claims the successor of a validated head; in a
    stack, marking a node observed at the top is racy — a concurrent
    push can bury it first, and a mark on a buried node would "pop" it
    from the middle of the chain.  The claim therefore goes through the
    {e top word itself}: phase 1 CASes [top] from the unclaimed node to
    the node tagged with the claimer's mark (atomic with top-ness);
    phase 2 persists the mark into the node's [popper] field (the
    durable evidence resolve uses, analogous to [deqThreadID]); phase 3
    swings [top] to the successor and flushes it.  Anyone — pushers
    included — who finds the top claimed completes phases 2-3 first.

    Per-thread tagged word [X], flush-before-publish for pushes,
    Figure-6-style recovery (complete any claimed top, skip the marked
    prefix, complete detectability of effective pushes, rebuild pools)
    as in the queue. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Pool = Node_pool.Make (M)

  let name = "dss-stack"
  let nondet_mark = 1 lsl 20

  (* Top word: node index (bits 0-39) | mark+1 of the claimer (bits
     40-61); 0 in the high bits = unclaimed. *)
  let claim_shift = 40
  let idx_of w = w land Tagged.index_mask
  let claim_of w = (w lsr claim_shift) - 1 (* -1 = unclaimed *)
  let claimed w = w lsr claim_shift <> 0
  let with_claim node mark = node lor ((mark + 1) lsl claim_shift)

  type t = {
    pool : Pool.t; (* deq_tid doubles as the popper mark *)
    top : int M.cell;
    x : int M.cell array;
    ebr : int Dssq_ebr.Ebr.t;
    deferred : int list ref array;
    reclaim : bool;
    nthreads : int;
  }

  let create ?(reclaim = true) ~nthreads ~capacity () =
    let pool = Pool.create ~capacity ~nthreads in
    let top = M.alloc ~name:"top" ~placement:Dssq_memory.Memory_intf.Line.Isolated Tagged.null in
    M.flush top;
    M.drain ();
    let t =
      {
        pool;
        top;
        x =
          Array.init nthreads (fun i ->
              M.alloc
                ~name:(Printf.sprintf "Xs[%d]" i)
                ~placement:Dssq_memory.Memory_intf.Line.Isolated 0);
        ebr = Dssq_ebr.Ebr.create ~nthreads ~free:(fun ~tid:_ _ -> ()) ();
        deferred = Array.init nthreads (fun _ -> ref []);
        reclaim;
        nthreads;
      }
    in
    let ebr =
      Dssq_ebr.Ebr.create ~nthreads
        ~free:(fun ~tid node -> Pool.free t.pool ~tid node)
        ()
    in
    { t with ebr }

  let release_deferred t ~tid =
    if t.reclaim then begin
      List.iter (fun n -> Dssq_ebr.Ebr.retire t.ebr ~tid n) !(t.deferred.(tid));
      t.deferred.(tid) := []
    end

  let defer_retire t ~tid node =
    if t.reclaim then t.deferred.(tid) := node :: !(t.deferred.(tid))

  let retire t ~tid node =
    if t.reclaim then Dssq_ebr.Ebr.retire t.ebr ~tid node

  let make_node t ~tid v =
    if v < 0 then invalid_arg "Dss_stack: values must be non-negative";
    let node =
      if t.reclaim then Pool.alloc_reclaiming t.pool ~ebr:t.ebr ~tid ~value:v
      else Pool.alloc t.pool ~tid ~value:v
    in
    M.flush (Pool.value t.pool node);
    node

  (* Complete a claimed top [w]: persist the claimer's mark in the node,
     then swing top past it and persist the swing.  Idempotent; callable
     by anyone. *)
  let help_complete t w =
    let node = idx_of w in
    let mark = claim_of w in
    M.write (Pool.deq_tid t.pool node) mark;
    M.flush (Pool.deq_tid t.pool node);
    let next = M.read (Pool.next t.pool node) in
    ignore (M.cas t.top ~expected:w ~desired:next);
    (* Persist the removal before the node can be recycled. *)
    M.flush t.top

  (* ------------------------------ push ------------------------------ *)

  let prep_push t ~tid v =
    release_deferred t ~tid;
    let node = make_node t ~tid v in
    M.write t.x.(tid) (Tagged.with_tag node Tagged.enq_prep);
    M.flush t.x.(tid);
    (* Persistence point: prep is durable when it returns (no-op on
       eager backends, which drain at every flush). *)
    M.drain ()

  let push_node t ~tid ~detectable node =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let w = M.read t.top in
      if claimed w then begin
        help_complete t w;
        loop ()
      end
      else begin
        M.write (Pool.next t.pool node) (idx_of w);
        M.flush (Pool.next t.pool node);
        if M.cas t.top ~expected:w ~desired:node then begin
          (* Persist the publication before reporting success. *)
          M.flush t.top;
          if detectable then begin
            M.write t.x.(tid)
              (Tagged.with_tag (M.read t.x.(tid)) Tagged.enq_compl);
            M.flush t.x.(tid)
          end
        end
        else loop ()
      end
    in
    loop ();
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let exec_push t ~tid =
    let node = Tagged.idx (M.read t.x.(tid)) in
    push_node t ~tid ~detectable:true node

  let push t ~tid v =
    let node = make_node t ~tid v in
    push_node t ~tid ~detectable:false node

  (* ------------------------------ pop ------------------------------- *)

  let prep_pop t ~tid =
    release_deferred t ~tid;
    M.write t.x.(tid) Tagged.deq_prep;
    M.flush t.x.(tid);
    M.drain ()

  let pop_body t ~tid ~detectable =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let mark = if detectable then tid else tid lor nondet_mark in
    let rec loop () =
      let w = M.read t.top in
      if claimed w then begin
        help_complete t w;
        loop ()
      end
      else if idx_of w = Tagged.null then begin
        if detectable then begin
          M.write t.x.(tid) (Tagged.with_tag (M.read t.x.(tid)) Tagged.empty);
          M.flush t.x.(tid)
        end;
        Queue_intf.empty_value
      end
      else begin
        let node = idx_of w in
        if detectable then begin
          (* Save the node we are about to claim. *)
          M.write t.x.(tid) (Tagged.with_tag node Tagged.deq_prep);
          M.flush t.x.(tid)
        end;
        (* Phase 1: claim through the top word — atomic with top-ness. *)
        if M.cas t.top ~expected:w ~desired:(with_claim node mark) then begin
          (* Phases 2-3 (helpers may race us; all steps idempotent). *)
          help_complete t (with_claim node mark);
          let v = M.read (Pool.value t.pool node) in
          if detectable then defer_retire t ~tid node
          else retire t ~tid node;
          v
        end
        else loop ()
      end
    in
    let v = loop () in
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  let exec_pop t ~tid = pop_body t ~tid ~detectable:true
  let pop t ~tid = pop_body t ~tid ~detectable:false

  (* ---------------------------- detection --------------------------- *)

  let resolve t ~tid =
    let x = M.read t.x.(tid) in
    if Tagged.has x Tagged.enq_prep then begin
      let v = M.read (Pool.value t.pool (Tagged.idx x)) in
      if Tagged.has x Tagged.enq_compl then Queue_intf.Enq_done v
      else Queue_intf.Enq_pending v
    end
    else if Tagged.has x Tagged.deq_prep then begin
      if x = Tagged.deq_prep then Queue_intf.Deq_pending
      else if x = Tagged.deq_prep lor Tagged.empty then Queue_intf.Deq_empty
      else begin
        let node = Tagged.idx x in
        if M.read (Pool.deq_tid t.pool node) = tid then
          Queue_intf.Deq_done (M.read (Pool.value t.pool node))
        else Queue_intf.Deq_pending
      end
    end
    else Queue_intf.Nothing

  (* ----------------------------- recovery --------------------------- *)

  let reachable_from t start =
    let seen = Array.make (t.pool.Pool.capacity + 1) false in
    let rec go n =
      if n <> Tagged.null && not seen.(n) then begin
        seen.(n) <- true;
        go (M.read (Pool.next t.pool n))
      end
    in
    go start;
    seen

  let recover t =
    Dssq_ebr.Ebr.clear t.ebr;
    Array.iter (fun l -> l := []) t.deferred;
    (* Complete a claim that survived in the persisted top word. *)
    let w = M.read t.top in
    if claimed w then begin
      let node = idx_of w in
      M.write (Pool.deq_tid t.pool node) (claim_of w);
      M.flush (Pool.deq_tid t.pool node);
      M.write t.top (M.read (Pool.next t.pool node));
      M.flush t.top
    end;
    let old_top = idx_of (M.read t.top) in
    let all_nodes = reachable_from t old_top in
    (* Skip the marked prefix (marks are flushed before the top swing
       persists, so a marked node's pop took effect). *)
    let rec advance n =
      if n <> Tagged.null && M.read (Pool.deq_tid t.pool n) <> -1 then
        advance (M.read (Pool.next t.pool n))
      else n
    in
    let new_top = advance old_top in
    M.write t.top new_top;
    M.flush t.top;
    (* Complete detectability state of effective pushes. *)
    for i = 0 to t.nthreads - 1 do
      let x = M.read t.x.(i) in
      let d = Tagged.idx x in
      if
        d <> Tagged.null
        && Tagged.has x Tagged.enq_prep
        && (not (Tagged.has x Tagged.enq_compl))
        && (all_nodes.(d) || M.read (Pool.deq_tid t.pool d) <> -1)
      then begin
        M.write t.x.(i) (Tagged.with_tag x Tagged.enq_compl);
        M.flush t.x.(i)
      end
    done;
    (* Rebuild free lists, keeping live and X-referenced nodes.  A node
       referenced by several X entries is deferred exactly once. *)
    let live = reachable_from t new_top in
    let keep = Array.copy live in
    let deferred_once = Array.make (t.pool.Pool.capacity + 1) false in
    for i = 0 to t.nthreads - 1 do
      let x = M.read t.x.(i) in
      let d = Tagged.idx x in
      if d <> Tagged.null then begin
        keep.(d) <- true;
        if (not live.(d)) && not deferred_once.(d) then begin
          deferred_once.(d) <- true;
          t.deferred.(i) := d :: !(t.deferred.(i))
        end
      end
    done;
    Pool.rebuild_free_lists t.pool ~keep:(fun i -> keep.(i));
    M.drain ()

  (* ----------------------- introspection ---------------------------- *)

  (** Contents, top first, skipping claimed/marked nodes.  Quiescent use
      only. *)
  let to_list t =
    let rec collect acc n guard =
      if n = Tagged.null || guard = 0 then List.rev acc
      else begin
        let next = M.read (Pool.next t.pool n) in
        if M.read (Pool.deq_tid t.pool n) <> -1 then collect acc next (guard - 1)
        else collect (M.read (Pool.value t.pool n) :: acc) next (guard - 1)
      end
    in
    collect [] (idx_of (M.read t.top)) (t.pool.Pool.capacity + 2)

  let free_count t = Pool.free_count t.pool
end
