(** Shared interface vocabulary for detectable recoverable objects.

    Every detectable object in [lib/core] exposes the same conceptual
    surface — operations, [resolve] (the [(A[p], R[p])] pair of the DSS
    transformation), a recovery entry point, and a persistent-footprint
    [stats] record — but before the {!Detectable} functor each object
    spelled the whole signature out again in its own [.mli].  The module
    types here are the single shared copy. *)

(** Static persistent-word footprint of one object instance — the
    denominator-free side of the [persistent_words_per_op] accounting.
    Compare against the space lower bounds of Ben-Baruch, Hendler &
    Rusanovsky (PAPERS.md): a detectable object needs announce state per
    process; the interesting question is how little. *)
type stats = {
  state_words : int;
      (** persistent words holding the object's own state (1 for every
          flat single-word object; head + tail for the queue, …) *)
  announce_words : int;
      (** persistent announce words — one X word per thread in every
          implementation here *)
}

let stats_to_assoc s =
  [ ("state_words", s.state_words); ("announce_words", s.announce_words) ]

(** Outcome of [resolve] for generic (functor-made) objects: the
    [(A[p], R[p])] pair with [Pending op] for [(op, bottom)]. *)
type ('op, 'r) resolved = Nothing | Pending of 'op | Done of 'op * 'r

let pp_resolved pp_op pp_r fmt = function
  | Nothing -> Format.pp_print_string fmt "(_|_, _|_)"
  | Pending op -> Format.fprintf fmt "(%a, _|_)" pp_op op
  | Done (op, r) -> Format.fprintf fmt "(%a, %a)" pp_op op pp_r r

(** What {!Detectable.Make} produces: the full DSS interface of the base
    specification, type-checked once for every object.  [prep]/[exec]
    are the detectable pair (Axioms 1-2), [base] the plain operation
    (Axiom 4), [resolve] Axiom 3. *)
module type GENERIC = sig
  type state
  type op
  type response
  type t

  val name : string

  val create :
    ?name:string -> ?combine:bool -> ?init:state -> nthreads:int -> unit -> t
  (** [name] labels the persistent cells in traces; [init] overrides the
      specification's initial state; [combine] (default [false]) routes
      [exec] through the flat-combining batch-apply path — one persist
      epoch covers every operation a combiner folds. *)

  val prep : t -> tid:int -> op -> unit
  (** Announce [op]: durable on return (persistence point). *)

  val exec : t -> tid:int -> response
  (** Apply the announced operation; exactly-once across crashes when
      retried through {!resolve}.  Durable on return. *)

  val base : t -> tid:int -> op -> response
  (** The plain, non-detectable operation (Axiom 4). *)

  val resolve : t -> tid:int -> (op, response) resolved
  (** Total and idempotent; reads only the caller's announce word plus,
      at worst, the state word. *)

  val recover : t -> unit
  (** Restore volatile per-thread sequence counters from the persisted
      announce records.  No persistent repairs are needed: helping keeps
      detection state consistent inline. *)

  val stats : t -> stats

  val combining_stats : t -> int * int
  (** Volatile flat-combining telemetry: [(passes, ops_folded)]; the
      mean batch size is the ratio.  Both 0 with combining off. *)

  val peek : t -> state  (** current abstract state; quiescent use only *)
end

(** The per-object hook for linked structures (queue, stack) whose exec
    step is a multi-word pointer swing rather than one CAS on a boxed
    state word.  The generic engine cannot own that swing, so those
    objects combine the shared announce/recovery scaffolding
    ({!Detectable.Announce}, {!Detectable.Recovery}) with object code of
    this shape: [try_linearize] is one attempt at the structural swing
    (the caller loops), and [took_effect] is the recovery-time predicate
    deciding whether an announced node survived into the post-crash
    structure (drives the Figure-6 completion pass). *)
module type LINEARIZATION_HOOK = sig
  type t
  type node

  val try_linearize : t -> tid:int -> node -> bool
  val took_effect : t -> node -> bool
end

(** The shared core of the linked-structure objects' interfaces — what
    [dss_queue.mli] and [dss_stack.mli] used to duplicate.  The
    operation quartet itself keeps its object vocabulary
    (enqueue/dequeue vs push/pop) and lives in the per-object [.mli]
    alongside this include. *)
module type LINKED_CORE = sig
  type t

  type wal
  (** The write-ahead log type of the object's node pool
      ([Node_pool.Make(M).Wal.t]); passing one routes every node
      alloc/free through the log-then-link discipline. *)

  val name : string

  val create :
    ?wal:wal -> ?pool_id:int -> ?reclaim:bool -> ?combine:bool ->
    nthreads:int -> capacity:int -> unit -> t
  (** [combine] (default [false]) elides the per-operation hardening
      drains that the flat-combining buffer order makes redundant, so
      many operations share one persist epoch; see DESIGN.md §14. *)

  val resolve : t -> tid:int -> Queue_intf.resolved
  (** The [(A[p], R[p])] of the calling thread; total and idempotent. *)

  val recover : t -> unit
  (** Centralized single-threaded recovery (Figure 6 / Appendix A), run
      after a crash and before threads resume. *)

  val stats : t -> stats

  val audit : t -> Node_pool.audit_report
  (** Post-recovery leak audit (read-only): check the rebuilt free
      lists and the kept node set partition the pool exactly. *)

  (** {1 Introspection (quiescent use: tests, debugging)} *)

  val to_list : t -> int list
  val free_count : t -> int
end
