(** The DSS queue (Section 3 of the paper): a lock-free, strictly
    linearizable, detectable FIFO queue for persistent memory with a
    volatile cache, implementing [D<queue>] — Michael & Scott's queue
    plus Friedman et al.'s durability discipline plus the per-thread
    tagged word [X] that realizes the [A]/[R] detectability mappings.

    Values are non-negative ints; {!Queue_intf.empty_value} is the EMPTY
    response.  Thread ids must be in [0 .. nthreads-1] and (per the
    paper's model) survive crashes. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  module Pool : module type of Node_pool.Make (M)

  val name : string

  type t

  val create : ?reclaim:bool -> nthreads:int -> capacity:int -> unit -> t
  (** [capacity] bounds live nodes (per-thread pre-allocated pools).
      [reclaim] (default true) recycles dequeued nodes through EBR;
      disable for simpler crash-scenario reasoning in tests. *)

  val of_config : Queue_intf.config -> t
  (** {!create} through the unified {!Queue_intf.config} record. *)

  (** {1 Non-detectable operations (Axiom 4)} *)

  val enqueue : t -> tid:int -> int -> unit
  val dequeue : t -> tid:int -> int

  (** {1 Detectable operations (Axioms 1-3; Figures 3-4)} *)

  val prep_enqueue : t -> tid:int -> int -> unit
  val exec_enqueue : t -> tid:int -> unit
  val prep_dequeue : t -> tid:int -> unit
  val exec_dequeue : t -> tid:int -> int

  val resolve : t -> tid:int -> Queue_intf.resolved
  (** The [(A[p], R[p])] of the calling thread; total and idempotent. *)

  (** {1 Recovery} *)

  val recover : t -> unit
  (** Centralized single-threaded recovery (Figure 6 / Appendix A), run
      after {!Dssq_sim.Sim.apply_crash} and before threads resume.  Also
      rebuilds the volatile node pools and reclamation state. *)

  val recover_thread : t -> tid:int -> unit
  (** Decentralized variant (Section 3.3): repairs only [tid]'s own
      detectability state; needs no centralized phase and may run
      concurrently with other threads. *)

  val reset_volatile : t -> unit
  (** Drop volatile runtime state (EBR, deferred retirements) — models
      process restart; {!recover} calls it, call it directly before
      [recover_thread]-style recovery. *)

  (** {1 Introspection (quiescent use: tests, debugging)} *)

  val to_list : t -> int list
  val free_count : t -> int

  val recovered_violations : t -> string list
  (** Structural invariants that must hold right after {!recover};
      returns human-readable violations (empty = healthy). *)
end
