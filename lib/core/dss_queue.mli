(** The DSS queue (Section 3 of the paper): a lock-free, strictly
    linearizable, detectable FIFO queue for persistent memory with a
    volatile cache, implementing [D<queue>] — Michael & Scott's queue
    plus Friedman et al.'s durability discipline plus the per-thread
    tagged word [X] that realizes the [A]/[R] detectability mappings.

    Values are non-negative ints; {!Queue_intf.empty_value} is the EMPTY
    response.  Thread ids must be in [0 .. nthreads-1] and (per the
    paper's model) survive crashes. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  module Pool : module type of Node_pool.Make (M)

  type t

  (** The shared detectable-linked-structure core (name, [create],
      [resolve], [recover], [stats], introspection) — see
      {!Detectable_intf.LINKED_CORE}. *)
  include
    Detectable_intf.LINKED_CORE
      with type t := t
       and type wal := Pool.Wal.t

  val of_config : ?wal:Pool.Wal.t -> ?pool_id:int -> Queue_intf.config -> t
  (** {!create} through the unified {!Queue_intf.config} record. *)

  (** {1 Non-detectable operations (Axiom 4)} *)

  val enqueue : t -> tid:int -> int -> unit
  val dequeue : t -> tid:int -> int

  (** {1 Detectable operations (Axioms 1-3; Figures 3-4)} *)

  val prep_enqueue : t -> tid:int -> int -> unit
  val exec_enqueue : t -> tid:int -> unit
  val prep_dequeue : t -> tid:int -> unit
  val exec_dequeue : t -> tid:int -> int

  (** {1 Queue-specific recovery entry points} *)

  val recover_thread : t -> tid:int -> unit
  (** Decentralized variant (Section 3.3): repairs only [tid]'s own
      detectability state; needs no centralized phase and may run
      concurrently with other threads. *)

  val reset_volatile : t -> unit
  (** Drop volatile runtime state (EBR, deferred retirements) — models
      process restart; {!recover} calls it, call it directly before
      [recover_thread]-style recovery. *)

  val recovered_violations : t -> string list
  (** Structural invariants that must hold right after {!recover};
      returns human-readable violations (empty = healthy). *)
end
