(** Pre-allocated persistent queue-node pools.

    The paper's evaluation pre-allocates a fixed pool of queue nodes per
    thread and recycles dequeued nodes through epoch-based reclamation
    (Section 4).  A node is a triple of persistent words:

    - [value]: the enqueued value;
    - [next]: index of the successor node, 0 = NULL;
    - [deq_tid]: id of the thread that dequeued the value stored in this
      node ([deqThreadID] in the paper); -1 means unmarked.

    Node 0 is reserved as NULL; valid indices are [1 .. capacity].
    A node's three words are laid out as one line-aligned block (see
    {!Dssq_memory.Memory_intf.S.alloc_block}), so with a realistic line
    size they share a persist line and one flush covers all three.
    Free lists are volatile (rebuilt from the persistent structure after
    a crash) and atomic: a freed node returns to its {e home} thread's
    list — whoever retired it — so sustained producer/consumer imbalance
    cannot starve one thread while another hoards. *)

exception Pool_exhausted of int (* tid *)

(** Result of a post-recovery free-list audit: how [1 .. capacity]
    partitions between the rebuilt free lists and the kept (reachable
    or pinned) set.  A correct recovery leaves both [leaked] (in
    neither) and [dual] (in both, or double-freed) empty, and the
    log-then-link discipline makes that so by construction — the audit
    is the checkable witness. *)
type audit_report = {
  kept_nodes : int;
  free_nodes : int;
  leaked : int list;
  dual : int list;
}

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Padded = Dssq_memory.Memory_intf.Padded
  module Wal = Dssq_pmem.Wal.Make (M)

  type t = {
    value : int M.cell array;
    next : int M.cell array;
    deq_tid : int M.cell array;
    capacity : int;
    nthreads : int;
    free_lists : int list Padded.t array;
        (* per-thread shards, each padded to cache-line stride: adjacent
           threads' heads would otherwise share a physical line and every
           push/pop would ping-pong it between domains *)
    wal : Wal.t option;
        (* when present, every alloc/free intent is durably logged
           before the node state changes (log-then-link) *)
    pool_id : int;  (* distinguishes pools sharing one log *)
  }

  let home t i = (i - 1) mod t.nthreads

  let push_free lists owner i =
    let rec go () =
      let cur = Padded.get lists.(owner) in
      if not (Padded.compare_and_set lists.(owner) cur (i :: cur)) then go ()
    in
    go ()

  let rec pop_free lists owner =
    match Padded.get lists.(owner) with
    | [] -> None
    | i :: rest as cur ->
        (* NB compare_and_set is physical equality: reuse the read value. *)
        if Padded.compare_and_set lists.(owner) cur rest then Some i
        else pop_free lists owner

  let create ?wal ?(pool_id = 0) ~capacity ~nthreads () =
    (* Each node's three words are allocated as one block, so they share
       a persist line (at the default line size): persisting a freshly
       initialized node costs one write-back, not three.  Blocks start at
       line boundaries, so distinct nodes never share a line and there is
       no false sharing between them.  The arrays are per-field views
       over the same cells. *)
    let nodes =
      Array.init (capacity + 1) (fun i ->
          match
            M.alloc_block
              ~name:(Printf.sprintf "node%d" i)
              [ 0; Tagged.null; -1 ]
          with
          | [ v; n; d ] -> (v, n, d)
          | _ -> assert false)
    in
    let free_lists = Array.init nthreads (fun _ -> Padded.make []) in
    (* Stripe nodes across threads; reversed so threads pop low indices
       first, which keeps tests readable. *)
    for i = capacity downto 1 do
      let owner = (i - 1) mod nthreads in
      Padded.set free_lists.(owner) (i :: Padded.get free_lists.(owner))
    done;
    {
      value = Array.map (fun (v, _, _) -> v) nodes;
      next = Array.map (fun (_, n, _) -> n) nodes;
      deq_tid = Array.map (fun (_, _, d) -> d) nodes;
      capacity;
      nthreads;
      free_lists;
      wal;
      pool_id;
    }

  let value t i = t.value.(i)
  let next t i = t.next.(i)
  let deq_tid t i = t.deq_tid.(i)

  (* Log-then-link: durably record the transition before the node's
     state changes.  The lane is the calling thread, so concurrent
     allocators never contend on a log slot. *)
  let log t ~tid kind i =
    match t.wal with
    | None -> ()
    | Some w -> Wal.append w ~lane:tid ~kind ~a:i ~b:t.pool_id

  (** Pop a node from [tid]'s free list and initialize its [value] and
      [next] fields (volatile only; callers flush per their persistence
      protocol).  [deq_tid] is already -1, persistently: it is reset when
      the node is freed, so a recycled node can never be observed marked
      after it becomes reachable.

      With a WAL attached, the allocation intent is logged and persisted
      {e before} the node is touched: a crash at any point between here
      and the node becoming reachable replays the intent, finds the node
      unreachable, and returns it to a free list — leaking it is
      impossible by construction. *)
  let alloc t ~tid ~value =
    match pop_free t.free_lists tid with
    | None -> raise (Pool_exhausted tid)
    | Some i ->
        log t ~tid Dssq_pmem.Wal.Codec.kind_alloc i;
        M.write t.value.(i) value;
        M.write t.next.(i) Tagged.null;
        i

  (** Like [alloc], but when the free list is momentarily dry because
      retired nodes are still waiting out their grace period (typical on
      oversubscribed cores, where a preempted in-region thread stalls the
      epoch), paces reclamation forward and retries before giving up.
      The fence doubles as a scheduling point on the simulator backend so
      other simulated threads can exit their regions. *)
  let alloc_reclaiming t ~ebr ~tid ~value =
    match alloc t ~tid ~value with
    | node -> node
    | exception Pool_exhausted _ ->
        let rec go attempts =
          Dssq_ebr.Ebr.enter ebr ~tid;
          Dssq_ebr.Ebr.exit ebr ~tid;
          M.fence ();
          match alloc t ~tid ~value with
          | node -> node
          | exception Pool_exhausted _
            when attempts < 3_000_000 && Dssq_ebr.Ebr.pending ebr > 0 ->
              (* Something is in limbo: keep pacing the epochs. *)
              go (attempts + 1)
        in
        go 0

  (** Return node [i] to its home thread's free list (regardless of who
      retired it).  The unmarked state is made persistent here, off the
      enqueue critical path. *)
  let free t ~tid i =
    log t ~tid Dssq_pmem.Wal.Codec.kind_free i;
    M.write t.deq_tid.(i) (-1);
    M.flush t.deq_tid.(i);
    (* The unmark must be durable before the node becomes allocatable:
       once reused and reachable it may no longer look marked after a
       crash.  Under coalescing the flush above is only buffered, so
       complete it here. *)
    M.drain ();
    push_free t.free_lists (home t i) i

  let free_count t =
    Array.fold_left
      (fun acc l -> acc + List.length (Padded.get l))
      0 t.free_lists

  (** Rebuild all free lists after a crash: every node for which [keep]
      is false becomes available again, striped across threads.  Used by
      the recovery procedure with [keep] = "reachable from head or
      referenced by some X entry". *)
  let rebuild_free_lists t ~keep =
    Array.iter (fun l -> Padded.set l []) t.free_lists;
    for i = t.capacity downto 1 do
      if not (keep i) then begin
        M.write t.deq_tid.(i) (-1);
        M.flush t.deq_tid.(i);
        M.write t.next.(i) Tagged.null;
        M.flush t.next.(i);
        let owner = home t i in
        Padded.set t.free_lists.(owner) (i :: Padded.get t.free_lists.(owner))
      end
    done;
    M.drain ()

  (** Check that [keep] and the current free lists partition
      [1 .. capacity] exactly: no node both free and kept, none in
      neither, none on two free lists.  Read-only; run after
      {!rebuild_free_lists} to certify a recovery leaked nothing. *)
  let audit t ~keep =
    let free_count = Array.make (t.capacity + 1) 0 in
    Array.iter
      (fun l ->
        List.iter (fun i -> free_count.(i) <- free_count.(i) + 1) (Padded.get l))
      t.free_lists;
    let leaked = ref [] and dual = ref [] in
    let kept_nodes = ref 0 and free_nodes = ref 0 in
    for i = t.capacity downto 1 do
      let k = keep i and f = free_count.(i) in
      if f > 1 || (k && f > 0) then dual := i :: !dual
      else if k then incr kept_nodes
      else if f = 1 then incr free_nodes
      else leaked := i :: !leaked
    done;
    {
      kept_nodes = !kept_nodes;
      free_nodes = !free_nodes;
      leaked = !leaked;
      dual = !dual;
    }
end
