(** A generic detectable cell: [D<register>] and [D<CAS>] over values of
    any type, the building blocks for application-managed nesting
    (Section 2.2: "D<queue> can be constructed using implementations of
    D<read/write register> and D<CAS>, and this demonstrates
    application-managed nesting of DSS-based objects").

    Where {!Dss_register} packs provenance into the spare bits of a
    single 64-bit word (the real-hardware discipline), this module keeps
    the value and its provenance in one {e boxed} record and relies on
    the backend's single-word atomicity over boxed references — OCaml's
    [Atomic.t] natively, the simulator's cells trivially.  CAS uses
    physical equality on the exact record previously read, which is the
    standard boxed-CAS idiom and immune to ABA on the payload.

    The detection protocol is the same as {!Dss_register}'s: operations
    install provenance [(writer, seq)] along with the value, and anyone
    about to destroy that evidence by overwriting first persists the
    victim's completion into the victim's own X entry (helping).
    [resolve] therefore only reads local state plus, at worst, the cell
    itself.  No recovery procedure, no auxiliary state. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  type 'a entry = { v : 'a; writer : int; seq : int }

  type 'a xstate =
    | X_none
    | X_write of { v : 'a; seq : int; complete : bool }
    | X_cas of { expected : 'a; desired : 'a; seq : int; result : bool option }
    | X_read of { seq : int; result : 'a option }

  type 'a t = {
    cell : 'a entry M.cell;
    x : 'a xstate M.cell array;
    seqs : int array; (* volatile per-thread operation counters *)
    nthreads : int;
  }

  (** Outcome of [resolve]: the [(A[p], R[p])] pair of [D<cell>]. *)
  type 'a resolved =
    | Nothing
    | Write_pending of 'a
    | Write_done of 'a
    | Cas_pending of 'a * 'a
    | Cas_done of 'a * 'a * bool
    | Read_pending
    | Read_done of 'a

  let create ?name ~nthreads init =
    let cell = M.alloc ?name { v = init; writer = -1; seq = 0 } in
    M.flush cell;
    M.drain ();
    {
      cell;
      x = Array.init nthreads (fun _ -> M.alloc X_none);
      seqs = Array.make nthreads 0;
      nthreads;
    }

  (* Persist the completion of the operation that produced [cur] into its
     writer's X entry, before [cur] can be overwritten. *)
  let help_complete t (cur : 'a entry) =
    let w = cur.writer in
    if w >= 0 && w < t.nthreads then begin
      let x = M.read t.x.(w) in
      match x with
      | X_write r when r.seq = cur.seq && not r.complete ->
          if
            M.cas t.x.(w) ~expected:x
              ~desired:(X_write { r with complete = true })
          then M.flush t.x.(w)
      | X_cas r when r.seq = cur.seq && r.result = None ->
          if
            M.cas t.x.(w) ~expected:x
              ~desired:(X_cas { r with result = Some true })
          then M.flush t.x.(w)
      | X_none | X_write _ | X_cas _ | X_read _ -> ()
    end

  (* ------------------------- non-detectable ------------------------- *)

  let read t = (M.read t.cell).v

  let rec write t v =
    let cur = M.read t.cell in
    help_complete t cur;
    if M.cas t.cell ~expected:cur ~desired:{ v; writer = -1; seq = 0 } then begin
      M.flush t.cell;
      M.drain ()
    end
    else write t v

  (* Value comparison is physical equality, as in the MEMORY signature:
     exact for immediates (ints), identity for boxed values. *)
  let rec cas t ~expected ~desired =
    let cur = M.read t.cell in
    if cur.v != expected then false
    else begin
      help_complete t cur;
      if M.cas t.cell ~expected:cur ~desired:{ v = desired; writer = -1; seq = 0 }
      then begin
        M.flush t.cell;
        M.drain ();
        true
      end
      else cas t ~expected ~desired
    end

  let flush t = M.flush t.cell
  let drain () = M.drain ()

  (* --------------------------- detectable --------------------------- *)

  let next_seq t ~tid =
    t.seqs.(tid) <- t.seqs.(tid) + 1;
    t.seqs.(tid)

  let prep_write t ~tid v =
    let seq = next_seq t ~tid in
    M.write t.x.(tid) (X_write { v; seq; complete = false });
    M.flush t.x.(tid);
    M.drain () (* persistence point: prep durable on return *)

  let exec_write t ~tid =
    match M.read t.x.(tid) with
    | X_write { v; seq; _ } ->
        let rec loop () =
          let cur = M.read t.cell in
          help_complete t cur;
          if M.cas t.cell ~expected:cur ~desired:{ v; writer = tid; seq } then begin
            M.flush t.cell;
            match M.read t.x.(tid) with
            | X_write r as x when not r.complete ->
                if
                  M.cas t.x.(tid) ~expected:x
                    ~desired:(X_write { r with complete = true })
                then M.flush t.x.(tid)
            | _ -> ()
          end
          else loop ()
        in
        loop ();
        M.drain () (* persistence point *)
    | X_none | X_cas _ | X_read _ ->
        invalid_arg "Dss_cell.exec_write: no write prepared"

  let prep_cas t ~tid ~expected ~desired =
    let seq = next_seq t ~tid in
    M.write t.x.(tid) (X_cas { expected; desired; seq; result = None });
    M.flush t.x.(tid);
    M.drain ()

  let exec_cas t ~tid =
    match M.read t.x.(tid) with
    | X_cas { expected; desired; seq; _ } ->
        let record result =
          match M.read t.x.(tid) with
          | X_cas r as x when r.result = None ->
              if
                M.cas t.x.(tid) ~expected:x
                  ~desired:(X_cas { r with result = Some result })
              then M.flush t.x.(tid)
          | _ -> ()
        in
        let rec loop () =
          let cur = M.read t.cell in
          if cur.v != expected then begin
            record false;
            false
          end
          else begin
            help_complete t cur;
            if
              M.cas t.cell ~expected:cur
                ~desired:{ v = desired; writer = tid; seq }
            then begin
              M.flush t.cell;
              record true;
              true
            end
            else loop ()
          end
        in
        let r = loop () in
        M.drain () (* persistence point *);
        r
    | X_none | X_write _ | X_read _ ->
        invalid_arg "Dss_cell.exec_cas: no cas prepared"

  let prep_read t ~tid =
    let seq = next_seq t ~tid in
    M.write t.x.(tid) (X_read { seq; result = None });
    M.flush t.x.(tid);
    M.drain ()

  let exec_read t ~tid =
    let v = (M.read t.cell).v in
    (match M.read t.x.(tid) with
    | X_read r as x when r.result = None ->
        if M.cas t.x.(tid) ~expected:x ~desired:(X_read { r with result = Some v })
        then M.flush t.x.(tid)
    | _ -> ());
    M.drain ();
    v

  (* ---------------------------- detection --------------------------- *)

  let resolve t ~tid =
    match M.read t.x.(tid) with
    | X_none -> Nothing
    | X_read { result = Some v; _ } -> Read_done v
    | X_read { result = None; _ } -> Read_pending
    | X_write { v; complete = true; _ } -> Write_done v
    | X_write { v; seq; complete = false } ->
        let cur = M.read t.cell in
        if cur.writer = tid && cur.seq = seq then Write_done v
        else Write_pending v
    | X_cas { expected; desired; result = Some true; _ } ->
        Cas_done (expected, desired, true)
    | X_cas { expected; desired; result = Some false; _ } ->
        Cas_done (expected, desired, false)
    | X_cas { expected; desired; seq; result = None } ->
        let cur = M.read t.cell in
        if cur.writer = tid && cur.seq = seq then
          Cas_done (expected, desired, true)
        else Cas_pending (expected, desired)

  (** No recovery phase needed; interface symmetry. *)
  let recover (_ : 'a t) = ()
end
