(** A generic detectable cell: [D<register>] and [D<CAS>] over values of
    any type, the building blocks for application-managed nesting
    (Section 2.2: "D<queue> can be constructed using implementations of
    D<read/write register> and D<CAS>, and this demonstrates
    application-managed nesting of DSS-based objects").

    Since the {!Detectable} refactor this module is a thin vocabulary
    layer over {!Detectable.Make_any}: the cell's operations are one
    small sequential specification (write / CAS / read over ['a], CAS
    comparing by physical equality — the standard boxed-CAS idiom,
    ABA-immune on the payload), and the announce records, helping,
    provenance and [resolve] are the shared engine's.  Where
    {!Dss_register} packs provenance into the spare bits of a single
    64-bit word (the real-hardware discipline), the engine keeps the
    value and its provenance in one {e boxed} record and relies on the
    backend's single-word atomicity over boxed references.

    [resolve] only reads local state plus, at worst, the cell itself.
    No recovery procedure, no auxiliary state. *)

module Spec = Dssq_spec.Spec

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module E = Detectable.Make_any (M)

  type 'a cop = Cwrite of 'a | Ccas of 'a * 'a | Cread
  type 'a cresp = Wrote | Swung of bool | Got of 'a
  type 'a t = ('a, 'a cop, 'a cresp) E.t

  (* Value comparison is physical equality, as in the MEMORY signature:
     exact for immediates (ints), identity for boxed values.  A failed
     CAS returns the state itself — the engine's read-only contract —
     so it never installs and never disturbs the cell. *)
  let cell_spec init =
    Spec.make ~name:"cell" ~init
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Cread -> Some (s, Got s)
        | Cwrite v -> Some (v, Wrote)
        | Ccas (e, d) -> if s != e then Some (s, Swung false) else Some (d, Swung true))
      ()

  (** Outcome of [resolve]: the [(A[p], R[p])] pair of [D<cell>]. *)
  type 'a resolved =
    | Nothing
    | Write_pending of 'a
    | Write_done of 'a
    | Cas_pending of 'a * 'a
    | Cas_done of 'a * 'a * bool
    | Read_pending
    | Read_done of 'a

  let create ?name ~nthreads init =
    E.create ?name ~nthreads (cell_spec init)

  (* ------------------------- non-detectable ------------------------- *)

  let read t = E.peek t

  let write t v =
    match E.base t ~tid:(-1) (Cwrite v) with Wrote -> () | _ -> assert false

  let cas t ~expected ~desired =
    match E.base t ~tid:(-1) (Ccas (expected, desired)) with
    | Swung hit -> hit
    | _ -> assert false

  let flush t = M.flush t.E.state
  let drain () = M.drain ()

  (* --------------------------- detectable --------------------------- *)

  let prep_write t ~tid v = E.prep t ~tid (Cwrite v)

  let exec_write t ~tid =
    match M.read t.E.x.(tid) with
    | Some { aop = Cwrite _; _ } -> (
        match E.exec t ~tid with Wrote -> () | _ -> assert false)
    | _ -> invalid_arg "Dss_cell.exec_write: no write prepared"

  let prep_cas t ~tid ~expected ~desired = E.prep t ~tid (Ccas (expected, desired))

  let exec_cas t ~tid =
    match M.read t.E.x.(tid) with
    | Some { aop = Ccas _; _ } -> (
        match E.exec t ~tid with Swung hit -> hit | _ -> assert false)
    | _ -> invalid_arg "Dss_cell.exec_cas: no cas prepared"

  let prep_read t ~tid = E.prep t ~tid Cread

  let exec_read t ~tid =
    match M.read t.E.x.(tid) with
    | Some { aop = Cread; _ } -> (
        match E.exec t ~tid with Got v -> v | _ -> assert false)
    | _ -> invalid_arg "Dss_cell.exec_read: no read prepared"

  (* ---------------------------- detection --------------------------- *)

  let resolve t ~tid =
    match E.resolve t ~tid with
    | Detectable_intf.Nothing -> Nothing
    | Pending (Cwrite v) -> Write_pending v
    | Pending (Ccas (e, d)) -> Cas_pending (e, d)
    | Pending Cread -> Read_pending
    | Done (Cwrite v, _) -> Write_done v
    | Done (Ccas (e, d), Swung hit) -> Cas_done (e, d, hit)
    | Done (Cread, Got v) -> Read_done v
    | Done _ -> assert false

  (** No recovery phase needed; interface symmetry. *)
  let recover = E.recover
end
