(** A detectable recoverable lock-free stack — the DSS queue's
    methodology (per-thread tagged [X], claim marks flushed before the
    structural swing, Figure-6-style recovery) applied to Treiber's
    stack, showing the recipe is not queue-specific.

    The [resolved] vocabulary is shared with the queue:
    [Enq_*] = push, [Deq_*] = pop. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  module Pool : module type of Node_pool.Make (M)

  type t

  (** The shared detectable-linked-structure core (name, [create],
      [resolve], [recover], [stats], introspection) — see
      {!Detectable_intf.LINKED_CORE}. *)
  include
    Detectable_intf.LINKED_CORE
      with type t := t
       and type wal := Pool.Wal.t

  (** {1 Non-detectable operations} *)

  val push : t -> tid:int -> int -> unit

  val pop : t -> tid:int -> int
  (** Returns {!Queue_intf.empty_value} on an empty stack. *)

  (** {1 Detectable operations} *)

  val prep_push : t -> tid:int -> int -> unit
  val exec_push : t -> tid:int -> unit
  val prep_pop : t -> tid:int -> unit
  val exec_pop : t -> tid:int -> int
end
