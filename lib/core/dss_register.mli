(** A detectable recoverable read/write register — [D<register>] with no
    recovery procedure and no auxiliary system state (Section 2.2's
    base-object story) — in two observationally equivalent
    implementations behind one signature:

    - {!Make}: the {!Detectable} engine instantiated on the register
      specification (the post-refactor default).
    - {!Packed}: the original implementation packing [(value, writer,
      seq)] provenance into single failure-atomic 64-bit words; kept as
      the oracle for the engine-equivalence QCheck property
      ([test/test_detectable.ml]) and as the bit-packing exemplar.

    Writers {e help} persist the previous writer's completion before
    destroying its evidence, which is what keeps [resolve] sound across
    overwrites.  Values are in [0 .. 2^40-1] (both implementations
    enforce the {!Packed} word-packing range); at most 4096 threads. *)

module type S = sig
  type t

  type resolved =
    | Nothing
    | Write_pending of int
    | Write_done of int
    | Read_pending
    | Read_done of int

  val pp_resolved : Format.formatter -> resolved -> unit

  val create : ?init:int -> nthreads:int -> unit -> t

  (** {1 Non-detectable operations} *)

  val read : t -> tid:int -> int
  val write : t -> tid:int -> int -> unit

  (** {1 Detectable operations} *)

  val prep_write : t -> tid:int -> int -> unit
  val exec_write : t -> tid:int -> unit
  val prep_read : t -> tid:int -> unit
  val exec_read : t -> tid:int -> int
  val resolve : t -> tid:int -> resolved

  val recover : t -> unit
  (** Restores volatile sequence counters ({!Make}) or is a no-op
      ({!Packed}); either way, no persistent repairs — detection state
      is maintained inline by helping. *)

  val stats : t -> Detectable_intf.stats
  (** Persistent footprint: one register word plus one X word per
      thread, in both implementations. *)
end

module Make (M : Dssq_memory.Memory_intf.S) : S
module Packed (M : Dssq_memory.Memory_intf.S) : S
