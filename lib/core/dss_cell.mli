(** A generic detectable cell: [D<register>] + [D<CAS>] over values of
    any type, the building block for application-managed nesting
    (Section 2.2).  Boxed provenance instead of bit packing; otherwise
    the same helping protocol as {!Dss_register}.  No recovery procedure
    and no auxiliary state.

    CAS comparisons are physical equality on the exact value previously
    read (exact for immediates, identity for boxed values — the standard
    boxed-CAS idiom, ABA-immune on the payload). *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type 'a t

  (** The [(A[p], R[p])] pair of [D<cell>]. *)
  type 'a resolved =
    | Nothing
    | Write_pending of 'a
    | Write_done of 'a
    | Cas_pending of 'a * 'a
    | Cas_done of 'a * 'a * bool
    | Read_pending
    | Read_done of 'a

  val create : ?name:string -> nthreads:int -> 'a -> 'a t

  (** {1 Non-detectable operations} *)

  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
  val cas : 'a t -> expected:'a -> desired:'a -> bool
  val flush : 'a t -> unit

  val drain : unit -> unit
  (** Drain the calling thread's persist buffer (no-op under eager
      flushing); exposed so composites can end a persistence epoch. *)

  (** {1 Detectable operations} *)

  val prep_write : 'a t -> tid:int -> 'a -> unit
  val exec_write : 'a t -> tid:int -> unit
  val prep_cas : 'a t -> tid:int -> expected:'a -> desired:'a -> unit
  val exec_cas : 'a t -> tid:int -> bool
  val prep_read : 'a t -> tid:int -> unit
  val exec_read : 'a t -> tid:int -> 'a
  val resolve : 'a t -> tid:int -> 'a resolved

  val recover : 'a t -> unit
  (** No-op; interface symmetry. *)
end
