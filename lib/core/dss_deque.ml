(** Detectable double-ended queue — [D<deque>], {!Detectable.Make} over
    the four-operation deque specification.  The abstract state is one
    boxed list behind the engine's single state word, so front and back
    operations contend on the same CAS — the space-for-simplicity end of
    the design spectrum, versus the linked [Dss_queue] whose exec is a
    multi-word pointer swing.  Empty pops return [Empty] through the
    engine's read-only path (flush-on-read, no install). *)

module S = Dssq_spec.Specs.Deque

module Make (M : Dssq_memory.Memory_intf.S) = struct
  include
    Detectable.Make
      (struct
        type state = int list
        type op = S.op
        type response = S.response

        let spec = S.spec ()
      end)
      (M)

  let pp_resolved fmt r =
    Detectable_intf.pp_resolved S.pp_op S.pp_response fmt r

  (* Typed non-detectable operations. *)

  let push_front t ~tid v = ignore (base t ~tid (S.Push_front v))
  let push_back t ~tid v = ignore (base t ~tid (S.Push_back v))

  let pop_front t ~tid =
    match base t ~tid S.Pop_front with
    | S.Value v -> Some v
    | S.Empty -> None
    | S.Ok -> assert false

  let pop_back t ~tid =
    match base t ~tid S.Pop_back with
    | S.Value v -> Some v
    | S.Empty -> None
    | S.Ok -> assert false

  (* Detectable pairs: [prep_*] then the functor's [exec]. *)

  let prep_push_front t ~tid v = prep t ~tid (S.Push_front v)
  let prep_push_back t ~tid v = prep t ~tid (S.Push_back v)
  let prep_pop_front t ~tid = prep t ~tid S.Pop_front
  let prep_pop_back t ~tid = prep t ~tid S.Pop_back

  let to_list t = peek t
end
