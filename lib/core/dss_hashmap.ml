(** A detectable persistent hash map, composed from detectable base
    objects — the "downstream" data structure story: once D<CAS> cells
    exist (Section 2.2), richer detectable structures are assembled from
    them plus one persistent announcement word per thread.

    Layout: open addressing with linear probing over {!Dss_cell} slots.
    A slot word packs a (key, value) pair; 0 is empty and a tombstone
    marks removals.  Every mutation is a detectable CAS on one slot.

    Detection: before preparing the slot CAS, the thread persists an
    {e announcement} — which slot it is operating on and the intended
    (op, key, value) — in its own announcement word.  [resolve] reads the
    announcement, asks the slot cell to resolve, and cross-checks that
    the cell's pending/complete operation is the announced one.  Thus the
    map inherits the cells' crash-safety and needs no recovery procedure
    of its own.

    Keys are in [1 .. 2^20-1], values in [0 .. 2^20-1].  Capacity is
    fixed; [Full] is raised when a probe sequence finds no slot. *)

exception Full

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module C = Dss_cell.Make (M)
  module Profile = Dssq_obs.Profile

  let key_bits = 20
  let key_mask = (1 lsl key_bits) - 1
  let tombstone = 1 lsl 52
  let empty_slot = 0

  (* Announcement word: slot (bits 40-59 via lsl) | key | value | op tag. *)
  let ann_put = 1 lsl 61
  let ann_remove = 1 lsl 60

  let pack_kv ~key ~value = (key lsl key_bits) lor value
  let key_of w = (w lsr key_bits) land key_mask
  let value_of w = w land key_mask

  let pack_ann ~slot ~kv ~tag = (slot lsl 40) lor kv lor tag
  let ann_slot w = (w lsr 40) land key_mask
  let ann_kv w = w land ((1 lsl 40) - 1)

  type t = {
    slots : int C.t array;
    ann : int M.cell array; (* per-thread announcement *)
    nbuckets : int;
    nthreads : int;
  }

  type resolved =
    | Nothing
    | Put_pending of int * int
    | Put_done of int * int
    | Remove_pending of int
    | Remove_done of int

  let pp_resolved fmt = function
    | Nothing -> Format.pp_print_string fmt "(_|_, _|_)"
    | Put_pending (k, v) -> Format.fprintf fmt "(put %d %d, _|_)" k v
    | Put_done (k, v) -> Format.fprintf fmt "(put %d %d, OK)" k v
    | Remove_pending k -> Format.fprintf fmt "(remove %d, _|_)" k
    | Remove_done k -> Format.fprintf fmt "(remove %d, OK)" k

  let create ~nthreads ~nbuckets () =
    {
      slots =
        Array.init nbuckets (fun i ->
            C.create ~name:(Printf.sprintf "slot[%d]" i) ~nthreads empty_slot);
      ann =
        Array.init nthreads (fun i ->
            M.alloc
              ~name:(Printf.sprintf "ann[%d]" i)
              ~placement:Dssq_memory.Memory_intf.Line.Isolated 0);
      nbuckets;
      nthreads;
    }

  let hash t k = k * 2654435761 land max_int mod t.nbuckets

  let check_key k =
    if k < 1 || k > key_mask then invalid_arg "Dss_hashmap: key out of range"

  let check_value v =
    if v < 0 || v > key_mask then invalid_arg "Dss_hashmap: value out of range"

  (* Probe for [k]: the slot holding it, or the first reusable slot. *)
  let probe t k =
    let start = hash t k in
    let rec go i reuse =
      if i >= t.nbuckets then
        match reuse with Some s -> `Insert_at s | None -> raise Full
      else begin
        let idx = (start + i) mod t.nbuckets in
        let cur = C.read t.slots.(idx) in
        if cur = empty_slot then
          match reuse with Some s -> `Insert_at s | None -> `Insert_at idx
        else if cur <> tombstone && key_of cur = k then `Found (idx, cur)
        else
          let reuse =
            match reuse with
            | None when cur = tombstone -> Some idx
            | r -> r
          in
          go (i + 1) reuse
      end
    in
    go 0 None

  (* ---------------------- non-detectable reads ----------------------- *)

  let find t k =
    check_key k;
    match probe t k with
    | `Found (_, cur) -> Some (value_of cur)
    | `Insert_at _ -> None

  let mem t k = find t k <> None

  (* ---------------------------- mutations ---------------------------- *)

  (* One detectable CAS attempt on the announced slot; retries re-announce
     because a race can move the operation to a different slot or change
     the expected word. *)
  let rec attempt_put t ~tid k v =
    let slot, expected =
      match probe t k with
      | `Found (idx, cur) -> (idx, cur)
      | `Insert_at idx -> (idx, C.read t.slots.(idx))
    in
    (* If the insert target got taken meanwhile, re-probe. *)
    if expected <> empty_slot && expected <> tombstone && key_of expected <> k
    then attempt_put t ~tid k v
    else begin
      let kv = pack_kv ~key:k ~value:v in
      let sp = Profile.begin_span ~tid Profile.Announce in
      M.write t.ann.(tid) (pack_ann ~slot ~kv ~tag:ann_put);
      M.flush t.ann.(tid);
      Profile.end_span ~tid sp;
      C.prep_cas t.slots.(slot) ~tid ~expected ~desired:kv;
      if not (C.exec_cas t.slots.(slot) ~tid) then attempt_put t ~tid k v
    end

  (** Detectable insert-or-update; exactly-once via {!resolve}. *)
  let put t ~tid k v =
    check_key k;
    check_value v;
    let sp = Profile.begin_span ~tid Profile.Exec in
    attempt_put t ~tid k v;
    M.drain () (* persistence point *);
    Profile.end_span ~tid sp

  let rec attempt_remove t ~tid k =
    match probe t k with
    | `Insert_at _ -> () (* absent: nothing to remove *)
    | `Found (slot, expected) ->
        let sp = Profile.begin_span ~tid Profile.Announce in
        M.write t.ann.(tid)
          (pack_ann ~slot ~kv:(pack_kv ~key:k ~value:0) ~tag:ann_remove);
        M.flush t.ann.(tid);
        Profile.end_span ~tid sp;
        C.prep_cas t.slots.(slot) ~tid ~expected ~desired:tombstone;
        if not (C.exec_cas t.slots.(slot) ~tid) then attempt_remove t ~tid k

  (** Detectable remove (no-op if absent). *)
  let remove t ~tid k =
    check_key k;
    let sp = Profile.begin_span ~tid Profile.Exec in
    attempt_remove t ~tid k;
    M.drain () (* persistence point *);
    Profile.end_span ~tid sp

  (* ---------------------------- detection ---------------------------- *)

  let resolve_unprofiled t ~tid =
    let ann = M.read t.ann.(tid) in
    if ann = 0 then Nothing
    else begin
      let slot = ann_slot ann in
      let kv = ann_kv ann in
      let k = key_of kv and v = value_of kv in
      let is_put = ann land ann_put <> 0 in
      let pending () = if is_put then Put_pending (k, v) else Remove_pending k in
      let done_ () = if is_put then Put_done (k, v) else Remove_done k in
      match C.resolve t.slots.(slot) ~tid with
      | C.Cas_done (_, desired, true)
        when (is_put && desired = kv) || ((not is_put) && desired = tombstone)
        ->
          done_ ()
      | C.Cas_pending (_, desired)
        when (is_put && desired = kv) || ((not is_put) && desired = tombstone)
        ->
          pending ()
      | C.Cas_done (_, _, false) -> pending ()
      | _ ->
          (* The slot's detection state predates the announcement: the
             prepared CAS never reached the cell. *)
          pending ()
    end

  let resolve t ~tid =
    let sp = Profile.begin_span ~tid Profile.Resolve in
    let r = resolve_unprofiled t ~tid in
    Profile.end_span ~tid sp;
    r

  (** No recovery procedure: announcements and cells are self-describing.
      The empty recovery-scan span records exactly that in the phase
      attribution — recovery costs this map nothing. *)
  let recover (_ : t) =
    let sp = Profile.begin_span ~tid:(-1) Profile.Recovery_scan in
    Profile.end_span ~tid:(-1) sp

  (* -------------------------- introspection -------------------------- *)

  (* The composed footprint: every slot is a full detectable cell (one
     boxed state word plus one announce word per thread), and the map
     adds its own per-thread announcement on top.  Composition
     multiplies announce space by the number of base objects — exactly
     the regime the Ben-Baruch et al. lower bounds are about. *)
  let stats t : Detectable_intf.stats =
    {
      state_words = t.nbuckets;
      announce_words = t.nthreads * (t.nbuckets + 1);
    }

  let to_alist t =
    Array.to_list t.slots
    |> List.filter_map (fun c ->
           let cur = C.read c in
           if cur = empty_slot || cur = tombstone then None
           else Some (key_of cur, value_of cur))
    |> List.sort compare

  let length t = List.length (to_alist t)
end
