(** Deterministic simulator for persistent-memory algorithms.

    {[
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module Q = Dssq_core.Dss_queue.Make (M) in
      let q = Q.create ~nthreads:2 ~capacity:64 () in      (* direct mode *)
      let outcome =
        Sim.run heap
          ~policy:(Sim.Random_seed 42)
          ~crash:(Sim.Crash_at_step 17)
          ~threads:[ (fun () -> ...); (fun () -> ...) ]
      in
      if outcome.crashed then begin
        Sim.apply_crash heap ~evict_p:0.5 ~seed:7;
        Q.recover q                                        (* direct mode *)
      end
    ]}

    Code outside {!run} (initialization, single-threaded recovery) applies
    memory operations directly; code inside is interleaved at
    memory-event granularity per the policy. *)

open Dssq_pmem

type policy =
  | Round_robin
  | Random_seed of int  (** uniformly random runnable thread, seeded *)
  | Script of int array
      (** follow the given thread ids (skipping unrunnable ones), then
          round-robin *)

type crash_plan =
  | No_crash
  | Crash_at_step of int  (** crash before executing step [n] (0-based) *)
  | Crash_prob of float * int  (** per-step crash probability, seed *)

type outcome = {
  steps : int;
  crashed : bool;
  results : (unit, exn) result option array;
      (** per-thread; [None] if killed by a crash *)
}

val memory : ?coalesce:bool -> Heap.t -> (module Dssq_memory.Memory_intf.S)
(** A first-class [MEMORY] backed by the heap: operations suspend into
    the scheduler inside {!run}, and apply directly outside.

    [~coalesce:true] turns on per-thread flush coalescing: [flush]
    buffers the cell's line, [drain] writes the batch back with one
    barrier as its own scheduling step, and stores/CAS/fences auto-drain
    first.  Default [false]: [drain] is a literal no-op, so annotated
    algorithms produce bit-for-bit the pre-coalescing event stream. *)

val counted_memory :
  ?coalesce:bool -> Heap.t -> (module Dssq_memory.Memory_intf.COUNTED)
(** {!memory} plus uniform event accounting (the heap always counts);
    same [COUNTED] shape as [Dssq_memory.Native.Counted ()]. *)

val yield : Heap.t -> unit
(** Explicit scheduling point for thread code (no-op outside {!run}). *)

val run :
  ?policy:policy ->
  ?crash:crash_plan ->
  ?max_steps:int ->
  ?trace:(step:int -> tid:int -> string -> unit) ->
  Heap.t ->
  threads:(unit -> unit) list ->
  outcome
(** Run the threads to completion, crash, or [max_steps] (default 10^6 —
    exceeding it raises, catching livelocks).  [trace] is called before
    each step with a description of the memory event about to execute. *)

val apply_crash : Heap.t -> evict_p:float -> seed:int -> unit
(** Apply crash semantics to the heap: every dirty cell independently
    persists (cache eviction at power loss) with probability [evict_p],
    or reverts to its last flushed value. *)

val check_thread_errors : outcome -> unit
(** Re-raise the first non-[Killed] exception a thread died with. *)
