(** Low-level stepping machine for simulated threads.

    Threads are ordinary OCaml closures written against the simulated
    memory; each memory access performs an effect that suspends the thread
    and hands an explicit continuation to this machine.  [step] executes a
    thread's pending memory operation (one atomic step of the modelled
    machine) and runs the thread until its next memory access.

    Schedulers ({!Sim.run}) and the exhaustive explorer ({!Explore}) are
    thin loops over this module. *)

open Dssq_pmem

exception Killed
(** Raised inside a thread when the machine crashes underneath it. *)

type status =
  | Done of (unit, exn) result
  | Paused : 'a Sim_op.t * ('a, status) Effect.Deep.continuation -> status

type thread_state =
  | Fresh of (unit -> unit)
  | Waiting of status (* always [Paused] *)
  | Completed of (unit, exn) result

type t = {
  heap : Heap.t;
  threads : thread_state array;
  mutable steps : int;
}

type _ Effect.t += Mem : 'a Sim_op.t -> 'a Effect.t

let handler : (unit, status) Effect.Deep.handler =
  {
    retc = (fun () -> Done (Ok ()));
    exnc = (fun e -> Done (Error e));
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Mem op ->
            Some
              (fun (k : (b, status) Effect.Deep.continuation) ->
                Paused (op, k))
        | _ -> None);
  }

let create heap bodies =
  { heap; threads = Array.of_list (List.map (fun f -> Fresh f) bodies); steps = 0 }

let nthreads t = Array.length t.threads

let runnable t =
  let acc = ref [] in
  for i = Array.length t.threads - 1 downto 0 do
    match t.threads.(i) with
    | Fresh _ | Waiting _ -> acc := i :: !acc
    | Completed _ -> ()
  done;
  !acc

let finished t = runnable t = []
let steps t = t.steps

let set t tid status =
  match status with
  | Done r -> t.threads.(tid) <- Completed r
  | Paused _ -> t.threads.(tid) <- Waiting status

(** Outcome of a step, for cost models: which operation ran, for a CAS
    whether it succeeded, and for a flush whether it actually wrote back
    (an elided flush costs nothing). *)
type step_info = { cas_success : bool option; flush_effective : bool option }

(** Execute one atomic step of thread [tid]: either start it (running it
    up to its first memory access) or apply its pending memory operation
    and run it to the next one. *)
let step t tid =
  match t.threads.(tid) with
  | Completed _ -> invalid_arg "Machine.step: thread already completed"
  | Fresh f ->
      t.steps <- t.steps + 1;
      set t tid (Effect.Deep.match_with f () handler);
      { cas_success = None; flush_effective = None }
  | Waiting (Paused (op, k)) ->
      t.steps <- t.steps + 1;
      (* Line dirtiness must be read before the flush clears it. *)
      let flush_effective = Sim_op.flush_pending op in
      (* The heap's coalescing buffers are per-thread: tell it whose
         behalf this operation applies on, and restore direct mode (-1)
         afterwards so non-scheduled code keeps its own buffer. *)
      t.heap.Heap.cur_tid <- tid;
      let result = Sim_op.apply t.heap op in
      t.heap.Heap.cur_tid <- -1;
      let info =
        match op with
        | Sim_op.Cas _ -> { cas_success = Some result; flush_effective }
        | Sim_op.Read _ | Sim_op.Write _ | Sim_op.Flush _
        | Sim_op.Flush_async _ | Sim_op.Drain | Sim_op.Fence | Sim_op.Yield
          ->
            { cas_success = None; flush_effective }
      in
      set t tid (Effect.Deep.continue k result);
      info
  | Waiting (Done _) -> assert false

(** Pending operation of a suspended thread, for traces. *)
let pending_op t tid =
  match t.threads.(tid) with
  | Waiting (Paused (op, _)) -> Some (Sim_op.describe op)
  | Fresh _ -> Some "start"
  | _ -> None

(** Cost class of the thread's next step, for the throughput model. *)
let pending_kind t tid =
  match t.threads.(tid) with
  | Waiting (Paused (op, _)) -> Some (Sim_op.kind op)
  | Fresh _ -> Some Sim_op.Yield
  | _ -> None

(** Persist line the thread's next step targets, if any — the
    throughput model serializes conflicting accesses per line. *)
let pending_target t tid =
  match t.threads.(tid) with
  | Waiting (Paused (op, _)) -> Sim_op.target op
  | Fresh _ | Completed _ | Waiting (Done _) -> None

(** Identity of the thread's next step, for the explorer's independence
    relation.  [Start] is a [Fresh] thread's first step — it runs
    arbitrary closure code up to the first memory event, so the explorer
    must treat it as conflicting with everything.  [Pure] steps
    (fence/yield) touch no shared memory and commute with everything. *)
type access =
  | Start
  | Pure
  | Mem of { kind : Sim_op.kind; cell : int; line : int }

let pending_access t tid =
  match t.threads.(tid) with
  | Fresh _ -> Some Start
  | Waiting (Paused (Sim_op.Drain, _)) ->
      (* A drain writes back the thread's whole pending-line set — a
         footprint the access summary cannot name, so treat it like
         [Start]: conflicting with everything (sound, conservative). *)
      Some Start
  | Waiting (Paused (Sim_op.Fence, _))
    when (match Hashtbl.find_opt t.heap.Heap.pending tid with
         | Some b -> Hashtbl.length b > 0
         | None -> false) ->
      (* A fence by a thread with a nonempty persist buffer drains it
         (see [Heap.fence]) — same unnameable footprint as [Drain], so
         the same conservative verdict.  On the eager path the buffer is
         always empty and fences stay [Pure], preserving the pre-px86
         reduction exactly. *)
      Some Start
  | Waiting (Paused (op, _)) -> (
      match (Sim_op.cell_id op, Sim_op.target op) with
      | Some cell, Some line -> Some (Mem { kind = Sim_op.kind op; cell; line })
      | _ -> Some Pure)
  | Completed _ | Waiting (Done _) -> None

(** Kill every unfinished thread, as a system-wide crash does.  Threads
    are discontinued with {!Killed} so their stacks unwind and any
    resources are released; the resulting exception is discarded. *)
let kill_all t =
  Array.iteri
    (fun i st ->
      match st with
      | Waiting (Paused (_, k)) ->
          ignore (Effect.Deep.discontinue k Killed);
          t.threads.(i) <- Completed (Error Killed)
      | Fresh _ -> t.threads.(i) <- Completed (Error Killed)
      | Completed _ | Waiting (Done _) -> ())
    t.threads

let result t tid =
  match t.threads.(tid) with Completed r -> Some r | Fresh _ | Waiting _ -> None
