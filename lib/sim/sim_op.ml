(** The atomic memory events a simulated thread can perform.

    Each constructor corresponds to one failure-atomic step of the
    modelled machine; the scheduler interleaves threads at exactly this
    granularity, and a crash can fall between any two of them. *)

open Dssq_pmem

type 'a t =
  | Read : 'a Cell.t -> 'a t
  | Write : 'a Cell.t * 'a -> unit t
  | Cas : 'a Cell.t * 'a * 'a -> bool t
  | Flush : 'a Cell.t -> unit t
  | Flush_async : 'a Cell.t -> unit t
      (** coalescing flush: record the line in the thread's persist
          buffer (no write-back yet; the line stays dirty) *)
  | Drain : unit t
      (** persist barrier: write back every line in the thread's persist
          buffer and fence once *)
  | Fence : unit t
  | Yield : unit t  (** scheduling point with no memory side effect *)

let apply : type a. Heap.t -> a t -> a =
 fun heap op ->
  match op with
  | Read c -> Heap.read heap c
  | Write (c, v) -> Heap.write heap c v
  | Cas (c, expected, desired) -> Heap.cas heap c ~expected ~desired
  | Flush c -> Heap.flush heap c
  | Flush_async c -> Heap.flush_coalesced heap c
  | Drain -> Heap.drain heap
  | Fence -> Heap.fence heap
  | Yield -> ()

(** Cost classes for the discrete-event throughput model. *)
type kind = Read | Write | Cas | Flush | Flush_async | Drain | Fence | Yield

let kind : type a. a t -> kind = function
  | Read _ -> Read
  | Write _ -> Write
  | Cas _ -> Cas
  | Flush _ -> Flush
  | Flush_async _ -> Flush_async
  | Drain -> Drain
  | Fence -> Fence
  | Yield -> Yield

(** Id of the persist {e line} an operation targets.  This is the unit
    at which the throughput model serializes conflicting accesses (cache
    line ownership) and at which flushes write back; at line size 1 it
    is in bijection with cell ids, recovering the old per-cell
    behaviour. *)
let target : type a. a t -> int option = function
  | Read c -> Some (Cell.line_id c)
  | Write (c, _) -> Some (Cell.line_id c)
  | Cas (c, _, _) -> Some (Cell.line_id c)
  | Flush c -> Some (Cell.line_id c)
  | Flush_async c -> Some (Cell.line_id c)
  | Drain -> None (* targets the thread's whole pending-line set *)
  | Fence -> None
  | Yield -> None

(** Id of the {e cell} an operation targets — finer than {!target}
    (its line): two writes to distinct cells of one line commute, while
    a flush conflicts with anything on its line.  The explorer's
    independence relation is keyed on both. *)
let cell_id : type a. a t -> int option = function
  | Read c -> Some c.Cell.id
  | Write (c, _) -> Some c.Cell.id
  | Cas (c, _, _) -> Some c.Cell.id
  | Flush c -> Some c.Cell.id
  | Flush_async c -> Some c.Cell.id
  | Drain -> None
  | Fence -> None
  | Yield -> None

(** For a [Flush], whether it would actually write back (line dirty, or
    legacy line size 1); for a [Flush_async], whether the line is dirty
    (clean lines are elided at any size on the coalescing path).  Asked
    {e before} the event applies — cost models use it to charge elided
    flushes nothing. *)
let flush_pending : type a. a t -> bool option = function
  | Flush c ->
      Some (Dssq_memory.Memory_intf.Line.flush_pending (Cell.line c))
  | Flush_async c ->
      Some (Dssq_memory.Memory_intf.Line.is_dirty (Cell.line c))
  | Read _ | Write _ | Cas _ | Drain | Fence | Yield -> None

let describe : type a. a t -> string = function
  | Read c -> Printf.sprintf "read %s#%d" c.Cell.name c.Cell.id
  | Write (c, _) -> Printf.sprintf "write %s#%d" c.Cell.name c.Cell.id
  | Cas (c, _, _) -> Printf.sprintf "cas %s#%d" c.Cell.name c.Cell.id
  | Flush c -> Printf.sprintf "flush %s#%d" c.Cell.name c.Cell.id
  | Flush_async c -> Printf.sprintf "flush-async %s#%d" c.Cell.name c.Cell.id
  | Drain -> "drain"
  | Fence -> "fence"
  | Yield -> "yield"
