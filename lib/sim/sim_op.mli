(** The atomic memory events a simulated thread can perform — the
    granularity at which the scheduler interleaves and crashes fall. *)

open Dssq_pmem

type 'a t =
  | Read : 'a Cell.t -> 'a t
  | Write : 'a Cell.t * 'a -> unit t
  | Cas : 'a Cell.t * 'a * 'a -> bool t
  | Flush : 'a Cell.t -> unit t
  | Flush_async : 'a Cell.t -> unit t
      (** coalescing flush: buffer the line, no write-back yet *)
  | Drain : unit t
      (** persist barrier: write back the thread's pending lines *)
  | Fence : unit t
  | Yield : unit t  (** scheduling point with no memory side effect *)

val apply : Heap.t -> 'a t -> 'a
(** Execute one event directly against the heap. *)

(** Cost classes for the discrete-event throughput model. *)
type kind = Read | Write | Cas | Flush | Flush_async | Drain | Fence | Yield

val kind : 'a t -> kind

val target : 'a t -> int option
(** Id of the persist line the event touches, if any — the unit of
    cache-line contention and write-back. *)

val cell_id : 'a t -> int option
(** Id of the cell the event touches, if any — the unit at which plain
    reads/writes conflict (finer than {!target}). *)

val flush_pending : 'a t -> bool option
(** For a [Flush], whether it would actually write back ([Some false] =
    the flush will be elided); [None] for other events.  Must be asked
    before the event applies. *)

val describe : 'a t -> string
