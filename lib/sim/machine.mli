(** Low-level stepping machine for simulated threads.

    Threads are closures over the simulated memory; every memory access
    performs an effect that suspends the thread here.  {!step} executes a
    thread's pending memory event (one atomic step of the modelled
    machine) and runs it to its next event.  Schedulers ([Sim.run], the
    throughput model) and the exhaustive explorer are loops over this
    module. *)

open Dssq_pmem

exception Killed
(** Raised inside a thread when the machine crashes underneath it. *)

type t

type _ Effect.t += Mem : 'a Sim_op.t -> 'a Effect.t
(** The effect simulated memory performs for each access. *)

val create : Heap.t -> (unit -> unit) list -> t

val nthreads : t -> int

val runnable : t -> int list
(** Thread ids that can still take a step. *)

val finished : t -> bool
val steps : t -> int

(** Outcome of a step, for cost models.  [flush_effective] is [Some
    false] when the step was a flush of a clean line (elided — no
    write-back to charge). *)
type step_info = { cas_success : bool option; flush_effective : bool option }

val step : t -> int -> step_info
(** Execute one atomic step of the given thread: start it (running to its
    first memory event) or apply its pending event and run to the next. *)

val pending_op : t -> int -> string option
(** Description of the thread's next event (traces). *)

val pending_kind : t -> int -> Sim_op.kind option
(** Cost class of the thread's next event. *)

val pending_target : t -> int -> int option
(** Persist line the thread's next event targets, if any. *)

(** Identity of a thread's next step, for the explorer's independence
    relation: [Start] (a fresh thread's first step — arbitrary closure
    code, conflicts with everything), [Pure] (fence/yield — commutes
    with everything), or a memory access with its cell and line. *)
type access =
  | Start
  | Pure
  | Mem of { kind : Sim_op.kind; cell : int; line : int }

val pending_access : t -> int -> access option
(** [None] once the thread has completed. *)

val kill_all : t -> unit
(** Kill every unfinished thread, as a system-wide crash does. *)

val result : t -> int -> (unit, exn) result option
(** [None] while the thread is still running. *)
