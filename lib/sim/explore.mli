(** Crash-consistency model checker: bounded-exhaustive interleaving
    search with sleep-set (simple DPOR) reduction, CHESS-style iterative
    deepening on the preemption bound, and a per-line crash adversary
    that enumerates eviction subsets of the dirty persist lines at every
    reachable crash point.  Failing executions are reported as
    {!Violation} carrying a replayable {!schedule}.

    Replays the scenario from scratch along each branch, so [setup] must
    build a fresh, independent scenario each call. *)

exception Too_many_executions of int

type verdict = { line : int; evicted : bool }
(** Crash fate of one dirty persist line: [evicted = true] = the cache
    wrote the line back before power loss (survives), [false] = lost. *)

type decision =
  | Sched of int
  | Bdrain of { tid : int; count : int }
      (** adversary buffer write-back (px86): persist the oldest [count]
          entries of thread [tid]'s persist-buffer FIFO — no fence, no
          scheduling step.  The search emits these immediately before a
          [Crash]; replay accepts them anywhere. *)
  | Crash of verdict list
(** One branch choice: step thread [tid], or crash with the given
    per-dirty-line verdicts (under px86, after adversary-chosen
    buffer-drain prefixes). *)

type schedule = decision list
(** A complete list of decisions identifies an execution exactly. *)

exception Violation of { schedule : schedule; exn : exn }
(** The [check] raised [exn] at the end of the execution produced by
    [schedule]; replaying the schedule reproduces it deterministically,
    per-line eviction verdicts included. *)

type adversary = [ `Per_line | `All_or_nothing ]
(** [`Per_line] enumerates subsets of the dirty lines at each crash
    point (sampling above the subset cap); [`All_or_nothing] is the
    legacy evict-everything / evict-nothing pair. *)

type stats = {
  executions : int;  (** complete executions checked *)
  pruned : int;  (** branches cut by sleep-set reduction *)
  crash_branches : int;  (** crash executions among [executions] *)
  branches : int;  (** schedule branches actually descended into *)
  crash_points : int;  (** step boundaries where crash verdicts were drawn *)
  crash_enumerated : int;
      (** crash points whose 2^k eviction subsets were fully enumerated *)
  crash_sampled : int;
      (** crash points that fell back to sampling (k over the cap) *)
  drain_points : int;
      (** crash points with at least one nonempty px86 persist buffer
          (always 0 under sc) *)
  drain_branches : int;
      (** crash executions carrying at least one [Bdrain] decision *)
  wall_s : float;  (** wall-clock seconds spent in [run] *)
}
(** Coverage telemetry: [pruned /. (pruned + branches)] is the sleep-set
    hit rate, [crash_sampled > 0] flags incomplete eviction-subset
    coverage (see [max_crash_lines]). *)

type 'ctx scenario = {
  ctx : 'ctx;
  heap : Dssq_pmem.Heap.t;
  threads : (unit -> unit) list;
}

type 'ctx t

val make :
  ?crashes:bool ->
  ?adversary:adversary ->
  ?max_crash_lines:int ->
  ?crash_samples:int ->
  ?seed:int ->
  ?reduction:bool ->
  ?max_steps:int ->
  ?limit:int ->
  ?max_preemptions:int ->
  ?on_crash:('ctx -> Dssq_pmem.Heap.t -> unit) ->
  setup:(unit -> 'ctx scenario) ->
  check:('ctx -> Dssq_pmem.Heap.t -> crashed:bool -> unit) ->
  unit ->
  'ctx t
(** [check] runs at the end of every complete execution; a raise becomes
    a {!Violation}.  [on_crash] (default no-op) runs on every crashed
    execution after the per-line crash semantics are applied and before
    [check] — the hook scenarios use to route every explored crash
    through the system-level [Recovery.reattach].  [max_preemptions] bounds context switches away from
    still-runnable threads and is searched by iterative deepening (round
    [k] checks exactly the [k]-preemption executions).  [reduction]
    (default true) enables sleep-set pruning keyed on cell/line identity.
    [max_crash_lines] (default 4) caps exhaustive eviction-subset
    enumeration at a crash point; above it, the two uniform verdicts
    plus [crash_samples] seeded random subsets are tried instead.
    [limit] caps total executions (default 2e6; exceeding raises). *)

val run : 'ctx t -> stats
(** Run the exploration.  Raises {!Violation} on the first failing
    execution, {!Too_many_executions} past [limit]. *)

val replay_schedule : 'ctx t -> schedule -> [ `Completed | `Crashed ]
(** Re-execute one recorded schedule on a fresh scenario and run the
    check.  Raises {!Violation} if the check fails, [Invalid_argument]
    if the schedule leaves runnable threads behind. *)

type outcome = Passed of [ `Completed | `Crashed ] | Failed of exn
(** [Failed] carries the {!Violation}. *)

val explain : 'ctx t -> schedule -> outcome * Dssq_obs.Trace.entry list
(** {!replay_schedule} under a fresh tracer: returns the outcome
    (violations are caught, not raised) together with the merged trace
    timeline of the replayed execution. *)

val schedule_to_string : schedule -> string
(** Compact replay token, e.g. ["t0.t0.t1.c3e,5d"] — thread steps plus a
    final crash with per-line verdicts ([e]victed / [d]ropped).  Under
    px86 the crash may be preceded by buffer-drain tokens, e.g.
    ["t0.t1.b0:2.c1d"] — persist the oldest 2 entries of thread 0's
    buffer, then crash dropping line 1. *)

val schedule_of_string : string -> schedule
(** Inverse of {!schedule_to_string}.
    @raise Invalid_argument on a malformed token. *)
