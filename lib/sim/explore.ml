(** Crash-consistency model checker over the stepping machine.

    Enumerates interleavings of a small scenario, optionally injecting a
    crash at every reachable step boundary with a {e per-line} eviction
    adversary: at a crash point, every subset of the currently dirty
    persist lines may survive to persistence (be evicted by the cache)
    while the rest is lost.  Executions replay the scenario from scratch
    along each branch — continuations are one-shot, so replay is how we
    fork.

    When the scenario's heap runs under buffered (px86) persistency, a
    crash point additionally enumerates adversary-chosen {e buffer-drain
    prefixes}: for each thread, any FIFO prefix of its persist buffer
    may have been written back asynchronously before power was lost.
    These appear as {!Bdrain} decisions (token [b<tid>:<count>]) right
    before the [Crash], so relaxed counterexamples replay byte-for-byte
    like everything else.

    Two complementary bounding techniques keep the search tractable:

    - {b Sleep-set reduction} (a simple stateless DPOR): after exploring
      thread [t]'s step from a node, later sibling branches carry [t] in
      their sleep set until a step {e dependent} on [t]'s is taken, and a
      branch whose chosen thread is asleep is pruned.  Independence is
      keyed on the memory identity the trace layer already stamps on
      every event: reads commute with reads, writes/CASes conflict on
      the same cell, flushes conflict with writes/CASes/flushes on the
      same persist line, and fences/yields commute with everything.  A
      fresh thread's first step runs arbitrary closure code and is
      treated as conflicting with everything.

    - {b Iterative deepening on the CHESS preemption bound}: round [k]
      checks exactly the executions with [k] preemptions, so shallow
      schedules (where most concurrency bugs live) are judged before
      deep ones and no execution is checked twice across rounds.

    [setup] must build a fresh, fully independent scenario each time it
    is called: a fresh heap, fresh memory module, fresh object, fresh
    thread closures.  [check] is called at the end of every complete
    execution; a raise is converted into {!Violation} carrying the
    replayable schedule of decisions that produced it. *)

open Dssq_pmem
module Trace = Dssq_obs.Trace

exception Too_many_executions of int

type verdict = { line : int; evicted : bool }
(** Crash fate of one dirty persist line: [evicted = true] means the
    cache wrote the line back before power was lost (its writes
    survive), [false] means the line was dropped. *)

type decision =
  | Sched of int
  | Bdrain of { tid : int; count : int }
      (** adversary buffer write-back (px86): persist the oldest [count]
          entries of thread [tid]'s persist-buffer FIFO.  Emitted
          immediately before a [Crash]; replay accepts it anywhere. *)
  | Crash of verdict list
(** One branch choice: step thread [tid], or crash with the given
    per-dirty-line verdicts (under px86, preceded by adversary-chosen
    buffer-drain prefixes).  A complete list of decisions identifies an
    execution exactly and is the replayable counterexample currency. *)

type schedule = decision list

exception Violation of { schedule : schedule; exn : exn }
(** [check] raised [exn] at the end of the execution produced by
    [schedule].  Replay the schedule (e.g. [dssq explore --replay]) to
    reproduce it deterministically, per-line crash verdicts included. *)

type adversary = [ `Per_line | `All_or_nothing ]
(** Crash adversary: [`Per_line] enumerates subsets of the dirty lines
    (the real failure mode); [`All_or_nothing] keeps the legacy
    "evict everything"/"evict nothing" pair, useful for comparisons. *)

type stats = {
  executions : int;  (** complete executions checked *)
  pruned : int;  (** branches cut by sleep-set reduction *)
  crash_branches : int;  (** crash executions among [executions] *)
  branches : int;  (** schedule branches actually descended into *)
  crash_points : int;  (** step boundaries where crash verdicts were drawn *)
  crash_enumerated : int;
      (** crash points whose 2^k eviction subsets were fully enumerated *)
  crash_sampled : int;
      (** crash points that fell back to sampling (k over the cap) *)
  drain_points : int;
      (** crash points where at least one px86 persist buffer was
          nonempty, i.e. where buffer-drain prefixes were enumerated *)
  drain_branches : int;
      (** crash executions that carried at least one [Bdrain] decision *)
  wall_s : float;  (** wall-clock seconds spent in [run] *)
}

type 'ctx scenario = {
  ctx : 'ctx;
  heap : Heap.t;
  threads : (unit -> unit) list;
}

type 'ctx t = {
  setup : unit -> 'ctx scenario;
  check : 'ctx -> Heap.t -> crashed:bool -> unit;
  on_crash : 'ctx -> Heap.t -> unit;
      (* recovery hook: runs after the crash semantics are applied and
         before [check] — scenarios thread Recovery.reattach through
         here, so every explored crash (mid-alloc, mid-log-append, ...)
         recovers through the system-level path before being judged *)
  crashes : bool;
  adversary : adversary;
  max_crash_lines : int;
      (* enumerate all 2^k eviction subsets while the dirty-line count k
         stays at or under this; above it, fall back to sampling *)
  crash_samples : int;
  seed : int;
  reduction : bool;
  max_steps : int;
  limit : int;
  max_preemptions : int option;
      (* CHESS-style bound: a context switch away from a thread that is
         still runnable counts as a preemption; most concurrency bugs
         manifest within 2-3 preemptions, and the bound turns an
         exponential schedule space into a polynomial one. *)
  mutable rng : Random.State.t;
  mutable executions : int;
  mutable pruned : int;
  mutable crash_branches : int;
  mutable branches : int;
  mutable crash_points : int;
  mutable crash_enumerated : int;
  mutable crash_sampled : int;
  mutable drain_points : int;
  mutable drain_branches : int;
}

let make ?(crashes = false) ?(adversary = `Per_line) ?(max_crash_lines = 4)
    ?(crash_samples = 6) ?(seed = 0) ?(reduction = true) ?(max_steps = 10_000)
    ?(limit = 2_000_000) ?max_preemptions ?(on_crash = fun _ _ -> ()) ~setup
    ~check () =
  {
    setup;
    check;
    on_crash;
    crashes;
    adversary;
    max_crash_lines;
    crash_samples;
    seed;
    reduction;
    max_steps;
    limit;
    max_preemptions;
    rng = Random.State.make [| seed; 0xD55 |];
    executions = 0;
    pruned = 0;
    crash_branches = 0;
    branches = 0;
    crash_points = 0;
    crash_enumerated = 0;
    crash_sampled = 0;
    drain_points = 0;
    drain_branches = 0;
  }

(* ------------------------------------------------------------------ *)
(* Schedule tokens.                                                    *)

let verdicts_to_string vs =
  String.concat ","
    (List.map
       (fun { line; evicted } ->
         Printf.sprintf "%d%c" line (if evicted then 'e' else 'd'))
       vs)

let schedule_to_string sched =
  String.concat "."
    (List.map
       (function
         | Sched tid -> Printf.sprintf "t%d" tid
         | Bdrain { tid; count } -> Printf.sprintf "b%d:%d" tid count
         | Crash vs -> "c" ^ verdicts_to_string vs)
       sched)

let schedule_of_string s =
  let fail tok =
    invalid_arg (Printf.sprintf "Explore.schedule_of_string: bad token %S" tok)
  in
  let verdict tok part =
    let n = String.length part in
    if n < 2 then fail tok;
    let line =
      match int_of_string_opt (String.sub part 0 (n - 1)) with
      | Some l -> l
      | None -> fail tok
    in
    match part.[n - 1] with
    | 'e' -> { line; evicted = true }
    | 'd' -> { line; evicted = false }
    | _ -> fail tok
  in
  String.split_on_char '.' s
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         if String.length tok < 1 then fail tok
         else
           match tok.[0] with
           | 't' -> (
               match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
               | Some tid when tid >= 0 -> Sched tid
               | _ -> fail tok)
           | 'b' -> (
               let rest = String.sub tok 1 (String.length tok - 1) in
               match String.index_opt rest ':' with
               | Some i -> (
                   let tid = int_of_string_opt (String.sub rest 0 i) in
                   let count =
                     int_of_string_opt
                       (String.sub rest (i + 1) (String.length rest - i - 1))
                   in
                   match (tid, count) with
                   | Some tid, Some count when tid >= 0 && count >= 1 ->
                       Bdrain { tid; count }
                   | _ -> fail tok)
               | None -> fail tok)
           | 'c' ->
               let rest = String.sub tok 1 (String.length tok - 1) in
               if rest = "" then Crash []
               else
                 Crash
                   (String.split_on_char ',' rest |> List.map (verdict tok))
           | _ -> fail tok)

(* ------------------------------------------------------------------ *)
(* Replay.                                                             *)

(* Replay [prefix] on a fresh scenario.  Returns the machine positioned
   after the prefix, unless the prefix ends in a crash, in which case the
   crash is applied and [`Crashed] is returned.  When a tracer is active
   (see [explain]) each step is attributed to its thread. *)
let replay t prefix =
  let scenario = t.setup () in
  let machine = Machine.create scenario.heap scenario.threads in
  scenario.heap.Heap.in_sim <- true;
  let outcome =
    try
      List.iter
        (fun d ->
          match d with
          | Sched tid ->
              if Trace.is_on () then Trace.set_tid tid;
              ignore (Machine.step machine tid : Machine.step_info)
          | Bdrain { tid; count } ->
              (* Asynchronous write-back of the oldest [count] buffered
                 lines of thread [tid] — no scheduling step, no fence. *)
              Heap.adversary_drain scenario.heap ~tid ~count
          | Crash vs ->
              if Trace.is_on () then Trace.set_tid (-1);
              Machine.kill_all machine;
              scenario.heap.Heap.in_sim <- false;
              let tbl = Hashtbl.create 8 in
              List.iter (fun { line; evicted } -> Hashtbl.replace tbl line evicted) vs;
              Heap.crash_lines scenario.heap ~evict:(fun lid ->
                  match Hashtbl.find_opt tbl lid with
                  | Some v -> v
                  | None -> false (* line dirtied after the verdicts were drawn: lost *));
              raise Exit)
        prefix;
      `Running
    with Exit -> `Crashed
  in
  scenario.heap.Heap.in_sim <- false;
  if Trace.is_on () then Trace.set_tid (-1);
  (scenario, machine, outcome)

let finish t schedule scenario ~crashed =
  t.executions <- t.executions + 1;
  if t.executions > t.limit then raise (Too_many_executions t.executions);
  try
    if crashed then t.on_crash scenario.ctx scenario.heap;
    t.check scenario.ctx scenario.heap ~crashed
  with
  | Too_many_executions _ as e -> raise e
  | e -> raise (Violation { schedule; exn = e })

(* ------------------------------------------------------------------ *)
(* Independence relation, keyed on memory identity.                    *)

let independent (a : Machine.access) (b : Machine.access) =
  match (a, b) with
  | Machine.Pure, _ | _, Machine.Pure -> true
  | Machine.Start, _ | _, Machine.Start -> false
  | Machine.Mem x, Machine.Mem y -> (
      match (x.kind, y.kind) with
      | (Sim_op.Fence | Sim_op.Yield), _ | _, (Sim_op.Fence | Sim_op.Yield) ->
          true
      | Sim_op.Drain, _ | _, Sim_op.Drain ->
          (* unreachable: a drain's footprint is the thread's whole
             pending-line set, so [pending_access] reports it as [Start]
             (conflicts with everything), never as [Mem] *)
          false
      | Sim_op.Read, Sim_op.Read -> true
      | ( Sim_op.Read, (Sim_op.Flush | Sim_op.Flush_async) )
      | ( (Sim_op.Flush | Sim_op.Flush_async), Sim_op.Read ) ->
          (* a flush never changes volatile state and a read never
             changes dirtiness, so they commute even on the same line *)
          true
      | (Sim_op.Flush | Sim_op.Flush_async), _
      | _, (Sim_op.Flush | Sim_op.Flush_async) ->
          (* flush vs write/cas/flush: they interact through the line's
             dirtiness and persisted words (a coalescing flush reads
             dirtiness to decide pend-vs-elide, so it conflicts too) *)
          x.line <> y.line
      | ( (Sim_op.Read | Sim_op.Write | Sim_op.Cas),
          (Sim_op.Read | Sim_op.Write | Sim_op.Cas) ) ->
          x.cell <> y.cell)

(* ------------------------------------------------------------------ *)
(* Crash adversary: eviction-verdict choices over the dirty lines.     *)

let crash_choices t dirty =
  t.crash_points <- t.crash_points + 1;
  let uniform evicted = List.map (fun line -> { line; evicted }) dirty in
  match t.adversary with
  | `All_or_nothing ->
      t.crash_enumerated <- t.crash_enumerated + 1;
      if dirty = [] then [ [] ] else [ uniform false; uniform true ]
  | `Per_line ->
      let k = List.length dirty in
      if k <= t.max_crash_lines then begin
        t.crash_enumerated <- t.crash_enumerated + 1;
        List.init (1 lsl k) (fun mask ->
            List.mapi
              (fun i line -> { line; evicted = mask land (1 lsl i) <> 0 })
              dirty)
      end
      else begin
        (* Too many dirty lines to enumerate 2^k subsets: keep the two
           extremes (sound for whole-state loss/survival) plus seeded
           random subsets.  This fallback samples — it can miss a
           verdict combination, which is the checker's one source of
           incompleteness above the cap (documented in DESIGN.md). *)
        t.crash_sampled <- t.crash_sampled + 1;
        let samples =
          List.init t.crash_samples (fun _ ->
              List.map
                (fun line -> { line; evicted = Random.State.bool t.rng })
                dirty)
        in
        List.sort_uniq compare (uniform false :: uniform true :: samples)
      end

(* Joint px86 crash adversary: pick a FIFO write-back prefix per thread
   {e and} a per-line verdict over the unbuffered dirty lines.  The two
   axes are independent (drains target buffered lines, verdicts the
   rest), so the joint space is [Π (len_t + 1) × 2^k]; it is enumerated
   exhaustively while it fits the same [2^max_crash_lines] budget the
   verdict adversary uses per crash point — one budget for the whole
   point, not per axis, which is what keeps the px86 corpus within a
   small constant of the sc corpus cost.  Above the budget we keep the
   four extremes (nothing/everything drained × everything lost/written
   back) plus [crash_samples] seeded random (prefix, verdict) picks —
   the same sampling discipline, and the same single source of
   incompleteness, as {!crash_choices}.  Count-0 prefixes emit no
   decision, so drain-free branches carry pre-px86 schedules. *)
let joint_crash_choices t ~fifos ~candidates =
  t.crash_points <- t.crash_points + 1;
  let drains_of choice =
    List.filter_map
      (fun (tid, c) -> if c = 0 then None else Some (Bdrain { tid; count = c }))
      choice
  in
  let full = drains_of (List.map (fun (tid, f) -> (tid, List.length f)) fifos) in
  let uniform evicted = List.map (fun line -> { line; evicted }) candidates in
  let extremes =
    List.sort_uniq compare
      [
        ([], uniform false);
        ([], uniform true);
        (full, uniform false);
        (full, uniform true);
      ]
  in
  match t.adversary with
  | `All_or_nothing ->
      t.crash_enumerated <- t.crash_enumerated + 1;
      extremes
  | `Per_line ->
      let k = List.length candidates in
      let dtotal =
        List.fold_left (fun acc (_, f) -> acc * (List.length f + 1)) 1 fifos
      in
      if dtotal * (1 lsl k) <= 1 lsl t.max_crash_lines then begin
        t.crash_enumerated <- t.crash_enumerated + 1;
        let prefix_choices =
          List.fold_left
            (fun acc (tid, fifo) ->
              List.concat_map
                (fun partial ->
                  List.init (List.length fifo + 1) (fun c ->
                      partial @ [ (tid, c) ]))
                acc)
            [ [] ] fifos
        in
        List.concat_map
          (fun choice ->
            let drains = drains_of choice in
            List.init (1 lsl k) (fun mask ->
                ( drains,
                  List.mapi
                    (fun i line ->
                      { line; evicted = mask land (1 lsl i) <> 0 })
                    candidates )))
          prefix_choices
      end
      else begin
        t.crash_sampled <- t.crash_sampled + 1;
        let samples =
          List.init t.crash_samples (fun _ ->
              let choice =
                List.map
                  (fun (tid, f) ->
                    (tid, Random.State.int t.rng (List.length f + 1)))
                  fifos
              in
              ( drains_of choice,
                List.map
                  (fun line ->
                    { line; evicted = Random.State.bool t.rng })
                  candidates ))
        in
        List.sort_uniq compare (extremes @ samples)
      end

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)

(* [round = Some k]: iterative-deepening round that checks exactly the
   executions with [k] preemptions (so no execution is checked twice
   across rounds); [None]: unbounded, check everything. *)
let round_matches round preemptions =
  match round with None -> true | Some k -> preemptions = k

let rec dfs t prefix depth ~sleep ~last ~preemptions ~round =
  let scenario, machine, state = replay t prefix in
  assert (state = `Running);
  if depth > t.max_steps then
    failwith "Explore: max_steps exceeded (livelock under exploration?)";
  (* Crash branches: at every reachable step boundary, try each
     per-line eviction choice over the lines dirty right now — under
     px86, crossed with each adversary buffer-drain prefix combination
     (the drains target buffered lines, the verdicts the rest, so the
     two choice axes are independent). *)
  (if t.crashes && round_matches round preemptions then begin
     let fifos = Heap.pending_fifos scenario.heap in
     let candidates = Heap.crash_candidate_lines scenario.heap in
     let run_branch drains vs =
       let schedule = prefix @ drains @ [ Crash vs ] in
       let crashed_scenario, _, outcome = replay t schedule in
       assert (outcome = `Crashed);
       t.crash_branches <- t.crash_branches + 1;
       if drains <> [] then t.drain_branches <- t.drain_branches + 1;
       finish t schedule crashed_scenario ~crashed:true
     in
     if fifos = [] then
       (* Empty buffers (always, under sc): verdicts only — branch
          structure and schedules bit-for-bit the pre-px86 ones. *)
       List.iter (fun vs -> run_branch [] vs) (crash_choices t candidates)
     else begin
       t.drain_points <- t.drain_points + 1;
       List.iter
         (fun (drains, vs) -> run_branch drains vs)
         (joint_crash_choices t ~fifos ~candidates)
     end
   end);
  match Machine.runnable machine with
  | [] ->
      if round_matches round preemptions then
        finish t prefix scenario ~crashed:false
  | runnable ->
      (* Sleep-set reduction: [sleep] holds (tid, access) pairs whose
         step is covered by an already-explored sibling branch; entries
         survive into a child only while independent of the step taken.
         After exploring a thread's branch, that thread joins the sleep
         set of its later siblings. *)
      let sleep = ref sleep in
      List.iter
        (fun tid ->
          if t.reduction && List.mem_assoc tid !sleep then
            t.pruned <- t.pruned + 1
          else
            let preempts = last >= 0 && tid <> last && List.mem last runnable in
            let allowed =
              match round with
              | Some bound when preempts -> preemptions < bound
              | _ -> true
            in
            if allowed then begin
              let access =
                match Machine.pending_access machine tid with
                | Some a -> a
                | None -> assert false (* runnable => pending access *)
              in
              let child_sleep =
                List.filter (fun (_, a) -> independent a access) !sleep
              in
              t.branches <- t.branches + 1;
              dfs t
                (prefix @ [ Sched tid ])
                (depth + 1) ~sleep:child_sleep ~last:tid
                ~preemptions:(if preempts then preemptions + 1 else preemptions)
                ~round;
              sleep := (tid, access) :: !sleep
            end
            (* A branch skipped by the preemption bound was not explored,
               so it must NOT join the sleep set. *))
        runnable

let run t =
  t.executions <- 0;
  t.pruned <- 0;
  t.crash_branches <- 0;
  t.branches <- 0;
  t.crash_points <- 0;
  t.crash_enumerated <- 0;
  t.crash_sampled <- 0;
  t.drain_points <- 0;
  t.drain_branches <- 0;
  t.rng <- Random.State.make [| t.seed; 0xD55 |];
  let t0 = Unix.gettimeofday () in
  (match t.max_preemptions with
  | None -> dfs t [] 0 ~sleep:[] ~last:(-1) ~preemptions:0 ~round:None
  | Some bound ->
      for k = 0 to bound do
        dfs t [] 0 ~sleep:[] ~last:(-1) ~preemptions:0 ~round:(Some k)
      done);
  {
    executions = t.executions;
    pruned = t.pruned;
    crash_branches = t.crash_branches;
    branches = t.branches;
    crash_points = t.crash_points;
    crash_enumerated = t.crash_enumerated;
    crash_sampled = t.crash_sampled;
    drain_points = t.drain_points;
    drain_branches = t.drain_branches;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Replay of recorded schedules.                                       *)

let replay_schedule t schedule =
  let scenario, machine, outcome = replay t schedule in
  let check ~crashed =
    try
      if crashed then t.on_crash scenario.ctx scenario.heap;
      t.check scenario.ctx scenario.heap ~crashed
    with e -> raise (Violation { schedule; exn = e })
  in
  match outcome with
  | `Crashed ->
      check ~crashed:true;
      `Crashed
  | `Running ->
      if Machine.runnable machine <> [] then
        invalid_arg "Explore.replay_schedule: schedule is incomplete";
      check ~crashed:false;
      `Completed

type outcome = Passed of [ `Completed | `Crashed ] | Failed of exn

let explain t schedule =
  let result = ref (Passed `Completed) in
  let (), entries =
    Trace.capture (fun () ->
        match replay_schedule t schedule with
        | v -> result := Passed v
        | exception (Violation _ as e) -> result := Failed e)
  in
  (!result, entries)

let () =
  Printexc.register_printer (function
    | Violation { schedule; exn } ->
        Some
          (Printf.sprintf "Explore.Violation(schedule=%s): %s"
             (schedule_to_string schedule)
             (Printexc.to_string exn))
    | _ -> None)
