(** Deterministic simulator for persistent-memory algorithms.

    Usage pattern (see the tests and [examples/crash_recovery.ml]):
    {[
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module Q = Dssq_core.Dss_queue.Make (M) in
      let q = Q.create ~nthreads:2 ~capacity:64 in      (* direct mode *)
      let outcome =
        Sim.run heap
          ~policy:(Sim.Random_seed 42)
          ~crash:(Sim.Crash_at_step 17)
          ~threads:[ (fun () -> ...); (fun () -> ...) ]
      in
      if outcome.crashed then begin
        Sim.apply_crash heap ~evict_p:0.5 ~seed:7;
        Q.recover q                                      (* direct mode *)
      end
    ]}

    Code executed outside {!run} (initialization, the single-threaded
    recovery phase) applies memory operations directly; code inside [run]
    is interleaved at memory-operation granularity per the policy. *)

open Dssq_pmem

type policy =
  | Round_robin
  | Random_seed of int
      (** uniformly random runnable thread each step, seeded *)
  | Script of int array
      (** follow the given thread ids (skipping unrunnable ones), then
          round-robin *)

type crash_plan =
  | No_crash
  | Crash_at_step of int  (** crash before executing step [n] (0-based) *)
  | Crash_prob of float * int  (** per-step crash probability, seed *)

type outcome = {
  steps : int;
  crashed : bool;
  results : (unit, exn) result option array;
      (** per-thread: [None] if killed by a crash *)
}

(** A first-class [MEMORY] backed by [heap].  Inside {!run} operations
    suspend into the scheduler; outside they apply directly.

    With [~coalesce:true], [flush] buffers the line in the calling
    thread's per-thread persist buffer ({!Sim_op.Flush_async}) and
    [drain] is a real scheduling step that writes the batch back with one
    barrier; stores/CAS/fences auto-drain inside {!Heap} so eager code's
    flush-before-dependent-store orderings are preserved.  With the
    default [~coalesce:false], [drain] is a literal no-op (zero events,
    zero scheduling points), keeping annotated algorithms bit-for-bit
    identical to their pre-coalescing event streams.

    A heap created with [~persistency:Px86] forces the buffered routing
    regardless of [coalesce]: under the relaxed model a synchronous
    flush does not exist — the heap itself then skips the store
    auto-drain, so the flush-to-drain window stays open for the crash
    adversary.  A heap created with [~combine:true] (flat-combining
    batch epochs) forces it too: there the whole point is that flushes
    from many operations accumulate until one explicit epoch drain. *)
let memory ?(coalesce = false) heap : (module Dssq_memory.Memory_intf.S) =
  let buffered = coalesce || Heap.buffered heap in
  (module struct
    type 'a cell = 'a Cell.t

    let alloc ?name ?placement v = Heap.alloc heap ?name ?placement v
    let alloc_block ?name vs = Heap.alloc_block heap ?name vs

    let op : type a. a Sim_op.t -> a =
     fun o ->
      if heap.Heap.in_sim then Effect.perform (Machine.Mem o)
      else Sim_op.apply heap o

    let read c = op (Sim_op.Read c)
    let write c v = op (Sim_op.Write (c, v))
    let cas c ~expected ~desired = op (Sim_op.Cas (c, expected, desired))

    let flush c =
      if buffered then op (Sim_op.Flush_async c) else op (Sim_op.Flush c)

    let fence () = op Sim_op.Fence
    let drain () = if buffered then op Sim_op.Drain
  end)

(** {!memory} plus the uniform accounting interface: the heap always
    counts events (that {e is} the simulator's cost model), so this just
    exposes snapshot/reset in the same [COUNTED] shape as
    [Dssq_memory.Native.Counted]. *)
let counted_memory ?coalesce heap : (module Dssq_memory.Memory_intf.COUNTED) =
  (module struct
    include (val memory ?coalesce heap : Dssq_memory.Memory_intf.S)

    let counters () = Heap.counters heap
    let reset_counters () = Heap.reset_stats heap
  end)

(** Explicit scheduling point usable from thread code (e.g. workloads that
    want to be preemptible between high-level operations). *)
let yield heap =
  if heap.Heap.in_sim then Effect.perform (Machine.Mem Sim_op.Yield)

let pick_round_robin last runnable =
  match List.filter (fun t -> t > last) runnable with
  | t :: _ -> t
  | [] -> List.hd runnable

let run ?(policy = Round_robin) ?(crash = No_crash) ?(max_steps = 1_000_000)
    ?trace heap ~threads =
  let machine = Machine.create heap threads in
  let n = Machine.nthreads machine in
  let rng =
    match policy with
    | Random_seed seed -> Some (Random.State.make [| seed |])
    | Round_robin | Script _ -> None
  in
  let crash_rng =
    match crash with
    | Crash_prob (_, seed) -> Some (Random.State.make [| seed; 0x5EED |])
    | No_crash | Crash_at_step _ -> None
  in
  let script = match policy with Script s -> s | _ -> [||] in
  let script_pos = ref 0 in
  let last = ref (-1) in
  let crashed = ref false in
  heap.Heap.in_sim <- true;
  Fun.protect
    ~finally:(fun () ->
      heap.Heap.in_sim <- false;
      (* Whatever runs next (recovery, checking) is system context. *)
      Dssq_obs.Trace.set_tid (-1))
    (fun () ->
      let continue_run = ref true in
      while !continue_run && not (Machine.finished machine) do
        let step_index = Machine.steps machine in
        if step_index >= max_steps then
          failwith
            (Printf.sprintf "Sim.run: exceeded max_steps=%d (livelock?)"
               max_steps);
        let crash_now =
          match crash with
          | No_crash -> false
          | Crash_at_step s -> step_index = s
          | Crash_prob (p, _) ->
              Random.State.float (Option.get crash_rng) 1.0 < p
        in
        if crash_now then begin
          crashed := true;
          Machine.kill_all machine;
          continue_run := false
        end
        else begin
          let runnable = Machine.runnable machine in
          let tid =
            match rng with
            | Some rng ->
                List.nth runnable
                  (Random.State.int rng (List.length runnable))
            | None ->
                if !script_pos < Array.length script then begin
                  let wanted = script.(!script_pos) in
                  incr script_pos;
                  if List.mem wanted runnable then wanted
                  else pick_round_robin !last runnable
                end
                else pick_round_robin !last runnable
          in
          last := tid;
          (* Attribute the memory events of this step (emitted from
             [Heap]) to the scheduled thread. *)
          Dssq_obs.Trace.set_tid tid;
          (match trace with
          | Some f ->
              f ~step:step_index ~tid
                (Option.value ~default:"?" (Machine.pending_op machine tid))
          | None -> ());
          ignore (Machine.step machine tid : Machine.step_info)
        end
      done;
      {
        steps = Machine.steps machine;
        crashed = !crashed;
        results =
          Array.init n (fun i ->
              match Machine.result machine i with
              | Some (Error Machine.Killed) -> None
              | r -> r);
      })

(** Apply crash semantics to the heap: every dirty line independently
    persists with probability [evict_p] (cache eviction at power loss)
    or reverts to its last flushed value — each line as a unit.  Under
    px86 the draw respects the buffered model: each thread's persist
    buffer first writes back a random FIFO {e prefix} (the adversary's
    asynchronous drain), and the free-form per-line verdicts then range
    only over the dirty lines outside every buffer — a buffered line
    that missed its prefix is lost, never evicted out of order. *)
let apply_crash heap ~evict_p ~seed =
  let rng = Random.State.make [| seed; 0xC7A5 |] in
  match Heap.pending_fifos heap with
  | [] -> Heap.crash_random heap ~evict_p ~rng
  | fifos ->
      List.iter
        (fun (tid, entries) ->
          Heap.adversary_drain heap ~tid
            ~count:(Random.State.int rng (List.length entries + 1)))
        fifos;
      let candidates = Heap.crash_candidate_lines heap in
      let memo : (int, bool) Hashtbl.t = Hashtbl.create 16 in
      Heap.crash_lines heap ~evict:(fun lid ->
          match Hashtbl.find_opt memo lid with
          | Some v -> v
          | None ->
              let v =
                List.mem lid candidates
                && Random.State.float rng 1.0 < evict_p
              in
              Hashtbl.add memo lid v;
              v)

(** Re-raise the first non-[Killed] exception a thread died with, so test
    failures inside simulated threads are not silently swallowed. *)
let check_thread_errors outcome =
  Array.iter
    (function
      | Some (Error e) when e <> Machine.Killed -> raise e | _ -> ())
    outcome.results
