(** Plain-text, chart and CSV rendering of benchmark series — the same
    rows the paper plots in its figures. *)

type point = { x : int; samples : float list }
type series = { label : string; points : point list }

val of_run : Dssq_obs.Run_report.series list -> series list
(** Keep only the figure data (x, throughput samples) of a run report. *)

val to_run : series list -> Dssq_obs.Run_report.series list
(** Lift plain series into run-report series with empty observability
    payloads (zero events, no latency). *)

val mean_at : series -> int -> float option
val xs_of : series list -> int list

val print_table :
  ?out:Format.formatter ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  unit

val to_csv : x_label:string -> series list -> string

val print_chart : ?out:Format.formatter -> ?height:int -> series list -> unit
(** Compact ASCII scalability chart, so the figure's shape is visible in
    a terminal. *)
