(** Drivers for every figure of the paper's evaluation and the DESIGN.md
    ablations.  Both the benchmark executable and the CLI dispatch here,
    so each experiment is defined exactly once. *)

type backend = Sim_model | Native_domains

val default_threads : int list

type queue_config = { label : string; mk : string; det_pct : int }

val fig5a_queues : queue_config list
val fig5b_queues : queue_config list

val linesize_queues : queue_config list
(** Union of {!fig5a_queues} and {!fig5b_queues}, deduplicated by label —
    the set swept by {!ablate_linesize}. *)

val fc_queues : queue_config list
(** The flat-combining comparison pair: the engine-backed FC queue
    (["dss-det"], registry ["dss-fc"]) and the linked DSS queue
    (["dss-linked"]), both fully detectable — the set [regress] sweeps
    with combine on (the ["sim+fc/"] series). *)

val sweep_ex :
  ?backend:backend ->
  ?threads:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?duration:float ->
  ?instrument:bool ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  queue_config list ->
  Dssq_obs.Run_report.series list
(** One series per queue configuration, one point per thread count; every
    point carries the observability payload (memory-event deltas, and
    latency histograms when [instrument] is set).  [line_size] (default 1
    = legacy word-granular persistence) configures the backend's
    persist-line size for every measurement; [coalesce] (default false)
    routes every flush through the backend's per-thread persist buffer;
    [combine] (default false) runs in flat-combining batch-epoch mode,
    one driver drain per [batch] (default 8) operation pairs. *)

val sweep :
  ?backend:backend ->
  ?threads:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?duration:float ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  queue_config list ->
  Report.series list
(** Throughput-only view of {!sweep_ex}. *)

val fig5a :
  ?backend:backend ->
  ?threads:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?duration:float ->
  ?line_size:int ->
  ?coalesce:bool ->
  unit ->
  Report.series list
(** MS queue vs DSS non-detectable vs DSS detectable (Figure 5a). *)

val fig5a_ex :
  ?backend:backend ->
  ?threads:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?duration:float ->
  ?instrument:bool ->
  ?line_size:int ->
  ?coalesce:bool ->
  unit ->
  Dssq_obs.Run_report.series list
(** Figure 5a with the observability payload. *)

val fig5b :
  ?backend:backend ->
  ?threads:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?duration:float ->
  ?line_size:int ->
  ?coalesce:bool ->
  unit ->
  Report.series list
(** DSS vs log vs Fast/General CASWithEffect (Figure 5b). *)

val fig5b_ex :
  ?backend:backend ->
  ?threads:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?duration:float ->
  ?instrument:bool ->
  ?line_size:int ->
  ?coalesce:bool ->
  unit ->
  Dssq_obs.Run_report.series list
(** Figure 5b with the observability payload. *)

val ablate_flush :
  ?nthreads:int ->
  ?flush_costs:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?line_size:int ->
  unit ->
  Report.series list
(** Persist-instruction latency sweep. *)

val ablate_demand :
  ?nthreads:int ->
  ?percents:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?line_size:int ->
  unit ->
  Report.series list
(** Fraction of operations requesting detectability. *)

val ablate_recovery :
  ?lengths:int list ->
  ?nthreads:int ->
  ?line_size:int ->
  unit ->
  Report.series list
(** Centralized (Figure 6) vs per-thread recovery: memory events vs
    queue length (deterministic). *)

val ablate_depth :
  ?nthreads:int ->
  ?depths:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  ?line_size:int ->
  unit ->
  Report.series list
(** Initial queue depth sweep. *)

val ablate_linesize :
  ?nthreads:int ->
  ?line_sizes:int list ->
  ?repeats:int ->
  ?horizon_ns:float ->
  unit ->
  Dssq_obs.Run_report.series list
(** Persist-line-size sweep over {!linesize_queues}, always instrumented
    so each point's event payload carries the [flushes] and
    [elided_flushes] deltas.  Size 1 reproduces the legacy word-granular
    harness exactly and serves as the regression anchor. *)

val crash_cycles :
  ?line_size:int ->
  seed:int ->
  mtbf_ns:float ->
  cycles:int ->
  mk:string ->
  nthreads:int ->
  det_pct:int ->
  unit ->
  float
(** One failure-full measurement: run, crash, recover (charged), repeat
    on the same persistent queue; effective Mops/s. *)

val ablate_crash_mtbf :
  ?mtbfs_us:int list ->
  ?nthreads:int ->
  ?cycles:int ->
  ?repeats:int ->
  ?line_size:int ->
  unit ->
  Report.series list
(** Effective throughput vs crash MTBF, recovery charged. *)

val ablate_pmwcas :
  ?widths:int list -> ?line_size:int -> unit -> Report.series list
(** PMwCAS modelled ns/op vs word count, all-shared vs private-rest. *)

val regress : ?quick:bool -> unit -> Dssq_obs.Run_report.series list
(** The benchmark-regression sweep behind [bench regress] /
    [BENCH_*.json]: {!linesize_queues} with coalescing off and on, plus
    {!fc_queues} with combine on, instrumented, at line size 1.  Series
    labels are prefixed ["sim/"], ["sim+co/"], ["sim+fc/"], ["native/"],
    ["native+co/"]; x is the thread count.  [quick] (the CI smoke) is
    sim-only, threads 1/4/8 (plus 16 where the host is wide enough), one
    repeat, deterministic. *)

val op_latency : ?queues:string list -> unit -> (string * float * float) list
(** Modelled single-thread (queue, plain ns/op, detectable ns/op). *)

val recovery_objects : string list
(** The registry names measured by {!recovery_latency}:
    ["dss-queue"] (allocator routed through the system WAL),
    ["log-queue"], ["durable-queue"]. *)

val recovery_latency :
  ?quick:bool -> unit -> Dssq_obs.Run_report.recovery_point list
(** Crash-to-reattach latency per registered object, through the
    whole-system {!Dssq_core.Recovery} path (WAL replay, root
    directory re-attachment, object recover, leak audit).  Sim points
    are modelled nanoseconds over a deterministic workload — stable
    across machines, so they belong in a bench-diff baseline; native
    points (full mode only; [quick] omits them) are wall-clock. *)
