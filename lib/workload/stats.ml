(** Small statistics helpers for reporting benchmark samples the way the
    paper does (mean over a sample of runs, with the sample standard
    deviation as the noise bound — Section 4). *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      sqrt (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. (n -. 1.))

(** Relative standard deviation, in percent of the mean.  [nan] on the
    empty list (no mean to be relative to). *)
let rsd xs =
  let m = mean xs in
  if m = 0. then 0. else 100. *. stddev xs /. m

(* Folding from ±infinity would leak infinities into JSON reports for
   empty samples; nan is the "no data" value everywhere else here. *)
let minimum = function [] -> nan | xs -> List.fold_left min infinity xs
let maximum = function [] -> nan | xs -> List.fold_left max neg_infinity xs

(** [percentile p xs] with linear interpolation between closest ranks
    (the R-7 / NumPy [linear] definition): the rank of the [p]-th
    percentile over [n] sorted samples is [p/100 * (n-1)], and
    non-integer ranks interpolate between the two neighbouring order
    statistics.  With that definition [percentile 0.] is the minimum,
    [percentile 100.] the maximum, and [percentile 50.] the textbook
    median for both parities of [n] — the n-1 (not n+1 or n) factor is
    what keeps rank 100 from indexing one past the end on exact-decile
    sample counts.

    Edge cases: [nan] on the empty list; the sole sample for [n = 1]
    (any [p]).
    @raise Invalid_argument if [p] is outside [0. .. 100.]. *)
let percentile p xs =
  if p < 0. || p > 100. || Float.is_nan p then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  match xs with
  | [] -> nan
  | [ x ] -> x
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      (* p = 100 makes [rank] exactly [n-1]: [lo] must not step past it. *)
      let lo = if lo >= n - 1 then n - 2 else lo in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(lo + 1) -. a.(lo)))

let median xs = percentile 50. xs
