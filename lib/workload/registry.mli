(** Uniform access to every queue implementation as closure records
    ({!Dssq_core.Queue_intf.ops}), over any memory backend — what the
    benchmark harness and the CLI dispatch on.

    Known names: ["dss-queue"], ["ms-queue"], ["durable-queue"],
    ["log-queue"], ["general-caswe"], ["fast-caswe"].

    Every constructor optionally takes a whole-system recovery handle
    ({!Dssq_core.Recovery.Make}); when given, the queue registers a
    named durable root with the system's root directory and its
    [recover] (plus a leak audit for the pool-backed DSS queue, whose
    allocator is then routed through the system's write-ahead log) runs
    on every system-level [reattach]. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  module Sys : module type of Dssq_core.Recovery.Make (M)

  val dss :
    ?system:Sys.t -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val ms :
    ?system:Sys.t -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val durable :
    ?system:Sys.t -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val log :
    ?system:Sys.t -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val general_caswe :
    ?system:Sys.t -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val fast_caswe :
    ?system:Sys.t -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val all :
    (string
    * (?system:Sys.t ->
      Dssq_core.Queue_intf.config ->
      Dssq_core.Queue_intf.ops))
    list
  (** Every implementation, keyed by its registry name, in the order the
      figures list them. *)

  val known_names : string list
  (** The names accepted by {!find_opt} / {!find}. *)

  val find_opt :
    string ->
    (?system:Sys.t ->
    Dssq_core.Queue_intf.config ->
    Dssq_core.Queue_intf.ops)
    option
  (** [find_opt name] is the constructor registered under [name], if any. *)

  val find :
    string ->
    ?system:Sys.t ->
    Dssq_core.Queue_intf.config ->
    Dssq_core.Queue_intf.ops
  (** Like {!find_opt} but raises [Invalid_argument] listing
      {!known_names} when [name] is unknown. *)

  val setup :
    ?system:Sys.t ->
    mk:string ->
    init_nodes:int ->
    Dssq_core.Queue_intf.config ->
    Dssq_core.Queue_intf.ops
  (** Like the toplevel {!setup}, with optional recovery-system
      rooting (the system's type depends on [M], so only this
      backend-monomorphic variant can accept one). *)
end

val setup :
  (module Dssq_memory.Memory_intf.S) ->
  mk:string ->
  init_nodes:int ->
  Dssq_core.Queue_intf.config ->
  Dssq_core.Queue_intf.ops
(** Build and seed a queue for a throughput run over any backend:
    construct the implementation registered under [mk] with the given
    config and enqueue [init_nodes] values round-robin across threads
    (the paper's Section 4 initialization).  Shared by the sim and
    native harnesses.
    @raise Invalid_argument on an unknown [mk]. *)
