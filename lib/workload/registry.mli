(** Uniform access to every queue implementation as closure records
    ({!Dssq_core.Queue_intf.ops}), over any memory backend — what the
    benchmark harness and the CLI dispatch on.

    Known names: ["dss-queue"], ["ms-queue"], ["durable-queue"],
    ["log-queue"], ["general-caswe"], ["fast-caswe"]. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  val dss : Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops
  val ms : Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops
  val durable : Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops
  val log : Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops
  val general_caswe : Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops
  val fast_caswe : Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops

  val all :
    (string * (Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops)) list
  (** Every implementation, keyed by its registry name, in the order the
      figures list them. *)

  val known_names : string list
  (** The names accepted by {!find_opt} / {!find}. *)

  val find_opt :
    string -> (Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops) option
  (** [find_opt name] is the constructor registered under [name], if any. *)

  val find : string -> Dssq_core.Queue_intf.config -> Dssq_core.Queue_intf.ops
  (** Like {!find_opt} but raises [Invalid_argument] listing
      {!known_names} when [name] is unknown. *)
end

val setup :
  (module Dssq_memory.Memory_intf.S) ->
  mk:string ->
  init_nodes:int ->
  Dssq_core.Queue_intf.config ->
  Dssq_core.Queue_intf.ops
(** Build and seed a queue for a throughput run over any backend:
    construct the implementation registered under [mk] with the given
    config and enqueue [init_nodes] values round-robin across threads
    (the paper's Section 4 initialization).  Shared by the sim and
    native harnesses.
    @raise Invalid_argument on an unknown [mk]. *)
