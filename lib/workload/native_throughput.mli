(** Wall-clock throughput over real OCaml domains and the native backend
    (calibrated persist cost) — the harness to use on an actual multicore
    machine; the shipped figures come from {!Sim_throughput} because this
    container has one core.

    Instrumentation is a backend/worker selection made here in the
    harness: the uninstrumented path runs the plain backend and the
    original worker loop unchanged. *)

val measure_ex :
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?instrument:bool ->
  mk:string ->
  nthreads:int ->
  duration:float ->
  unit ->
  Dssq_obs.Run_report.sample
(** Spawn [nthreads] domains alternating enqueue/dequeue pairs on a fresh
    queue ({!Registry} name [mk]) for [duration] seconds.  With
    [instrument:true] the queue runs over a fresh counted copy of the
    native backend (events exclude seeding) and each thread records
    wall-clock per-operation latency, merged into one histogram.
    [line_size] (default 1 = word-granular) reconfigures the native
    backend's line allocator before the queue is built.  [coalesce]
    (default false) runs the queue over a fresh [Native.Coalescing ()]
    instance — per-domain persist buffers drained once per persistence
    point — whose event counters are always reported. *)

val measure :
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  mk:string ->
  nthreads:int ->
  duration:float ->
  unit ->
  float
(** Throughput only, in Mops/s: [(measure_ex ...).mops]. *)
