(** Wall-clock throughput over real OCaml domains and the native backend
    (calibrated persist cost) — the harness to use on an actual multicore
    machine; the shipped figures come from {!Sim_throughput} because this
    container has one core.

    Instrumentation is a backend/worker selection made here in the
    harness: the uninstrumented path runs the plain backend and the
    original worker loop unchanged. *)

val measure_ex :
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  ?instrument:bool ->
  mk:string ->
  nthreads:int ->
  duration:float ->
  unit ->
  Dssq_obs.Run_report.sample
(** Spawn [nthreads] domains alternating enqueue/dequeue pairs on a fresh
    queue ({!Registry} name [mk]) for [duration] seconds.  With
    [instrument:true] the queue runs over a fresh counted copy of the
    native backend (events exclude seeding) and each thread records
    wall-clock per-operation latency, merged into one histogram.
    [line_size] (default 1 = word-granular) reconfigures the native
    backend's line allocator before the queue is built.  [coalesce]
    (default false) runs the queue over a fresh [Native.Coalescing ()]
    instance — per-domain persist buffers drained once per persistence
    point — whose event counters are always reported.  [combine]
    (default false) runs over a fresh [Native.Combining ()] instance
    (buffered, no auto-drain) with each domain closing a batch persist
    epoch every [batch] (default 8) operation pairs. *)

val measure :
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  mk:string ->
  nthreads:int ->
  duration:float ->
  unit ->
  float
(** Throughput only, in Mops/s: [(measure_ex ...).mops]. *)

val pad_sweep :
  ?pads:int list ->
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  mk:string ->
  nthreads:int ->
  duration:float ->
  unit ->
  (int * float) list
(** NUMA-ish padding-stride sweep: [(pad_words, Mops/s)] for each
    isolation stride in [pads] (filler words attached to
    [Isolated]-placement cells — head/tail, announce words).  Restores
    the default stride afterwards.  Meaningful on real multicore
    hardware; deterministic-but-flat on the single-core CI container. *)
