(** Plain-text and CSV rendering of benchmark series, one column per
    implementation — the same rows the paper plots in its figures. *)

type point = { x : int; samples : float list }
type series = { label : string; points : point list }

(** Drop the observability payload of a run-report series, keeping the
    figure data (x, throughput samples) this module renders. *)
let of_run (rs : Dssq_obs.Run_report.series list) : series list =
  List.map
    (fun (s : Dssq_obs.Run_report.series) ->
      {
        label = s.Dssq_obs.Run_report.label;
        points =
          List.map
            (fun (p : Dssq_obs.Run_report.point) ->
              { x = p.Dssq_obs.Run_report.x; samples = p.samples })
            s.points;
      })
    rs

(** Lift plain figure series into run-report series (no events, no
    latency), for experiments that predate the observability layer. *)
let to_run (all : series list) : Dssq_obs.Run_report.series list =
  List.map
    (fun s ->
      {
        Dssq_obs.Run_report.label = s.label;
        points =
          List.map
            (fun p ->
              {
                Dssq_obs.Run_report.x = p.x;
                samples = p.samples;
                ops = 0;
                events = Dssq_memory.Memory_intf.Counters.zero;
                latency = None;
              })
            s.points;
      })
    all

let mean_at series x =
  match List.find_opt (fun p -> p.x = x) series.points with
  | Some p -> Some (Stats.mean p.samples)
  | None -> None

let xs_of (all : series list) =
  List.concat_map (fun s -> List.map (fun p -> p.x) s.points) all
  |> List.sort_uniq compare

let print_table ?(out = Format.std_formatter) ~title ~x_label ~y_label
    (all : series list) =
  Format.fprintf out "## %s (%s)@." title y_label;
  let xs = xs_of all in
  let col_width =
    List.fold_left (fun w s -> max w (String.length s.label + 2)) 12 all
  in
  Format.fprintf out "%-10s" x_label;
  List.iter (fun s -> Format.fprintf out "%*s" col_width s.label) all;
  Format.fprintf out "@.";
  List.iter
    (fun x ->
      Format.fprintf out "%-10d" x;
      List.iter
        (fun s ->
          match mean_at s x with
          | Some m -> Format.fprintf out "%*.3f" col_width m
          | None -> Format.fprintf out "%*s" col_width "-")
        all;
      Format.fprintf out "@.")
    xs;
  (* Noise summary, like the paper's "stddev < 2% of mean" remark. *)
  let worst_rsd =
    List.fold_left
      (fun w s ->
        List.fold_left (fun w p -> max w (Stats.rsd p.samples)) w s.points)
      0. all
  in
  if worst_rsd > 0. then
    Format.fprintf out "(max relative stddev across points: %.1f%%)@." worst_rsd;
  Format.fprintf out "@."

let to_csv ~x_label (all : series list) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (x_label :: List.map (fun s -> s.label) all));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (string_of_int x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match mean_at s x with
          | Some m -> Buffer.add_string buf (Printf.sprintf "%.4f" m)
          | None -> ())
        all;
      Buffer.add_char buf '\n')
    (xs_of all);
  Buffer.contents buf

(** Compact ASCII rendering of the series as a scalability chart, so the
    figure's shape is visible straight from a terminal. *)
let print_chart ?(out = Format.std_formatter) ?(height = 12) (all : series list)
    =
  let xs = xs_of all in
  let maxv =
    List.fold_left
      (fun m s ->
        List.fold_left (fun m p -> max m (Stats.mean p.samples)) m s.points)
      0.0 all
  in
  if maxv > 0. then begin
    let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |] in
    let cols = List.length xs in
    let grid = Array.make_matrix height cols ' ' in
    List.iteri
      (fun si s ->
        let g = glyphs.(si mod Array.length glyphs) in
        List.iteri
          (fun ci x ->
            match mean_at s x with
            | None -> ()
            | Some v ->
                let row =
                  height - 1 - int_of_float (v /. maxv *. float_of_int (height - 1))
                in
                let row = max 0 (min (height - 1) row) in
                if grid.(row).(ci) = ' ' then grid.(row).(ci) <- g)
          xs)
      all;
    Array.iteri
      (fun r row ->
        let label =
          if r = 0 then Printf.sprintf "%8.2f |" maxv
          else if r = height - 1 then Printf.sprintf "%8.2f |" 0.
          else "         |"
        in
        Format.fprintf out "%s %s@." label
          (String.concat "  " (Array.to_list (Array.map (String.make 1) row))))
      grid;
    Format.fprintf out "          +%s@."
      (String.make ((3 * List.length xs) + 1) '-');
    Format.fprintf out "           %s@."
      (String.concat " " (List.map (Printf.sprintf "%2d") xs));
    List.iteri
      (fun si s ->
        Format.fprintf out "           %c = %s@."
          glyphs.(si mod Array.length glyphs)
          s.label)
      all;
    Format.fprintf out "@."
  end
