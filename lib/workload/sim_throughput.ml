(** Discrete-event throughput model: the "simulated multiprocessor" on
    which the Figure 5 scalability curves are regenerated.

    Rationale (see DESIGN.md): the paper measures wall-clock throughput
    of 1-20 hardware threads on a 20-core Xeon with Optane memory.  This
    container has a single core, so real domains cannot exhibit parallel
    scaling; instead we run the {e same algorithm code} on the simulator
    and charge each memory event a latency drawn from published costs of
    the corresponding x86/Optane operation.  Threads progress on private
    clocks; the scheduler always steps the thread with the smallest
    clock, which models independent cores — the only coupling between
    threads is through the shared words themselves, so contention
    (failed CAS -> retry -> more charged time) and helping emerge exactly
    where the real machine has them, and throughput saturates at the
    queue's head/tail serialization just as in the paper.

    A deterministic per-step jitter (a few percent, seeded) breaks the
    artificial lockstep that identical integer costs would otherwise
    produce. *)

open Dssq_pmem
open Dssq_sim

type costs = {
  read_ns : float;
  write_ns : float;
  cas_ns : float;
  flush_ns : float;
  fence_ns : float;
  work_ns : float;  (** charged at thread-local compute points (Yield) *)
  cas_fail_line_ns : float;
      (** line occupancy of a failed CAS: the requester still grabs the
          line (RFO) but releases it quickly, so a retry storm wastes
          less line bandwidth than a stream of successful updates *)
  transfer_ns : float;
      (** extra latency when the line's previous owner is another thread
          (cross-core transfer); repeated access by one thread is a cache
          hit and pays nothing *)
  flush_issue_ns : float;
      (** issue latency of an {e asynchronous} (coalesced) flush: the
          CLWB enters the store pipeline and the thread moves on; the
          device round-trip ([flush_ns]) completes in the background and
          is only waited on at the next drain/fence *)
}

(** Rough latencies of the modelled machine: cache-hit loads/stores, a
    locked CAS, and a CLWB+sfence pair against Optane DCPMM. *)
let default_costs =
  {
    read_ns = 12.;
    write_ns = 18.;
    cas_ns = 45.;
    flush_ns = 140.;
    fence_ns = 25.;
    work_ns = 30.;
    cas_fail_line_ns = 15.;
    transfer_ns = 80.;
    flush_issue_ns = 25.;
  }

let cost_of costs (kind : Sim_op.kind) =
  match kind with
  | Sim_op.Read -> costs.read_ns
  | Sim_op.Write -> costs.write_ns
  | Sim_op.Cas -> costs.cas_ns
  | Sim_op.Flush -> costs.flush_ns
  | Sim_op.Flush_async -> costs.flush_ns
      (* the async round-trip latency; the issue stall is flush_issue_ns *)
  | Sim_op.Drain -> 0. (* a drain only waits; see the stepping loop *)
  | Sim_op.Fence -> costs.fence_ns
  | Sim_op.Yield -> costs.work_ns

(** Run [threads] (infinite-loop workers) on [heap] until every thread's
    private clock passes [horizon_ns] of simulated time; returns the
    value of [ops_done] divided by the simulated seconds, in operations
    per second.

    Cache-line contention model: line identity comes from the heap's
    {!Dssq_memory.Memory_intf.Line} placement ([Machine.pending_target]
    is the persist-line id), so the contention unit here and the
    persistence unit in the heap are one and the same module — at line
    size 1 every word is its own line, the original model.  Every
    write-class access (store, CAS, flush) to a line needs exclusive
    ownership of it, so such accesses {e serialize} per line — an access
    starts no earlier than the line's previous owner finished.  Loads
    wait for the line to be free but can then share it.  An {e elided}
    flush (clean line, size >= 2) costs nothing: there is no write-back
    to wait on.  This is what makes throughput peak and
    then degrade under contention on the queue's head and tail words,
    exactly as on the paper's testbed: at high thread counts the line
    ping-pong (mostly failed-CAS traffic) dominates, and the per-thread
    flush costs that separate the variants at low thread counts are
    hidden behind it, so the curves converge (Figure 5a). *)
let run ?(costs = default_costs) ?(seed = 1) ?clock ~horizon_ns ~heap ~threads
    ~ops_done () =
  let machine = Machine.create heap (Array.to_list threads) in
  let n = Array.length threads in
  let clocks = Array.make n 0. in
  (* Expose the private clocks to instrumented workers (they read their
     own simulated time around each operation). *)
  (match clock with
  | Some r -> r := fun tid -> clocks.(tid)
  | None -> ());
  (* per line: time it becomes free, and last owning thread *)
  let line_clock : (int, float * int) Hashtbl.t = Hashtbl.create 256 in
  (* per thread: completion time of its outstanding asynchronous
     (coalesced) flushes — the drain/fence that retires them waits for
     this instead of paying per-flush round-trips *)
  let pending_done = Array.make n 0. in
  let rng = Random.State.make [| seed; 0xD15C |] in
  heap.Heap.in_sim <- true;
  Fun.protect
    ~finally:(fun () -> heap.Heap.in_sim <- false)
    (fun () ->
      let rec pick best best_clock i =
        if i >= n then best
        else begin
          let c = clocks.(i) in
          match Machine.pending_kind machine i with
          | Some _ when c < horizon_ns && c < best_clock -> pick i c (i + 1)
          | _ -> pick best best_clock (i + 1)
        end
      in
      let continue_run = ref true in
      while !continue_run do
        match pick (-1) infinity 0 with
        | -1 -> continue_run := false
        | tid ->
            let kind = Option.get (Machine.pending_kind machine tid) in
            let target = Machine.pending_target machine tid in
            let info = Machine.step machine tid in
            let jitter = 0.95 +. Random.State.float rng 0.1 in
            let cost = cost_of costs kind *. jitter in
            let line cell =
              Option.value ~default:(0., tid) (Hashtbl.find_opt line_clock cell)
            in
            (match (target, kind) with
            | Some _, (Sim_op.Flush | Sim_op.Flush_async)
              when info.Machine.flush_effective = Some false ->
                (* Clean line: the CLWB has nothing to write back.  No
                   device round-trip, no line occupancy — free. *)
                ()
            | Some cell, (Sim_op.Write | Sim_op.Cas) ->
                (* Exclusive access (RFO): wait for the line, pay a
                   cross-core transfer if another thread owned it, then
                   own it — briefly for a failed CAS (the requester grabs
                   the line but releases it without a lasting update),
                   for the full update latency otherwise.  Outstanding
                   coalesced flushes do NOT stall the store: the heap's
                   auto-drain orders the write-backs before the store
                   semantically, but the timing model treats them as an
                   ordered background queue (the delay-free batching of
                   Ben-David et al.) — only an explicit drain/fence waits
                   for completions. *)
                let free, owner = line cell in
                let transfer = if owner = tid then 0. else costs.transfer_ns in
                let start = Float.max clocks.(tid) free +. transfer in
                let line_cost =
                  if info.Machine.cas_success = Some false then
                    costs.cas_fail_line_ns *. jitter
                  else cost
                in
                clocks.(tid) <- start +. cost;
                Hashtbl.replace line_clock cell (start +. line_cost, tid)
            | Some cell, Sim_op.Flush_async ->
                (* Coalesced flush: the CLWB issues (short pipeline
                   stall) and its device round-trip completes in the
                   background — only the eventual drain/fence waits on
                   it.  Like an eager CLWB it does not take ownership. *)
                let free, owner = line cell in
                let transfer = if owner = tid then 0. else costs.transfer_ns in
                let start = Float.max clocks.(tid) free +. transfer in
                clocks.(tid) <- start +. (costs.flush_issue_ns *. jitter);
                pending_done.(tid) <-
                  Float.max pending_done.(tid) (start +. cost)
            | Some cell, (Sim_op.Read | Sim_op.Flush) ->
                (* Loads share the line after the owner is done (paying a
                   transfer if it moved cores); CLWB writes back without
                   invalidating, so it stalls the issuing thread for the
                   device round-trip but does not take ownership. *)
                let free, owner = line cell in
                let transfer = if owner = tid then 0. else costs.transfer_ns in
                clocks.(tid) <- Float.max clocks.(tid) free +. transfer +. cost
            | None, Sim_op.Drain ->
                (* Wait for the outstanding CLWBs to complete; the
                   barrier itself overlaps the wait (no separate fence
                   charge — that is exactly the elided-fences win). *)
                clocks.(tid) <- Float.max clocks.(tid) pending_done.(tid);
                pending_done.(tid) <- 0.
            | _, Sim_op.Fence ->
                (* An sfence additionally retires outstanding CLWBs (the
                   heap folds the drain into it). *)
                clocks.(tid) <-
                  Float.max (clocks.(tid) +. cost) pending_done.(tid);
                pending_done.(tid) <- 0.
            | (None, _) | (Some _, (Sim_op.Drain | Sim_op.Yield)) ->
                clocks.(tid) <- clocks.(tid) +. cost)
      done;
      Machine.kill_all machine);
  float_of_int (ops_done ()) /. (horizon_ns /. 1e9)

(** [detectable ~det_pct i] spreads detectable operation pairs evenly so
    that exactly [det_pct] percent of pairs are detectable — the
    "detectability on demand" knob that DSS offers and NRL-style
    definitions cannot (every operation is detectable there). *)
let detectable ~det_pct i =
  ((i + 1) * det_pct / 100) - (i * det_pct / 100) > 0

(** Worker that alternates enqueue/dequeue pairs forever — the workload
    of Section 4 — bumping [counter] once per completed operation.
    [det_pct] = 100 makes every pair detectable (Figure 5b / "DSS queue
    detectable"), 0 none (non-detectable / MS queue). *)
let pair_worker ?epoch (ops : Dssq_core.Queue_intf.ops) ~tid ~counter ~det_pct
    () =
  let i = ref 0 in
  while true do
    let detectable = detectable ~det_pct !i in
    let v = (tid * 1_000_000) + (!i land 0xFFFF) in
    if detectable then begin
      ops.d_enqueue ~tid v;
      incr counter;
      ignore (ops.d_dequeue ~tid);
      incr counter
    end
    else begin
      ops.enqueue ~tid v;
      incr counter;
      ignore (ops.dequeue ~tid);
      incr counter
    end;
    (* Flat-combining batch epoch: under [--combine] the objects leave
       their flushes in the per-thread persist buffer; the driver closes
       the epoch (one drain) every [k] operation pairs.  A no-op when
       the buffer is already empty (engine combiners drain per batch). *)
    (match epoch with
    | Some (k, drain) when (!i + 1) mod k = 0 -> drain ()
    | _ -> ());
    incr i
  done

(** Like {!pair_worker}, but reads the thread's simulated clock around
    each operation and records the delta (charged ns, including line
    waits) in [hist].  Only used when latency instrumentation is on, so
    the uninstrumented path keeps the exact event sequence of
    {!pair_worker}. *)
let timed_pair_worker ?epoch (ops : Dssq_core.Queue_intf.ops) ~tid ~counter
    ~det_pct ~now ~hist () =
  let i = ref 0 in
  let timed f =
    let t0 = now () in
    f ();
    Dssq_obs.Histogram.add hist (now () -. t0);
    incr counter
  in
  while true do
    let detectable = detectable ~det_pct !i in
    let v = (tid * 1_000_000) + (!i land 0xFFFF) in
    if detectable then begin
      timed (fun () -> ops.d_enqueue ~tid v);
      timed (fun () -> ignore (ops.d_dequeue ~tid))
    end
    else begin
      timed (fun () -> ops.enqueue ~tid v);
      timed (fun () -> ignore (ops.dequeue ~tid))
    end;
    (match epoch with
    | Some (k, drain) when (!i + 1) mod k = 0 -> drain ()
    | _ -> ());
    incr i
  done

(** Measure one queue implementation at one thread count on a fresh
    simulated heap.  [line_size] configures the heap's persist-line size
    (1, the default, is the legacy word-granular model).  Memory-event
    deltas exclude queue seeding (the heap counters are read after
    initialization); per-operation latency histograms are recorded only
    when [instrument] is set, leaving the default path's event sequence
    untouched. *)
let measure_ex ?costs ?(seed = 1) ?(horizon_ns = 300_000.) ?(init_nodes = 16)
    ?(det_pct = 100) ?(line_size = 1) ?(coalesce = false) ?(combine = false)
    ?(batch = 8) ?(instrument = false) ~mk ~nthreads () :
    Dssq_obs.Run_report.sample =
  let heap = Heap.create ~line_size ~combine () in
  let (module M) = Sim.memory ~coalesce heap in
  let capacity = init_nodes + 8 + (nthreads * 192) in
  let ops =
    Registry.setup
      (module M)
      ~mk ~init_nodes
      (Dssq_core.Queue_intf.config ~line_size ~coalesce ~combine ~nthreads
         ~capacity ())
  in
  (* Seeding may leave buffered flushes under combine; close them before
     measuring so every run starts from a clean persist state. *)
  if combine then Heap.drain heap;
  let epoch =
    if combine then Some (max 1 batch, fun () -> M.drain ()) else None
  in
  let before = Heap.counters heap in
  let counters = Array.init nthreads (fun _ -> ref 0) in
  let hist = if instrument then Some (Dssq_obs.Histogram.create ()) else None in
  let clock = ref (fun (_ : int) -> 0.) in
  let threads =
    Array.init nthreads (fun tid ->
        match hist with
        | None -> pair_worker ?epoch ops ~tid ~counter:counters.(tid) ~det_pct
        | Some h ->
            timed_pair_worker ?epoch ops ~tid ~counter:counters.(tid) ~det_pct
              ~now:(fun () -> !clock tid)
              ~hist:h)
  in
  let ops_done () = Array.fold_left (fun acc c -> acc + !c) 0 counters in
  let per_sec =
    run ?costs ~seed ~clock ~horizon_ns ~heap ~threads ~ops_done ()
  in
  let events =
    Dssq_memory.Memory_intf.Counters.diff ~after:(Heap.counters heap) ~before
  in
  {
    Dssq_obs.Run_report.mops = per_sec /. 1e6;
    ops = ops_done ();
    events;
    latency = hist;
  }

(** Throughput only, in Mops/s — the historical entry point. *)
let measure ?costs ?seed ?horizon_ns ?init_nodes ?det_pct ?line_size ?coalesce
    ?combine ?batch ~mk ~nthreads () =
  (measure_ex ?costs ?seed ?horizon_ns ?init_nodes ?det_pct ?line_size
     ?coalesce ?combine ?batch ~mk ~nthreads ())
    .Dssq_obs.Run_report.mops
