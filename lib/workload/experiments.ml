(** Drivers for every figure of the paper's evaluation and for the
    ablations listed in DESIGN.md.  Both the benchmark executable and the
    CLI dispatch here, so the experiments are defined exactly once. *)

open Dssq_pmem
module Sim = Dssq_sim.Sim

type backend = Sim_model | Native_domains

let default_threads = [ 1; 2; 3; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]

type queue_config = { label : string; mk : string; det_pct : int }

let measure_point ~backend ~horizon_ns ~duration ~repeats ~instrument
    ~line_size ~coalesce ~combine ~batch (q : queue_config) ~nthreads :
    Dssq_obs.Run_report.sample list =
  List.init repeats (fun r ->
      match backend with
      | Sim_model ->
          Sim_throughput.measure_ex ~seed:(1 + r) ~horizon_ns ~mk:q.mk
            ~det_pct:q.det_pct ~line_size ~coalesce ~combine ~batch ~instrument
            ~nthreads ()
      | Native_domains ->
          Native_throughput.measure_ex ~mk:q.mk ~det_pct:q.det_pct ~line_size
            ~coalesce ~combine ~batch ~instrument ~nthreads ~duration ())

(** One series per queue configuration, one point per thread count, every
    point carrying [repeats] samples plus the aggregate observability
    payload (memory-event deltas, and latency histograms when
    [instrument] is set).  [line_size] (default 1 = the legacy
    word-granular persistence model) sets the backend's persist-line
    size for every measurement. *)
let sweep_ex ?(backend = Sim_model) ?(threads = default_threads) ?(repeats = 3)
    ?(horizon_ns = 300_000.) ?(duration = 0.2) ?(instrument = false)
    ?(line_size = 1) ?(coalesce = false) ?(combine = false) ?(batch = 8)
    (queues : queue_config list) : Dssq_obs.Run_report.series list =
  List.map
    (fun q ->
      {
        Dssq_obs.Run_report.label = q.label;
        points =
          List.map
            (fun nthreads ->
              Dssq_obs.Run_report.point_of_samples ~x:nthreads
                (measure_point ~backend ~horizon_ns ~duration ~repeats
                   ~instrument ~line_size ~coalesce ~combine ~batch q ~nthreads))
            threads;
      })
    queues

let sweep ?backend ?threads ?repeats ?horizon_ns ?duration ?line_size ?coalesce
    ?combine ?batch (queues : queue_config list) : Report.series list =
  Report.of_run
    (sweep_ex ?backend ?threads ?repeats ?horizon_ns ?duration ?line_size
       ?coalesce ?combine ?batch queues)

(* ---------------------------------------------------------------------- *)
(* Figure 5a: levels of detectability and persistence                      *)
(* ---------------------------------------------------------------------- *)

let fig5a_queues =
  [
    { label = "ms"; mk = "ms-queue"; det_pct = 0 };
    { label = "dss-nondet"; mk = "dss-queue"; det_pct = 0 };
    { label = "dss-det"; mk = "dss-queue"; det_pct = 100 };
  ]

let fig5a ?backend ?threads ?repeats ?horizon_ns ?duration ?line_size ?coalesce
    () =
  sweep ?backend ?threads ?repeats ?horizon_ns ?duration ?line_size ?coalesce
    fig5a_queues

let fig5a_ex ?backend ?threads ?repeats ?horizon_ns ?duration ?instrument
    ?line_size ?coalesce () =
  sweep_ex ?backend ?threads ?repeats ?horizon_ns ?duration ?instrument
    ?line_size ?coalesce fig5a_queues

(* ---------------------------------------------------------------------- *)
(* Figure 5b: detectable queue implementations                             *)
(* ---------------------------------------------------------------------- *)

let fig5b_queues =
  [
    { label = "dss-det"; mk = "dss-queue"; det_pct = 100 };
    { label = "log"; mk = "log-queue"; det_pct = 100 };
    { label = "fast-caswe"; mk = "fast-caswe"; det_pct = 100 };
    { label = "gen-caswe"; mk = "general-caswe"; det_pct = 100 };
  ]

let fig5b ?backend ?threads ?repeats ?horizon_ns ?duration ?line_size ?coalesce
    () =
  sweep ?backend ?threads ?repeats ?horizon_ns ?duration ?line_size ?coalesce
    fig5b_queues

let fig5b_ex ?backend ?threads ?repeats ?horizon_ns ?duration ?instrument
    ?line_size ?coalesce () =
  sweep_ex ?backend ?threads ?repeats ?horizon_ns ?duration ?instrument
    ?line_size ?coalesce fig5b_queues

(* ---------------------------------------------------------------------- *)
(* Ablation: persist-cost sweep (simulated CLWB+sfence latency)            *)
(* ---------------------------------------------------------------------- *)

let ablate_flush ?(nthreads = 8) ?(flush_costs = [ 0; 50; 140; 300; 600 ])
    ?(repeats = 3) ?(horizon_ns = 300_000.) ?line_size () : Report.series list =
  List.map
    (fun q ->
      {
        Report.label = q.label;
        points =
          List.map
            (fun flush_ns ->
              let costs =
                {
                  Sim_throughput.default_costs with
                  flush_ns = float_of_int flush_ns;
                }
              in
              {
                Report.x = flush_ns;
                samples =
                  List.init repeats (fun r ->
                      Sim_throughput.measure ~costs ~seed:(1 + r) ~horizon_ns
                        ?line_size ~mk:q.mk ~det_pct:q.det_pct ~nthreads ());
              })
            flush_costs;
      })
    fig5a_queues

(* ---------------------------------------------------------------------- *)
(* Ablation: detectability on demand (fraction of detectable operations)   *)
(* ---------------------------------------------------------------------- *)

let ablate_demand ?(nthreads = 8) ?(percents = [ 0; 25; 50; 75; 100 ])
    ?(repeats = 3) ?(horizon_ns = 300_000.) ?line_size () : Report.series list =
  [
    {
      Report.label = "dss-queue";
      points =
        List.map
          (fun pct ->
            {
              Report.x = pct;
              samples =
                List.init repeats (fun r ->
                    Sim_throughput.measure ~seed:(1 + r) ~horizon_ns ?line_size
                      ~mk:"dss-queue" ~det_pct:pct ~nthreads ());
            })
          percents;
    };
  ]

(* ---------------------------------------------------------------------- *)
(* Ablation: recovery styles (memory events to recover vs. queue length)   *)
(* ---------------------------------------------------------------------- *)

(* Recovery cost is measured in memory events (deterministic), not wall
   time: the simulated heap counts every read/write/flush the recovery
   procedure performs. *)
let ablate_recovery ?(lengths = [ 0; 16; 64; 256; 1024 ]) ?(nthreads = 8)
    ?(line_size = 1) () : Report.series list =
  let run_one ~style ~len =
    let heap = Heap.create ~line_size () in
    let (module M) = Sim.memory heap in
    let module Q = Dssq_core.Dss_queue.Make (M) in
    let q = Q.create ~nthreads ~capacity:(len + 64) () in
    for i = 1 to len do
      Q.enqueue q ~tid:(i mod nthreads) i
    done;
    (* Leave one detectable operation of each kind in flight. *)
    Q.prep_enqueue q ~tid:0 424242;
    if len > 0 then Q.prep_dequeue q ~tid:1;
    Heap.crash heap ~evict:(fun () -> false);
    Heap.reset_stats heap;
    (match style with
    | `Centralized -> Q.recover q
    | `Decentralized ->
        for tid = 0 to nthreads - 1 do
          Q.recover_thread q ~tid
        done);
    let s = Heap.stats heap in
    float_of_int (s.reads + s.writes + s.cases + s.flushes + s.fences)
  in
  List.map
    (fun (label, style) ->
      {
        Report.label;
        points =
          List.map
            (fun len -> { Report.x = len; samples = [ run_one ~style ~len ] })
            lengths;
      })
    [ ("centralized", `Centralized); ("per-thread", `Decentralized) ]

(* ---------------------------------------------------------------------- *)
(* Ablation: initial queue depth                                           *)
(* ---------------------------------------------------------------------- *)

(* The paper fixes the initial queue at 16 nodes.  Sweeping the depth
   shows why that matters: with a near-empty queue, enqueuers and
   dequeuers collide on the same sentinel region (and dequeues hit the
   EMPTY path); with a deep queue, the head and tail lines decouple. *)
let ablate_depth ?(nthreads = 8) ?(depths = [ 0; 4; 16; 64; 256; 1024 ])
    ?(repeats = 3) ?(horizon_ns = 300_000.) ?line_size () : Report.series list =
  List.map
    (fun q ->
      {
        Report.label = q.label;
        points =
          List.map
            (fun depth ->
              {
                Report.x = depth;
                samples =
                  List.init repeats (fun r ->
                      Sim_throughput.measure ~seed:(1 + r) ~horizon_ns
                        ?line_size ~init_nodes:depth ~mk:q.mk ~det_pct:q.det_pct
                        ~nthreads ());
              })
            depths;
      })
    fig5a_queues

(* ---------------------------------------------------------------------- *)
(* Ablation: persist-line size (cache-line-granular flushing)              *)
(* ---------------------------------------------------------------------- *)

(* Union of the Figure 5a and 5b queue sets, deduplicated by label:
   every algorithm the figures exercise, each measured across line
   sizes. *)
let linesize_queues =
  fig5a_queues
  @ List.filter
      (fun q -> not (List.exists (fun p -> p.label = q.label) fig5a_queues))
      fig5b_queues

(* Line size 1 is the legacy word-granular model — byte-identical to the
   pre-line-abstraction harness, so its point doubles as a regression
   anchor (CI asserts its flushes/op).  Larger lines co-locate node
   fields, so the second and later flushes of a prep/exec sequence often
   find the line still clean-or-already-persisted and are elided; the
   instrumented run report carries [flushes] and [elided_flushes] deltas
   so the curve of persist traffic vs line size is read directly off the
   JSON. *)
let ablate_linesize ?(nthreads = 8) ?(line_sizes = [ 1; 2; 4; 8; 16 ])
    ?(repeats = 3) ?(horizon_ns = 300_000.) () :
    Dssq_obs.Run_report.series list =
  List.map
    (fun q ->
      {
        Dssq_obs.Run_report.label = q.label;
        points =
          List.map
            (fun ls ->
              Dssq_obs.Run_report.point_of_samples ~x:ls
                (List.init repeats (fun r ->
                     Sim_throughput.measure_ex ~seed:(1 + r) ~horizon_ns
                       ~mk:q.mk ~det_pct:q.det_pct ~line_size:ls
                       ~instrument:true ~nthreads ())))
            line_sizes;
      })
    linesize_queues

(* ---------------------------------------------------------------------- *)
(* Ablation: failure-full throughput (crash MTBF sweep)                    *)
(* ---------------------------------------------------------------------- *)

(* The paper evaluates failure-free runs only.  This experiment measures
   end-to-end throughput when the system actually crashes: run for one
   mean-time-between-failures of simulated time, crash (losing a random
   half of the unflushed cache), run recovery (charged at model costs),
   resolve every thread, and continue on the SAME persistent queue.
   Effective throughput counts total completed operations over total time
   including recovery. *)
let crash_cycles ?(line_size = 1) ~seed ~mtbf_ns ~cycles ~mk ~nthreads ~det_pct
    () =
  let costs = Sim_throughput.default_costs in
  let heap = Heap.create ~line_size () in
  let (module M) = Sim.memory heap in
  let capacity = 16 + 8 + (nthreads * 192) in
  let ops =
    Registry.setup
      (module M)
      ~mk ~init_nodes:16
      (Dssq_core.Queue_intf.config ~line_size ~nthreads ~capacity ())
  in
  let counters = Array.init nthreads (fun _ -> ref 0) in
  let total_time = ref 0. in
  for cycle = 1 to cycles do
    let threads =
      Array.init nthreads (fun tid ->
          Sim_throughput.pair_worker ops ~tid ~counter:counters.(tid) ~det_pct)
    in
    ignore
      (Sim_throughput.run ~costs ~seed:(seed + cycle) ~horizon_ns:mtbf_ns ~heap
         ~threads
         ~ops_done:(fun () -> 0)
         ());
    total_time := !total_time +. mtbf_ns;
    if cycle < cycles then begin
      (* Crash, recover (charging its memory events at model costs),
         resolve every thread; in-flight operations are abandoned. *)
      Sim.apply_crash heap ~evict_p:0.5 ~seed:(seed + cycle);
      Dssq_pmem.Heap.reset_stats heap;
      ops.Dssq_core.Queue_intf.recover ();
      for tid = 0 to nthreads - 1 do
        ignore (ops.Dssq_core.Queue_intf.resolve ~tid)
      done;
      let s = Dssq_pmem.Heap.stats heap in
      let recovery_ns =
        (costs.Sim_throughput.read_ns *. float_of_int s.Dssq_pmem.Heap.reads)
        +. (costs.Sim_throughput.write_ns *. float_of_int s.Dssq_pmem.Heap.writes)
        +. (costs.Sim_throughput.cas_ns *. float_of_int s.Dssq_pmem.Heap.cases)
        +. (costs.Sim_throughput.flush_ns *. float_of_int s.Dssq_pmem.Heap.flushes)
        +. (costs.Sim_throughput.fence_ns *. float_of_int s.Dssq_pmem.Heap.fences)
      in
      total_time := !total_time +. recovery_ns
    end
  done;
  let total_ops = Array.fold_left (fun acc c -> acc + !c) 0 counters in
  float_of_int total_ops /. (!total_time /. 1e9) /. 1e6

let ablate_crash_mtbf ?(mtbfs_us = [ 20; 50; 100; 250; 1000 ]) ?(nthreads = 8)
    ?(cycles = 6) ?(repeats = 2) ?line_size () : Report.series list =
  List.map
    (fun (label, mk) ->
      {
        Report.label;
        points =
          List.map
            (fun mtbf_us ->
              {
                Report.x = mtbf_us;
                samples =
                  List.init repeats (fun r ->
                      crash_cycles ?line_size ~seed:(1 + (r * 37)) ~cycles
                        ~mtbf_ns:(float_of_int mtbf_us *. 1000.)
                        ~mk ~nthreads ~det_pct:100 ());
              })
            mtbfs_us;
      })
    [ ("dss-det", "dss-queue"); ("log", "log-queue") ]

(* ---------------------------------------------------------------------- *)
(* Ablation: PMwCAS width (modelled latency per operation vs. word count)  *)
(* ---------------------------------------------------------------------- *)

let ablate_pmwcas ?(widths = [ 1; 2; 3; 4 ]) ?(line_size = 1) () :
    Report.series list =
  let costs = Sim_throughput.default_costs in
  let model_ns (s : Heap.stats) ops =
    (costs.read_ns *. float_of_int s.reads
    +. costs.write_ns *. float_of_int s.writes
    +. costs.cas_ns *. float_of_int s.cases
    +. costs.flush_ns *. float_of_int s.flushes
    +. costs.fence_ns *. float_of_int s.fences)
    /. float_of_int ops
  in
  let run_one ~priv ~width =
    let heap = Heap.create ~line_size () in
    let (module M) = Sim.memory heap in
    let module P = Dssq_pmwcas.Pmwcas.Make (M) in
    let p = P.create ~nwords:width ~nthreads:1 ~max_width:width () in
    let addrs = List.init width (fun i -> P.alloc p i) in
    let reps = 100 in
    Heap.reset_stats heap;
    for r = 0 to reps - 1 do
      let entries =
        List.mapi
          (fun k a ->
            let kind = if priv && k > 0 then `Private else `Shared in
            (a, k + (r * 10), k + ((r + 1) * 10), kind))
          addrs
      in
      assert (P.pmwcas p ~tid:0 entries)
    done;
    model_ns (Heap.stats heap) reps
  in
  List.map
    (fun (label, priv) ->
      {
        Report.label;
        points =
          List.map
            (fun w -> { Report.x = w; samples = [ run_one ~priv ~width:w ] })
            widths;
      })
    [ ("all-shared", false); ("private-rest", true) ]

(* ---------------------------------------------------------------------- *)
(* Benchmark-regression sweep (BENCH_*.json)                               *)
(* ---------------------------------------------------------------------- *)

(* The union of the Figure 5a/5b queue sets, measured with flush
   coalescing off and on, over the simulated multiprocessor (always) and
   real domains (full mode only) — the one sweep a PR compares against
   the checked-in baseline with [dssq bench-diff].  Everything is
   instrumented so each point's event payload carries flushes/op, and
   everything runs at line size 1 (the word-granular model the paper's
   figures use), so the coalescing win is measured without the separate
   line-size elision effect.

   [quick] is the CI smoke configuration: sim backend only, two thread
   counts, one repeat — deterministic (fixed seeds) and a few seconds of
   work.  Full mode adds the native backend, whose wall-clock samples
   are noisy on a loaded machine; [dssq bench-diff]'s tolerance exists
   for exactly that. *)
(* The flat-combining comparison pair: the engine-backed FC queue and
   the linked DSS queue, both fully detectable, measured with combine
   on.  "sim+fc/dss-det" at 8 threads against "sim/dss-det" is the
   ISSUE-10 >=2x gate ([dssq bench-diff --speedup-*]). *)
let fc_queues =
  [
    { label = "dss-det"; mk = "dss-fc"; det_pct = 100 };
    { label = "dss-linked"; mk = "dss-queue"; det_pct = 100 };
  ]

let regress ?(quick = false) () : Dssq_obs.Run_report.series list =
  let sim_threads =
    if quick then
      (* The quick sweep reaches 8 threads (and 16 where the host is
         wide enough) so the >=2x combining gate has its x = 8 point. *)
      if Domain.recommended_domain_count () >= 16 then [ 1; 4; 8; 16 ]
      else [ 1; 4; 8 ]
    else [ 1; 2; 4; 8; 16 ]
  in
  let repeats = if quick then 1 else 3 in
  let horizon_ns = if quick then 120_000. else 300_000. in
  let one ?(combine = false) ~backend ~threads ~coalesce queues =
    let prefix =
      (match backend with Sim_model -> "sim" | Native_domains -> "native")
      ^ (if coalesce then "+co" else "")
      ^ if combine then "+fc" else ""
    in
    sweep_ex ~backend ~threads ~repeats ~horizon_ns ~duration:0.1
      ~instrument:true ~line_size:1 ~coalesce ~combine queues
    |> List.map (fun (s : Dssq_obs.Run_report.series) ->
           { s with label = prefix ^ "/" ^ s.label })
  in
  one ~backend:Sim_model ~threads:sim_threads ~coalesce:false linesize_queues
  @ one ~backend:Sim_model ~threads:sim_threads ~coalesce:true linesize_queues
  @ one ~combine:true ~backend:Sim_model ~threads:sim_threads ~coalesce:false
      fc_queues
  @
  if quick then []
  else
    one ~backend:Native_domains ~threads:[ 1; 2; 4 ] ~coalesce:false
      linesize_queues
    @ one ~backend:Native_domains ~threads:[ 1; 2; 4 ] ~coalesce:true
        linesize_queues

(* ---------------------------------------------------------------------- *)
(* Modelled single-operation latency (single thread, no contention)        *)
(* ---------------------------------------------------------------------- *)

let op_latency ?(queues = [ "ms-queue"; "dss-queue"; "log-queue"; "fast-caswe"; "general-caswe" ])
    () : (string * float * float) list =
  let costs = Sim_throughput.default_costs in
  let model_ns (s : Heap.stats) ops =
    (costs.read_ns *. float_of_int s.reads
    +. costs.write_ns *. float_of_int s.writes
    +. costs.cas_ns *. float_of_int s.cases
    +. costs.flush_ns *. float_of_int s.flushes
    +. costs.fence_ns *. float_of_int s.fences)
    /. float_of_int ops
  in
  List.map
    (fun mk ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module R = Registry.Make (M) in
      let ops =
        R.find mk (Dssq_core.Queue_intf.config ~nthreads:1 ~capacity:256 ())
      in
      let reps = 200 in
      (* non-detectable pair latency *)
      Heap.reset_stats heap;
      for i = 1 to reps do
        ops.enqueue ~tid:0 i;
        ignore (ops.dequeue ~tid:0)
      done;
      let nondet = model_ns (Heap.stats heap) (2 * reps) in
      (* detectable pair latency *)
      Heap.reset_stats heap;
      for i = 1 to reps do
        ops.d_enqueue ~tid:0 i;
        ignore (ops.d_dequeue ~tid:0)
      done;
      let det = model_ns (Heap.stats heap) (2 * reps) in
      (mk, nondet, det))
    queues

(* ---------------------------------------------------------------------- *)
(* Recovery latency: crash-to-reattach per registered object               *)
(* ---------------------------------------------------------------------- *)

let recovery_objects = [ "dss-queue"; "log-queue"; "durable-queue" ]

(* One crash-to-reattach measurement: build [mk] rooted in a
   whole-system recovery handle (so the DSS queue's allocator logs
   through the system WAL), run a deterministic single-threaded
   workload, crash, and time [Recovery.reattach] — WAL replay, root
   re-attachment, the object's own recover, and the leak audit.

   The sim variant charges the reattach's memory events at the
   simulator's default costs, so its milliseconds are modelled and
   fully deterministic — exactly what a bench-diff baseline wants.  The
   native variant is wall-clock over the real backend (no crash to
   apply; the reattach still replays the log and audits the pool). *)
let recovery_latency ?(quick = false) () :
    Dssq_obs.Run_report.recovery_point list =
  let ops_count = if quick then 64 else 512 in
  let workload (ops : Dssq_core.Queue_intf.ops) =
    for i = 1 to ops_count do
      ops.d_enqueue ~tid:0 i;
      if i mod 2 = 0 then ignore (ops.d_dequeue ~tid:0)
    done
  in
  let point ~mk ~backend ~ms (rep : Dssq_core.Recovery.report) =
    {
      Dssq_obs.Run_report.r_object = mk;
      r_backend = backend;
      r_ms = ms;
      r_replayed = rep.Dssq_core.Recovery.replayed;
      r_leaked = rep.Dssq_core.Recovery.leaked_total;
    }
  in
  let sim mk =
    let heap = Heap.create ~line_size:8 () in
    let (module M) = Sim.memory heap in
    let module R = Registry.Make (M) in
    let sys =
      R.Sys.create ~nthreads:1 ~wal_lane_capacity:((2 * ops_count) + 32) ()
    in
    let ops =
      R.setup ~system:sys ~mk ~init_nodes:8
        (Dssq_core.Queue_intf.config ~nthreads:1 ~capacity:(ops_count + 64) ())
    in
    workload ops;
    Sim.apply_crash heap ~evict_p:0.5 ~seed:7;
    Heap.reset_stats heap;
    let rep = R.Sys.reattach sys in
    let s = Heap.stats heap in
    let costs = Sim_throughput.default_costs in
    let ns =
      (costs.read_ns *. float_of_int s.reads)
      +. (costs.write_ns *. float_of_int s.writes)
      +. (costs.cas_ns *. float_of_int s.cases)
      +. (costs.flush_ns *. float_of_int s.flushes)
      +. (costs.fence_ns *. float_of_int s.fences)
    in
    point ~mk ~backend:"sim" ~ms:(ns /. 1e6) rep
  in
  let native mk =
    let module R = Registry.Make (Dssq_memory.Native) in
    let sys =
      R.Sys.create ~nthreads:1 ~wal_lane_capacity:((2 * ops_count) + 32) ()
    in
    let ops =
      R.setup ~system:sys ~mk ~init_nodes:8
        (Dssq_core.Queue_intf.config ~nthreads:1 ~capacity:(ops_count + 64) ())
    in
    workload ops;
    let t0 = Unix.gettimeofday () in
    let rep = R.Sys.reattach sys in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    point ~mk ~backend:"native" ~ms rep
  in
  List.map sim recovery_objects
  @ if quick then [] else List.map native recovery_objects
