(** Uniform [persistent_words_per_op] accounting over every detectable
    object in [lib/core] — the empirical companion to the Ben-Baruch,
    Hendler & Rusanovsky space bounds (PAPERS.md).  Deterministic
    two-thread workloads on the counted simulator backend; see the
    implementation header for the methodology. *)

type row = {
  z_object : string;
  z_ops : int;  (** completed detectable operations *)
  z_events : Dssq_memory.Memory_intf.counters;
      (** memory-event delta over the measured operations *)
  z_stats : Dssq_core.Detectable_intf.stats;
      (** static persistent footprint of the instance *)
}

val words_per_op : row -> float
(** [pwrites / ops]: persistent-word mutations (stores plus successful
    CAS) per completed detectable operation. *)

val flushes_per_op : row -> float

val objects : string list
(** Every object the zoo can account, by registry-style name. *)

val run_one : ?pairs:int -> ?line_size:int -> string -> row
(** Run the accounting workload for one object ([pairs] iterations per
    thread, two detectable operations per iteration).
    @raise Invalid_argument listing {!objects} on an unknown name. *)

val run_all : ?pairs:int -> ?line_size:int -> unit -> row list
(** {!run_one} over all of {!objects}, in order. *)

val to_report :
  ?pairs:int -> ?line_size:int -> row list -> Dssq_obs.Run_report.t
(** Package rows as a schema-v4 run report: one series per object with
    a single point carrying [words_per_op] as its sample and the event
    counters (including [pwrites]); the static footprints go into the
    report's [metrics] as [zoo.<object>.state_words] /
    [zoo.<object>.announce_words]. *)
