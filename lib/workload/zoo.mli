(** Uniform [persistent_words_per_op] accounting over every detectable
    object in [lib/core] — the empirical companion to the Ben-Baruch,
    Hendler & Rusanovsky space bounds (PAPERS.md).  Deterministic
    two-thread workloads on the counted simulator backend; see the
    implementation header for the methodology. *)

type row = {
  z_object : string;
  z_ops : int;  (** completed detectable operations *)
  z_events : Dssq_memory.Memory_intf.counters;
      (** memory-event delta over the measured operations *)
  z_stats : Dssq_core.Detectable_intf.stats;
      (** static persistent footprint of the instance *)
}

val words_per_op : row -> float
(** [pwrites / ops]: persistent-word mutations (stores plus successful
    CAS) per completed detectable operation. *)

val flushes_per_op : row -> float

val objects : string list
(** Every object the zoo can account, by registry-style name. *)

val run_one :
  ?pairs:int ->
  ?line_size:int ->
  ?combine:bool ->
  ?persistency:Dssq_memory.Memory_intf.Persistency.t ->
  string ->
  row
(** Run the accounting workload for one object ([pairs] iterations per
    thread, two detectable operations per iteration).  [persistency]
    (default [Sc]) selects the heap's persistency model; under [Px86]
    flushes buffer and only the objects' drain barriers write back, so
    the per-op event mix shifts accordingly.  [combine] (default false)
    creates the object in flat-combining mode where it supports it
    (register and hashmap ignore the flag).
    @raise Invalid_argument listing {!objects} on an unknown name. *)

val run_all :
  ?pairs:int ->
  ?line_size:int ->
  ?combine:bool ->
  ?persistency:Dssq_memory.Memory_intf.Persistency.t ->
  unit ->
  row list
(** {!run_one} over all of {!objects}, in order. *)

type fc_row = {
  f_batch : int;  (** driver epoch size, operation pairs *)
  f_ops : int;
  f_words : float;  (** persisted words per op — floor-bound, flat *)
  f_flushes : float;  (** flushes per op — the amortized axis *)
  f_fences : float;
}

val combine_rows : ?batches:int list -> ?nthreads:int -> unit -> fc_row list
(** Flat-combining amortization sweep on the engine-backed queue
    ([dss-fc], combine mode): persisted words/op and flushes/op per
    driver batch size.  Words/op stays at the Ben-Baruch floor (every
    folded operation still turns over its announce record); flushes/op
    falls toward O(1/batch) — one persist epoch per batch is the whole
    optimisation. *)

type profile = {
  p_row : row;
  p_phases : Dssq_obs.Profile.phase_row list;
      (** per-phase persist events and span latency *)
  p_heat : Dssq_obs.Heatmap.row list;
      (** per-line persistence heatmap, labeled by allocation site *)
}

val profile_one :
  ?pairs:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?persistency:Dssq_memory.Memory_intf.Persistency.t ->
  ?crash:bool ->
  string ->
  profile
(** {!run_one} with the heatmap and phase profiler attached (simulator
    backend).  [crash] additionally injects a seeded random crash after
    the workload and runs recovery plus per-thread resolve, so the
    recovery phases appear in the attribution.  Per-phase and per-line
    event sums equal the row's counter deltas by construction.
    @raise Invalid_argument listing {!objects} on an unknown name. *)

val profile_one_native :
  ?pairs:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?persistency:Dssq_memory.Memory_intf.Persistency.t ->
  string ->
  profile
(** {!profile_one} on the native Counted (or Coalescing) backend, with
    workers run sequentially for a deterministic event stream.
    [persistency:Px86] selects the [Native.Px86] buffered backend
    (subsumes [coalesce]); [combine] selects [Native.Combining] and
    creates combining-capable objects in flat-combining mode.  No crash
    arm: crash semantics are simulator-only. *)

val profile_all :
  ?pairs:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?persistency:Dssq_memory.Memory_intf.Persistency.t ->
  ?crash:bool ->
  unit ->
  profile list
(** {!profile_one} over all of {!objects}, in order. *)

val to_report :
  ?pairs:int -> ?line_size:int -> row list -> Dssq_obs.Run_report.t
(** Package rows as a run report (current schema version): one series
    per object with
    a single point carrying [words_per_op] as its sample and the event
    counters (including [pwrites]); the static footprints go into the
    report's [metrics] as [zoo.<object>.state_words] /
    [zoo.<object>.announce_words]. *)
