(** Sample statistics for benchmark reporting (mean over runs with the
    sample standard deviation as the noise bound, as in the paper's
    Section 4). *)

val mean : float list -> float
(** [nan] on the empty list. *)

val stddev : float list -> float
(** Sample (n-1) standard deviation; 0 for fewer than two samples. *)

val rsd : float list -> float
(** Relative standard deviation, percent of the mean; [nan] on the
    empty list. *)

val minimum : float list -> float
(** [nan] on the empty list (never [infinity]). *)

val maximum : float list -> float
(** [nan] on the empty list (never [neg_infinity]). *)

val percentile : float -> float list -> float
(** [percentile p xs]: the [p]-th percentile with linear interpolation
    between closest ranks (rank [p/100 * (n-1)] over the sorted sample —
    the R-7 definition, so [percentile 0.] / [50.] / [100.] are the
    minimum / median / maximum).  [nan] on the empty list; the sole
    sample when [n = 1].
    @raise Invalid_argument if [p] is outside [0. .. 100.]. *)

val median : float list -> float
(** [percentile 50.]. *)
