(** Uniform access to every queue implementation, as closure records
    ({!Dssq_core.Queue_intf.ops}), over any memory backend.  This is what
    the benchmark harness and the CLI dispatch on.

    Every constructor takes the shared {!Dssq_core.Queue_intf.config}
    record, and every [ops] carries a [stats] hook surfacing whatever
    per-queue gauges the implementation has (pool occupancy for the
    pool-backed queues; empty for the rest).

    Constructors also accept an optional whole-system recovery handle
    ({!Dssq_core.Recovery.Make}): when given, the queue registers a
    named durable root with the system's root directory — instead of
    recovery relying on whoever still holds a volatile reference — and
    its [recover] (plus, for the pool-backed DSS queue, a post-recovery
    leak audit over a write-ahead-logged allocator) runs on every
    system-level [reattach]. *)

open Dssq_core

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Sys = Recovery.Make (M)
  module Dss = Dss_queue.Make (M)
  module Ms = Dssq_baselines.Ms_queue.Make (M)
  module Durable = Dssq_baselines.Durable_queue.Make (M)
  module Log = Dssq_baselines.Log_queue.Make (M)
  module Gen = Dssq_baselines.Caswe_queue.General (M)
  module Fast = Dssq_baselines.Caswe_queue.Fast (M)

  (* The generic engine applied to the queue specification: the
     flat-combining benchmark subject ("dss-fc").  Same detectable
     interface as the linked DSS queue, but exec goes through the
     engine's boxed-CAS path, where a combiner can fold every announced
     operation into one composite install and one persist epoch
     (DESIGN.md §14).  The linked queue keeps most of its hardening
     drains even under combine (cross-thread helper flushes), so this is
     the implementation that actually amortizes flushes per op. *)
  module Fcq =
    Detectable.Make
      (struct
        type state = int list
        type op = Dssq_spec.Specs.Queue.op
        type response = Dssq_spec.Specs.Queue.response

        let spec = Dssq_spec.Specs.Queue.spec ()
      end)
      (M)

  (* Register [name]'s recover procedure (and audit, if any) with the
     recovery system, when one is attached. *)
  let attach system ~name ?audit recover =
    match system with
    | None -> ()
    | Some s -> ignore (Sys.register s ~name ?audit recover : int)

  let dss ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let wal = Option.map Sys.wal system in
    let pool_id =
      match system with Some s -> Some (Sys.fresh_pool_id s) | None -> None
    in
    let q = Dss.of_config ?wal ?pool_id cfg in
    attach system ~name:"dss-queue"
      ~audit:(fun () -> Recovery.audit_of_pool (Dss.audit q))
      (fun () -> Dss.recover q);
    {
      name = "dss-queue";
      enqueue = (fun ~tid v -> Dss.enqueue q ~tid v);
      dequeue = (fun ~tid -> Dss.dequeue q ~tid);
      d_enqueue =
        (fun ~tid v ->
          Dss.prep_enqueue q ~tid v;
          Dss.exec_enqueue q ~tid);
      d_dequeue =
        (fun ~tid ->
          Dss.prep_dequeue q ~tid;
          Dss.exec_dequeue q ~tid);
      recover = (fun () -> Dss.recover q);
      resolve = (fun ~tid -> Dss.resolve q ~tid);
      stats =
        (fun () ->
          [ ("capacity", cfg.capacity); ("pool_free", Dss.free_count q) ]);
    }

  let fc ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let module Q = Dssq_spec.Specs.Queue in
    let q = Fcq.create ~name:"fcq" ~combine:cfg.combine ~nthreads:cfg.nthreads () in
    attach system ~name:"dss-fc" (fun () -> Fcq.recover q);
    let of_deq_response = function
      | Q.Value x -> x
      | Q.Empty -> Queue_intf.empty_value
      | Q.Ok -> assert false (* dequeue never answers OK *)
    in
    {
      name = "dss-fc";
      enqueue = (fun ~tid v -> ignore (Fcq.base q ~tid (Q.Enqueue v) : Q.response));
      dequeue = (fun ~tid -> of_deq_response (Fcq.base q ~tid Q.Dequeue));
      d_enqueue =
        (fun ~tid v ->
          Fcq.prep q ~tid (Q.Enqueue v);
          ignore (Fcq.exec q ~tid : Q.response));
      d_dequeue =
        (fun ~tid ->
          Fcq.prep q ~tid Q.Dequeue;
          of_deq_response (Fcq.exec q ~tid));
      recover = (fun () -> Fcq.recover q);
      resolve =
        (fun ~tid ->
          match Fcq.resolve q ~tid with
          | Detectable_intf.Nothing -> Queue_intf.Nothing
          | Detectable_intf.Pending (Q.Enqueue v) -> Queue_intf.Enq_pending v
          | Detectable_intf.Pending Q.Dequeue -> Queue_intf.Deq_pending
          | Detectable_intf.Done (Q.Enqueue v, _) -> Queue_intf.Enq_done v
          | Detectable_intf.Done (Q.Dequeue, r) -> (
              match r with
              | Q.Empty -> Queue_intf.Deq_empty
              | Q.Value x -> Queue_intf.Deq_done x
              | Q.Ok -> assert false));
      stats =
        (fun () ->
          let batches, folded = Fcq.combining_stats q in
          [ ("combine_batches", batches); ("combine_folded", folded) ]);
    }

  let ms ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let q = Ms.of_config cfg in
    (* Volatile: recovery re-attaches the (empty) root, nothing more. *)
    attach system ~name:"ms-queue" (fun () -> ());
    let enqueue ~tid v = Ms.enqueue q ~tid v in
    let dequeue ~tid = Ms.dequeue q ~tid in
    (* The MS queue has no detectable path; the detectable closures fall
       back to the plain operations (only meaningful in non-detectable
       experiments, as in Figure 5a). *)
    {
      name = "ms-queue";
      enqueue;
      dequeue;
      d_enqueue = enqueue;
      d_dequeue = dequeue;
      (* Volatile: nothing survives a crash, nothing to recover or
         resolve. *)
      recover = (fun () -> ());
      resolve = (fun ~tid:_ -> Queue_intf.Nothing);
      stats = (fun () -> []);
    }

  let durable ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let q = Durable.of_config cfg in
    attach system ~name:"durable-queue" (fun () -> Durable.recover q);
    let enqueue ~tid v = Durable.enqueue q ~tid v in
    let dequeue ~tid = Durable.dequeue q ~tid in
    {
      name = "durable-queue";
      enqueue;
      dequeue;
      d_enqueue = enqueue;
      d_dequeue = dequeue;
      recover = (fun () -> Durable.recover q);
      (* Durable but not detectable: recovery publishes pending dequeue
         results, but a thread cannot interrogate its own operation. *)
      resolve = (fun ~tid:_ -> Queue_intf.Nothing);
      stats = (fun () -> []);
    }

  let log ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let q = Log.of_config cfg in
    attach system ~name:"log-queue" (fun () -> Log.recover q);
    {
      name = "log-queue";
      enqueue = (fun ~tid v -> Log.enqueue q ~tid v);
      dequeue = (fun ~tid -> Log.dequeue q ~tid);
      d_enqueue =
        (fun ~tid v ->
          Log.prep_enqueue q ~tid v;
          Log.exec_enqueue q ~tid);
      d_dequeue =
        (fun ~tid ->
          Log.prep_dequeue q ~tid;
          Log.exec_dequeue q ~tid);
      recover = (fun () -> Log.recover q);
      resolve = (fun ~tid -> Log.resolve q ~tid);
      stats = (fun () -> []);
    }

  let general_caswe ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let q = Gen.of_config cfg in
    attach system ~name:"general-caswe" (fun () -> Gen.recover q);
    {
      name = "general-caswe";
      enqueue = (fun ~tid v -> Gen.enqueue q ~tid v);
      dequeue = (fun ~tid -> Gen.dequeue q ~tid);
      d_enqueue =
        (fun ~tid v ->
          Gen.prep_enqueue q ~tid v;
          Gen.exec_enqueue q ~tid);
      d_dequeue =
        (fun ~tid ->
          Gen.prep_dequeue q ~tid;
          Gen.exec_dequeue q ~tid);
      recover = (fun () -> Gen.recover q);
      resolve = (fun ~tid -> Gen.resolve q ~tid);
      stats = (fun () -> []);
    }

  let fast_caswe ?system (cfg : Queue_intf.config) : Queue_intf.ops =
    let q = Fast.of_config cfg in
    attach system ~name:"fast-caswe" (fun () -> Fast.recover q);
    {
      name = "fast-caswe";
      enqueue = (fun ~tid v -> Fast.enqueue q ~tid v);
      dequeue = (fun ~tid -> Fast.dequeue q ~tid);
      d_enqueue =
        (fun ~tid v ->
          Fast.prep_enqueue q ~tid v;
          Fast.exec_enqueue q ~tid);
      d_dequeue =
        (fun ~tid ->
          Fast.prep_dequeue q ~tid;
          Fast.exec_dequeue q ~tid);
      recover = (fun () -> Fast.recover q);
      resolve = (fun ~tid -> Fast.resolve q ~tid);
      stats = (fun () -> []);
    }

  let all =
    [
      ("dss-queue", dss);
      ("dss-fc", fc);
      ("ms-queue", ms);
      ("durable-queue", durable);
      ("log-queue", log);
      ("general-caswe", general_caswe);
      ("fast-caswe", fast_caswe);
    ]

  let known_names = List.map fst all
  let find_opt name = List.assoc_opt name all

  let find name =
    match find_opt name with
    | Some mk -> mk
    | None ->
        invalid_arg
          (Printf.sprintf "unknown queue %S (known: %s)" name
             (String.concat ", " known_names))

  (** Build and seed a queue, optionally rooted in a recovery system —
      the backend-monomorphic variant of the toplevel {!setup} for
      callers that hold a [Sys.t]. *)
  let setup ?system ~mk ~init_nodes (cfg : Queue_intf.config) :
      Queue_intf.ops =
    let ops = (find mk) ?system cfg in
    for i = 1 to init_nodes do
      ops.Queue_intf.enqueue ~tid:(i mod cfg.Queue_intf.nthreads) i
    done;
    ops
end

(** Build and seed a queue for a throughput run, over any backend: look
    [mk] up, construct it with [cfg], and enqueue [init_nodes] values
    round-robin across threads (the Section 4 initialization — round-
    robin because the per-thread node pools are striped).  Shared by the
    sim and native harnesses so the two measure the same starting
    state.  (The recovery system's type depends on the packed backend
    module, so rooted construction goes through {!Make.setup}.) *)
let setup (module M : Dssq_memory.Memory_intf.S) ~mk ~init_nodes
    (cfg : Queue_intf.config) : Queue_intf.ops =
  let module R = Make (M) in
  R.setup ~mk ~init_nodes cfg
