(** Wall-clock throughput harness over real OCaml domains and the native
    [Atomic.t] backend with the calibrated persist cost.

    This is the harness to use on an actual multicore machine.  The
    container this repository was developed in has a single core, so the
    shipped figures come from {!Sim_throughput} instead; this harness
    still runs there (domains timeslice), which is exercised by the test
    suite with small parameters.

    Instrumentation (memory-event counters, latency histograms) is a
    backend/worker selection made here in the harness: the uninstrumented
    path runs the plain [Native] backend and the original worker loop,
    bit-for-bit, so enabling the observability layer elsewhere costs
    measured runs nothing. *)

module MI = Dssq_memory.Memory_intf
module Native = Dssq_memory.Native

let now () = Unix.gettimeofday ()

(** Spawn [nthreads] domains alternating enqueue/dequeue pairs on [ops]
    for [duration] seconds.  Returns (Mops/s, completed operations,
    per-thread latency histograms when [instrument]). *)
let run_workers ?(instrument = false) ~nthreads ~det_pct ~duration
    (ops : Dssq_core.Queue_intf.ops) =
  let start = Atomic.make false in
  let stop = Atomic.make false in
  let hists =
    if instrument then
      Some (Array.init nthreads (fun _ -> Dssq_obs.Histogram.create ()))
    else None
  in
  let worker tid () =
    while not (Atomic.get start) do
      Domain.cpu_relax ()
    done;
    let count = ref 0 in
    let i = ref 0 in
    (match hists with
    | None ->
        while not (Atomic.get stop) do
          let detectable = Sim_throughput.detectable ~det_pct !i in
          let v = (tid * 1_000_000) + (!i land 0xFFFF) in
          if detectable then begin
            ops.d_enqueue ~tid v;
            ignore (ops.d_dequeue ~tid)
          end
          else begin
            ops.enqueue ~tid v;
            ignore (ops.dequeue ~tid)
          end;
          count := !count + 2;
          incr i
        done
    | Some hs ->
        let h = hs.(tid) in
        let timed f =
          let t0 = now () in
          f ();
          Dssq_obs.Histogram.add h ((now () -. t0) *. 1e9)
        in
        while not (Atomic.get stop) do
          let detectable = Sim_throughput.detectable ~det_pct !i in
          let v = (tid * 1_000_000) + (!i land 0xFFFF) in
          if detectable then begin
            timed (fun () -> ops.d_enqueue ~tid v);
            timed (fun () -> ignore (ops.d_dequeue ~tid))
          end
          else begin
            timed (fun () -> ops.enqueue ~tid v);
            timed (fun () -> ignore (ops.dequeue ~tid))
          end;
          count := !count + 2;
          incr i
        done);
    !count
  in
  let domains = Array.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  let t0 = now () in
  Atomic.set start true;
  Unix.sleepf duration;
  Atomic.set stop true;
  let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let elapsed = now () -. t0 in
  (float_of_int total /. elapsed /. 1e6, total, hists)

(** Run [nthreads] domains alternating enqueue/dequeue pairs on a fresh
    queue for [duration] seconds.  [line_size] reconfigures the native
    backend's process-wide line allocator before the queue is built (1,
    the default, is the legacy word-granular model).  With
    [instrument:true] the queue is built over a counted copy of the
    native backend (a fresh [Native.Counted ()] instance, so concurrent
    measurements don't share counters) and each thread records
    wall-clock per-operation latency; events exclude queue seeding.
    [det_pct] is as in {!Sim_throughput.pair_worker}. *)
let measure_ex ?(init_nodes = 16) ?(det_pct = 100) ?(line_size = 1)
    ?(instrument = false) ~mk ~nthreads ~duration () :
    Dssq_obs.Run_report.sample =
  let capacity = init_nodes + 8 + (nthreads * 4096) in
  let cfg = Dssq_core.Queue_intf.config ~line_size ~nthreads ~capacity () in
  Native.set_line_size line_size;
  if not instrument then begin
    let ops = Registry.setup (module Native) ~mk ~init_nodes cfg in
    let mops, total, _ = run_workers ~nthreads ~det_pct ~duration ops in
    {
      Dssq_obs.Run_report.mops;
      ops = total;
      events = MI.Counters.zero;
      latency = None;
    }
  end
  else begin
    let module C = Native.Counted () in
    let ops = Registry.setup (module C) ~mk ~init_nodes cfg in
    C.reset_counters ();
    let mops, total, hists =
      run_workers ~instrument:true ~nthreads ~det_pct ~duration ops
    in
    let latency =
      Option.map
        (fun hs ->
          Array.fold_left Dssq_obs.Histogram.merge
            (Dssq_obs.Histogram.create ())
            hs)
        hists
    in
    { Dssq_obs.Run_report.mops; ops = total; events = C.counters (); latency }
  end

(** Throughput only, in Mops/s — the historical entry point. *)
let measure ?init_nodes ?det_pct ?line_size ~mk ~nthreads ~duration () =
  (measure_ex ?init_nodes ?det_pct ?line_size ~mk ~nthreads ~duration ())
    .Dssq_obs.Run_report.mops
