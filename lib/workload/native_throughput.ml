(** Wall-clock throughput harness over real OCaml domains and the native
    [Atomic.t] backend with the calibrated persist cost.

    This is the harness to use on an actual multicore machine.  The
    container this repository was developed in has a single core, so the
    shipped figures come from {!Sim_throughput} instead; this harness
    still runs there (domains timeslice), which is exercised by the test
    suite with small parameters.

    Instrumentation (memory-event counters, latency histograms) is a
    backend/worker selection made here in the harness: the uninstrumented
    path runs the plain [Native] backend and the original worker loop,
    bit-for-bit, so enabling the observability layer elsewhere costs
    measured runs nothing.  Flush coalescing ([coalesce:true]) selects
    the {!Native.Coalescing} backend, which is always counted — the
    coalesced/elided event totals are the point of running it. *)

module MI = Dssq_memory.Memory_intf
module Native = Dssq_memory.Native

let now () = Unix.gettimeofday ()

(* How many enqueue/dequeue pairs a worker runs between polls of the
   [stop] flag.  Polling a shared atomic every pair puts a cross-core
   load on the hottest path of every thread; once per batch is invisible
   to the flag's latency (a batch is microseconds) and keeps the flag's
   line out of the steady-state loop. *)
let stop_check_period = 32

(* Busy-wait for [cond] with exponential backoff around
   [Domain.cpu_relax]: on an oversubscribed machine (more domains than
   cores — the CI container has one core) a tight relax loop starves the
   very thread that would make [cond] true.  Doubling the relax burst up
   to a cap keeps the barrier responsive when cores are free and cheap
   when they are not. *)
let backoff_until cond =
  let spins = ref 1 in
  while not (cond ()) do
    for _ = 1 to !spins do
      Domain.cpu_relax ()
    done;
    if !spins < 1024 then spins := !spins * 2
  done

(** Spawn [nthreads] domains alternating enqueue/dequeue pairs on [ops]
    for [duration] seconds.  Returns (Mops/s, completed operations,
    per-thread latency histograms when [instrument]). *)
let run_workers ?(instrument = false) ?epoch ~nthreads ~det_pct ~duration
    (ops : Dssq_core.Queue_intf.ops) =
  let start = Atomic.make false in
  let stop = Atomic.make false in
  let hists =
    if instrument then
      Some (Array.init nthreads (fun _ -> Dssq_obs.Histogram.create ()))
    else None
  in
  let worker tid () =
    backoff_until (fun () -> Atomic.get start);
    let count = ref 0 in
    let i = ref 0 in
    let pair =
      match hists with
      | None ->
          fun () ->
            let detectable = Sim_throughput.detectable ~det_pct !i in
            let v = (tid * 1_000_000) + (!i land 0xFFFF) in
            if detectable then begin
              ops.d_enqueue ~tid v;
              ignore (ops.d_dequeue ~tid)
            end
            else begin
              ops.enqueue ~tid v;
              ignore (ops.dequeue ~tid)
            end;
            (* Flat-combining batch epoch: close the domain's persist
               buffer every [k] pairs (combine mode only). *)
            (match epoch with
            | Some (k, drain) when (!i + 1) mod k = 0 -> drain ()
            | _ -> ());
            count := !count + 2;
            incr i
      | Some hs ->
          let h = hs.(tid) in
          let timed f =
            let t0 = now () in
            f ();
            Dssq_obs.Histogram.add h ((now () -. t0) *. 1e9)
          in
          fun () ->
            let detectable = Sim_throughput.detectable ~det_pct !i in
            let v = (tid * 1_000_000) + (!i land 0xFFFF) in
            if detectable then begin
              timed (fun () -> ops.d_enqueue ~tid v);
              timed (fun () -> ignore (ops.d_dequeue ~tid))
            end
            else begin
              timed (fun () -> ops.enqueue ~tid v);
              timed (fun () -> ignore (ops.dequeue ~tid))
            end;
            (match epoch with
            | Some (k, drain) when (!i + 1) mod k = 0 -> drain ()
            | _ -> ());
            count := !count + 2;
            incr i
    in
    while not (Atomic.get stop) do
      for _ = 1 to stop_check_period do
        pair ()
      done
    done;
    !count
  in
  let domains = Array.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  let t0 = now () in
  Atomic.set start true;
  Unix.sleepf duration;
  Atomic.set stop true;
  let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let elapsed = now () -. t0 in
  (float_of_int total /. elapsed /. 1e6, total, hists)

(** Run [nthreads] domains alternating enqueue/dequeue pairs on a fresh
    queue for [duration] seconds.  [line_size] reconfigures the native
    backend's process-wide line allocator before the queue is built (1,
    the default, is the legacy word-granular model).  With
    [instrument:true] the queue is built over a counted copy of the
    native backend (a fresh [Native.Counted ()] instance, so concurrent
    measurements don't share counters) and each thread records
    wall-clock per-operation latency; events exclude queue seeding.
    With [coalesce:true] the queue runs over a fresh
    [Native.Coalescing ()] instance — per-domain persist buffers, one
    drain per persistence point — whose counters are always reported.
    [det_pct] is as in {!Sim_throughput.pair_worker}. *)
let measure_ex ?(init_nodes = 16) ?(det_pct = 100) ?(line_size = 1)
    ?(coalesce = false) ?(combine = false) ?(batch = 8) ?(instrument = false)
    ~mk ~nthreads ~duration () : Dssq_obs.Run_report.sample =
  let capacity = init_nodes + 8 + (nthreads * 4096) in
  let cfg =
    Dssq_core.Queue_intf.config ~line_size ~coalesce ~combine ~nthreads
      ~capacity ()
  in
  Native.set_line_size line_size;
  if (not instrument) && (not coalesce) && not combine then begin
    let ops = Registry.setup (module Native) ~mk ~init_nodes cfg in
    let mops, total, _ = run_workers ~nthreads ~det_pct ~duration ops in
    {
      Dssq_obs.Run_report.mops;
      ops = total;
      events = MI.Counters.zero;
      latency = None;
    }
  end
  else begin
    let module Run (C : MI.COUNTED with type 'a cell = 'a Native.cell) = struct
      let result =
        let ops = Registry.setup (module C) ~mk ~init_nodes cfg in
        C.drain () (* close any seeding-time persist buffer *);
        C.reset_counters ();
        let epoch =
          if combine then Some (max 1 batch, fun () -> C.drain ()) else None
        in
        let mops, total, hists =
          run_workers ~instrument ?epoch ~nthreads ~det_pct ~duration ops
        in
        let latency =
          Option.map
            (fun hs ->
              Array.fold_left Dssq_obs.Histogram.merge
                (Dssq_obs.Histogram.create ())
                hs)
            hists
        in
        {
          Dssq_obs.Run_report.mops;
          ops = total;
          events = C.counters ();
          latency;
        }
    end in
    if combine then begin
      let module B = Native.Combining () in
      let module R = Run (B) in
      R.result
    end
    else if coalesce then begin
      let module B = Native.Coalescing () in
      let module R = Run (B) in
      R.result
    end
    else begin
      let module B = Native.Counted () in
      let module R = Run (B) in
      R.result
    end
  end

(** Throughput only, in Mops/s — the historical entry point. *)
let measure ?init_nodes ?det_pct ?line_size ?coalesce ?combine ?batch ~mk
    ~nthreads ~duration () =
  (measure_ex ?init_nodes ?det_pct ?line_size ?coalesce ?combine ?batch ~mk
     ~nthreads ~duration ())
    .Dssq_obs.Run_report.mops

(** NUMA-ish padding-stride sweep: measure one implementation across
    isolation strides for the hot [Isolated]-placement cells (queue
    head/tail, announce words).  On a real multi-socket machine the
    right stride is an empirical trade — too small false-shares the hot
    words across domains, too large wastes cache reach — and with
    [combine] the persist traffic is batched, so the stride's
    false-sharing component dominates what remains.  Returns
    [(pad_words, Mops/s)] per stride; the process-wide stride is
    restored to the default afterwards. *)
let pad_sweep ?(pads = [ 0; 2; 6; 14; 30 ]) ?init_nodes ?det_pct ?line_size
    ?coalesce ?combine ?batch ~mk ~nthreads ~duration () =
  Fun.protect
    ~finally:(fun () -> Native.set_pad_words MI.Padded.pad_words)
    (fun () ->
      List.map
        (fun pad ->
          Native.set_pad_words pad;
          ( pad,
            measure ?init_nodes ?det_pct ?line_size ?coalesce ?combine ?batch
              ~mk ~nthreads ~duration () ))
        pads)
