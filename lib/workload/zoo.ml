(** The detectable-object zoo: one uniform, deterministic accounting
    workload over {e every} detectable object in [lib/core], measuring
    [persistent_words_per_op] — persistent-word mutations (stores plus
    successful CAS, the simulator's [pwrites] counter) divided by
    completed detectable operations.

    This is the empirical side of the space story in Ben-Baruch, Hendler
    & Rusanovsky (PAPERS.md): detectability costs announce state (at
    least one persistent announce word per process, [Omega(n)] in
    total), and every operation must persist at least its own announce
    record and one state mutation.  The zoo reports how far each object
    sits from that floor — the flat engine-backed objects pay the same
    protocol cost regardless of their specification, the linked
    structures pay extra words for the pointer swing, and the composed
    hash map multiplies announce space by its bucket count.

    Everything runs on the counted simulator backend with two threads
    and a fixed schedule, so rows are reproducible and comparable across
    commits; [to_report] packages them as a {!Dssq_obs.Run_report.t}
    for archiving (the words-per-op CI artifact).

    [profile_one]/[profile_all] run the same workloads with the
    persistence heatmap and phase profiler attached, producing the
    attribution tables behind [dssq profile]. *)

open Dssq_pmem
open Dssq_sim
module MI = Dssq_memory.Memory_intf
module DI = Dssq_core.Detectable_intf
module Heatmap = Dssq_obs.Heatmap
module Profile = Dssq_obs.Profile

type row = {
  z_object : string;
  z_ops : int;  (** completed detectable operations *)
  z_events : MI.counters;  (** memory-event delta over the measured ops *)
  z_stats : DI.stats;  (** static persistent footprint of the instance *)
}

let words_per_op r =
  float_of_int r.z_events.MI.pwrites /. float_of_int (max 1 r.z_ops)

let flushes_per_op r =
  float_of_int r.z_events.MI.flushes /. float_of_int (max 1 r.z_ops)

(* ------------------------- per-object workloads ------------------------ *)

(* Every workload: [pairs] iterations per thread, two detectable
   operations per iteration (a mutator and its inverse or a read), all
   through the prep/exec pair so the announce protocol is on the
   measured path.  Counters are reset after construction and prefill;
   [ops] counts completed detectable operations. *)

let nthreads = 2

let objects =
  [
    "dss-queue"; "dss-stack"; "dss-register"; "dss-hashmap"; "dss-swap";
    "dss-deque"; "dss-pqueue"; "dss-bcounter";
  ]

type runner = {
  r_threads : (unit -> unit) list;
  r_stats : unit -> DI.stats;
  r_recover : unit -> unit;
      (* object-wide recovery plus one resolve per thread — the
         post-crash path the profiler attributes to the recovery phases *)
}

let make_runner (module M : Dssq_memory.Memory_intf.S) ?(combine = false)
    ~pairs name : runner =
  let counted tid i = (tid * 1_000_000) + i in
  match name with
  | "dss-queue" ->
      let module Q = Dssq_core.Dss_queue.Make (M) in
      let q =
        Q.create ~combine ~nthreads ~capacity:(16 + (nthreads * (pairs + 8))) ()
      in
      let worker tid () =
        for i = 1 to pairs do
          Q.prep_enqueue q ~tid (counted tid i);
          Q.exec_enqueue q ~tid;
          Q.prep_dequeue q ~tid;
          ignore (Q.exec_dequeue q ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> Q.stats q);
        r_recover =
          (fun () ->
            Q.recover q;
            for tid = 0 to nthreads - 1 do
              ignore (Q.resolve q ~tid)
            done);
      }
  | "dss-stack" ->
      let module S = Dssq_core.Dss_stack.Make (M) in
      let s =
        S.create ~combine ~nthreads ~capacity:(16 + (nthreads * (pairs + 8))) ()
      in
      let worker tid () =
        for i = 1 to pairs do
          S.prep_push s ~tid (counted tid i);
          S.exec_push s ~tid;
          S.prep_pop s ~tid;
          ignore (S.exec_pop s ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> S.stats s);
        r_recover =
          (fun () ->
            S.recover s;
            for tid = 0 to nthreads - 1 do
              ignore (S.resolve s ~tid)
            done);
      }
  | "dss-register" ->
      let module R = Dssq_core.Dss_register.Make (M) in
      let r = R.create ~nthreads () in
      let worker tid () =
        for i = 1 to pairs do
          R.prep_write r ~tid (counted tid i);
          R.exec_write r ~tid;
          R.prep_read r ~tid;
          ignore (R.exec_read r ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> R.stats r);
        r_recover =
          (fun () ->
            R.recover r;
            for tid = 0 to nthreads - 1 do
              ignore (R.resolve r ~tid)
            done);
      }
  | "dss-hashmap" ->
      let module H = Dssq_core.Dss_hashmap.Make (M) in
      let h = H.create ~nthreads ~nbuckets:64 () in
      let worker tid () =
        for i = 1 to pairs do
          (* Disjoint key ranges per thread; keys must be >= 1. *)
          let k = (tid * 4096) + (i mod 1024) + 1 in
          H.put h ~tid k i;
          H.remove h ~tid k
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> H.stats h);
        r_recover =
          (fun () ->
            H.recover h;
            for tid = 0 to nthreads - 1 do
              ignore (H.resolve h ~tid)
            done);
      }
  | "dss-swap" ->
      let module W = Dssq_core.Dss_swap.Make (M) in
      let w = W.create ~combine ~nthreads () in
      let worker tid () =
        for i = 1 to pairs do
          W.prep_swap w ~tid (counted tid i);
          ignore (W.exec_swap w ~tid);
          W.prep_swap w ~tid (counted tid (i + pairs));
          ignore (W.exec_swap w ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> W.stats w);
        r_recover =
          (fun () ->
            W.recover w;
            for tid = 0 to nthreads - 1 do
              ignore (W.resolve w ~tid)
            done);
      }
  | "dss-deque" ->
      let module D = Dssq_core.Dss_deque.Make (M) in
      let d = D.create ~combine ~nthreads () in
      (* Thread 0 works the front, thread 1 the back, so both ends of
         the specification are on the measured path. *)
      let worker tid () =
        for i = 1 to pairs do
          if tid = 0 then D.prep_push_front d ~tid (counted tid i)
          else D.prep_push_back d ~tid (counted tid i);
          ignore (D.exec d ~tid);
          if tid = 0 then D.prep_pop_back d ~tid else D.prep_pop_front d ~tid;
          ignore (D.exec d ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> D.stats d);
        r_recover =
          (fun () ->
            D.recover d;
            for tid = 0 to nthreads - 1 do
              ignore (D.resolve d ~tid)
            done);
      }
  | "dss-pqueue" ->
      let module P = Dssq_core.Dss_pqueue.Make (M) in
      let p = P.create ~combine ~nthreads () in
      let worker tid () =
        for i = 1 to pairs do
          (* Interleaved priorities so extract-min alternates winners. *)
          P.prep_insert p ~tid ((i * nthreads) + tid);
          ignore (P.exec p ~tid);
          P.prep_extract_min p ~tid;
          ignore (P.exec p ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> P.stats p);
        r_recover =
          (fun () ->
            P.recover p;
            for tid = 0 to nthreads - 1 do
              ignore (P.resolve p ~tid)
            done);
      }
  | "dss-bcounter" ->
      let module B = Dssq_core.Dss_bcounter.Make (M) in
      let b = B.create ~combine ~nthreads () in
      let worker tid () =
        for _ = 1 to pairs do
          B.prep_incr b ~tid;
          ignore (B.exec b ~tid);
          B.prep_decr b ~tid;
          ignore (B.exec b ~tid)
        done
      in
      {
        r_threads = [ worker 0; worker 1 ];
        r_stats = (fun () -> B.stats b);
        r_recover =
          (fun () ->
            B.recover b;
            for tid = 0 to nthreads - 1 do
              ignore (B.resolve b ~tid)
            done);
      }
  | other ->
      invalid_arg
        (Printf.sprintf "Zoo: unknown object %s (known: %s)" other
           (String.concat ", " objects))

let run_one ?(pairs = 200) ?(line_size = 1) ?(combine = false) ?persistency
    name =
  let heap = Heap.create ~line_size ~combine ?persistency () in
  let (module M) = Sim.counted_memory heap in
  let r = make_runner (module M) ~combine ~pairs name in
  M.reset_counters ();
  ignore (Sim.run heap ~threads:r.r_threads);
  {
    z_object = name;
    (* two detectable ops per iteration per thread, by construction *)
    z_ops = 2 * pairs * nthreads;
    z_events = M.counters ();
    z_stats = r.r_stats ();
  }

let run_all ?pairs ?line_size ?combine ?persistency () =
  List.map
    (fun name -> run_one ?pairs ?line_size ?combine ?persistency name)
    objects

(* ---------------------- flat-combining amortization -------------------- *)

(* The Ben-Baruch, Hendler & Rusanovsky floor is per {e operation}: one
   persistent announce word per process, and every detectable mutation
   persists at least its announce record and one state word (>= 2
   persisted words/op).  Flat combining cannot beat that floor on
   persisted WORDS — every folded operation's announce record still
   turns over — but it amortizes the persist {e epochs}: one flush+drain
   covers a whole batch, so flushes/op falls toward O(1/batch) while
   words/op stays put.  This sweep shows both side by side, per driver
   batch size, on the engine-backed queue (the [dss-fc] benchmark
   subject). *)
type fc_row = {
  f_batch : int;  (** driver epoch size, operation pairs *)
  f_ops : int;
  f_words : float;  (** persisted words per op — floor-bound, flat *)
  f_flushes : float;  (** flushes per op — the amortized axis *)
  f_fences : float;
}

let combine_rows ?(batches = [ 1; 2; 4; 8 ]) ?(nthreads = 8) () =
  List.map
    (fun b ->
      let s =
        Sim_throughput.measure_ex ~seed:1 ~mk:"dss-fc" ~det_pct:100
          ~combine:true ~batch:b ~nthreads ()
      in
      let ops = max 1 s.Dssq_obs.Run_report.ops in
      let per c = float_of_int c /. float_of_int ops in
      {
        f_batch = b;
        f_ops = ops;
        f_words = per s.Dssq_obs.Run_report.events.MI.pwrites;
        f_flushes = per s.Dssq_obs.Run_report.events.MI.flushes;
        f_fences = per s.Dssq_obs.Run_report.events.MI.fences;
      })
    batches

(* ------------------------- attributed profiling ------------------------ *)

type profile = {
  p_row : row;
  p_phases : Profile.phase_row list;
  p_heat : Heatmap.row list;
}

(* Shared shell: enable both aggregators around [body], always detach.
   The aggregators are started before construction so allocation-site
   labels are captured, then the counts (not the labels) are zeroed at
   the same instant as the backend counters — which is what keeps the
   per-phase and per-line sums equal to the counter deltas. *)
let with_attribution body =
  Heatmap.reset ();
  Profile.reset ();
  Heatmap.start ();
  Profile.start ();
  Fun.protect
    ~finally:(fun () ->
      Heatmap.stop ();
      Profile.stop ())
    body

let profile_one ?(pairs = 200) ?(line_size = 1) ?(coalesce = false)
    ?(combine = false) ?persistency ?(crash = false) name =
  with_attribution (fun () ->
      let heap = Heap.create ~line_size ~combine ?persistency () in
      let (module M) = Sim.counted_memory ~coalesce heap in
      let r = make_runner (module M) ~combine ~pairs name in
      M.reset_counters ();
      Heatmap.reset_counts ();
      Profile.reset ();
      ignore (Sim.run heap ~threads:r.r_threads);
      if crash then begin
        Heap.crash_random heap ~evict_p:0.5
          ~rng:(Random.State.make [| 0xF00D; 17 |]);
        r.r_recover ()
      end;
      {
        p_row =
          {
            z_object = name;
            z_ops = 2 * pairs * nthreads;
            z_events = M.counters ();
            z_stats = r.r_stats ();
          };
        p_phases = Profile.rows ();
        p_heat = Heatmap.rows ();
      })

let profile_one_native ?(pairs = 200) ?(line_size = 1) ?(coalesce = false)
    ?(combine = false) ?(persistency = MI.Persistency.Sc) name =
  let module Native = Dssq_memory.Native in
  let module Trace = Dssq_obs.Trace in
  with_attribution (fun () ->
      Native.set_line_size line_size;
      let measure (module C : MI.COUNTED) =
        let r = make_runner (module C) ~combine ~pairs name in
        C.reset_counters ();
        Heatmap.reset_counts ();
        Profile.reset ();
        (* Workers run sequentially in this domain — attribution wants a
           deterministic event stream, not a wall-clock benchmark; the
           per-worker tid keeps the profiler's thread slots honest. *)
        List.iteri
          (fun tid th ->
            Trace.set_tid tid;
            th ())
          r.r_threads;
        Trace.set_tid (-1);
        C.drain ();
        r.r_recover ();
        {
          p_row =
            {
              z_object = name;
              z_ops = 2 * pairs * nthreads;
              z_events = C.counters ();
              z_stats = r.r_stats ();
            };
          p_phases = Profile.rows ();
          p_heat = Heatmap.rows ();
        }
      in
      if combine then
        (* combining wants the write-combining buffer irrespective of the
           persistency axis — one drain per batch is the point *)
        measure (module Native.Combining ())
      else if persistency = MI.Persistency.Px86 then
        (* px86 subsumes coalescing: same buffer, weaker store ordering *)
        measure (module Native.Px86 ())
      else if coalesce then measure (module Native.Coalescing ())
      else measure (module Native.Counted ()))

let profile_all ?pairs ?line_size ?coalesce ?combine ?persistency ?crash () =
  List.map
    (fun name ->
      profile_one ?pairs ?line_size ?coalesce ?combine ?persistency ?crash name)
    objects

(* ------------------------------ reporting ------------------------------ *)

let to_report ?(pairs = 200) ?(line_size = 1) (rows : row list) :
    Dssq_obs.Run_report.t =
  let series =
    List.map
      (fun r ->
        {
          Dssq_obs.Run_report.label = r.z_object;
          points =
            [
              {
                Dssq_obs.Run_report.x = nthreads;
                samples = [ words_per_op r ];
                ops = r.z_ops;
                events = r.z_events;
                latency = None;
              };
            ];
        })
      rows
  in
  let metrics =
    List.concat_map
      (fun r ->
        List.map
          (fun (k, v) -> (Printf.sprintf "zoo.%s.%s" r.z_object k, v))
          (DI.stats_to_assoc r.z_stats))
      rows
  in
  Dssq_obs.Run_report.make
    ~params:
      [
        ("pairs", string_of_int pairs);
        ("line_size", string_of_int line_size);
        ("nthreads", string_of_int nthreads);
      ]
    ~provenance:
      [
        ("line_size", string_of_int line_size);
        ("coalesce", "false");
        ("threads", string_of_int nthreads);
      ]
    ~metrics ~backend:"sim" ~experiment:"zoo" ~x_label:"threads"
    ~y_label:"persistent words per op" series
