(** The simulated multiprocessor: a discrete-event throughput model over
    the deterministic simulator, used to regenerate the paper's
    scalability figures on a single-core host (DESIGN.md §1).

    Threads progress on private clocks (smallest clock steps next =
    independent cores); each memory event is charged a latency, and
    conflicting cache-line accesses serialize — exclusive ownership with
    cross-core transfer for stores/CAS, brief occupancy for failed CAS,
    wait-then-share for loads, issuer-stall-only for CLWB.  Contention,
    helping and retry storms come from the algorithm code itself. *)

type costs = {
  read_ns : float;
  write_ns : float;
  cas_ns : float;
  flush_ns : float;
  fence_ns : float;
  work_ns : float;
  cas_fail_line_ns : float;
  transfer_ns : float;
  flush_issue_ns : float;
      (** issue stall of a coalesced (asynchronous) flush; the device
          round-trip ([flush_ns]) completes in the background and is
          waited on at the next drain/fence *)
}

val default_costs : costs
(** Rough published latencies for cache-hit ops, locked CAS, CLWB+sfence
    against Optane, and cross-core line transfer. *)

val run :
  ?costs:costs ->
  ?seed:int ->
  ?clock:(int -> float) ref ->
  horizon_ns:float ->
  heap:Dssq_pmem.Heap.t ->
  threads:(unit -> unit) array ->
  ops_done:(unit -> int) ->
  unit ->
  float
(** Run infinite-loop workers until every private clock passes the
    horizon; returns [ops_done] per simulated second.  When [clock] is
    given it is set (before the first step) to a function mapping a
    thread id to that thread's current simulated time, so instrumented
    workers can time their own operations. *)

val detectable : det_pct:int -> int -> bool
(** Evenly spread: exactly [det_pct] percent of operation indices are
    detectable. *)

val pair_worker :
  ?epoch:int * (unit -> unit) ->
  Dssq_core.Queue_intf.ops ->
  tid:int ->
  counter:int ref ->
  det_pct:int ->
  unit ->
  unit
(** The paper's workload: alternating enqueue/dequeue pairs forever,
    bumping [counter] per completed operation.  [epoch = (k, drain)]
    closes a flat-combining persist epoch — calls [drain] — every [k]
    operation pairs (combine mode only). *)

val timed_pair_worker :
  ?epoch:int * (unit -> unit) ->
  Dssq_core.Queue_intf.ops ->
  tid:int ->
  counter:int ref ->
  det_pct:int ->
  now:(unit -> float) ->
  hist:Dssq_obs.Histogram.t ->
  unit ->
  unit
(** {!pair_worker} plus a per-operation simulated-latency sample recorded
    into [hist] ([now] should read the thread's private clock). *)

val measure_ex :
  ?costs:costs ->
  ?seed:int ->
  ?horizon_ns:float ->
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  ?instrument:bool ->
  mk:string ->
  nthreads:int ->
  unit ->
  Dssq_obs.Run_report.sample
(** One implementation at one thread count on a fresh simulated heap.
    The sample carries throughput, completed operations, the memory-event
    delta over the measured phase (seeding excluded), and — only with
    [instrument:true] — a per-operation latency histogram in simulated
    nanoseconds.  [mk] is a {!Registry} name; the queue is seeded with
    [init_nodes] values (default 16, as in Section 4); [line_size]
    (default 1 = word-granular) sets the heap's persist-line size;
    [coalesce] (default false) turns on per-thread flush coalescing
    (asynchronous flushes retired by a single drain per persist point);
    [combine] (default false) puts the heap in flat-combining batch-epoch
    mode and has the workers close an epoch every [batch] (default 8)
    operation pairs. *)

val measure :
  ?costs:costs ->
  ?seed:int ->
  ?horizon_ns:float ->
  ?init_nodes:int ->
  ?det_pct:int ->
  ?line_size:int ->
  ?coalesce:bool ->
  ?combine:bool ->
  ?batch:int ->
  mk:string ->
  nthreads:int ->
  unit ->
  float
(** Throughput only, in Mops/s: [(measure_ex ...).mops]. *)
