(** Our implementation of Friedman et al.'s detectable {e log queue}
    (PPoPP 2018), the strongest detectable baseline of Figure 5b.

    Unlike the DSS queue, whose per-thread detectability word [X] is
    statically allocated and effectively private, the log queue allocates
    a fresh {e log entry} per operation — (announcement, node, result)
    persistent words drawn from a per-thread ring — and other threads
    write into a dequeuer's log when helping (Section 4: "operation
    arguments and return values are stored directly in the logs, and are
    accessed by other threads via helping mechanisms").  The extra
    allocation, flushes, and shared log traffic are what Figure 5b
    charges it for relative to the DSS queue.

    A node claims its dequeuer by CASing the claimer's {e log entry
    index} into [deq_tid]; -1 means unclaimed and 0 means claimed by a
    non-detectable dequeue.  Helpers publish the dequeued value into the
    claimer's log with a CAS from the "no result" sentinel, so a stale
    helper cannot clobber a recycled entry (the ring must be deeper than
    any realistic helping lag; see DESIGN.md deviations). *)

open Dssq_core

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Pool = Node_pool.Make (M)

  let name = "log-queue"
  let ring_size = 128
  let no_result = -2

  type t = {
    pool : Pool.t;
    head : int M.cell;
    tail : int M.cell;
    (* Log entries, indexed 1 .. nthreads*ring_size. *)
    log_ann : int M.cell array; (* value | ENQ_PREP, or DEQ_PREP *)
    log_node : int M.cell array; (* node an enqueue entry is inserting *)
    log_result : int M.cell array;
    announce : int M.cell array; (* L[tid]: current entry index *)
    enq_log : int M.cell array; (* per node: enqueuer's entry index *)
    ring_pos : int array; (* volatile, thread-local *)
    ebr : int Dssq_ebr.Ebr.t;
    nthreads : int;
  }

  let create ~nthreads ~capacity =
    let pool = Pool.create ~capacity ~nthreads () in
    let sentinel = Pool.alloc pool ~tid:0 ~value:0 in
    M.flush (Pool.value pool sentinel);
    M.flush (Pool.next pool sentinel);
    let head = M.alloc ~name:"head" sentinel in
    let tail = M.alloc ~name:"tail" sentinel in
    M.flush head;
    M.flush tail;
    M.drain ();
    let nentries = (nthreads * ring_size) + 1 in
    let mk name init =
      Array.init nentries (fun i -> M.alloc ~name:(Printf.sprintf "%s[%d]" name i) init)
    in
    {
      pool;
      head;
      tail;
      log_ann = mk "log_ann" 0;
      log_node = mk "log_node" 0;
      log_result = mk "log_result" no_result;
      announce =
        Array.init nthreads (fun i -> M.alloc ~name:(Printf.sprintf "L[%d]" i) 0);
      enq_log =
        Array.init (capacity + 1) (fun i ->
            M.alloc ~name:(Printf.sprintf "enq_log[%d]" i) 0);
      ring_pos = Array.make nthreads 0;
      ebr =
        Dssq_ebr.Ebr.create ~nthreads
          ~free:(fun ~tid node -> Pool.free pool ~tid node)
          ();
      nthreads;
    }

  let of_config (cfg : Queue_intf.config) =
    create ~nthreads:cfg.nthreads ~capacity:cfg.capacity

  (* Allocate the next log entry from [tid]'s ring. *)
  let fresh_entry t ~tid =
    let slot = t.ring_pos.(tid) in
    t.ring_pos.(tid) <- (slot + 1) mod ring_size;
    (tid * ring_size) + slot + 1

  (* ------------------------------------------------------------------ *)
  (* Enqueue                                                             *)
  (* ------------------------------------------------------------------ *)

  let prep_enqueue t ~tid v =
    if v < 0 then invalid_arg "Log_queue: values must be non-negative";
    let e = fresh_entry t ~tid in
    M.write t.log_ann.(e) (Tagged.with_tag v Tagged.enq_prep);
    M.flush t.log_ann.(e);
    M.write t.log_result.(e) no_result;
    M.flush t.log_result.(e);
    M.write t.log_node.(e) Tagged.null;
    M.flush t.log_node.(e);
    M.write t.announce.(tid) e;
    M.flush t.announce.(tid);
    (* Persistence point: the log entry and its announcement are durable
       when prep returns (no-op on eager backends). *)
    M.drain ()

  let link_node t ~tid node =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool last) in
      if last = M.read t.tail then
        if next = Tagged.null then begin
          if M.cas (Pool.next t.pool last) ~expected:Tagged.null ~desired:node
          then begin
            M.flush (Pool.next t.pool last);
            ignore (M.cas t.tail ~expected:last ~desired:node)
          end
          else loop ()
        end
        else begin
          M.flush (Pool.next t.pool last);
          ignore (M.cas t.tail ~expected:last ~desired:next);
          loop ()
        end
      else loop ()
    in
    loop ();
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let exec_enqueue t ~tid =
    let e = M.read t.announce.(tid) in
    let v = Tagged.idx (M.read t.log_ann.(e)) in
    let node = Pool.alloc_reclaiming t.pool ~ebr:t.ebr ~tid ~value:v in
    M.flush (Pool.value t.pool node);
    M.flush (Pool.next t.pool node);
    M.write t.enq_log.(node) e;
    M.flush t.enq_log.(node);
    (* Announce the node in the log before linking, so recovery can tell
       whether this entry's insertion took effect. *)
    M.write t.log_node.(e) node;
    M.flush t.log_node.(e);
    link_node t ~tid node;
    M.write t.log_result.(e) 0 (* OK *);
    M.flush t.log_result.(e);
    M.drain () (* persistence point *)

  let enqueue t ~tid v =
    if v < 0 then invalid_arg "Log_queue: values must be non-negative";
    let node = Pool.alloc_reclaiming t.pool ~ebr:t.ebr ~tid ~value:v in
    M.flush (Pool.value t.pool node);
    M.flush (Pool.next t.pool node);
    link_node t ~tid node

  (* ------------------------------------------------------------------ *)
  (* Dequeue                                                             *)
  (* ------------------------------------------------------------------ *)

  let prep_dequeue t ~tid =
    let e = fresh_entry t ~tid in
    M.write t.log_ann.(e) Tagged.deq_prep;
    M.flush t.log_ann.(e);
    M.write t.log_result.(e) no_result;
    M.flush t.log_result.(e);
    M.write t.announce.(tid) e;
    M.flush t.announce.(tid);
    M.drain () (* persistence point, as in prep_enqueue *)

  (* Publish value [v] as entry [e]'s result, helping-safely. *)
  let publish_result t e v =
    if M.read t.log_result.(e) = no_result then begin
      ignore (M.cas t.log_result.(e) ~expected:no_result ~desired:v);
      M.flush t.log_result.(e)
    end

  (* [claim] is the log-entry index to CAS into deq_tid; 0 for the
     non-detectable path. *)
  let dequeue_body t ~tid ~claim =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let first = M.read t.head in
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool first) in
      if first = M.read t.head then
        if first = last then
          if next = Tagged.null then begin
            if claim <> 0 then begin
              M.write t.log_result.(claim) Queue_intf.empty_value;
              M.flush t.log_result.(claim)
            end;
            Queue_intf.empty_value
          end
          else begin
            M.flush (Pool.next t.pool last);
            ignore (M.cas t.tail ~expected:last ~desired:next);
            loop ()
          end
        else if M.cas (Pool.deq_tid t.pool next) ~expected:(-1) ~desired:claim
        then begin
          M.flush (Pool.deq_tid t.pool next);
          let v = M.read (Pool.value t.pool next) in
          if claim <> 0 then publish_result t claim v;
          ignore (M.cas t.head ~expected:first ~desired:next);
          (* Persist the head advance before recycling the old sentinel
             (crash-safe reuse; see DESIGN.md deviations). *)
          M.flush t.head;
          Dssq_ebr.Ebr.retire t.ebr ~tid first;
          v
        end
        else if M.read t.head = first then begin
          (* help: publish into the claimer's log, then swing head *)
          let claimer_entry = M.read (Pool.deq_tid t.pool next) in
          M.flush (Pool.deq_tid t.pool next);
          if claimer_entry > 0 then
            publish_result t claimer_entry (M.read (Pool.value t.pool next));
          ignore (M.cas t.head ~expected:first ~desired:next);
          loop ()
        end
        else loop ()
      else loop ()
    in
    let v = loop () in
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  let exec_dequeue t ~tid =
    dequeue_body t ~tid ~claim:(M.read t.announce.(tid))

  let dequeue t ~tid = dequeue_body t ~tid ~claim:0

  (* ------------------------------------------------------------------ *)
  (* Detection and recovery                                              *)
  (* ------------------------------------------------------------------ *)

  let resolve t ~tid =
    let e = M.read t.announce.(tid) in
    if e = 0 then Queue_intf.Nothing
    else begin
      let ann = M.read t.log_ann.(e) in
      let result = M.read t.log_result.(e) in
      if Tagged.has ann Tagged.enq_prep then
        if result = no_result then Queue_intf.Enq_pending (Tagged.idx ann)
        else Queue_intf.Enq_done (Tagged.idx ann)
      else if result = no_result then Queue_intf.Deq_pending
      else if result = Queue_intf.empty_value then Queue_intf.Deq_empty
      else Queue_intf.Deq_done result
    end

  (** Centralized recovery.  Unlike the DSS queue's, this phase is
      {e mandatory} for detection — the log queue depends on the system
      running it before threads resolve (the auxiliary-state contrast of
      Section 5 of the paper). *)
  let recover t =
    Dssq_ebr.Ebr.clear t.ebr;
    let old_head = M.read t.head in
    (* Complete dequeue results for marked nodes, then advance head. *)
    let rec advance n =
      let next = M.read (Pool.next t.pool n) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) <> -1 then begin
        let e = M.read (Pool.deq_tid t.pool next) in
        if e > 0 then publish_result t e (M.read (Pool.value t.pool next));
        advance next
      end
      else n
    in
    let new_head = advance old_head in
    M.write t.head new_head;
    M.flush t.head;
    let rec last n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then n else last next
    in
    M.write t.tail (last new_head);
    M.flush t.tail;
    (* Complete enqueue results: the announced node took effect iff it is
       reachable or was already dequeued (marked). *)
    let reachable = Array.make (t.pool.Pool.capacity + 1) false in
    let rec mark n =
      if n <> Tagged.null && not reachable.(n) then begin
        reachable.(n) <- true;
        mark (M.read (Pool.next t.pool n))
      end
    in
    mark old_head;
    for tid = 0 to t.nthreads - 1 do
      let e = M.read t.announce.(tid) in
      if e <> 0 && Tagged.has (M.read t.log_ann.(e)) Tagged.enq_prep then begin
        let node = M.read t.log_node.(e) in
        if
          node <> Tagged.null
          && M.read t.log_result.(e) = no_result
          && (reachable.(node) || M.read (Pool.deq_tid t.pool node) <> -1)
        then begin
          M.write t.log_result.(e) 0;
          M.flush t.log_result.(e)
        end
      end
    done;
    (* Rebuild free lists: keep live nodes and log-referenced nodes. *)
    let live = Array.make (t.pool.Pool.capacity + 1) false in
    let rec mark_live n =
      if n <> Tagged.null && not live.(n) then begin
        live.(n) <- true;
        mark_live (M.read (Pool.next t.pool n))
      end
    in
    mark_live new_head;
    for tid = 0 to t.nthreads - 1 do
      let e = M.read t.announce.(tid) in
      if e <> 0 then begin
        let node = M.read t.log_node.(e) in
        if node <> Tagged.null then live.(node) <- true
      end
    done;
    Pool.rebuild_free_lists t.pool ~keep:(fun i -> live.(i));
    M.drain ()

  let to_list t =
    let rec skip n =
      let next = M.read (Pool.next t.pool n) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) <> -1 then
        skip next
      else n
    in
    let rec collect acc n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then List.rev acc
      else collect (M.read (Pool.value t.pool next) :: acc) next
    in
    collect [] (skip (M.read t.head))
end
