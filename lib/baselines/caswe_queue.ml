(** The CASWithEffect queues of Figure 5b: detectable queues where the
    linked list and the detectability state (the analogue of the DSS
    queue's array [X]) are updated {e atomically together} with a
    persistent multi-word CAS.

    Because the head swing (resp. tail link) commits in the same PMwCAS
    as the update of X, there is no window in which the structure changed
    but the detectability state did not: no [deqThreadID] marking, no
    Figure-6-style reasoning in recovery.  The price is the full PMwCAS
    machinery — descriptor publication, installs, helpers, and many more
    flushes per operation — which is exactly why it scales worst in
    Figure 5b.

    Two variants, as in the paper:
    - {b General}: X is treated as an ordinary shared word (installed,
      CASed, helped like any other).
    - {b Fast}: PMwCAS is told X is private to its owner, skipping the
      install phase for it (the "combination of shared and private
      variables" optimization) — up to ~1.5x faster in the paper. *)

open Dssq_core

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module P = Dssq_pmwcas.Pmwcas.Make (M)

  type t = {
    p : P.t;
    value : int M.cell array; (* plain persistent cells, 1..capacity *)
    next : int array; (* pmwcas word addresses per node *)
    head : int; (* pmwcas word address *)
    tail : int;
    x : int array; (* pmwcas word addresses, per thread *)
    x_kind : [ `Shared | `Private ];
    free_lists : int list Atomic.t array;
    ebr : int Dssq_ebr.Ebr.t;
    reclaim : bool;
    capacity : int;
    nthreads : int;
  }

  let x_prep_enq node = Tagged.with_tag node Tagged.enq_prep
  let x_prep_deq = Tagged.deq_prep

  let create ?(reclaim = true) ~x_kind ~nthreads ~capacity () =
    let nwords = capacity + 3 + nthreads in
    let p = P.create ~nwords ~nthreads ~max_width:2 () in
    let next = Array.init (capacity + 1) (fun i -> P.alloc p ~name:(Printf.sprintf "next[%d]" i) 0) in
    let value =
      Array.init (capacity + 1) (fun i ->
          M.alloc ~name:(Printf.sprintf "value[%d]" i) 0)
    in
    let free_lists = Array.init nthreads (fun _ -> Atomic.make []) in
    (* Node 1 is the initial sentinel; 2..capacity are free. *)
    for i = capacity downto 2 do
      let owner = (i - 1) mod nthreads in
      Atomic.set free_lists.(owner) (i :: Atomic.get free_lists.(owner))
    done;
    let head = P.alloc p ~name:"head" 1 in
    let tail = P.alloc p ~name:"tail" 1 in
    let x =
      Array.init nthreads (fun i -> P.alloc p ~name:(Printf.sprintf "X[%d]" i) 0)
    in
    let t =
      {
        p;
        value;
        next;
        head;
        tail;
        x;
        x_kind;
        free_lists;
        ebr = Dssq_ebr.Ebr.create ~nthreads ~free:(fun ~tid:_ _ -> ()) ();
        reclaim;
        capacity;
        nthreads;
      }
    in
    let ebr =
      Dssq_ebr.Ebr.create ~nthreads
        ~free:(fun ~tid:_ node ->
          (* return to the node's home list; atomic for cross-thread *)
          let owner = (node - 1) mod nthreads in
          let rec push () =
            let cur = Atomic.get t.free_lists.(owner) in
            if not (Atomic.compare_and_set t.free_lists.(owner) cur (node :: cur))
            then push ()
          in
          push ())
        ()
    in
    { t with ebr }

  let alloc_node t ~tid v =
    let rec pop () =
      match Atomic.get t.free_lists.(tid) with
      | [] -> None
      | node :: rest as cur ->
          if Atomic.compare_and_set t.free_lists.(tid) cur rest
          then begin
            M.write t.value.(node) v;
            M.flush t.value.(node);
            P.write_quiet t.p t.next.(node) Tagged.null;
            Some node
          end
          else pop ()
    in
    let rec go attempts =
      match pop () with
      | Some node -> node
      | None
        when t.reclaim && attempts < 3_000_000
             && Dssq_ebr.Ebr.pending t.ebr > 0 ->
          (* Pace reclamation: retired nodes may just be waiting out
             their grace period (see Node_pool.alloc_reclaiming). *)
          Dssq_ebr.Ebr.enter t.ebr ~tid;
          Dssq_ebr.Ebr.exit t.ebr ~tid;
          M.fence ();
          go (attempts + 1)
      | None -> raise (Node_pool.Pool_exhausted tid)
    in
    go 0

  let retire t ~tid node =
    if t.reclaim then Dssq_ebr.Ebr.retire t.ebr ~tid node

  (* ------------------------------------------------------------------ *)
  (* Detectable operations                                               *)
  (* ------------------------------------------------------------------ *)

  let prep_enqueue t ~tid v =
    if v < 0 then invalid_arg "Caswe_queue: values must be non-negative";
    let node = alloc_node t ~tid v in
    P.write_quiet t.p t.x.(tid) (x_prep_enq node);
    M.drain () (* persistence point: the node's value flush completes *)

  let exec_enqueue t ~tid =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let node = Tagged.idx (P.read t.p ~tid t.x.(tid)) in
    let x_expected = x_prep_enq node in
    let rec loop () =
      let last = P.read t.p ~tid t.tail in
      let next = P.read t.p ~tid t.next.(last) in
      if next = Tagged.null then begin
        if
          P.pmwcas t.p ~tid
            [
              (t.next.(last), Tagged.null, node, `Shared);
              ( t.x.(tid),
                x_expected,
                Tagged.with_tag x_expected Tagged.enq_compl,
                t.x_kind );
            ]
        then ignore (P.cas1 t.p ~tid t.tail ~expected:last ~desired:node)
        else loop ()
      end
      else begin
        ignore (P.cas1 t.p ~tid t.tail ~expected:last ~desired:next);
        loop ()
      end
    in
    loop ();
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let prep_dequeue t ~tid = P.write_quiet t.p t.x.(tid) x_prep_deq

  let exec_dequeue t ~tid =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let first = P.read t.p ~tid t.head in
      let last = P.read t.p ~tid t.tail in
      let next = P.read t.p ~tid t.next.(first) in
      if first = last then
        if next = Tagged.null then begin
          if
            P.pmwcas t.p ~tid
              [
                ( t.x.(tid),
                  x_prep_deq,
                  Tagged.with_tag x_prep_deq Tagged.empty,
                  t.x_kind );
              ]
          then Queue_intf.empty_value
          else loop ()
        end
        else begin
          ignore (P.cas1 t.p ~tid t.tail ~expected:last ~desired:next);
          loop ()
        end
      else if
        P.pmwcas t.p ~tid
          [
            (t.head, first, next, `Shared);
            ( t.x.(tid),
              x_prep_deq,
              Tagged.with_tag next (Tagged.deq_prep lor Tagged.deq_done),
              t.x_kind );
          ]
      then begin
        let v = M.read t.value.(next) in
        retire t ~tid first;
        v
      end
      else loop ()
    in
    let v = loop () in
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  let resolve t ~tid =
    let x = P.read t.p ~tid t.x.(tid) in
    if Tagged.has x Tagged.enq_prep then begin
      let v = M.read t.value.(Tagged.idx x) in
      if Tagged.has x Tagged.enq_compl then Queue_intf.Enq_done v
      else Queue_intf.Enq_pending v
    end
    else if Tagged.has x Tagged.deq_prep then begin
      if Tagged.has x Tagged.empty then Queue_intf.Deq_empty
      else if Tagged.has x Tagged.deq_done then
        Queue_intf.Deq_done (M.read t.value.(Tagged.idx x))
      else Queue_intf.Deq_pending
    end
    else Queue_intf.Nothing

  (* ------------------------------------------------------------------ *)
  (* Non-detectable operations (single-word CAS + flush discipline)      *)
  (* ------------------------------------------------------------------ *)

  let enqueue t ~tid v =
    if v < 0 then invalid_arg "Caswe_queue: values must be non-negative";
    let node = alloc_node t ~tid v in
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let last = P.read t.p ~tid t.tail in
      let next = P.read t.p ~tid t.next.(last) in
      if next = Tagged.null then begin
        if P.cas1 t.p ~tid t.next.(last) ~expected:Tagged.null ~desired:node
        then begin
          P.flush_word t.p t.next.(last);
          ignore (P.cas1 t.p ~tid t.tail ~expected:last ~desired:node)
        end
        else loop ()
      end
      else begin
        P.flush_word t.p t.next.(last);
        ignore (P.cas1 t.p ~tid t.tail ~expected:last ~desired:next);
        loop ()
      end
    in
    loop ();
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let dequeue t ~tid =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let first = P.read t.p ~tid t.head in
      let last = P.read t.p ~tid t.tail in
      let next = P.read t.p ~tid t.next.(first) in
      if first = last then
        if next = Tagged.null then Queue_intf.empty_value
        else begin
          P.flush_word t.p t.next.(last);
          ignore (P.cas1 t.p ~tid t.tail ~expected:last ~desired:next);
          loop ()
        end
      else begin
        let v = M.read t.value.(next) in
        if P.cas1 t.p ~tid t.head ~expected:first ~desired:next then begin
          P.flush_word t.p t.head;
          retire t ~tid first;
          v
        end
        else loop ()
      end
    in
    let v = loop () in
    M.drain () (* persistence point, while still EBR-protected *);
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  (* ------------------------------------------------------------------ *)
  (* Recovery                                                            *)
  (* ------------------------------------------------------------------ *)

  let recover t =
    Dssq_ebr.Ebr.clear t.ebr;
    P.recover t.p;
    (* Head and X are mutually consistent by construction; only the
       (deliberately unflushed) tail may lag.  Repair it, then rebuild
       the free lists. *)
    let rec last n =
      let next = M.read (P.cell t.p t.next.(n)) in
      if next = Tagged.null then n else last next
    in
    let head_node = M.read (P.cell t.p t.head) in
    P.write_quiet t.p t.tail (last head_node);
    let live = Array.make (t.capacity + 1) false in
    let rec mark n =
      if n <> Tagged.null && not live.(n) then begin
        mark (M.read (P.cell t.p t.next.(n)));
        live.(n) <- true
      end
    in
    mark head_node;
    for i = 0 to t.nthreads - 1 do
      let x = M.read (P.cell t.p t.x.(i)) in
      if Tagged.idx x <> Tagged.null then live.(Tagged.idx x) <- true
    done;
    Array.iter (fun l -> Atomic.set l []) t.free_lists;
    for i = t.capacity downto 1 do
      if not live.(i) then begin
        P.write_quiet t.p t.next.(i) Tagged.null;
        let owner = (i - 1) mod t.nthreads in
        Atomic.set t.free_lists.(owner) (i :: Atomic.get t.free_lists.(owner))
      end
    done;
    M.drain ()

  let to_list t =
    let rec collect acc n =
      let next = M.read (P.cell t.p t.next.(n)) in
      if next = Tagged.null then List.rev acc
      else collect (M.read t.value.(next) :: acc) next
    in
    collect [] (M.read (P.cell t.p t.head))
end

(** The two Figure 5b variants. *)
module General (M : Dssq_memory.Memory_intf.S) = struct
  include Make (M)

  let name = "general-caswe-queue"
  let create ?reclaim ~nthreads ~capacity () =
    create ?reclaim ~x_kind:`Shared ~nthreads ~capacity ()

  let of_config (cfg : Queue_intf.config) =
    create ~reclaim:cfg.reclaim ~nthreads:cfg.nthreads ~capacity:cfg.capacity
      ()
end

module Fast (M : Dssq_memory.Memory_intf.S) = struct
  include Make (M)

  let name = "fast-caswe-queue"
  let create ?reclaim ~nthreads ~capacity () =
    create ?reclaim ~x_kind:`Private ~nthreads ~capacity ()

  let of_config (cfg : Queue_intf.config) =
    create ~reclaim:cfg.reclaim ~nthreads:cfg.nthreads ~capacity:cfg.capacity
      ()
end
