(** Michael & Scott's classic lock-free queue (PODC 1996) — the volatile
    baseline of Figure 5a.

    Per Section 4 of the paper, this is "obtained from the non-detectable
    DSS queue by removing flushes in enqueue and dequeue"; with no
    persistence there is no need for the [deqThreadID] marking either, so
    dequeue claims a node by swinging [head] directly, as in the original
    algorithm.  Not recoverable: after a crash its contents are garbage. *)

open Dssq_core

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Pool = Node_pool.Make (M)

  let name = "ms-queue"

  type t = {
    pool : Pool.t;
    head : int M.cell;
    tail : int M.cell;
    ebr : int Dssq_ebr.Ebr.t;
  }

  let create ~nthreads ~capacity =
    let pool = Pool.create ~capacity ~nthreads () in
    let sentinel = Pool.alloc pool ~tid:0 ~value:0 in
    {
      pool;
      head = M.alloc ~name:"head" sentinel;
      tail = M.alloc ~name:"tail" sentinel;
      ebr =
        Dssq_ebr.Ebr.create ~nthreads
          ~free:(fun ~tid node -> Pool.free pool ~tid node)
          ();
    }

  let of_config (cfg : Queue_intf.config) =
    create ~nthreads:cfg.nthreads ~capacity:cfg.capacity

  let enqueue t ~tid v =
    let node = Pool.alloc_reclaiming t.pool ~ebr:t.ebr ~tid ~value:v in
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool last) in
      if last = M.read t.tail then
        if next = Tagged.null then begin
          if M.cas (Pool.next t.pool last) ~expected:Tagged.null ~desired:node
          then ignore (M.cas t.tail ~expected:last ~desired:node)
          else loop ()
        end
        else begin
          ignore (M.cas t.tail ~expected:last ~desired:next);
          loop ()
        end
      else loop ()
    in
    loop ();
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let dequeue t ~tid =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let first = M.read t.head in
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool first) in
      if first = M.read t.head then
        if first = last then
          if next = Tagged.null then Queue_intf.empty_value
          else begin
            ignore (M.cas t.tail ~expected:last ~desired:next);
            loop ()
          end
        else begin
          let v = M.read (Pool.value t.pool next) in
          if M.cas t.head ~expected:first ~desired:next then begin
            Dssq_ebr.Ebr.retire t.ebr ~tid first;
            v
          end
          else loop ()
        end
      else loop ()
    in
    let v = loop () in
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  let to_list t =
    let rec collect acc n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then List.rev acc
      else collect (M.read (Pool.value t.pool next) :: acc) next
    in
    collect [] (M.read t.head)
end
