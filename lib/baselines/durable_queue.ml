(** The durable queue of Friedman, Herlihy, Marathe & Petrank
    (PPoPP 2018): recoverable but {e not} detectable.

    This is the algorithm the DSS queue descends from (Section 3 of the
    paper): the MS queue plus the flushes needed under a volatile cache,
    the [deqThreadID] marking, and a [returnedValues] array through which
    dequeued values are reported — which the DSS queue removes in favour
    of the X array.  Recovery completes pending dequeues by publishing
    their values in [returnedValues]; there is no way for a thread to ask
    whether its {e own} interrupted operation took effect, which is
    exactly the gap detectability fills. *)

open Dssq_core

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Pool = Node_pool.Make (M)

  let name = "durable-queue"

  type t = {
    pool : Pool.t;
    head : int M.cell;
    tail : int M.cell;
    returned_values : int M.cell array; (* -2 = no pending result *)
    ebr : int Dssq_ebr.Ebr.t;
    nthreads : int;
  }

  let no_result = -2

  let create ~nthreads ~capacity =
    let pool = Pool.create ~capacity ~nthreads () in
    let sentinel = Pool.alloc pool ~tid:0 ~value:0 in
    M.flush (Pool.value pool sentinel);
    M.flush (Pool.next pool sentinel);
    let head = M.alloc ~name:"head" sentinel in
    let tail = M.alloc ~name:"tail" sentinel in
    M.flush head;
    M.flush tail;
    {
      pool;
      head;
      tail;
      returned_values =
        Array.init nthreads (fun i ->
            M.alloc ~name:(Printf.sprintf "returnedValues[%d]" i) no_result);
      ebr =
        Dssq_ebr.Ebr.create ~nthreads
          ~free:(fun ~tid node -> Pool.free pool ~tid node)
          ();
      nthreads;
    }

  let of_config (cfg : Queue_intf.config) =
    create ~nthreads:cfg.nthreads ~capacity:cfg.capacity

  let enqueue t ~tid v =
    let node = Pool.alloc_reclaiming t.pool ~ebr:t.ebr ~tid ~value:v in
    M.flush (Pool.value t.pool node);
    M.flush (Pool.next t.pool node);
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool last) in
      if last = M.read t.tail then
        if next = Tagged.null then begin
          if M.cas (Pool.next t.pool last) ~expected:Tagged.null ~desired:node
          then begin
            M.flush (Pool.next t.pool last);
            ignore (M.cas t.tail ~expected:last ~desired:node)
          end
          else loop ()
        end
        else begin
          M.flush (Pool.next t.pool last);
          ignore (M.cas t.tail ~expected:last ~desired:next);
          loop ()
        end
      else loop ()
    in
    loop ();
    Dssq_ebr.Ebr.exit t.ebr ~tid

  let dequeue t ~tid =
    M.write t.returned_values.(tid) no_result;
    M.flush t.returned_values.(tid);
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec loop () =
      let first = M.read t.head in
      let last = M.read t.tail in
      let next = M.read (Pool.next t.pool first) in
      if first = M.read t.head then
        if first = last then
          if next = Tagged.null then begin
            M.write t.returned_values.(tid) Queue_intf.empty_value;
            M.flush t.returned_values.(tid);
            Queue_intf.empty_value
          end
          else begin
            M.flush (Pool.next t.pool last);
            ignore (M.cas t.tail ~expected:last ~desired:next);
            loop ()
          end
        else if M.cas (Pool.deq_tid t.pool next) ~expected:(-1) ~desired:tid
        then begin
          M.flush (Pool.deq_tid t.pool next);
          let v = M.read (Pool.value t.pool next) in
          M.write t.returned_values.(tid) v;
          M.flush t.returned_values.(tid);
          ignore (M.cas t.head ~expected:first ~desired:next);
          (* Persist the head advance before recycling the old sentinel
             (crash-safe reuse; see DESIGN.md deviations). *)
          M.flush t.head;
          Dssq_ebr.Ebr.retire t.ebr ~tid first;
          v
        end
        else if M.read t.head = first then begin
          (* help: publish the claimer's value, then swing head *)
          let claimer = M.read (Pool.deq_tid t.pool next) in
          M.flush (Pool.deq_tid t.pool next);
          if claimer >= 0 && claimer < t.nthreads then begin
            let v = M.read (Pool.value t.pool next) in
            if M.read t.returned_values.(claimer) = no_result then begin
              M.write t.returned_values.(claimer) v;
              M.flush t.returned_values.(claimer)
            end
          end;
          ignore (M.cas t.head ~expected:first ~desired:next);
          loop ()
        end
        else loop ()
      else loop ()
    in
    let v = loop () in
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  (** Centralized recovery: complete pending dequeues by publishing their
      values, then repair head and tail, as in the original paper. *)
  let recover t =
    Dssq_ebr.Ebr.clear t.ebr;
    let old_head = M.read t.head in
    let rec advance n =
      let next = M.read (Pool.next t.pool n) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) <> -1 then begin
        let claimer = M.read (Pool.deq_tid t.pool next) in
        if claimer >= 0 && claimer < t.nthreads then begin
          let v = M.read (Pool.value t.pool next) in
          M.write t.returned_values.(claimer) v;
          M.flush t.returned_values.(claimer)
        end;
        advance next
      end
      else n
    in
    let new_head = advance old_head in
    M.write t.head new_head;
    M.flush t.head;
    let rec last n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then n else last next
    in
    M.write t.tail (last new_head);
    M.flush t.tail

  (** Value published for thread [tid]'s last dequeue, if any — this is
      the full extent of the durable queue's post-crash information. *)
  let returned_value t ~tid =
    let v = M.read t.returned_values.(tid) in
    if v = no_result then None else Some v

  let to_list t =
    let rec skip n =
      let next = M.read (Pool.next t.pool n) in
      if next <> Tagged.null && M.read (Pool.deq_tid t.pool next) <> -1 then
        skip next
      else n
    in
    let rec collect acc n =
      let next = M.read (Pool.next t.pool n) in
      if next = Tagged.null then List.rev acc
      else collect (M.read (Pool.value t.pool next) :: acc) next
    in
    collect [] (skip (M.read t.head))
end
