(** Ready-made sequential specifications used as test oracles and as base
    types for the DSS transformation. *)

(** Read/write register over ints (the paper's running example,
    Figure 2). *)
module Register = struct
  type op = Read | Write of int
  type response = Value of int | Ok

  let pp_op fmt = function
    | Read -> Format.pp_print_string fmt "read"
    | Write v -> Format.fprintf fmt "write(%d)" v

  let pp_response fmt = function
    | Value v -> Format.fprintf fmt "%d" v
    | Ok -> Format.pp_print_string fmt "OK"

  let spec ?(init = 0) () =
    Spec.make ~name:"register" ~init
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Read -> Some (s, Value s)
        | Write v -> Some (v, Ok))
      ~pp_op ~pp_response ()
end

(** Monotonic counter. *)
module Counter = struct
  type op = Increment | Get
  type response = Value of int | Ok

  let pp_op fmt = function
    | Increment -> Format.pp_print_string fmt "inc"
    | Get -> Format.pp_print_string fmt "get"

  let pp_response fmt = function
    | Value v -> Format.fprintf fmt "%d" v
    | Ok -> Format.pp_print_string fmt "OK"

  let spec () =
    Spec.make ~name:"counter" ~init:0
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Increment -> Some (s + 1, Ok)
        | Get -> Some (s, Value s))
      ~pp_op ~pp_response ()
end

(** Compare-and-swap object over ints. *)
module Cas = struct
  type op = Read | Cas of int * int
  type response = Value of int | Bool of bool

  let pp_op fmt = function
    | Read -> Format.pp_print_string fmt "read"
    | Cas (e, d) -> Format.fprintf fmt "cas(%d,%d)" e d

  let pp_response fmt = function
    | Value v -> Format.fprintf fmt "%d" v
    | Bool b -> Format.fprintf fmt "%b" b

  let spec ?(init = 0) () =
    Spec.make ~name:"cas" ~init
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Read -> Some (s, Value s)
        | Cas (e, d) -> if s = e then Some (d, Bool true) else Some (s, Bool false))
      ~pp_op ~pp_response ()
end

(** FIFO queue over ints.  [Dequeue] is total: on an empty queue it
    returns [Empty], matching the EMPTY response of the DSS queue
    algorithm (Section 3.2). *)
module Queue = struct
  type op = Enqueue of int | Dequeue
  type response = Ok | Value of int | Empty

  let pp_op fmt = function
    | Enqueue v -> Format.fprintf fmt "enq(%d)" v
    | Dequeue -> Format.pp_print_string fmt "deq"

  let pp_response fmt = function
    | Ok -> Format.pp_print_string fmt "OK"
    | Value v -> Format.fprintf fmt "%d" v
    | Empty -> Format.pp_print_string fmt "EMPTY"

  (* State: queue contents, front of the queue first. *)
  let spec () =
    Spec.make ~name:"queue" ~init:[]
      ~apply:(fun s ~tid:_ op ->
        match (op, s) with
        | Enqueue v, _ -> Some (s @ [ v ], Ok)
        | Dequeue, [] -> Some ([], Empty)
        | Dequeue, x :: rest -> Some (rest, Value x))
      ~pp_op ~pp_response ()
end

(** Stack (LIFO) over ints — used to show the DSS transformation is
    type-generic beyond the paper's queue. *)
module Stack = struct
  type op = Push of int | Pop
  type response = Ok | Value of int | Empty

  let pp_op fmt = function
    | Push v -> Format.fprintf fmt "push(%d)" v
    | Pop -> Format.pp_print_string fmt "pop"

  let pp_response fmt = function
    | Ok -> Format.pp_print_string fmt "OK"
    | Value v -> Format.fprintf fmt "%d" v
    | Empty -> Format.pp_print_string fmt "EMPTY"

  let spec () =
    Spec.make ~name:"stack" ~init:[]
      ~apply:(fun s ~tid:_ op ->
        match (op, s) with
        | Push v, _ -> Some (v :: s, Ok)
        | Pop, [] -> Some ([], Empty)
        | Pop, x :: rest -> Some (rest, Value x))
      ~pp_op ~pp_response ()
end

(** Swap object over ints (Lev Lehman, Attiya & Hendler's recoverable
    swap): [Swap v] stores [v] and returns the previous value; [Read]
    observes without writing. *)
module Swap = struct
  type op = Read | Swap of int
  type response = Value of int

  let pp_op fmt = function
    | Read -> Format.pp_print_string fmt "read"
    | Swap v -> Format.fprintf fmt "swap(%d)" v

  let pp_response fmt = function Value v -> Format.fprintf fmt "%d" v

  let spec ?(init = 0) () =
    Spec.make ~name:"swap" ~init
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Read -> Some (s, Value s)
        | Swap v -> Some (v, Value s))
      ~pp_op ~pp_response ()
end

(** Double-ended queue over ints.  Pops are total: [Empty] on an empty
    deque, like the DSS queue's EMPTY response. *)
module Deque = struct
  type op = Push_front of int | Push_back of int | Pop_front | Pop_back
  type response = Ok | Value of int | Empty

  let pp_op fmt = function
    | Push_front v -> Format.fprintf fmt "push_front(%d)" v
    | Push_back v -> Format.fprintf fmt "push_back(%d)" v
    | Pop_front -> Format.pp_print_string fmt "pop_front"
    | Pop_back -> Format.pp_print_string fmt "pop_back"

  let pp_response fmt = function
    | Ok -> Format.pp_print_string fmt "OK"
    | Value v -> Format.fprintf fmt "%d" v
    | Empty -> Format.pp_print_string fmt "EMPTY"

  (* State: contents front first.  Empty pops return the state itself
     (physically), as the engine's read-only contract requires. *)
  let spec () =
    Spec.make ~name:"deque" ~init:[]
      ~apply:(fun s ~tid:_ op ->
        match (op, s) with
        | Push_front v, _ -> Some (v :: s, Ok)
        | Push_back v, _ -> Some (s @ [ v ], Ok)
        | (Pop_front | Pop_back), [] -> Some (s, Empty)
        | Pop_front, x :: rest -> Some (rest, Value x)
        | Pop_back, _ -> (
            match List.rev s with
            | x :: rest -> Some (List.rev rest, Value x)
            | [] -> assert false))
      ~pp_op ~pp_response ()
end

(** Min-priority queue over ints. *)
module Pqueue = struct
  type op = Insert of int | Extract_min
  type response = Ok | Value of int | Empty

  let pp_op fmt = function
    | Insert v -> Format.fprintf fmt "insert(%d)" v
    | Extract_min -> Format.pp_print_string fmt "extract_min"

  let pp_response fmt = function
    | Ok -> Format.pp_print_string fmt "OK"
    | Value v -> Format.fprintf fmt "%d" v
    | Empty -> Format.pp_print_string fmt "EMPTY"

  (* State: contents sorted ascending, so structurally equal states are
     semantically equal (the checker memoizes on state equality). *)
  let rec insert v = function
    | [] -> [ v ]
    | x :: _ as s when v <= x -> v :: s
    | x :: rest -> x :: insert v rest

  let spec () =
    Spec.make ~name:"pqueue" ~init:[]
      ~apply:(fun s ~tid:_ op ->
        match (op, s) with
        | Insert v, _ -> Some (insert v s, Ok)
        | Extract_min, [] -> Some (s, Empty)
        | Extract_min, x :: rest -> Some (rest, Value x))
      ~pp_op ~pp_response ()
end

(** Bounded counter: value confined to [0 .. bound]; increments and
    decrements that would leave the range fail (state unchanged).  The
    base object of Ben-Baruch, Hendler & Rusanovsky's space lower bounds
    for detectable objects. *)
module Bcounter = struct
  type op = Increment | Decrement | Get
  type response = Ok | Fail | Value of int

  let pp_op fmt = function
    | Increment -> Format.pp_print_string fmt "inc"
    | Decrement -> Format.pp_print_string fmt "dec"
    | Get -> Format.pp_print_string fmt "get"

  let pp_response fmt = function
    | Ok -> Format.pp_print_string fmt "OK"
    | Fail -> Format.pp_print_string fmt "FAIL"
    | Value v -> Format.fprintf fmt "%d" v

  let spec ?(bound = 7) () =
    Spec.make
      ~name:(Printf.sprintf "bcounter<%d>" bound)
      ~init:0
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Increment -> if s >= bound then Some (s, Fail) else Some (s + 1, Ok)
        | Decrement -> if s <= 0 then Some (s, Fail) else Some (s - 1, Ok)
        | Get -> Some (s, Value s))
      ~pp_op ~pp_response ()
end

(** Unordered int -> int map, the sequential specification of the
    recoverable hash map.  [Put]/[Remove] return [Ok], matching
    [Dssq_core.Dss_hashmap]'s unit-valued mutators; only [Find] is
    value-returning. *)
module Map = struct
  type op = Put of int * int | Remove of int | Find of int
  type response = Ok | Found of int | Absent

  let pp_op fmt = function
    | Put (k, v) -> Format.fprintf fmt "put(%d,%d)" k v
    | Remove k -> Format.fprintf fmt "remove(%d)" k
    | Find k -> Format.fprintf fmt "find(%d)" k

  let pp_response fmt = function
    | Ok -> Format.pp_print_string fmt "OK"
    | Found v -> Format.fprintf fmt "%d" v
    | Absent -> Format.pp_print_string fmt "ABSENT"

  (* State: association list sorted by key, so structurally equal states
     are semantically equal (the checker memoizes on state equality). *)
  let spec () =
    Spec.make ~name:"map" ~init:[]
      ~apply:(fun s ~tid:_ op ->
        match op with
        | Put (k, v) ->
            Some (List.sort compare ((k, v) :: List.remove_assoc k s), Ok)
        | Remove k -> Some (List.remove_assoc k s, Ok)
        | Find k -> (
            match List.assoc_opt k s with
            | Some v -> Some (s, Found v)
            | None -> Some (s, Absent)))
      ~pp_op ~pp_response ()
end
