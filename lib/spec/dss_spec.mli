(** The detectable sequential specification (DSS) transformation —
    Section 2.1 / Figure 1 of the paper, executable and type-generic.

    Given [T = (S, s0, OP, R, delta, rho)], {!make} produces [D<T>]:
    states are [(s, A, R)] where [A] maps each process to its most
    recently prepared operation and [R] to that operation's response (or
    bottom), and the operation set gains [prep-op], [exec-op] and
    [resolve]. *)

type 'op op =
  | Prep of 'op  (** Axiom 1: record intent; total, idempotent *)
  | Exec of 'op  (** Axiom 2: apply; enabled iff A[p] = op, R[p] = bottom *)
  | Base of 'op  (** Axiom 4: the plain, non-detectable operation *)
  | Resolve  (** Axiom 3: return (A[p], R[p]); total, idempotent *)

(** A packaged base specification — the functor argument of
    [Dssq_core.Detectable.Make].  [spec.apply] must return the
    physically identical state when an operation leaves the state
    unchanged (reads, failed CAS, removals from an empty container):
    the generic engine uses physical equality to detect read-only steps
    and answer without installing a new state record. *)
module type S = sig
  type state
  type op
  type response

  val spec : (state, op, response) Spec.t
end

type ('op, 'r) response =
  | Ack  (** prep-op returns bottom *)
  | Ret of 'r
  | Status of 'op option * 'r option  (** resolve's (A[p], R[p]) *)

type ('s, 'op, 'r) state = {
  base : 's;
  a : 'op option array;  (** A, indexed by tid *)
  r : 'r option array;  (** R, indexed by tid *)
}

val make :
  nthreads:int ->
  ('s, 'op, 'r) Spec.t ->
  (('s, 'op, 'r) state, 'op op, ('op, 'r) response) Spec.t
(** [make ~nthreads spec] is the sequential specification of [D<spec>]
    for processes [0 .. nthreads-1]. *)
