(** The detectable sequential specification (DSS) transformation,
    Section 2.1 / Figure 1 of the paper.

    Given a sequential specification [T = (S, s0, OP, R, delta, rho)],
    [make] produces [D<T>]: states become triples [(s, A, R)] where [A]
    maps each process to its most recently prepared operation (or bottom)
    and [R] to that operation's response if it took effect (or bottom).
    The operation set gains [prep-op] and [exec-op] for each [op], plus
    [resolve]; the original operations remain available non-detectably
    (Axiom 4). *)

type 'op op = Prep of 'op | Exec of 'op | Base of 'op | Resolve

(** A packaged base specification — the functor argument shape of
    [Dssq_core.Detectable.Make]: the base type [T] as a module, so the
    detectability transformation can be applied by the type checker
    rather than by hand per object.

    Contract required by the generic engine: [spec.apply] must return
    the {e physically identical} state when the operation leaves the
    state unchanged (reads, failed CAS, pops of an empty container) —
    that is what lets the engine skip installing a new state record and
    answer from the one it read (the flush-on-read path). *)
module type S = sig
  type state
  type op
  type response

  val spec : (state, op, response) Spec.t
end

type ('op, 'r) response =
  | Ack  (** [prep-op] returns bottom *)
  | Ret of 'r  (** [exec-op] and [op] return rho(s, op, p) *)
  | Status of 'op option * 'r option
      (** [resolve] returns (A[p], R[p]); [None] encodes bottom *)

type ('s, 'op, 'r) state = {
  base : 's;
  a : 'op option array;  (** A : process -> OP or bottom, indexed by tid *)
  r : 'r option array;  (** R : process -> R or bottom, indexed by tid *)
}

let equal_option eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | None, Some _ | Some _, None -> false

let equal_state spec s1 s2 =
  spec.Spec.equal_state s1.base s2.base
  && Array.for_all2 (equal_option ( = )) s1.a s2.a
  && Array.for_all2 (equal_option spec.Spec.equal_response) s1.r s2.r

let equal_response spec r1 r2 =
  match (r1, r2) with
  | Ack, Ack -> true
  | Ret a, Ret b -> spec.Spec.equal_response a b
  | Status (o1, v1), Status (o2, v2) ->
      equal_option ( = ) o1 o2 && equal_option spec.Spec.equal_response v1 v2
  | (Ack | Ret _ | Status _), _ -> false

let pp_op spec fmt = function
  | Prep op -> Format.fprintf fmt "prep-%a" spec.Spec.pp_op op
  | Exec op -> Format.fprintf fmt "exec-%a" spec.Spec.pp_op op
  | Base op -> spec.Spec.pp_op fmt op
  | Resolve -> Format.pp_print_string fmt "resolve"

let pp_response spec fmt = function
  | Ack -> Format.pp_print_string fmt "ack"
  | Ret r -> spec.Spec.pp_response fmt r
  | Status (op, r) ->
      let pp_opt pp fmt = function
        | None -> Format.pp_print_string fmt "_|_"
        | Some x -> pp fmt x
      in
      Format.fprintf fmt "(%a, %a)"
        (pp_opt spec.Spec.pp_op)
        op
        (pp_opt spec.Spec.pp_response)
        r

(** [make ~nthreads spec] is the sequential specification of [D<spec>]
    for processes with ids [0 .. nthreads-1]. *)
let make ~nthreads (spec : ('s, 'op, 'r) Spec.t) :
    (('s, 'op, 'r) state, 'op op, ('op, 'r) response) Spec.t =
  let init =
    {
      base = spec.init;
      a = Array.make nthreads None;
      r = Array.make nthreads None;
    }
  in
  let set_a st tid op r =
    let a = Array.copy st.a and rr = Array.copy st.r in
    a.(tid) <- op;
    rr.(tid) <- r;
    { st with a; r = rr }
  in
  let apply st ~tid op =
    match op with
    | Prep op ->
        (* Axiom 1: total, idempotent; A'[p] = op, R'[p] = bottom. *)
        Some (set_a st tid (Some op) None, Ack)
    | Exec op -> (
        (* Axiom 2: enabled iff A[p] = op and R[p] = bottom. *)
        match (st.a.(tid), st.r.(tid)) with
        | Some prepared, None when prepared = op -> (
            match spec.apply st.base ~tid op with
            | None -> None
            | Some (base', resp) ->
                let st' = set_a { st with base = base' } tid (Some op) (Some resp) in
                Some (st', Ret resp))
        | _ -> None)
    | Base op -> (
        (* Axiom 4: the plain, non-detectable operation. *)
        match spec.apply st.base ~tid op with
        | None -> None
        | Some (base', resp) -> Some ({ st with base = base' }, Ret resp))
    | Resolve ->
        (* Axiom 3: total, idempotent, no side effect. *)
        Some (st, Status (st.a.(tid), st.r.(tid)))
  in
  Spec.make
    ~name:("D<" ^ spec.name ^ ">")
    ~init ~apply
    ~equal_state:(equal_state spec)
    ~equal_response:(equal_response spec)
    ~pp_op:(pp_op spec)
    ~pp_response:(pp_response spec)
    ()
