(** Concurrent operation histories with crash markers: the input format
    of the linearizability checker ([Dssq_lincheck]). *)

type ('op, 'r) event =
  | Inv of { uid : int; tid : int; op : 'op }
  | Res of { uid : int; r : 'r }
  | Crash  (** system-wide crash: every pending operation is cut off *)

type ('op, 'r) t = ('op, 'r) event list
(** Events in real-time order. *)

(** One operation extracted from a history. *)
type ('op, 'r) call = {
  uid : int;
  tid : int;
  op : 'op;
  inv_pos : int;
  outcome :
    [ `Completed of int * 'r  (** response position and value *)
    | `Crashed of int  (** position of the crash that cut it off *) ];
}

val call_end_pos : ('op, 'r) call -> int

val calls : ('op, 'r) t -> ('op, 'r) call list
(** Extract operation records, sorted by invocation position.
    @raise Invalid_argument on ill-formed histories (duplicate uid,
    response without invocation, two outstanding operations on one
    thread, or an operation pending at the end — finish or crash every
    operation before checking). *)

val crash_count : ('op, 'r) t -> int

val op_count : ('op, 'r) t -> int
(** Number of invocations — what counts against the linearizability
    checker's operation cap. *)

val pp :
  pp_op:(Format.formatter -> 'op -> unit) ->
  pp_response:(Format.formatter -> 'r -> unit) ->
  Format.formatter ->
  ('op, 'r) t ->
  unit
