(** Concurrent operation histories with crash markers.

    A history is a real-time-ordered sequence of invocation events,
    response events and system-wide crash events.  Histories are produced
    by {!Recorder} from simulated executions and consumed by the
    linearizability checker in [Dssq_lincheck]. *)

type ('op, 'r) event =
  | Inv of { uid : int; tid : int; op : 'op }
  | Res of { uid : int; r : 'r }
  | Crash

type ('op, 'r) t = ('op, 'r) event list

(** One operation extracted from a history. *)
type ('op, 'r) call = {
  uid : int;
  tid : int;
  op : 'op;
  inv_pos : int;
  outcome : [ `Completed of int * 'r  (** response position and value *)
            | `Crashed of int  (** position of the crash that cut it off *) ];
}

let call_end_pos c =
  match c.outcome with `Completed (p, _) -> p | `Crashed p -> p

(** Extract the operation records of a history.  Raises [Invalid_argument]
    if the history is ill-formed (response without invocation, two
    invocations sharing a uid, a thread with two outstanding operations,
    or an operation still pending at the end of the history — finish or
    crash every operation before checking). *)
let calls (events : ('op, 'r) t) : ('op, 'r) call list =
  let pending : (int, int * int * 'op) Hashtbl.t = Hashtbl.create 16 in
  let open_tids = Hashtbl.create 16 in
  let acc = ref [] in
  List.iteri
    (fun pos ev ->
      match ev with
      | Inv { uid; tid; op } ->
          if Hashtbl.mem pending uid then
            invalid_arg (Printf.sprintf "History.calls: duplicate uid %d" uid);
          if Hashtbl.mem open_tids tid then
            invalid_arg
              (Printf.sprintf
                 "History.calls: thread %d has two outstanding operations" tid);
          Hashtbl.add pending uid (pos, tid, op);
          Hashtbl.add open_tids tid ()
      | Res { uid; r } -> (
          match Hashtbl.find_opt pending uid with
          | None ->
              invalid_arg
                (Printf.sprintf "History.calls: response without invocation (uid %d)"
                   uid)
          | Some (inv_pos, tid, op) ->
              Hashtbl.remove pending uid;
              Hashtbl.remove open_tids tid;
              acc := { uid; tid; op; inv_pos; outcome = `Completed (pos, r) } :: !acc)
      | Crash ->
          Hashtbl.iter
            (fun uid (inv_pos, tid, op) ->
              acc := { uid; tid; op; inv_pos; outcome = `Crashed pos } :: !acc)
            pending;
          Hashtbl.reset pending;
          Hashtbl.reset open_tids)
    events;
  if Hashtbl.length pending > 0 then
    invalid_arg "History.calls: operation still pending at end of history";
  List.sort (fun a b -> compare a.inv_pos b.inv_pos) !acc

let crash_count h =
  List.fold_left (fun n ev -> match ev with Crash -> n + 1 | _ -> n) 0 h

(* Invocation count — what counts against the checker's operation cap. *)
let op_count h =
  List.fold_left (fun n ev -> match ev with Inv _ -> n + 1 | _ -> n) 0 h

let pp ~pp_op ~pp_response fmt (h : _ t) =
  List.iter
    (function
      | Inv { uid; tid; op } ->
          Format.fprintf fmt "inv  t%d #%d %a@." tid uid pp_op op
      | Res { uid; r } -> Format.fprintf fmt "res      #%d -> %a@." uid pp_response r
      | Crash -> Format.fprintf fmt "-- CRASH --@.")
    h
