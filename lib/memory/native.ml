(** Native backend: real OCaml domains over [Atomic.t] cells.

    OCaml's [Atomic] operations are sequentially consistent, matching the
    paper's use of C++ [std::atomic] with [seq_cst] ordering (Section 4).
    [flush] and [fence] charge the calibrated persist latency from
    {!Persist_cost}; on this backend the "persistence domain" is ordinary
    RAM, so correctness under crashes is exercised on the simulator
    backend instead (which is the point of having two backends sharing
    one algorithm source).

    Cells carry their persist {!Memory_intf.Line}: stores and CAS mark
    the line dirty, [flush] pays the write-back cost only when the line
    is dirty (clean-line elision) — except at line size 1, the legacy
    word-granular model, where every flush pays. *)

module Line = Memory_intf.Line

type 'a cell = { v : 'a Atomic.t; line : Line.t }

(* One process-wide line allocator.  Allocation happens during
   single-threaded setup or recovery, but harness phases can overlap in
   tests, so serialize with a lock; the hot-path operations below never
   touch it. *)
let alloc_lock = Mutex.create ()
let allocator = ref (Line.Alloc.create ~size:1 ())

let set_line_size size =
  Mutex.lock alloc_lock;
  allocator := Line.Alloc.create ~size ();
  Mutex.unlock alloc_lock

let line_size () = Line.Alloc.line_size !allocator

let alloc ?name ?placement v =
  ignore name;
  Mutex.lock alloc_lock;
  let line = Line.Alloc.place ?placement !allocator in
  Mutex.unlock alloc_lock;
  { v = Atomic.make v; line }

let alloc_block ?name vs =
  ignore name;
  Mutex.lock alloc_lock;
  Line.Alloc.align !allocator;
  let lines = List.map (fun _ -> Line.Alloc.place !allocator) vs in
  Line.Alloc.align !allocator;
  Mutex.unlock alloc_lock;
  List.map2 (fun v line -> { v = Atomic.make v; line }) vs lines

let line_id c = c.line.Line.id
let read c = Atomic.get c.v

let write c v =
  Atomic.set c.v v;
  Line.mark_dirty c.line

let cas c ~expected ~desired =
  let hit = Atomic.compare_and_set c.v expected desired in
  if hit then Line.mark_dirty c.line;
  hit

(** Flush the cell's line, paying the calibrated persist cost only for
    an actual write-back; returns whether one happened.  (At line size 1
    — the legacy model — every flush pays.) *)
let flush_line c =
  if Line.flush_effective c.line then begin
    (* Force the store buffer to drain in the model: read back then pay. *)
    ignore (Sys.opaque_identity (Atomic.get c.v));
    Persist_cost.pay_flush ();
    true
  end
  else false

let flush c = ignore (flush_line c)
let fence () = Persist_cost.pay_fence ()

(** Event hook for the observability tracer.  The tracer lives in
    [Dssq_obs], which depends on this library, so the dependency is
    inverted: this side exposes a hook, [Dssq_obs.Trace.start] points it
    at the active tracer.  Only the [Counted] backend consults it — the
    plain operations above stay branch-free. *)
let trace_hook :
    ([ `Read | `Write | `Cas | `Flush | `Fence ] ->
    line:int ->
    dirty:bool ->
    unit)
    option
    ref =
  ref None

(** Counting variant of the native backend, for memory-event accounting
    on real domains.  Generative: each [Counted ()] instantiation owns a
    fresh set of counters, so concurrent harness runs do not share state.
    Instrumentation is enabled by instantiating algorithm functors over
    this module instead of the plain backend — the plain operations above
    stay branch-free when accounting is off. *)
module Counted () : Memory_intf.COUNTED with type 'a cell = 'a cell = struct
  type nonrec 'a cell = 'a cell

  let c_reads = Atomic.make 0
  let c_writes = Atomic.make 0
  let c_cases = Atomic.make 0
  let c_flushes = Atomic.make 0
  let c_elided = Atomic.make 0
  let c_fences = Atomic.make 0
  let alloc = alloc
  let alloc_block = alloc_block

  let traced kind c =
    match !trace_hook with
    | None -> ()
    | Some f -> f kind ~line:(line_id c) ~dirty:(Line.is_dirty c.line)

  let traced_fence () =
    match !trace_hook with
    | None -> ()
    | Some f -> f `Fence ~line:(-1) ~dirty:false

  let read c =
    Atomic.incr c_reads;
    traced `Read c;
    read c

  let write c v =
    Atomic.incr c_writes;
    write c v;
    traced `Write c

  let cas c ~expected ~desired =
    Atomic.incr c_cases;
    let hit = cas c ~expected ~desired in
    traced `Cas c;
    hit

  let flush c =
    if flush_line c then Atomic.incr c_flushes else Atomic.incr c_elided;
    traced `Flush c

  let fence () =
    Atomic.incr c_fences;
    traced_fence ();
    fence ()

  let counters () =
    {
      Memory_intf.reads = Atomic.get c_reads;
      writes = Atomic.get c_writes;
      cases = Atomic.get c_cases;
      flushes = Atomic.get c_flushes;
      elided_flushes = Atomic.get c_elided;
      fences = Atomic.get c_fences;
    }

  let reset_counters () =
    Atomic.set c_reads 0;
    Atomic.set c_writes 0;
    Atomic.set c_cases 0;
    Atomic.set c_flushes 0;
    Atomic.set c_elided 0;
    Atomic.set c_fences 0
end
