(** Native backend: real OCaml domains over [Atomic.t] cells.

    OCaml's [Atomic] operations are sequentially consistent, matching the
    paper's use of C++ [std::atomic] with [seq_cst] ordering (Section 4).
    [flush] and [fence] charge the calibrated persist latency from
    {!Persist_cost}; on this backend the "persistence domain" is ordinary
    RAM, so correctness under crashes is exercised on the simulator
    backend instead (which is the point of having two backends sharing
    one algorithm source). *)

type 'a cell = 'a Atomic.t

let alloc ?name v =
  ignore name;
  Atomic.make v

let read = Atomic.get
let write = Atomic.set
let cas c ~expected ~desired = Atomic.compare_and_set c expected desired

let flush c =
  (* Force the store buffer to drain in the model: read back then pay. *)
  ignore (Sys.opaque_identity (Atomic.get c));
  Persist_cost.pay_flush ()

let fence () = Persist_cost.pay_fence ()

(** Event hook for the observability tracer.  The tracer lives in
    [Dssq_obs], which depends on this library, so the dependency is
    inverted: this side exposes a hook, [Dssq_obs.Trace.start] points it
    at the active tracer.  Only the [Counted] backend consults it — the
    plain operations above stay branch-free. *)
let trace_hook : ([ `Read | `Write | `Cas | `Flush | `Fence ] -> unit) option ref
    =
  ref None

(** Counting variant of the native backend, for memory-event accounting
    on real domains.  Generative: each [Counted ()] instantiation owns a
    fresh set of counters, so concurrent harness runs do not share state.
    Instrumentation is enabled by instantiating algorithm functors over
    this module instead of the plain backend — the plain operations above
    stay branch-free when accounting is off. *)
module Counted () : Memory_intf.COUNTED with type 'a cell = 'a Atomic.t =
struct
  type nonrec 'a cell = 'a cell

  let c_reads = Atomic.make 0
  let c_writes = Atomic.make 0
  let c_cases = Atomic.make 0
  let c_flushes = Atomic.make 0
  let c_fences = Atomic.make 0
  let alloc = alloc

  let traced kind =
    match !trace_hook with None -> () | Some f -> f kind

  let read c =
    Atomic.incr c_reads;
    traced `Read;
    read c

  let write c v =
    Atomic.incr c_writes;
    traced `Write;
    write c v

  let cas c ~expected ~desired =
    Atomic.incr c_cases;
    traced `Cas;
    cas c ~expected ~desired

  let flush c =
    Atomic.incr c_flushes;
    traced `Flush;
    flush c

  let fence () =
    Atomic.incr c_fences;
    traced `Fence;
    fence ()

  let counters () =
    {
      Memory_intf.reads = Atomic.get c_reads;
      writes = Atomic.get c_writes;
      cases = Atomic.get c_cases;
      flushes = Atomic.get c_flushes;
      fences = Atomic.get c_fences;
    }

  let reset_counters () =
    Atomic.set c_reads 0;
    Atomic.set c_writes 0;
    Atomic.set c_cases 0;
    Atomic.set c_flushes 0;
    Atomic.set c_fences 0
end
