(** Native backend: real OCaml domains over [Atomic.t] cells.

    OCaml's [Atomic] operations are sequentially consistent, matching the
    paper's use of C++ [std::atomic] with [seq_cst] ordering (Section 4).
    [flush] and [fence] charge the calibrated persist latency from
    {!Persist_cost}; on this backend the "persistence domain" is ordinary
    RAM, so correctness under crashes is exercised on the simulator
    backend instead (which is the point of having two backends sharing
    one algorithm source).

    Cells carry their persist {!Memory_intf.Line}: stores and CAS mark
    the line dirty, [flush] pays the write-back cost only when the line
    is dirty (clean-line elision) — except at line size 1, the legacy
    word-granular model, where every flush pays. *)

module Line = Memory_intf.Line

type 'a cell = { v : 'a Atomic.t; line : Line.t; pad : int array }

(* One process-wide line allocator.  Allocation happens during
   single-threaded setup or recovery, but harness phases can overlap in
   tests, so serialize with a lock; the hot-path operations below never
   touch it. *)
let alloc_lock = Mutex.create ()
let allocator = ref (Line.Alloc.create ~size:1 ())

let set_line_size size =
  Mutex.lock alloc_lock;
  allocator := Line.Alloc.create ~size ();
  Mutex.unlock alloc_lock

let line_size () = Line.Alloc.line_size !allocator

(* [Isolated] placement asks for a cell real implementations pad to a
   private cache line (queue head/tail, per-thread X words).  The model
   gives it a private persist line; on the real machine we additionally
   allocate a filler block with the atomic so consecutive hot cells do
   not land adjacent on one physical line (false sharing between
   domains).  The filler must stay reachable from the cell, or the GC
   would collect it and compaction could re-pack the atomics.

   The stride is settable (setup-time only, like [set_line_size]) so the
   harness can sweep it: on a NUMA-ish machine the right padding for hot
   isolated cells is an empirical knob — too little false-shares, too
   much wastes cache reach — and the sweep measures the trade directly
   ([Native_throughput.pad_sweep]). *)
let pad_words = ref Memory_intf.Padded.pad_words
let set_pad_words n = pad_words := max 0 n

let pad_for placement =
  match placement with
  | Some Line.Isolated -> Array.make !pad_words 0
  | Some Line.Packed | None -> [||]

(** Attribution hooks for the observability layer, which sits {e above}
    this library (the [trace_hook] inversion, below): [alloc_hook]
    reports allocation-site names to the persistence heatmap,
    [heat_hook]/[phase_hook] report persist events to the heatmap and
    the phase profiler respectively.  Only the [Counted]/[Coalescing]
    backends consult the event hooks — the plain operations stay
    branch-free. *)
type prof_event =
  [ `Pwrite
  | `Flush
  | `Elide
  | `Coalesce
  | `Fence
  | `Fence_elided
  | `Evict
  | `Drop ]

let alloc_hook : (name:string -> line:int -> unit) option ref = ref None
let heat_hook : (prof_event -> line:int -> unit) option ref = ref None
let phase_hook : (prof_event -> line:int -> unit) option ref = ref None

let prof ev ~line =
  (match !heat_hook with None -> () | Some f -> f ev ~line);
  match !phase_hook with None -> () | Some f -> f ev ~line

let noted_alloc name (line : Line.t) =
  match !alloc_hook with
  | Some f when name <> "" -> f ~name ~line:line.Line.id
  | _ -> ()

let alloc ?(name = "") ?placement v =
  Mutex.lock alloc_lock;
  let line = Line.Alloc.place ?placement !allocator in
  Mutex.unlock alloc_lock;
  noted_alloc name line;
  { v = Atomic.make v; line; pad = pad_for placement }

let alloc_block ?(name = "") vs =
  Mutex.lock alloc_lock;
  Line.Alloc.align !allocator;
  let lines = List.map (fun _ -> Line.Alloc.place !allocator) vs in
  Line.Alloc.align !allocator;
  Mutex.unlock alloc_lock;
  List.iteri
    (fun i line ->
      if name <> "" then noted_alloc (Printf.sprintf "%s[%d]" name i) line)
    lines;
  List.map2 (fun v line -> { v = Atomic.make v; line; pad = [||] }) vs lines

let line_id c = c.line.Line.id
let read c = Atomic.get c.v

let write c v =
  Atomic.set c.v v;
  Line.mark_dirty c.line

let cas c ~expected ~desired =
  let hit = Atomic.compare_and_set c.v expected desired in
  if hit then Line.mark_dirty c.line;
  hit

(** Flush the cell's line, paying the calibrated persist cost only for
    an actual write-back; returns whether one happened.  (At line size 1
    — the legacy model — every flush pays.) *)
let flush_line c =
  if Line.flush_effective c.line then begin
    (* Force the store buffer to drain in the model: read back then pay. *)
    ignore (Sys.opaque_identity (Atomic.get c.v));
    Persist_cost.pay_flush ();
    true
  end
  else false

let flush c = ignore (flush_line c)
let fence () = Persist_cost.pay_fence ()

let drain () = ()
(* Eager backend: every [flush] above already wrote back and drained, so
   the persist barrier has nothing to do.  Being a literal no-op is what
   keeps algorithms annotated with [drain] calls bit-for-bit identical
   to their pre-coalescing event streams on this backend. *)

(** Event hook for the observability tracer.  The tracer lives in
    [Dssq_obs], which depends on this library, so the dependency is
    inverted: this side exposes a hook, [Dssq_obs.Trace.start] points it
    at the active tracer.  Only the [Counted] backend consults it — the
    plain operations above stay branch-free. *)
let trace_hook :
    ([ `Read | `Write | `Cas | `Flush | `Fence ] ->
    line:int ->
    dirty:bool ->
    unit)
    option
    ref =
  ref None

(** Counting variant of the native backend, for memory-event accounting
    on real domains.  Generative: each [Counted ()] instantiation owns a
    fresh set of counters, so concurrent harness runs do not share state.
    Instrumentation is enabled by instantiating algorithm functors over
    this module instead of the plain backend — the plain operations above
    stay branch-free when accounting is off. *)
module Counted () : Memory_intf.COUNTED with type 'a cell = 'a cell = struct
  type nonrec 'a cell = 'a cell
  module P = Memory_intf.Padded

  (* Every domain increments these on every memory event: padded to
     line-size stride so the counters themselves do not false-share. *)
  let c_reads = P.make 0
  let c_writes = P.make 0
  let c_cases = P.make 0
  let c_pwrites = P.make 0
  let c_flushes = P.make 0
  let c_elided = P.make 0
  let c_fences = P.make 0
  let alloc = alloc
  let alloc_block = alloc_block

  let traced kind c =
    match !trace_hook with
    | None -> ()
    | Some f -> f kind ~line:(line_id c) ~dirty:(Line.is_dirty c.line)

  let traced_fence () =
    match !trace_hook with
    | None -> ()
    | Some f -> f `Fence ~line:(-1) ~dirty:false

  let read c =
    P.incr c_reads;
    traced `Read c;
    read c

  let write c v =
    P.incr c_writes;
    P.incr c_pwrites;
    write c v;
    prof `Pwrite ~line:(line_id c);
    traced `Write c

  let cas c ~expected ~desired =
    P.incr c_cases;
    let hit = cas c ~expected ~desired in
    if hit then begin
      P.incr c_pwrites;
      prof `Pwrite ~line:(line_id c)
    end;
    traced `Cas c;
    hit

  let flush c =
    if flush_line c then begin
      P.incr c_flushes;
      prof `Flush ~line:(line_id c)
    end
    else begin
      P.incr c_elided;
      prof `Elide ~line:(line_id c)
    end;
    traced `Flush c

  let fence () =
    P.incr c_fences;
    prof `Fence ~line:(-1);
    traced_fence ();
    fence ()

  let drain () = ()

  let counters () =
    {
      Memory_intf.reads = P.get c_reads;
      writes = P.get c_writes;
      cases = P.get c_cases;
      pwrites = P.get c_pwrites;
      flushes = P.get c_flushes;
      elided_flushes = P.get c_elided;
      coalesced_flushes = 0;
      fences = P.get c_fences;
      elided_fences = 0;
    }

  let reset_counters () =
    P.set c_reads 0;
    P.set c_writes 0;
    P.set c_cases 0;
    P.set c_pwrites 0;
    P.set c_flushes 0;
    P.set c_elided 0;
    P.set c_fences 0
end

(** Shared body of the buffered native backends (always counted — the
    buffering win is precisely what the counters exist to show).  Each
    domain owns a private persist buffer in domain-local storage:
    [flush] records the cell's line (deduplicated; clean lines elided at
    any line size), [drain] clears the buffer paying one write-back
    latency — the buffered CLWBs complete in parallel, so one
    [pay_flush] models the overlapped batch — plus the barrier.
    [Cfg.auto_drain_on_store] selects the persistency contract:
    {!Coalescing} (true) auto-drains before stores and CAS, preserving
    eager code's flush-before-dependent-store orderings; {!Px86} (false)
    leaves buffered flushes pending across stores, so only explicit
    [drain]/[fence] barriers order persists — the native counter/trace
    analogue of [Dssq_pmem.Heap]'s [Persistency.Px86] mode.  Generative
    for the same reason as {!Counted}. *)
module Make_buffered (Cfg : sig
  val auto_drain_on_store : bool
end)
() : Memory_intf.COUNTED with type 'a cell = 'a cell = struct
  type nonrec 'a cell = 'a cell
  module P = Memory_intf.Padded

  let c_reads = P.make 0
  let c_writes = P.make 0
  let c_cases = P.make 0
  let c_pwrites = P.make 0
  let c_flushes = P.make 0
  let c_elided = P.make 0
  let c_coalesced = P.make 0
  let c_fences = P.make 0
  let c_elided_fences = P.make 0
  let alloc = alloc
  let alloc_block = alloc_block

  type buf = {
    lines : (int, Line.t) Hashtbl.t;
    mutable calls : int;
    mutable owed : bool;
        (* a buffered flush's round-trip is still outstanding: the next
           explicit drain pays one overlapped flush + one fence for the
           whole batch *)
  }

  let key =
    Domain.DLS.new_key (fun () ->
        { lines = Hashtbl.create 8; calls = 0; owed = false })

  let traced kind c =
    match !trace_hook with
    | None -> ()
    | Some f -> f kind ~line:(line_id c) ~dirty:(Line.is_dirty c.line)

  let traced_fence () =
    match !trace_hook with
    | None -> ()
    | Some f -> f `Fence ~line:(-1) ~dirty:false

  (* Write the pending lines back (counter-wise): the semantic half of a
     drain, shared by explicit drains and the auto-drain that orders
     write-backs before a store.  Pays nothing — the batched round-trip
     cost is charged once, at the explicit persistence-point drain (see
     [drain]). *)
  let retire b =
    if Hashtbl.length b.lines > 0 then begin
      let effective = ref 0 in
      Hashtbl.iter
        (fun lid l ->
          if Line.take_dirty l then begin
            incr effective;
            prof `Flush ~line:lid
          end
          else prof `Elide ~line:lid)
        b.lines;
      let skipped = Hashtbl.length b.lines - !effective in
      Hashtbl.reset b.lines;
      if !effective > 0 then ignore (P.fetch_and_add c_flushes !effective);
      if skipped > 0 then ignore (P.fetch_and_add c_elided skipped);
      P.incr c_fences;
      prof `Fence ~line:(-1);
      ignore (P.fetch_and_add c_elided_fences (max 0 (b.calls - 1)));
      for _ = 1 to max 0 (b.calls - 1) do
        prof `Fence_elided ~line:(-1)
      done;
      b.calls <- 0;
      traced_fence ()
    end

  (* One overlapped device round-trip plus one fence per persistence
     point, however many flushes were buffered since the last one — the
     coalescing win the [Padded] counters make observable. *)
  let drain () =
    let b = Domain.DLS.get key in
    retire b;
    if b.owed then begin
      b.owed <- false;
      Persist_cost.pay_flush ();
      Persist_cost.pay_fence ()
    end

  let auto_drain () = retire (Domain.DLS.get key)

  let read c =
    P.incr c_reads;
    traced `Read c;
    read c

  let write c v =
    if Cfg.auto_drain_on_store then auto_drain ();
    P.incr c_writes;
    P.incr c_pwrites;
    write c v;
    prof `Pwrite ~line:(line_id c);
    traced `Write c

  let cas c ~expected ~desired =
    if Cfg.auto_drain_on_store then auto_drain ();
    P.incr c_cases;
    let hit = cas c ~expected ~desired in
    if hit then begin
      P.incr c_pwrites;
      prof `Pwrite ~line:(line_id c)
    end;
    traced `Cas c;
    hit

  let flush c =
    let b = Domain.DLS.get key in
    let lid = line_id c in
    if Hashtbl.mem b.lines lid then begin
      P.incr c_coalesced;
      prof `Coalesce ~line:lid;
      b.calls <- b.calls + 1;
      b.owed <- true
    end
    else if Line.is_dirty c.line then begin
      Hashtbl.add b.lines lid c.line;
      b.calls <- b.calls + 1;
      b.owed <- true
    end
    else begin
      P.incr c_elided;
      prof `Elide ~line:lid
    end;
    traced `Flush c

  let fence () =
    drain ();
    P.incr c_fences;
    prof `Fence ~line:(-1);
    traced_fence ();
    fence ()

  let counters () =
    {
      Memory_intf.reads = P.get c_reads;
      writes = P.get c_writes;
      cases = P.get c_cases;
      pwrites = P.get c_pwrites;
      flushes = P.get c_flushes;
      elided_flushes = P.get c_elided;
      coalesced_flushes = P.get c_coalesced;
      fences = P.get c_fences;
      elided_fences = P.get c_elided_fences;
    }

  let reset_counters () =
    P.set c_reads 0;
    P.set c_writes 0;
    P.set c_cases 0;
    P.set c_pwrites 0;
    P.set c_flushes 0;
    P.set c_elided 0;
    P.set c_coalesced 0;
    P.set c_fences 0;
    P.set c_elided_fences 0
end

module Coalescing () = Make_buffered (struct
  let auto_drain_on_store = true
end)
()

module Px86 () = Make_buffered (struct
  let auto_drain_on_store = false
end)
()

(** Flat-combining batch-epoch backend: buffered flushes with {e no}
    auto-drain before stores, so an operation's flushes stay pending
    until the driver (or a combiner) closes the epoch with one [drain] —
    one overlapped write-back plus one fence for the whole batch.  The
    same persistency contract as {!Px86} (only explicit barriers order
    persists), instantiated separately so combine-mode measurements own
    their counters; the native analogue of
    [Dssq_pmem.Heap.create ~combine:true]. *)
module Combining () = Make_buffered (struct
  let auto_drain_on_store = false
end)
()
