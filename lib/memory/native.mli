(** Native backend of the [MEMORY] interface: real OCaml domains over
    [Atomic.t] (sequentially consistent, like the paper's C++ seq_cst
    atomics), with the calibrated persist cost charged at each
    flush/fence — per dirty {e line}: a flush of a clean line is free
    (elided) when the line size is >= 2.
    Crash semantics cannot be exercised here — that is the simulator
    backend's job; this one is for wall-clock measurement. *)

module Line = Memory_intf.Line

type 'a cell = { v : 'a Atomic.t; line : Line.t; pad : int array }
(** [pad] keeps a filler block reachable for [Isolated]-placement cells
    so consecutive hot atomics do not share a physical cache line (empty
    for packed cells). *)

val set_line_size : int -> unit
(** Replace the process-wide line allocator with a fresh one of the
    given size (words per line).  Affects subsequent allocations only;
    the default is 1, the legacy word-granular model.  Call before
    building a structure, from a single thread. *)

val line_size : unit -> int

val set_pad_words : int -> unit
(** Set the padding stride (filler words) attached to
    [Isolated]-placement cells.  Setup-time only, like
    {!set_line_size}; the default is [Memory_intf.Padded.pad_words].
    Exists so the harness can sweep the isolation stride on real
    machines ([Dssq_workload.Native_throughput.pad_sweep]). *)

val alloc : ?name:string -> ?placement:Line.placement -> 'a -> 'a cell
val alloc_block : ?name:string -> 'a list -> 'a cell list
val line_id : 'a cell -> int
val read : 'a cell -> 'a
val write : 'a cell -> 'a -> unit
val cas : 'a cell -> expected:'a -> desired:'a -> bool

val flush_line : 'a cell -> bool
(** {!flush}, returning whether a write-back actually happened ([false]
    = elided: the line was clean and the line size >= 2). *)

val flush : 'a cell -> unit
val fence : unit -> unit

val drain : unit -> unit
(** No-op: the eager backend drains at every [flush].  See
    {!Coalescing} for the buffering variant. *)

val trace_hook :
  ([ `Read | `Write | `Cas | `Flush | `Fence ] ->
  line:int ->
  dirty:bool ->
  unit)
  option
  ref
(** Event hook consulted by {!Counted} on every memory operation, with
    the target's persist-line identity and post-event line dirtiness
    ([line = -1] for fences).  Installed/cleared by the tracer in
    [Dssq_obs.Trace] (which depends on this library, hence the
    inversion).  [None] — the default — costs one load and branch per
    counted operation. *)

type prof_event =
  [ `Pwrite  (** store or successful CAS *)
  | `Flush  (** effective write-back *)
  | `Elide  (** clean-line flush, skipped *)
  | `Coalesce  (** duplicate flush absorbed by a persist buffer *)
  | `Fence
  | `Fence_elided  (** fence folded into a buffered drain *)
  | `Evict  (** unused here: crash verdicts are sim-only *)
  | `Drop  (** unused here: crash verdicts are sim-only *) ]
(** Attribution vocabulary shared with [Dssq_obs.Heatmap.event]
    (structurally — this library sits below the observability layer). *)

val alloc_hook : (name:string -> line:int -> unit) option ref
(** Consulted by {!alloc}/{!alloc_block} for named cells: reports the
    allocation-site name and persist-line id.  Installed by the
    persistence heatmap ([Dssq_obs.Heatmap.start]). *)

val heat_hook : (prof_event -> line:int -> unit) option ref
(** Per-event attribution hook consulted by {!Counted}/{!Coalescing} at
    every counter-bump site ([line = -1] for fences).  Installed by the
    persistence heatmap.  Needed in addition to {!trace_hook} because
    that one fires after the flush cleared line dirtiness and so cannot
    distinguish effective from elided write-backs. *)

val phase_hook : (prof_event -> line:int -> unit) option ref
(** Same events as {!heat_hook}, consumed by the phase profiler
    ([Dssq_obs.Profile.start]).  Separate hooks keep the two consumers'
    lifecycles independent. *)

module Counted () : Memory_intf.COUNTED with type 'a cell = 'a cell
(** Counting variant for memory-event accounting on real domains; each
    instantiation owns fresh counters (padded to line stride so the
    counters themselves do not false-share).  Counts flush write-backs
    and elisions separately ([flushes] / [elided_flushes]).  Instantiate
    algorithm functors over this module (instead of the plain backend)
    to enable accounting — the plain operations stay branch-free. *)

module Coalescing () : Memory_intf.COUNTED with type 'a cell = 'a cell
(** Flush-coalescing variant (always counted): each domain buffers the
    lines it flushes in domain-local storage, [drain] writes the batch
    back with one overlapped persist latency plus one barrier, and
    stores/CAS auto-drain first when the buffer is nonempty.  Fills the
    [coalesced_flushes] / [elided_fences] counters that stay zero on
    the eager backends. *)

module Px86 () : Memory_intf.COUNTED with type 'a cell = 'a cell
(** Buffered-persistency variant (always counted): like {!Coalescing}
    but stores and CAS do {e not} auto-drain, so buffered flushes stay
    pending across dependent stores and only explicit [drain]/[fence]
    barriers persist them — the native counter/trace analogue of
    [Dssq_pmem.Heap]'s [Persistency.Px86] mode.  Counter-only on real
    hardware (no crash adversary); the simulator is where the relaxed
    crash behaviour is model-checked. *)

module Combining () : Memory_intf.COUNTED with type 'a cell = 'a cell
(** Flat-combining batch-epoch variant: the {!Px86} buffering contract
    (no auto-drain on stores), instantiated separately so combine-mode
    measurements own their counters — the native analogue of
    [Dssq_pmem.Heap.create ~combine:true].  The driver closes each batch
    epoch with one [drain]. *)
