(** Native backend of the [MEMORY] interface: real OCaml domains over
    [Atomic.t] (sequentially consistent, like the paper's C++ seq_cst
    atomics), with the calibrated persist cost charged at each
    flush/fence.
    Crash semantics cannot be exercised here — that is the simulator
    backend's job; this one is for wall-clock measurement. *)

type 'a cell = 'a Atomic.t

val alloc : ?name:string -> 'a -> 'a cell
val read : 'a cell -> 'a
val write : 'a cell -> 'a -> unit
val cas : 'a cell -> expected:'a -> desired:'a -> bool
val flush : 'a cell -> unit
val fence : unit -> unit

val trace_hook : ([ `Read | `Write | `Cas | `Flush | `Fence ] -> unit) option ref
(** Event hook consulted by {!Counted} on every memory operation.
    Installed/cleared by the tracer in [Dssq_obs.Trace] (which depends on
    this library, hence the inversion).  [None] — the default — costs one
    load and branch per counted operation. *)

module Counted () : Memory_intf.COUNTED with type 'a cell = 'a Atomic.t
(** Counting variant for memory-event accounting on real domains; each
    instantiation owns fresh counters.  Instantiate algorithm functors
    over this module (instead of the plain backend) to enable
    accounting — the plain operations stay branch-free. *)
