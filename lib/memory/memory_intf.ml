(** Abstract shared-memory interface for persistent-memory algorithms.

    Every concurrent algorithm in this repository is a functor over {!S}, so
    the same source runs on two backends:

    - {!Dssq_memory.Native}: OCaml 5 [Atomic.t] cells across real domains,
      with a calibrated busy-wait charged at each [flush]/[fence] to model
      the latency of a CLWB + store-fence pair (PMDK's [pmem_persist]).
    - [Dssq_sim.Memory]: simulated cells with separate volatile and
      persisted values, driven by a deterministic scheduler that can crash
      the system between any two memory events.

    Cells are word-granularity: a cell models one failure-atomic machine
    word (the paper assumes 64-bit failure-atomic writes, Section 1).
    Algorithms that need pointer tagging pack index + tag bits into a
    single [int] cell (see [Dssq_core.Tagged]). *)

module type S = sig
  type 'a cell
  (** A shared memory word holding a value of type ['a].  On persistent
      backends the cell has both a volatile (cache) value, which all
      threads observe, and a persisted value, which survives crashes. *)

  val alloc : ?name:string -> 'a -> 'a cell
  (** [alloc v] allocates a fresh cell whose volatile {e and} persisted
      value is [v] (allocation happens during failure-free initialization
      or recovery, both of which persist initial state).  [name] is used
      only for diagnostics and traces. *)

  val read : 'a cell -> 'a
  (** Sequentially consistent load of the volatile value. *)

  val write : 'a cell -> 'a -> unit
  (** Sequentially consistent store to the volatile value.  The store is
      {e not} persisted until [flush] (or a simulated cache eviction). *)

  val cas : 'a cell -> expected:'a -> desired:'a -> bool
  (** Single-word compare-and-swap on the volatile value.  Comparison is
      physical equality, which coincides with value equality for the
      immediate (int) values used by all algorithms here. *)

  val flush : 'a cell -> unit
  (** Write the cell's current volatile value back to the persistence
      domain and drain it (CLWB + sfence, i.e. PMDK [pmem_persist]). *)

  val fence : unit -> unit
  (** Store fence without a write-back; orders prior flushes. *)
end

(** A snapshot of memory-event counters: one monotonic count per event
    class of {!S}.  Both backends produce these through the same
    {!COUNTED} interface, so the workload harness can report per-phase
    flush/fence/CAS deltas uniformly (the paper's Section 4 cost
    accounting). *)
type counters = {
  reads : int;
  writes : int;
  cases : int;
  flushes : int;
  fences : int;
}

module Counters = struct
  let zero = { reads = 0; writes = 0; cases = 0; flushes = 0; fences = 0 }

  let add a b =
    {
      reads = a.reads + b.reads;
      writes = a.writes + b.writes;
      cases = a.cases + b.cases;
      flushes = a.flushes + b.flushes;
      fences = a.fences + b.fences;
    }

  (** [diff ~after ~before] is the delta between two snapshots of the
      same monotonic counters (e.g. around one benchmark phase). *)
  let diff ~after ~before =
    {
      reads = after.reads - before.reads;
      writes = after.writes - before.writes;
      cases = after.cases - before.cases;
      flushes = after.flushes - before.flushes;
      fences = after.fences - before.fences;
    }

  let total c = c.reads + c.writes + c.cases + c.flushes + c.fences

  let to_assoc c =
    [
      ("reads", c.reads);
      ("writes", c.writes);
      ("cases", c.cases);
      ("flushes", c.flushes);
      ("fences", c.fences);
    ]

  let of_assoc l =
    let get k = Option.value ~default:0 (List.assoc_opt k l) in
    {
      reads = get "reads";
      writes = get "writes";
      cases = get "cases";
      flushes = get "flushes";
      fences = get "fences";
    }

  let pp fmt c =
    Format.fprintf fmt "reads=%d writes=%d cases=%d flushes=%d fences=%d"
      c.reads c.writes c.cases c.flushes c.fences
end

(** A backend with uniform memory-event accounting: snapshot with
    {!val-counters}, compute phase deltas with {!Counters.diff}.

    Enabling is by {e backend selection}, not per-operation flags: the
    uninstrumented {!S} modules stay branch-free on the hot path, and a
    harness that wants counts instantiates its algorithm functor over a
    counted backend instead ([Dssq_memory.Native.Counted ()] or
    [Dssq_sim.Sim.counted_memory heap]). *)
module type COUNTED = sig
  include S

  val counters : unit -> counters
  val reset_counters : unit -> unit
end
