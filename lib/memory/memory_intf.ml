(** Abstract shared-memory interface for persistent-memory algorithms.

    Every concurrent algorithm in this repository is a functor over {!S}, so
    the same source runs on two backends:

    - {!Dssq_memory.Native}: OCaml 5 [Atomic.t] cells across real domains,
      with a calibrated busy-wait charged at each [flush]/[fence] to model
      the latency of a CLWB + store-fence pair (PMDK's [pmem_persist]).
    - [Dssq_sim.Memory]: simulated cells with separate volatile and
      persisted values, driven by a deterministic scheduler that can crash
      the system between any two memory events.

    Cells are word-granularity: a cell models one failure-atomic machine
    word (the paper assumes 64-bit failure-atomic writes, Section 1).
    Algorithms that need pointer tagging pack index + tag bits into a
    single [int] cell (see [Dssq_core.Tagged]).

    {b Persistence, however, is line-granularity}: the paper's hardware
    (Optane + CLWB) writes back whole cache lines, so cells are allocated
    into {!Line}s and [flush cell] persists the cell's entire line.  A
    line whose every word is already persisted has nothing to write back,
    so flushing it is free — {e clean-line elision}, the effect behind
    Mirror-/Memento-style flush coalescing.  Line size 1 degenerates to
    the original word-granular model (every flush charged, no elision)
    and is the regression anchor for all pre-line figures. *)

(** Persist lines: the unit at which the modelled cache tracks dirtiness,
    writes back ([flush]), and evicts at a crash.  Both backends share
    this state machine and the placement allocator below; only the cell
    payload representation differs. *)
module Line = struct
  let default_size = 8
  (** Words per line.  Eight 64-bit words = the 64-byte x86 cache line of
      the paper's testbed. *)

  type t = { id : int; size : int; dirty : bool Atomic.t }
  (** One persist line.  [dirty] is the OR of the member cells' dirtiness
      — set by every store/CAS to a member, cleared by write-back.
      Atomic because native-backend domains share lines. *)

  (** Where [alloc] places a fresh cell. *)
  type placement =
    | Packed  (** fill the current open line (default) *)
    | Isolated
        (** a private line of its own — for hot global words (queue head,
            tail, per-thread X entries) that real implementations pad to
            a full cache line to avoid false sharing *)

  let make ~id ~size = { id; size; dirty = Atomic.make false }
  let is_dirty l = Atomic.get l.dirty
  let mark_dirty l = if not (Atomic.get l.dirty) then Atomic.set l.dirty true

  (** Whether a flush of this line would perform a write-back, without
      changing any state — the simulator's cost model asks this before
      the operation applies. *)
  let flush_pending l = l.size <= 1 || Atomic.get l.dirty

  (** Whether flushing this line performs a write-back, clearing its
      dirtiness either way.  At size 1 the answer is always [true]: the
      seed's word-granular model charged every flush unconditionally, and
      line size 1 must reproduce those numbers exactly (the regression
      anchor).  At sizes >= 2 a clean line's flush is elided. *)
  let flush_effective l =
    if l.size <= 1 then begin
      Atomic.set l.dirty false;
      true
    end
    else Atomic.exchange l.dirty false

  (** Clear the line's dirtiness, returning whether it {e was} dirty —
      i.e. whether a write-back happens.  Unlike {!flush_effective} there
      is no size-1 special case: that rule exists only to reproduce the
      legacy always-charge cost model on the eager path, whereas a
      coalescing drain writes back exactly the lines that hold unpersisted
      stores, at any line size. *)
  let take_dirty l = Atomic.exchange l.dirty false

  (** Sequential placement of cells into lines.  Not thread-safe: the
      simulator allocates from one domain; the native backend serializes
      calls with its own lock. *)
  module Alloc = struct
    type line = t

    type t = {
      size : int;
      mutable next_id : int;
      mutable current : line option;  (** open line being filled *)
      mutable room : int;  (** words left in [current] *)
    }

    let create ?(size = default_size) () =
      if size < 1 then invalid_arg "Line.Alloc.create: size must be >= 1";
      { size; next_id = 0; current = None; room = 0 }

    let line_size a = a.size

    (** Close the current open line: the next [Packed] placement starts a
        fresh one.  Used to align a block of co-located cells. *)
    let align a =
      a.current <- None;
      a.room <- 0

    let fresh a =
      let l = make ~id:a.next_id ~size:a.size in
      a.next_id <- a.next_id + 1;
      l

    (** Line for the next cell.  [Packed] fills the open line, opening a
        new one when full; [Isolated] grabs a private line and leaves no
        line open (so later packed cells cannot share it). *)
    let place ?(placement = Packed) a =
      match placement with
      | Isolated ->
          align a;
          fresh a
      | Packed -> (
          match a.current with
          | Some l when a.room > 0 ->
              a.room <- a.room - 1;
              l
          | _ ->
              let l = fresh a in
              a.current <- Some l;
              a.room <- a.size - 1;
              l)

    (** Lines for [n] co-located cells (a node's fields): placement
        starts at a fresh line boundary and the block ends aligned, so
        distinct blocks never share a line (no false sharing between
        nodes). *)
    let place_block a ~n =
      align a;
      let lines = List.init n (fun _ -> place a) in
      align a;
      lines
  end
end

(** Cache-line padding for {e volatile} hot atomics (free-list heads,
    shared counters).  OCaml gives no control over object placement, so
    the only portable defense against false sharing is to keep a filler
    block allocated {e with} each atomic: consecutive [make] calls then
    land the atomics at least [pad_words] words apart, on the minor heap
    and after compaction alike, because the filler stays reachable from
    the same record.  The extra indirection is irrelevant for the
    contended operations these are used for (CAS loops, statistics
    increments), where the coherence miss dominates. *)
module Padded = struct
  let pad_words = 15
  (** With the 2-word block headers this spaces consecutive atomics a
      full 128-byte prefetch pair apart on 64-bit systems. *)

  type 'a t = { v : 'a Atomic.t; _pad : int array }

  let make v = { v = Atomic.make v; _pad = Array.make pad_words 0 }
  let get p = Atomic.get p.v
  let set p v = Atomic.set p.v v
  let compare_and_set p expected desired = Atomic.compare_and_set p.v expected desired
  let fetch_and_add p n = Atomic.fetch_and_add p.v n
  let incr p = Atomic.incr p.v
end

(** Persistency model: the relation between store order and persist
    order.  This is the single definition of the axis — backends,
    object configs and the CLI all reference it from here.

    - {!Sc}: the strong baseline every pre-relaxed figure was produced
      under.  [flush] is synchronous (CLWB + implied drain): when it
      returns, the line is durable.  Persist order equals flush order.
    - {!Px86}: buffered (epoch) persistency in the style of Px86 /
      PTSO.  [flush] only {e enqueues} the line into the issuing
      thread's FIFO persist buffer; the line becomes durable when an
      explicit [drain]/[fence] writes the buffer back — or when the
      crash adversary chooses to write back a prefix of the buffer
      asynchronously.  Stores never auto-drain, so the window between
      a flush and its drain is visible to the model checker, which is
      precisely the window real CLWB leaves open. *)
module Persistency = struct
  type t = Sc | Px86

  let to_string = function Sc -> "sc" | Px86 -> "px86"

  let of_string = function
    | "sc" -> Some Sc
    | "px86" -> Some Px86
    | _ -> None

  let all = [ Sc; Px86 ]
end

module type S = sig
  type 'a cell
  (** A shared memory word holding a value of type ['a].  On persistent
      backends the cell has both a volatile (cache) value, which all
      threads observe, and a persisted value, which survives crashes. *)

  val alloc : ?name:string -> ?placement:Line.placement -> 'a -> 'a cell
  (** [alloc v] allocates a fresh cell whose volatile {e and} persisted
      value is [v] (allocation happens during failure-free initialization
      or recovery, both of which persist initial state).  [name] is used
      only for diagnostics and traces; [placement] (default
      {!Line.Packed}) chooses the persist line the cell lands in. *)

  val alloc_block : ?name:string -> 'a list -> 'a cell list
  (** [alloc_block vs] allocates one cell per value, co-located from a
      fresh line boundary — a node's fields share (with the default line
      size) a single persist line, so flushing them after initialization
      costs one write-back instead of one per word. *)

  val read : 'a cell -> 'a
  (** Sequentially consistent load of the volatile value. *)

  val write : 'a cell -> 'a -> unit
  (** Sequentially consistent store to the volatile value.  The store is
      {e not} persisted until [flush] (or a simulated cache eviction);
      it marks the cell's whole line dirty. *)

  val cas : 'a cell -> expected:'a -> desired:'a -> bool
  (** Single-word compare-and-swap on the volatile value.  Comparison is
      physical equality, which coincides with value equality for the
      immediate (int) values used by all algorithms here. *)

  val flush : 'a cell -> unit
  (** Write the cell's current {e line} back to the persistence domain
      and drain it (CLWB + sfence, i.e. PMDK [pmem_persist]): every
      dirty word sharing the cell's line is persisted by the one
      write-back.  Flushing a clean line is elided (free) when the line
      size is >= 2; at line size 1 every flush is charged, exactly as in
      the pre-line word-granular model. *)

  val fence : unit -> unit
  (** Store fence without a write-back; orders prior flushes. *)

  val drain : unit -> unit
  (** Persist barrier for flush-coalescing backends: write back every
      line this thread has flushed since its last drain and fence once.
      Algorithms call it at their linearization/persistence points (end
      of prep, end of exec, before publishing a node for reuse).  On
      eager backends every [flush] already drained, so [drain] is a
      no-op — zero events, zero cost — which keeps the coalescing-off
      path bit-for-bit identical to the pre-coalescing figures.

      Coalescing backends additionally {e auto-drain} before applying
      any store or CAS by a thread with pending flushes, so the
      flush-before-dependent-store orderings eager code relies on are
      preserved without annotating every store site. *)
end

(** A snapshot of memory-event counters: one monotonic count per event
    class of {!S}.  Both backends produce these through the same
    {!COUNTED} interface, so the workload harness can report per-phase
    flush/fence/CAS deltas uniformly (the paper's Section 4 cost
    accounting).  [flushes] counts {e effective} flushes (write-backs);
    [elided_flushes] counts flush calls answered by a clean line at no
    cost — the savings line-granular persistence buys.
    [coalesced_flushes] counts flush calls absorbed by a line already
    pending in a coalescing persist buffer (deduplicated, so the drain
    writes the line back once); [elided_fences] counts the per-flush
    fences a drain folded into its single barrier (k absorbed flush
    calls -> k-1 elided fences).  Both are zero on eager backends.
    [pwrites] counts persistent-word mutations — stores plus {e
    successful} CAS — i.e. how many words of persistent memory the
    algorithm actually dirtied; divided by the operation count it is the
    [persistent_words_per_op] metric compared against the space lower
    bounds of Ben-Baruch, Hendler & Rusanovsky. *)
type counters = {
  reads : int;
  writes : int;
  cases : int;
  pwrites : int;
  flushes : int;
  elided_flushes : int;
  coalesced_flushes : int;
  fences : int;
  elided_fences : int;
}

module Counters = struct
  let zero =
    {
      reads = 0;
      writes = 0;
      cases = 0;
      pwrites = 0;
      flushes = 0;
      elided_flushes = 0;
      coalesced_flushes = 0;
      fences = 0;
      elided_fences = 0;
    }

  let add a b =
    {
      reads = a.reads + b.reads;
      writes = a.writes + b.writes;
      cases = a.cases + b.cases;
      pwrites = a.pwrites + b.pwrites;
      flushes = a.flushes + b.flushes;
      elided_flushes = a.elided_flushes + b.elided_flushes;
      coalesced_flushes = a.coalesced_flushes + b.coalesced_flushes;
      fences = a.fences + b.fences;
      elided_fences = a.elided_fences + b.elided_fences;
    }

  (** [diff ~after ~before] is the delta between two snapshots of the
      same monotonic counters (e.g. around one benchmark phase). *)
  let diff ~after ~before =
    {
      reads = after.reads - before.reads;
      writes = after.writes - before.writes;
      cases = after.cases - before.cases;
      pwrites = after.pwrites - before.pwrites;
      flushes = after.flushes - before.flushes;
      elided_flushes = after.elided_flushes - before.elided_flushes;
      coalesced_flushes = after.coalesced_flushes - before.coalesced_flushes;
      fences = after.fences - before.fences;
      elided_fences = after.elided_fences - before.elided_fences;
    }

  (* [pwrites] is excluded: it re-counts stores and successful CAS as
     persistent-word mutations, so adding it would double-charge. *)
  let total c =
    c.reads + c.writes + c.cases + c.flushes + c.elided_flushes
    + c.coalesced_flushes + c.fences + c.elided_fences

  let to_assoc c =
    [
      ("reads", c.reads);
      ("writes", c.writes);
      ("cases", c.cases);
      ("pwrites", c.pwrites);
      ("flushes", c.flushes);
      ("elided_flushes", c.elided_flushes);
      ("coalesced_flushes", c.coalesced_flushes);
      ("fences", c.fences);
      ("elided_fences", c.elided_fences);
    ]

  let of_assoc l =
    let get k = Option.value ~default:0 (List.assoc_opt k l) in
    {
      reads = get "reads";
      writes = get "writes";
      cases = get "cases";
      pwrites = get "pwrites";
      flushes = get "flushes";
      elided_flushes = get "elided_flushes";
      coalesced_flushes = get "coalesced_flushes";
      fences = get "fences";
      elided_fences = get "elided_fences";
    }

  let pp fmt c =
    Format.fprintf fmt
      "reads=%d writes=%d cases=%d pwrites=%d flushes=%d elided=%d \
       coalesced=%d fences=%d elided_fences=%d"
      c.reads c.writes c.cases c.pwrites c.flushes c.elided_flushes
      c.coalesced_flushes c.fences c.elided_fences
end

(** A backend with uniform memory-event accounting: snapshot with
    {!val-counters}, compute phase deltas with {!Counters.diff}.

    Enabling is by {e backend selection}, not per-operation flags: the
    uninstrumented {!S} modules stay branch-free on the hot path, and a
    harness that wants counts instantiates its algorithm functor over a
    counted backend instead ([Dssq_memory.Native.Counted ()] or
    [Dssq_sim.Sim.counted_memory heap]). *)
module type COUNTED = sig
  include S

  val counters : unit -> counters
  val reset_counters : unit -> unit
end
