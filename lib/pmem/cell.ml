(** A simulated persistent-memory word.

    The [volatile] value is what loads, stores and CAS observe: caches on
    the modelled machine are coherent, so every thread sees the same
    volatile value instantly (the "shared cache" model the paper targets,
    Section 1 / property D3).  The [persisted] value is what survives a
    crash.  [flush] copies volatile to persisted; a crash either discards
    the volatile value (resetting it to [persisted]) or — modelling an
    uncontrolled cache-line eviction — writes it back first.

    Each cell belongs to a persist {!Line}: write-back and crash
    eviction happen to the line as a unit, so a cell's [line] determines
    which other words a [flush] of it persists for free. *)

module Line = Dssq_memory.Memory_intf.Line

type 'a t = {
  id : int;
  name : string;
  line : Line.t;
  mutable volatile : 'a;
  mutable persisted : 'a;
  mutable dirty : bool;
}

(** Existential wrapper so a heap can track cells of every type. *)
type packed = Packed : 'a t -> packed

let value_equal (a : 'a) (b : 'a) = a == b
let is_dirty c = c.dirty
let line c = c.line
let line_id c = c.line.Line.id

let pp_summary fmt (Packed c) =
  Format.fprintf fmt "cell#%d(%s)@L%d%s" c.id c.name c.line.Line.id
    (if c.dirty then "*" else "")
