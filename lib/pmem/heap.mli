(** A simulated persistent heap: every allocated cell, plus crash
    semantics and event statistics.

    Single-domain by design: simulated threads are cooperative coroutines
    (see [Dssq_sim]), so plain mutation is deterministic.

    Persistence is line-granular (see {!Dssq_memory.Memory_intf.Line}):
    [flush] writes the cell's whole line back, flushing a clean line is
    elided (counted in [elided_flushes], not [flushes]), and a crash
    evicts or drops each dirty line as a unit.  The default line size of
    1 reproduces the original word-granular model exactly. *)

module Line = Dssq_memory.Memory_intf.Line
module Persistency = Dssq_memory.Memory_intf.Persistency

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cases : int;
  mutable pwrites : int;
      (** persistent-word mutations: stores plus successful CAS *)
  mutable flushes : int;  (** effective flushes (write-backs) *)
  mutable elided_flushes : int;  (** flush calls answered by a clean line *)
  mutable coalesced_flushes : int;
      (** flush calls absorbed by an already-pending line (coalescing) *)
  mutable fences : int;
  mutable elided_fences : int;
      (** per-flush fences folded into drain barriers (coalescing) *)
}

type t = {
  mutable cells : Cell.packed list;
  mutable next_id : int;
  line_alloc : Line.Alloc.t;
  line_members : (int, Cell.packed list ref) Hashtbl.t;
  lines : (int, Line.t) Hashtbl.t;
  stats : stats;
  mutable in_sim : bool;
      (** when true, memory operations must go through the scheduler;
          toggled by [Dssq_sim.Sim.run] *)
  mutable cur_tid : int;
      (** thread on whose behalf memory operations currently apply (set
          by the stepping machine; -1 in direct mode) — keys the
          per-thread coalescing buffers *)
  pending : (int, (int, Line.t) Hashtbl.t) Hashtbl.t;
  pending_calls : (int, int) Hashtbl.t;
  pending_order : (int, int list ref) Hashtbl.t;
      (** tid -> pending line ids, newest first: the FIFO the px86 drain
          and the adversary's prefix write-backs are ordered by *)
  persistency : Persistency.t;
  mutable reorder_pat : string option;
      (** fault injection for relaxed mutants: flushes of cells whose
          name contains the pattern jump to the front of the FIFO *)
  mutable short_drain : bool;
      (** fault injection for relaxed mutants: each px86 drain misses
          the newest buffered entry (off-by-one persist barrier) *)
  combine : bool;
      (** flat-combining batch epochs: every flush buffers (even under
          Sc), stores never auto-drain, and a line re-dirtied or
          re-flushed while buffered moves to the FIFO tail — one drain
          is the batch's single persist epoch *)
}

val create :
  ?line_size:int -> ?persistency:Persistency.t -> ?combine:bool -> unit -> t
(** [line_size] defaults to 1 — the original word-granular persistence
    model (every flush charged, no elision, per-word crash eviction).
    Pass [Line.default_size] (8) for the cache-line model.
    [persistency] defaults to {!Persistency.Sc}, the strong model every
    pre-relaxed figure anchors to; {!Persistency.Px86} turns every flush
    into a per-thread FIFO buffer enqueue that only [drain]/[fence] — or
    the crash adversary — makes durable.  [combine] (default [false])
    forces the buffered routing regardless of persistency model and
    suppresses the store auto-drain, so flushes from many operations
    accumulate until one explicit epoch drain (flat-combining batch
    epochs, DESIGN.md §14). *)

val persistency : t -> Persistency.t

val combine : t -> bool

val buffered : t -> bool
(** Whether flushes route through the per-thread persist buffers rather
    than writing back synchronously: px86 persistency or combine mode. *)

val line_size : t -> int

val alloc : t -> ?name:string -> ?placement:Line.placement -> 'a -> 'a Cell.t
(** Fresh cell whose volatile {e and} persisted value is the initial
    value, placed into a persist line ({!Line.Packed} by default). *)

val alloc_block : t -> ?name:string -> 'a list -> 'a Cell.t list
(** One cell per value, co-located from a fresh line boundary; the
    allocator is re-aligned afterwards so distinct blocks never share a
    line. *)

val members : t -> Line.t -> Cell.packed list
(** All cells sharing the given line. *)

(** Direct (non-scheduled) memory operations — initialization, recovery
    code, and the scheduler itself use these. *)

val read : t -> 'a Cell.t -> 'a
val write : t -> 'a Cell.t -> 'a -> unit
val cas : t -> 'a Cell.t -> expected:'a -> desired:'a -> bool

val flush : t -> 'a Cell.t -> unit
(** Write the cell's line back: every dirty member of the line persists.
    Elided (only [elided_flushes] incremented) when the line is clean
    and the line size is >= 2. *)

val fence : t -> unit

(** {2 Flush coalescing}

    Opt-in per-thread persist buffers (see [Dssq_sim.Sim.memory
    ~coalesce:true]): {!flush_coalesced} records the cell's line in the
    current thread's buffer instead of writing it back, {!drain} writes
    every pending line back with one barrier.  Pending lines stay dirty,
    so the crash adversary ranges over the whole deferral window. *)

val flush_coalesced : t -> 'a Cell.t -> unit
(** Buffer the cell's line for the next {!drain}.  Already-pending lines
    are deduplicated ([coalesced_flushes]); clean lines are elided at any
    line size (nothing to write back — the size-1 always-charge rule is
    an eager-cost-model anchor, not a semantic requirement). *)

val drain : t -> unit
(** Write back every line in the current thread's persist buffer and
    fence once.  No-op (zero events, zero counts) when the buffer is
    empty. *)

val has_pending : t -> bool
(** Whether the current thread's persist buffer is nonempty. *)

val pending_lines : t -> int list
(** Line ids in the current thread's persist buffer, ascending. *)

(** {2 Buffered (px86) persistency}

    Under {!Persistency.Px86} every flush goes through the per-thread
    buffer (no auto-drain before stores), the buffer drains in FIFO
    order, and a crash may first write back an adversary-chosen FIFO
    {e prefix} per thread.  These entry points expose the buffers to the
    model checker. *)

val adversary_drain : t -> tid:int -> count:int -> unit
(** Persist the oldest [count] entries of thread [tid]'s buffer, in FIFO
    order, with no fence — the adversary's asynchronous write-back.
    Degrades to a no-op / shorter prefix when the buffer is smaller. *)

val pending_fifos : t -> (int * int list) list
(** Per-thread buffer contents, oldest first, sorted by thread id.
    Always empty under sc. *)

val crash_candidate_lines : t -> int list
(** Dirty lines eligible for free-form eviction verdicts at a crash:
    all of {!dirty_lines} under sc; under px86, the dirty lines not
    sitting in any thread's persist buffer (buffered lines persist only
    via {!adversary_drain} prefixes). *)

val crash : t -> evict:(unit -> bool) -> unit
(** Crash the machine: for every dirty {e line}, [evict ()] decides
    whether the line was written back by cache eviction before power
    loss ([true]) or lost ([false]); the verdict applies to all the
    line's dirty words as a unit.  Afterwards volatile = persisted
    everywhere. *)

val crash_random : t -> evict_p:float -> rng:Random.State.t -> unit
(** {!crash} where each dirty line independently persists with
    probability [evict_p]. *)

val crash_lines : t -> evict:(int -> bool) -> unit
(** {!crash} under an explicit per-line adversary: [evict lid] is the
    verdict for line [lid] (must be a pure function of the line id).
    The model checker enumerates eviction subsets of {!dirty_lines}
    through this entry point. *)

val dirty_count : t -> int

val dirty_lines : t -> int list
(** Ids of every line holding at least one dirty cell, ascending — the
    set over which a crash draws verdicts. *)

val stats : t -> stats

val counters : t -> Dssq_memory.Memory_intf.counters
(** {!stats} as an immutable snapshot in the uniform counter currency
    shared with the native backend. *)

val reset_stats : t -> unit
val cell_count : t -> int
val line_count : t -> int
