(** A simulated persistent heap: every allocated cell, plus crash
    semantics and event statistics.

    Single-domain by design: simulated threads are cooperative coroutines
    (see [Dssq_sim]), so plain mutation is deterministic. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cases : int;
  mutable flushes : int;
  mutable fences : int;
}

type t = {
  mutable cells : Cell.packed list;
  mutable next_id : int;
  stats : stats;
  mutable in_sim : bool;
      (** when true, memory operations must go through the scheduler;
          toggled by [Dssq_sim.Sim.run] *)
}

val create : unit -> t

val alloc : t -> ?name:string -> 'a -> 'a Cell.t
(** Fresh cell whose volatile {e and} persisted value is the initial
    value. *)

(** Direct (non-scheduled) memory operations — initialization, recovery
    code, and the scheduler itself use these. *)

val read : t -> 'a Cell.t -> 'a
val write : t -> 'a Cell.t -> 'a -> unit
val cas : t -> 'a Cell.t -> expected:'a -> desired:'a -> bool
val flush : t -> 'a Cell.t -> unit
val fence : t -> unit

val crash : t -> evict:(unit -> bool) -> unit
(** Crash the machine: for every dirty cell, [evict ()] decides whether
    its volatile value was written back by cache eviction before power
    loss ([true]) or lost ([false]).  Afterwards volatile = persisted
    everywhere. *)

val crash_random : t -> evict_p:float -> rng:Random.State.t -> unit
(** {!crash} where each dirty line independently persists with
    probability [evict_p]. *)

val dirty_count : t -> int
val stats : t -> stats

val counters : t -> Dssq_memory.Memory_intf.counters
(** {!stats} as an immutable snapshot in the uniform counter currency
    shared with the native backend. *)

val reset_stats : t -> unit
val cell_count : t -> int
