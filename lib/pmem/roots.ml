(** A persistent root-pointer directory: named durable roots so a
    recovered process can find its objects again without any volatile
    references surviving the crash.

    The directory is a fixed-capacity array of (name, value) entry
    pairs plus a persistent count.  Registration is crash-safe by
    ordering: the entry's name and value are written and drained
    {e before} the count is bumped and drained, so the persistent
    count never exceeds the number of fully-written entries — a crash
    mid-registration loses at most the in-flight entry, never exposes
    a half-written one. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  type entry = { e_name : string M.cell; e_value : int M.cell }

  type t = { entries : entry array; count : int M.cell; capacity : int }

  let create ?(name = "roots") ~capacity () =
    if capacity < 1 then invalid_arg "Roots.create: capacity must be >= 1";
    let entries =
      Array.init capacity (fun i ->
          {
            e_name = M.alloc ~name:(Printf.sprintf "%s.name[%d]" name i) "";
            e_value = M.alloc ~name:(Printf.sprintf "%s.value[%d]" name i) 0;
          })
    in
    { entries; count = M.alloc ~name:(name ^ ".count") 0; capacity }

  let capacity t = t.capacity
  let count t = M.read t.count

  let index_of t name =
    let n = count t in
    let rec go i =
      if i >= n then None
      else if M.read t.entries.(i).e_name = name then Some i
      else go (i + 1)
    in
    go 0

  (** Register (or update) a named root; returns its entry index.
      Durable when this returns; see the ordering argument above. *)
  let register t ~name ~value =
    if name = "" then invalid_arg "Roots.register: empty name";
    match index_of t name with
    | Some i ->
        let e = t.entries.(i) in
        M.write e.e_value value;
        M.flush e.e_value;
        M.drain ();
        i
    | None ->
        let i = count t in
        if i >= t.capacity then
          invalid_arg (Printf.sprintf "Roots.register: directory full (%d)" i);
        let e = t.entries.(i) in
        M.write e.e_name name;
        M.write e.e_value value;
        M.flush e.e_name;
        M.flush e.e_value;
        M.drain ();
        M.write t.count (i + 1);
        M.flush t.count;
        M.drain ();
        i

  let lookup t name = Option.map (fun i -> M.read t.entries.(i).e_value) (index_of t name)
  let name_at t i = M.read t.entries.(i).e_name
  let value_at t i = M.read t.entries.(i).e_value

  let set t i value =
    M.write t.entries.(i).e_value value;
    M.flush t.entries.(i).e_value;
    M.drain ()

  let names t = List.init (count t) (fun i -> name_at t i)

  (** Validate the directory after a crash: every entry below the
      persistent count must carry a non-empty name.  The write
      ordering makes violations impossible under the crash model; a
      violation therefore means corruption, which fsck reports. *)
  let verify t =
    let n = count t in
    if n < 0 || n > t.capacity then
      Error (Printf.sprintf "roots: persistent count %d out of range" n)
    else
      let rec go i =
        if i >= n then Ok n
        else if name_at t i = "" then
          Error (Printf.sprintf "roots: entry %d below count %d has no name" i n)
        else go (i + 1)
      in
      go 0

  (** Re-attach after a crash: verify and return the number of durable
      roots.  @raise Failure on a corrupt directory. *)
  let reattach t =
    match verify t with Ok n -> n | Error e -> failwith e
end
