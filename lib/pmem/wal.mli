(** Checksummed, fixed-record, per-thread-lane write-ahead log over
    persistent cells — the durability backbone of whole-system
    recovery.  See wal.ml for the format and the torn-tail argument. *)

exception Full of { lane : int }
(** The lane has no empty slots left. *)

exception Corrupted of { lane : int; slot : int }
(** Replay hit an invalid record that is not a torn tail. *)

module Codec : sig
  val words_per_record : int

  (** Record kinds used by the recovery system; user kinds >= 16. *)

  val kind_alloc : int
  val kind_free : int
  val kind_root : int

  val mix : int -> int
  (** One bijective 63-bit mixing step (exposed for tests). *)

  val checksum : slot:int -> kind:int -> a:int -> b:int -> int
  (** Slot-bound record checksum; any single-bit flip of any covered
      word (or of the stored sum) is detected deterministically. *)

  type classified = Empty | Valid of { kind : int; a : int; b : int } | Invalid

  val classify :
    slot:int -> kind:int -> a:int -> b:int -> sum:int -> classified
end

type record = { r_lane : int; r_kind : int; r_a : int; r_b : int }

type lane_state =
  | Clean of int
  | Torn of { valid : int; at : int }
  | Corrupt of { at : int }

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type t

  val create : ?name:string -> lanes:int -> lane_capacity:int -> unit -> t
  val lanes : t -> int
  val lane_capacity : t -> int

  val appended : t -> int
  (** Total records in the log according to the volatile cursors. *)

  val append : t -> lane:int -> kind:int -> a:int -> b:int -> unit
  (** Durably append one record; when this returns the record survives
      any crash.  @raise Full when the lane is exhausted. *)

  val states : t -> lane_state list
  (** Per-lane classification, read-only. *)

  val verify : t -> (int, string) result
  (** Strict check: [Ok total_records] only if every lane is clean;
      torn tails and corruption both produce a descriptive [Error]. *)

  val replay : t -> record list * int
  (** Valid records (lane-major, append order within a lane) and the
      count of torn tail records dropped; restores append cursors.
      Idempotent. @raise Corrupted on a non-tail invalid record. *)

  val truncate : t -> unit
  (** Persistently zero the log (crash-safe: checksum word first,
      highest slot first) and reset the cursors. *)

  val corrupt_word :
    t -> lane:int -> slot:int -> word:int -> f:(int -> int) -> unit
  (** Corruption-injection hook for tests and [dssq fsck --corrupt]:
      rewrite word [0..3] (kind, a, b, sum) of a stored record. *)
end
