(** Persistent named root directory: fixed-capacity durable
    (name, value) entries with a crash-safe registration order
    (entry before count).  See roots.ml. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type t

  val create : ?name:string -> capacity:int -> unit -> t
  val capacity : t -> int
  val count : t -> int

  val register : t -> name:string -> value:int -> int
  (** Durably add (or update) a named root; returns its entry index.
      Raises [Invalid_argument] when the directory is full. *)

  val index_of : t -> string -> int option
  val lookup : t -> string -> int option
  val name_at : t -> int -> string
  val value_at : t -> int -> int
  val set : t -> int -> int -> unit
  val names : t -> string list

  val verify : t -> (int, string) result
  (** [Ok count] iff every entry below the persistent count has a
      name; [Error _] means corruption. *)

  val reattach : t -> int
  (** Verify and return the durable root count; fails on corruption. *)
end
