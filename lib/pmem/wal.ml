(** A checksummed write-ahead log over persistent cells.

    The log is the durability backbone of whole-system recovery
    (ROADMAP item 2): allocation intents, frees, and root-directory
    registrations are appended {e before} the state change they
    describe becomes reachable (log-then-link), so replaying the log
    after a crash reconstructs every in-flight transition without
    scanning the heap blind.

    Layout.  Records are fixed-size — {!Codec.words_per_record} words:
    [kind], [a], [b], [checksum] — and each record's four cells are
    allocated as one co-located block, so at realistic line sizes a
    record persists with a single write-back.  The log is split into
    per-thread {e lanes} (as in per-thread logging designs such as
    Memento's), so concurrent appenders never interleave within a lane
    and each lane independently satisfies the prefix discipline:

    {v valid-record*  (torn-record)?  empty-slot* v}

    The checksum covers the record's absolute slot index (so a record
    copied to another slot does not validate), its kind, and both
    payload words, through a chain of bijective 63-bit mixing steps —
    any single-bit flip of any stored word changes the field being
    mixed and therefore the final sum (see {!Codec.checksum}), which
    [test/test_wal.ml] checks exhaustively by QCheck.

    Torn tails.  An append writes the payload words, then the
    checksum, then flushes and drains.  A crash in the middle leaves
    the lane's final record with a subset of its words persisted: the
    checksum cannot match (a matching sum would require every covered
    word, and itself, to have survived), so replay detects the record
    as torn and drops it — the logged transition simply never
    happened, which log-then-link makes safe by construction.  A
    non-final invalid record, by contrast, can never be produced by a
    crash (later records in the lane were appended — and persisted —
    after it), so replay reports it as corruption instead of guessing. *)

module Metrics = Dssq_obs.Metrics

exception Full of { lane : int }
(** A lane's slots are exhausted; the creator sized the log too small
    for the workload.  Carries the starved lane (= thread id). *)

exception Corrupted of { lane : int; slot : int }
(** Replay found an invalid record with valid records after it in the
    same lane — not a torn tail but genuine corruption (bit rot, or a
    torn record that later appends somehow skipped).  Recovery must not
    proceed past it silently; [dssq fsck] reports it and exits
    non-zero. *)

(** The pure record codec: checksum, encode, classify.  No memory
    backend involved, so the QCheck properties in [test/test_wal.ml]
    drive it directly. *)
module Codec = struct
  let words_per_record = 4

  (* Record kinds used by the recovery system.  0 is reserved: an
     all-zero slot is "never written".  Users may define further kinds
     (>= 16). *)
  let kind_alloc = 1 (* node allocation intent: a = node, b = pool/tid *)
  let kind_free = 2 (* node returned to a free list: a = node, b = pool/tid *)
  let kind_root = 3 (* root-directory registration: a = entry index *)

  (* One bijective mixing step mod 2^63: multiplication by an odd
     constant and xor-shift are both invertible, so distinct inputs
     stay distinct.  The constants are the (63-bit-truncated, odd)
     xorshift*/splitmix finalizer multipliers. *)
  let mix x =
    let x = x * 0x2545F4914F6CDD1D in
    let x = x lxor (x lsr 31) in
    let x = x * 0x27BB2EE687B0B0FD in
    x lxor (x lsr 27)

  (** Checksum of record [(kind, a, b)] stored at absolute slot
      [slot].  Each field enters through its own bijective step, so
      for any one field (the others fixed) the map field -> checksum
      is injective: flipping any single bit of [slot], [kind], [a] or
      [b] always changes the sum, and flipping a bit of the stored sum
      itself trivially mismatches.  This is a corruption {e detector}
      with deterministic single-bit coverage, not a cryptographic
      MAC. *)
  let checksum ~slot ~kind ~a ~b =
    mix (mix (mix (mix (slot + 0x9E3779B9) lxor kind) lxor a) lxor b)

  (** How a stored slot reads back. *)
  type classified =
    | Empty  (** all four words zero: never written *)
    | Valid of { kind : int; a : int; b : int }
    | Invalid  (** nonzero but checksum (or kind) does not validate *)

  let classify ~slot ~kind ~a ~b ~sum =
    if kind = 0 && a = 0 && b = 0 && sum = 0 then Empty
    else if kind >= 1 && sum = checksum ~slot ~kind ~a ~b then
      Valid { kind; a; b }
    else Invalid
end

(** One decoded record, as handed to replay consumers. *)
type record = { r_lane : int; r_kind : int; r_a : int; r_b : int }

(** Verification verdict for one lane. *)
type lane_state =
  | Clean of int  (** [n] valid records, clean empty tail *)
  | Torn of { valid : int; at : int }
      (** [valid] good records, then one torn record at slot [at]
          (lane-relative), then empty — droppable, reportable *)
  | Corrupt of { at : int }
      (** invalid or empty slot at [at] with valid/nonzero slots after
          it: prefix discipline broken, not recoverable *)

let m_appends = Metrics.counter "wal_appends"
let m_replays = Metrics.counter "wal_replays"

module Make (M : Dssq_memory.Memory_intf.S) = struct
  type slot = {
    s_kind : int M.cell;
    s_a : int M.cell;
    s_b : int M.cell;
    s_sum : int M.cell;
  }

  type t = {
    name : string;
    lanes : int;
    lane_capacity : int;
    slots : slot array;  (** [lanes * lane_capacity], lane-major *)
    cursors : int array;
        (** volatile per-lane append position; rebuilt by [replay] *)
  }

  let create ?(name = "wal") ~lanes ~lane_capacity () =
    if lanes < 1 then invalid_arg "Wal.create: lanes must be >= 1";
    if lane_capacity < 1 then
      invalid_arg "Wal.create: lane_capacity must be >= 1";
    let slots =
      Array.init (lanes * lane_capacity) (fun i ->
          match
            M.alloc_block ~name:(Printf.sprintf "%s[%d]" name i) [ 0; 0; 0; 0 ]
          with
          | [ k; a; b; s ] -> { s_kind = k; s_a = a; s_b = b; s_sum = s }
          | _ -> assert false)
    in
    { name; lanes; lane_capacity; slots; cursors = Array.make lanes 0 }

  let lanes t = t.lanes
  let lane_capacity t = t.lane_capacity
  let abs_slot t ~lane i = (lane * t.lane_capacity) + i
  let appended t = Array.fold_left ( + ) 0 t.cursors

  (** Append one record to [lane] and make it durable before
      returning: payload words, then the checksum, then a flush of the
      record's block and a drain.  This is the persistence point the
      log-then-link discipline relies on — when [append] returns, a
      crash at any later time replays the record (or, if the crash
      lands {e inside} [append], drops a detectably-torn tail). *)
  let append t ~lane ~kind ~a ~b =
    if kind < 1 then invalid_arg "Wal.append: kind must be >= 1";
    if lane < 0 || lane >= t.lanes then invalid_arg "Wal.append: bad lane";
    let i = t.cursors.(lane) in
    if i >= t.lane_capacity then raise (Full { lane });
    let slot = abs_slot t ~lane i in
    let s = t.slots.(slot) in
    M.write s.s_kind kind;
    M.write s.s_a a;
    M.write s.s_b b;
    M.write s.s_sum (Codec.checksum ~slot ~kind ~a ~b);
    (* One write-back at realistic line sizes (the block shares a
       line); at line size 1, four. *)
    M.flush s.s_kind;
    M.flush s.s_a;
    M.flush s.s_b;
    M.flush s.s_sum;
    M.drain ();
    t.cursors.(lane) <- i + 1;
    Metrics.incr m_appends

  let read_slot t ~lane i =
    let slot = abs_slot t ~lane i in
    let s = t.slots.(slot) in
    Codec.classify ~slot ~kind:(M.read s.s_kind) ~a:(M.read s.s_a)
      ~b:(M.read s.s_b) ~sum:(M.read s.s_sum)

  (* Scan one lane: the valid prefix, then what follows it. *)
  let scan_lane t lane =
    let records = ref [] in
    let i = ref 0 in
    let state = ref None in
    while !state = None && !i < t.lane_capacity do
      (match read_slot t ~lane !i with
      | Codec.Valid { kind; a; b } ->
          records := { r_lane = lane; r_kind = kind; r_a = a; r_b = b }
                     :: !records
      | Codec.Empty -> state := Some `Empty_at
      | Codec.Invalid -> state := Some `Invalid_at);
      if !state = None then incr i
    done;
    let valid = List.length !records in
    let rest_all_empty from =
      let ok = ref true in
      for j = from to t.lane_capacity - 1 do
        if !ok && read_slot t ~lane j <> Codec.Empty then ok := false
      done;
      !ok
    in
    let state =
      match !state with
      | None -> Clean valid
      | Some `Empty_at ->
          if rest_all_empty (!i + 1) then Clean valid
          else Corrupt { at = !i }
      | Some `Invalid_at ->
          if rest_all_empty (!i + 1) then Torn { valid; at = !i }
          else Corrupt { at = !i }
    in
    (state, List.rev !records)

  (** Classify every lane without mutating anything — the strict
      validation pass behind [dssq fsck]. *)
  let states t = List.init t.lanes (fun lane -> fst (scan_lane t lane))

  (** Strict verification: [Ok n] with the total record count only if
      every lane is clean.  A torn tail — legal for {!replay} to drop —
      is still reported here, because [fsck] wants to surface it. *)
  let verify t =
    let rec go lane acc =
      if lane >= t.lanes then Ok acc
      else
        match fst (scan_lane t lane) with
        | Clean n -> go (lane + 1) (acc + n)
        | Torn { valid; at } ->
            Error
              (Printf.sprintf
                 "%s: lane %d has a torn record at slot %d (after %d valid)"
                 t.name lane at valid)
        | Corrupt { at } ->
            Error
              (Printf.sprintf
                 "%s: lane %d is corrupt at slot %d (valid data follows an \
                  invalid record)"
                 t.name lane at)
    in
    go 0 0

  (** Replay the log after a crash: returns every valid record,
      lane-major and in append order within each lane, together with
      the number of torn tail records dropped.  Restores the volatile
      append cursors to the end of each lane's valid prefix, so the
      log is appendable again.  Read-only on persistent state —
      replaying twice returns the same records and leaves the same
      heap (the idempotence property test_wal checks).
      @raise Corrupted on a lane whose invalid record is not a tail. *)
  let replay t =
    let torn = ref 0 in
    let records =
      List.concat
        (List.init t.lanes (fun lane ->
             let state, records = scan_lane t lane in
             (match state with
             | Clean n -> t.cursors.(lane) <- n
             | Torn { valid; at = _ } ->
                 incr torn;
                 t.cursors.(lane) <- valid
             | Corrupt { at } -> raise (Corrupted { lane; slot = at }));
             records))
    in
    Metrics.incr m_replays;
    (records, !torn)

  (** Reset the log after a successful recovery checkpoint: zero every
      written slot, persistently, highest slot first within each lane
      and the checksum word first within each slot — so a crash in the
      middle of truncation still leaves each lane a valid prefix plus
      at most one torn record, never a corrupt interior. *)
  let truncate t =
    for lane = 0 to t.lanes - 1 do
      (* The cursor may understate after a torn append; wipe every
         nonzero slot from the top of the lane down. *)
      for i = t.lane_capacity - 1 downto 0 do
        if read_slot t ~lane i <> Codec.Empty then begin
          let s = t.slots.(abs_slot t ~lane i) in
          M.write s.s_sum 0;
          M.write s.s_kind 0;
          M.write s.s_a 0;
          M.write s.s_b 0;
          M.flush s.s_sum;
          M.flush s.s_kind;
          M.flush s.s_a;
          M.flush s.s_b
        end
      done;
      t.cursors.(lane) <- 0
    done;
    M.drain ()

  (** Deliberately damage a stored record word — the corruption
      injection hook behind [dssq fsck --corrupt] and the checksum
      property tests.  [word] selects kind (0), a (1), b (2) or the
      checksum (3); the new value is [f old], written and persisted. *)
  let corrupt_word t ~lane ~slot ~word ~f =
    let s = t.slots.(abs_slot t ~lane slot) in
    let tweak c =
      M.write c (f (M.read c));
      M.flush c
    in
    (match word with
    | 0 -> tweak s.s_kind
    | 1 -> tweak s.s_a
    | 2 -> tweak s.s_b
    | 3 -> tweak s.s_sum
    | _ -> invalid_arg "Wal.corrupt_word: word must be 0..3");
    M.drain ()
end
