(** A simulated persistent-memory word with a volatile and a persisted
    copy.  See [Heap] for the operations; the record is exposed so that
    the scheduler and tests can inspect cells directly. *)

module Line = Dssq_memory.Memory_intf.Line

type 'a t = {
  id : int;
  name : string;
  line : Line.t;  (** persist line the word lives in *)
  mutable volatile : 'a;  (** what loads/stores/CAS observe (coherent) *)
  mutable persisted : 'a;  (** what survives a crash *)
  mutable dirty : bool;  (** volatile differs from persisted *)
}

type packed = Packed : 'a t -> packed
(** Existential wrapper so a heap can track cells of every type. *)

val value_equal : 'a -> 'a -> bool
(** Physical equality — the comparison CAS uses (exact for immediates). *)

val is_dirty : 'a t -> bool

val line : 'a t -> Line.t

val line_id : 'a t -> int

val pp_summary : Format.formatter -> packed -> unit
