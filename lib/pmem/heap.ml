(** A simulated persistent heap: the set of all allocated cells plus
    bookkeeping for crashes and statistics.

    The heap itself is single-domain: simulated "threads" are cooperative
    coroutines scheduled by [Dssq_sim], so plain mutation here is safe and
    deterministic. *)

module Trace = Dssq_obs.Trace

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cases : int;
  mutable flushes : int;
  mutable fences : int;
}

type t = {
  mutable cells : Cell.packed list; (* most recently allocated first *)
  mutable next_id : int;
  stats : stats;
  mutable in_sim : bool;
      (* When true, memory operations must be routed through the scheduler
         (performed as effects); when false they apply directly — used for
         initialization and single-threaded recovery code. *)
}

let create () =
  {
    cells = [];
    next_id = 0;
    stats = { reads = 0; writes = 0; cases = 0; flushes = 0; fences = 0 };
    in_sim = false;
  }

let alloc t ?(name = "") v =
  let cell =
    { Cell.id = t.next_id; name; volatile = v; persisted = v; dirty = false }
  in
  t.next_id <- t.next_id + 1;
  t.cells <- Cell.Packed cell :: t.cells;
  cell

(* Direct application of memory operations to the heap.  Each operation
   reports itself to the tracer (a load + branch when tracing is off);
   the dirtiness recorded is the cell's state AFTER the event, so a
   trace shows exactly which lines a crash can lose. *)

let traced op (c : 'a Cell.t) =
  if Trace.is_on () then
    Trace.mem op ~cell:c.Cell.id ~name:c.Cell.name ~dirty:c.Cell.dirty

let read t (c : 'a Cell.t) : 'a =
  t.stats.reads <- t.stats.reads + 1;
  traced `Read c;
  c.volatile

let write t (c : 'a Cell.t) (v : 'a) =
  t.stats.writes <- t.stats.writes + 1;
  c.volatile <- v;
  c.dirty <- true;
  traced `Write c

let cas t (c : 'a Cell.t) ~(expected : 'a) ~(desired : 'a) =
  t.stats.cases <- t.stats.cases + 1;
  let hit =
    if Cell.value_equal c.volatile expected then begin
      c.volatile <- desired;
      c.dirty <- true;
      true
    end
    else false
  in
  traced `Cas c;
  hit

let flush t (c : 'a Cell.t) =
  t.stats.flushes <- t.stats.flushes + 1;
  c.persisted <- c.volatile;
  c.dirty <- false;
  traced `Flush c

let fence t =
  t.stats.fences <- t.stats.fences + 1;
  if Trace.is_on () then Trace.mem `Fence ~cell:(-1) ~name:"" ~dirty:false

let dirty_count t =
  List.fold_left
    (fun acc (Cell.Packed c) -> if c.dirty then acc + 1 else acc)
    0 t.cells

(** Crash the machine.  For every dirty cell, [evict] decides whether the
    volatile value was written back by cache eviction before power was
    lost ([true]) or discarded ([false]).  Afterwards volatile state
    equals persisted state everywhere, which is what recovery code and
    restarted threads observe. *)
let crash t ~evict =
  let verdicts = ref [] in
  List.iter
    (fun (Cell.Packed c) ->
      if c.dirty then begin
        let evicted = evict () in
        if evicted then c.persisted <- c.volatile else c.volatile <- c.persisted;
        c.dirty <- false;
        if Trace.is_on () then verdicts := (c.id, c.name, evicted) :: !verdicts
      end)
    t.cells;
  if Trace.is_on () then Trace.crash ~verdicts:(List.rev !verdicts)

(** Convenience: crash where each dirty line independently persists with
    probability [evict_p], driven by [rng]. *)
let crash_random t ~evict_p ~rng =
  crash t ~evict:(fun () -> Random.State.float rng 1.0 < evict_p)

let stats t = t.stats

(** The same statistics as an immutable {!Dssq_memory.Memory_intf.counters}
    snapshot — the uniform accounting currency shared with the native
    backend. *)
let counters t : Dssq_memory.Memory_intf.counters =
  {
    Dssq_memory.Memory_intf.reads = t.stats.reads;
    writes = t.stats.writes;
    cases = t.stats.cases;
    flushes = t.stats.flushes;
    fences = t.stats.fences;
  }

let reset_stats t =
  let s = t.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.cases <- 0;
  s.flushes <- 0;
  s.fences <- 0

let cell_count t = List.length t.cells
