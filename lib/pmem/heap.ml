(** A simulated persistent heap: the set of all allocated cells plus
    bookkeeping for crashes and statistics.

    The heap itself is single-domain: simulated "threads" are cooperative
    coroutines scheduled by [Dssq_sim], so plain mutation here is safe and
    deterministic.

    Persistence is line-granular: cells are placed into persist lines by
    a {!Line.Alloc} allocator at allocation time, [flush] writes back the
    cell's whole line (persisting every dirty member), flushing a clean
    line is elided, and a crash evicts or drops each line as a unit. *)

module Trace = Dssq_obs.Trace
module Heatmap = Dssq_obs.Heatmap
module Profile = Dssq_obs.Profile
module Line = Dssq_memory.Memory_intf.Line
module Persistency = Dssq_memory.Memory_intf.Persistency

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cases : int;
  mutable pwrites : int;
  mutable flushes : int;
  mutable elided_flushes : int;
  mutable coalesced_flushes : int;
  mutable fences : int;
  mutable elided_fences : int;
}

type t = {
  mutable cells : Cell.packed list; (* most recently allocated first *)
  mutable next_id : int;
  line_alloc : Line.Alloc.t;
  line_members : (int, Cell.packed list ref) Hashtbl.t;
      (* line id -> member cells; flush persists all dirty members *)
  lines : (int, Line.t) Hashtbl.t;
  stats : stats;
  mutable in_sim : bool;
      (* When true, memory operations must be routed through the scheduler
         (performed as effects); when false they apply directly — used for
         initialization and single-threaded recovery code. *)
  mutable cur_tid : int;
      (* Thread on whose behalf memory operations currently apply: set by
         the stepping machine before each step, -1 in direct mode.  Keys
         the per-thread coalescing buffers. *)
  pending : (int, (int, Line.t) Hashtbl.t) Hashtbl.t;
      (* tid -> line id -> line: lines flushed by the thread since its
         last drain (coalescing mode only).  Pending lines stay dirty, so
         the crash adversary covers the whole deferral window. *)
  pending_calls : (int, int) Hashtbl.t;
      (* tid -> flush calls absorbed since the thread's last drain *)
  pending_order : (int, int list ref) Hashtbl.t;
      (* tid -> pending line ids, newest first (reverse FIFO).  Mirrors
         [pending]; under px86 the drain writes back in FIFO order and
         the crash adversary persists FIFO prefixes, so order is part of
         the model, not just bookkeeping. *)
  persistency : Persistency.t;
      (* Sc: flushes are synchronous unless coalescing is opted into and
         stores auto-drain (persist order = flush order).  Px86: every
         flush buffers, stores never auto-drain, only drain/fence — or
         the crash adversary — writes buffers back. *)
  mutable reorder_pat : string option;
      (* Fault injection for the checker's relaxed mutants: a flush of a
         cell whose name contains this pattern enqueues at the FRONT of
         the thread's FIFO instead of the back — a persist that jumps
         the program's persist order.  Invisible under sc (no buffer). *)
  mutable short_drain : bool;
      (* Fault injection (checker's short-drain mutant): each px86 drain
         misses the newest buffered entry — the off-by-one persist
         barrier that covers every pwb except the one issued just before
         it.  Invisible under sc (eager flushes leave nothing pending). *)
  combine : bool;
      (* Flat-combining batch epochs: every flush buffers (even under
         Sc), stores never auto-drain, and only explicit drains — or the
         crash adversary's prefix write-backs — empty the buffers.  The
         write-back of a buffered line re-orders at its {e latest} flush
         or store ([refresh_pending]): the buffered entry persists the
         current value, so its position in the persist FIFO follows the
         last modification, which is what lets the objects replace
         per-op hardening drains with FIFO order inside one epoch. *)
}

let create ?(line_size = 1) ?(persistency = Persistency.Sc) ?(combine = false)
    () =
  {
    cells = [];
    next_id = 0;
    line_alloc = Line.Alloc.create ~size:line_size ();
    line_members = Hashtbl.create 64;
    lines = Hashtbl.create 64;
    stats =
      {
        reads = 0;
        writes = 0;
        cases = 0;
        pwrites = 0;
        flushes = 0;
        elided_flushes = 0;
        coalesced_flushes = 0;
        fences = 0;
        elided_fences = 0;
      };
    in_sim = false;
    cur_tid = -1;
    pending = Hashtbl.create 8;
    pending_calls = Hashtbl.create 8;
    pending_order = Hashtbl.create 8;
    persistency;
    reorder_pat = None;
    short_drain = false;
    combine;
  }

let persistency t = t.persistency
let combine t = t.combine

(* Buffered routing: flushes enter per-thread persist buffers instead of
   writing back synchronously.  Px86 is buffered by definition; combine
   mode opts the Sc heap into the same machinery so one batch drain can
   retire many operations' flushes. *)
let buffered t = t.persistency = Persistency.Px86 || t.combine

let line_size t = Line.Alloc.line_size t.line_alloc

let alloc t ?(name = "") ?placement v =
  let line = Line.Alloc.place ?placement t.line_alloc in
  let cell =
    { Cell.id = t.next_id; name; line; volatile = v; persisted = v; dirty = false }
  in
  t.next_id <- t.next_id + 1;
  t.cells <- Cell.Packed cell :: t.cells;
  let lid = line.Line.id in
  (match Hashtbl.find_opt t.line_members lid with
  | Some members -> members := Cell.Packed cell :: !members
  | None ->
      Hashtbl.add t.lines lid line;
      Hashtbl.add t.line_members lid (ref [ Cell.Packed cell ]));
  if Heatmap.is_on () then Heatmap.note ~line:lid ~name;
  cell

(** Co-located cells: the block starts at a fresh line boundary and the
    allocator is re-aligned afterwards, so distinct blocks never share a
    line.  With the default line size a node's fields land on one line
    and cost one write-back to persist together. *)
let alloc_block t ?(name = "") vs =
  Line.Alloc.align t.line_alloc;
  let cells =
    List.mapi
      (fun i v ->
        let name = if name = "" then "" else Printf.sprintf "%s[%d]" name i in
        alloc t ~name v)
      vs
  in
  Line.Alloc.align t.line_alloc;
  cells

let members t (l : Line.t) =
  match Hashtbl.find_opt t.line_members l.Line.id with
  | Some members -> !members
  | None -> []

(* Direct application of memory operations to the heap.  Each operation
   reports itself to the tracer (a load + branch when tracing is off);
   the dirtiness recorded is the cell's state AFTER the event, so a
   trace shows exactly which lines a crash can lose. *)

let traced op (c : 'a Cell.t) =
  if Trace.is_on () then
    Trace.mem op ~cell:c.Cell.id ~name:c.Cell.name
      ~line:c.Cell.line.Line.id ~dirty:c.Cell.dirty

(* Attribution of persist events: per-line to the heatmap, per-phase
   (keyed by the thread the scheduler is stepping) to the profiler.
   Both off by default — one load + branch each, the tracer's cost
   discipline. *)
let attrib t ev ~line =
  if Heatmap.is_on () then Heatmap.record ev ~line;
  if Profile.is_on () then Profile.event ~tid:t.cur_tid ev

(* Write the whole line back: every dirty member persists in the one
   write-back (CLWB acts on the full cache line). *)
let persist_line t (l : Line.t) =
  List.iter
    (fun (Cell.Packed m) ->
      if m.Cell.dirty then begin
        m.Cell.persisted <- m.Cell.volatile;
        m.Cell.dirty <- false
      end)
    (members t l)

(* ------------------------------------------------------------------ *)
(* Flush coalescing: per-thread persist buffers.  Defined before the
   plain operations because stores and CAS auto-drain: a pending flush
   must complete before any later store by the same thread, or
   coalescing would reorder eager code's flush-before-dependent-store
   sequences.  The buffers are only ever populated through
   [flush_coalesced], so on the eager path every operation below pays
   one hash lookup miss and nothing else — event streams are
   bit-for-bit identical. *)

let buffer t tid =
  match Hashtbl.find_opt t.pending tid with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 8 in
      Hashtbl.add t.pending tid b;
      b

let order t tid =
  match Hashtbl.find_opt t.pending_order tid with
  | Some o -> o
  | None ->
      let o = ref [] in
      Hashtbl.add t.pending_order tid o;
      o

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let has_pending t =
  match Hashtbl.find_opt t.pending t.cur_tid with
  | Some b -> Hashtbl.length b > 0
  | None -> false

let pending_lines t =
  match Hashtbl.find_opt t.pending t.cur_tid with
  | Some b -> Hashtbl.fold (fun lid _ acc -> lid :: acc) b [] |> List.sort compare
  | None -> []

let bump_calls t =
  Hashtbl.replace t.pending_calls t.cur_tid
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pending_calls t.cur_tid))

(** Coalescing flush: record the cell's line in the current thread's
    persist buffer instead of writing it back now.  A line already
    pending is deduplicated ([coalesced_flushes]); a clean line has
    nothing to write back and is elided outright, {e at any} line size —
    the size-1 always-charge rule of {!flush} exists only to reproduce
    the legacy eager cost model, which the coalescing mode replaces.
    Volatile and persisted state are untouched: the line stays dirty, so
    a crash before the drain exposes exactly the not-yet-persisted
    window the deferral creates. *)
let flush_coalesced t (c : 'a Cell.t) =
  let line = c.Cell.line in
  let b = buffer t t.cur_tid in
  if Hashtbl.mem b line.Line.id then begin
    t.stats.coalesced_flushes <- t.stats.coalesced_flushes + 1;
    bump_calls t;
    (* Combine epochs: a re-flushed line's write-back re-orders at the
       latest flush (the buffered entry persists the current value). *)
    if t.combine then begin
      let ord = order t t.cur_tid in
      ord := line.Line.id :: List.filter (fun l -> l <> line.Line.id) !ord
    end;
    attrib t `Coalesce ~line:line.Line.id
  end
  else if Line.is_dirty line then begin
    Hashtbl.add b line.Line.id line;
    (let ord = order t t.cur_tid in
     match t.reorder_pat with
     | Some pat when contains_sub c.Cell.name pat ->
         (* front of the FIFO = end of the newest-first list *)
         ord := !ord @ [ line.Line.id ]
     | _ -> ord := line.Line.id :: !ord);
    bump_calls t
  end
  else begin
    t.stats.elided_flushes <- t.stats.elided_flushes + 1;
    attrib t `Elide ~line:line.Line.id
  end;
  traced `Flush c

(** Drain the current thread's persist buffer: write every pending line
    back and fence once.  Counts one effective flush per line that is
    still dirty (a concurrent drain may have beaten us to a shared
    line), one fence for the barrier, and [k-1] elided fences for the
    [k] flush calls the barrier absorbed. *)
let drain t =
  match Hashtbl.find_opt t.pending t.cur_tid with
  | None -> ()
  | Some b when Hashtbl.length b = 0 -> ()
  | Some b ->
      let writeback lid line =
        if Line.take_dirty line then begin
          t.stats.flushes <- t.stats.flushes + 1;
          attrib t `Flush ~line:lid;
          persist_line t line;
          if Trace.is_on () then
            match members t line with
            | Cell.Packed m :: _ -> traced `Flush m
            | [] -> ()
        end
        else begin
          t.stats.elided_flushes <- t.stats.elided_flushes + 1;
          attrib t `Elide ~line:lid
        end
      in
      (* Fault injection (checker's short-drain mutant): the barrier
         misses the newest buffered entry, which stays pending. *)
      let kept =
        match t.persistency with
        | Persistency.Px86 when t.short_drain -> (
            match !(order t t.cur_tid) with
            | newest :: _ -> (
                match Hashtbl.find_opt b newest with
                | Some line -> Some (newest, line)
                | None -> None)
            | [] -> None)
        | _ -> None
      in
      (if t.persistency = Persistency.Sc && not t.combine then
         (* Hash order, as always: persist order within a drain is
            unobservable under sc (the batch is atomic w.r.t. crashes),
            and keeping the historical iteration order keeps event
            streams bit-for-bit identical to the pre-px86 figures. *)
         Hashtbl.iter writeback b
       else
         (* FIFO (px86 and combine epochs): the write-back order is the
            order flushes were issued — re-ordered at the latest flush
            or store under combine — which is what the adversary's
            prefix drains (and hence crash states) are defined
            against. *)
         List.iter
           (fun lid ->
             if match kept with Some (k, _) -> k <> lid | None -> true then
               match Hashtbl.find_opt b lid with
               | Some line -> writeback lid line
               | None -> ())
           (List.rev !(order t t.cur_tid)));
      Hashtbl.reset b;
      (match Hashtbl.find_opt t.pending_order t.cur_tid with
      | Some o -> o := []
      | None -> ());
      (match kept with
      | Some (lid, line) ->
          Hashtbl.replace b lid line;
          (match Hashtbl.find_opt t.pending_order t.cur_tid with
          | Some o -> o := [ lid ]
          | None -> Hashtbl.replace t.pending_order t.cur_tid (ref [ lid ]))
      | None -> ());
      let calls =
        Option.value ~default:0 (Hashtbl.find_opt t.pending_calls t.cur_tid)
      in
      Hashtbl.replace t.pending_calls t.cur_tid 0;
      t.stats.fences <- t.stats.fences + 1;
      t.stats.elided_fences <- t.stats.elided_fences + max 0 (calls - 1);
      attrib t `Fence ~line:(-1);
      if Profile.is_on () then
        for _ = 1 to max 0 (calls - 1) do
          Profile.event ~tid:t.cur_tid `Fence_elided
        done;
      if Trace.is_on () then
        Trace.mem `Fence ~cell:(-1) ~name:"" ~line:(-1) ~dirty:false

(* Auto-drain: complete the thread's pending flushes before it issues a
   store, CAS, or fence.  Folding the drain into the same atomic step is
   sound — a drain changes no volatile state, and the crash state "just
   after the drain" is already reachable by evicting every pending line
   at the crash before this step.

   Under px86 stores do NOT auto-drain: the decoupling of persist order
   from store order is the model, and closing the window here would hide
   exactly the executions the relaxed sweep exists to find.  Explicit
   [fence]/[drain] still write the buffer back. *)
let auto_drain t =
  if t.persistency = Persistency.Sc && (not t.combine) && has_pending t then
    drain t

(* Combine epochs run under {e buffered strict persistency} (Pelley et
   al.'s strict model with asynchronous buffering): every store or CAS
   enqueues its line into the storing thread's persist FIFO — persist
   order follows per-thread store order, write-backs happen at drains or
   by the adversary's prefixes.  Two consequences the drain elisions in
   the objects rely on: (a) no line a simulated thread dirties is ever
   outside a buffer, so the crash adversary's free-form per-line
   verdicts cannot persist a store ahead of the stores before it; (b) a
   store (or re-flush) to a line whose write-back is already pending
   moves that write-back to the FIFO tail — the buffered entry persists
   the line's current contents, so its position must follow the last
   modification or a prefix drain could persist a value {e newer} than
   entries behind it in the buffer. *)
let refresh_pending t (line : Line.t) =
  if t.combine then begin
    let b = buffer t t.cur_tid in
    let ord = order t t.cur_tid in
    if Hashtbl.mem b line.Line.id then
      ord := line.Line.id :: List.filter (fun l -> l <> line.Line.id) !ord
    else begin
      Hashtbl.add b line.Line.id line;
      ord := line.Line.id :: !ord
    end
  end

(** Asynchronous write-back chosen by the crash adversary (px86): persist
    the oldest [count] entries of thread [tid]'s persist buffer, in FIFO
    order, with no fence — modelling CLWBs that happened to complete
    before power failed.  Counted as effective flushes.  Out-of-range
    targets (unknown thread, empty buffer, count past the end) degrade to
    persisting what is there, so replaying a token prefix against a heap
    whose buffers evolved differently stays total. *)
let adversary_drain t ~tid ~count =
  match
    (Hashtbl.find_opt t.pending tid, Hashtbl.find_opt t.pending_order tid)
  with
  | Some b, Some ord when count > 0 ->
      List.iteri
        (fun i lid ->
          if i < count then
            match Hashtbl.find_opt b lid with
            | Some line ->
                Hashtbl.remove b lid;
                if Line.take_dirty line then begin
                  t.stats.flushes <- t.stats.flushes + 1;
                  attrib t `Flush ~line:lid;
                  persist_line t line
                end
                else begin
                  t.stats.elided_flushes <- t.stats.elided_flushes + 1;
                  attrib t `Elide ~line:lid
                end
            | None -> ())
        (List.rev !ord);
      ord := List.filter (fun lid -> Hashtbl.mem b lid) !ord
  | _ -> ()

(** Per-thread persist-buffer contents, oldest first: [(tid, lines)]
    sorted by thread id — the FIFOs the crash adversary draws drain
    prefixes over.  Empty under sc: there the coalescing windows are
    already covered by the per-line verdicts. *)
let pending_fifos t =
  if not (buffered t) then []
  else
    Hashtbl.fold
      (fun tid ord acc ->
        match List.rev !ord with [] -> acc | fifo -> (tid, fifo) :: acc)
      t.pending_order []
    |> List.sort compare

let read t (c : 'a Cell.t) : 'a =
  t.stats.reads <- t.stats.reads + 1;
  traced `Read c;
  c.volatile

let write t (c : 'a Cell.t) (v : 'a) =
  auto_drain t;
  t.stats.writes <- t.stats.writes + 1;
  t.stats.pwrites <- t.stats.pwrites + 1;
  c.volatile <- v;
  c.dirty <- true;
  Line.mark_dirty c.line;
  refresh_pending t c.line;
  attrib t `Pwrite ~line:c.line.Line.id;
  traced `Write c

let cas t (c : 'a Cell.t) ~(expected : 'a) ~(desired : 'a) =
  auto_drain t;
  t.stats.cases <- t.stats.cases + 1;
  let hit =
    if Cell.value_equal c.volatile expected then begin
      t.stats.pwrites <- t.stats.pwrites + 1;
      c.volatile <- desired;
      c.dirty <- true;
      Line.mark_dirty c.line;
      refresh_pending t c.line;
      attrib t `Pwrite ~line:c.line.Line.id;
      true
    end
    else false
  in
  traced `Cas c;
  hit

let flush t (c : 'a Cell.t) =
  if Line.flush_effective c.Cell.line then begin
    t.stats.flushes <- t.stats.flushes + 1;
    attrib t `Flush ~line:c.Cell.line.Line.id;
    persist_line t c.Cell.line
  end
  else begin
    t.stats.elided_flushes <- t.stats.elided_flushes + 1;
    attrib t `Elide ~line:c.Cell.line.Line.id
  end;
  traced `Flush c

let fence t =
  if has_pending t then drain t
  else begin
    t.stats.fences <- t.stats.fences + 1;
    attrib t `Fence ~line:(-1);
    if Trace.is_on () then
      Trace.mem `Fence ~cell:(-1) ~name:"" ~line:(-1) ~dirty:false
  end

let dirty_count t =
  List.fold_left
    (fun acc (Cell.Packed c) -> if c.dirty then acc + 1 else acc)
    0 t.cells

(** Ids of every line holding at least one dirty cell, ascending.  This
    is exactly the set over which a crash draws eviction verdicts — the
    model checker enumerates its subsets. *)
let dirty_lines t =
  List.filter_map
    (fun (Cell.Packed c) -> if c.dirty then Some c.line.Line.id else None)
    t.cells
  |> List.sort_uniq compare

(** Lines eligible for a per-line eviction verdict at a crash.  Under sc
    every dirty line qualifies.  Under px86 a line sitting in some
    thread's persist buffer reaches the persistence domain only through
    that buffer — in FIFO order, via an adversary prefix drain — so the
    free-form verdicts range over the dirty lines {e outside} every
    buffer (stores issued and never flushed). *)
let crash_candidate_lines t =
  if not (buffered t) then dirty_lines t
  else begin
    let in_buffer = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ b ->
        Hashtbl.iter (fun lid _ -> Hashtbl.replace in_buffer lid ()) b)
      t.pending;
    List.filter (fun lid -> not (Hashtbl.mem in_buffer lid)) (dirty_lines t)
  end

(* Shared crash core: [verdict lid] decides, per dirty line, whether the
   line was written back by cache eviction before power was lost ([true])
   or discarded ([false]) — the verdict applies to all the line's dirty
   words as a unit, exactly as a real cache evicts whole lines.
   Afterwards volatile state equals persisted state everywhere, which is
   what recovery code and restarted threads observe. *)
let crash_by_line t ~verdict =
  let verdicts = ref [] in
  (* The heatmap wants one Evict/Drop per line, but this walk visits
     every dirty cell — dedup by line id, allocating only when on. *)
  let seen = if Heatmap.is_on () then Some (Hashtbl.create 16) else None in
  List.iter
    (fun (Cell.Packed c) ->
      if c.dirty then begin
        let evicted = verdict c.line.Line.id in
        if evicted then c.persisted <- c.volatile else c.volatile <- c.persisted;
        c.dirty <- false;
        (match seen with
        | Some seen ->
            let lid = c.line.Line.id in
            if not (Hashtbl.mem seen lid) then begin
              Hashtbl.add seen lid ();
              Heatmap.record (if evicted then `Evict else `Drop) ~line:lid
            end
        | None -> ());
        if Trace.is_on () then verdicts := (c.id, c.name, evicted) :: !verdicts
      end)
    t.cells;
  Hashtbl.iter (fun _ l -> Atomic.set l.Line.dirty false) t.lines;
  (* Power loss wipes the persist buffers with the rest of volatile
     state: pending-but-undrained flushes are simply gone (their lines
     were still dirty, so the per-line verdicts above already decided
     their fate). *)
  Hashtbl.reset t.pending;
  Hashtbl.reset t.pending_calls;
  Hashtbl.reset t.pending_order;
  if Trace.is_on () then Trace.crash ~verdicts:(List.rev !verdicts)

(** Crash with one [evict] draw per dirty line, drawn in the order lines
    are first encountered walking [t.cells] (most recent first); at line
    size 1 this degenerates to the original independent-per-cell draw
    sequence, keeping seeded crashes reproducible across refactors. *)
let crash t ~evict =
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  crash_by_line t ~verdict:(fun lid ->
      match Hashtbl.find_opt memo lid with
      | Some v -> v
      | None ->
          let v = evict () in
          Hashtbl.add memo lid v;
          v)

(** Crash under an explicit per-line adversary: [evict lid] is the
    verdict for line [lid] (queried once per dirty cell, so it must be a
    pure function of the line id).  This is the entry point the model
    checker uses to enumerate eviction subsets over {!dirty_lines}. *)
let crash_lines t ~evict = crash_by_line t ~verdict:evict

(** Convenience: crash where each dirty line independently persists with
    probability [evict_p], driven by [rng]. *)
let crash_random t ~evict_p ~rng =
  crash t ~evict:(fun () -> Random.State.float rng 1.0 < evict_p)

let stats t = t.stats

(** The same statistics as an immutable {!Dssq_memory.Memory_intf.counters}
    snapshot — the uniform accounting currency shared with the native
    backend. *)
let counters t : Dssq_memory.Memory_intf.counters =
  {
    Dssq_memory.Memory_intf.reads = t.stats.reads;
    writes = t.stats.writes;
    cases = t.stats.cases;
    pwrites = t.stats.pwrites;
    flushes = t.stats.flushes;
    elided_flushes = t.stats.elided_flushes;
    coalesced_flushes = t.stats.coalesced_flushes;
    fences = t.stats.fences;
    elided_fences = t.stats.elided_fences;
  }

let reset_stats t =
  let s = t.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.cases <- 0;
  s.pwrites <- 0;
  s.flushes <- 0;
  s.elided_flushes <- 0;
  s.coalesced_flushes <- 0;
  s.fences <- 0;
  s.elided_fences <- 0

let cell_count t = List.length t.cells
let line_count t = Hashtbl.length t.lines
