(** Uniform access to every queue implementation as closure records
    ({!Dssq_core.Queue_intf.ops}), over any memory backend — what the
    benchmark harness and the CLI dispatch on.

    Known names: ["dss-queue"], ["ms-queue"], ["durable-queue"],
    ["log-queue"], ["general-caswe"], ["fast-caswe"]. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  val dss : nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops
  val ms : nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops
  val durable : nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops
  val log : nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops
  val general_caswe : nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops
  val fast_caswe : nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops

  val all :
    (string * (nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops)) list

  val find :
    string -> nthreads:int -> capacity:int -> Dssq_core.Queue_intf.ops
  (** @raise Invalid_argument on an unknown name. *)
end
