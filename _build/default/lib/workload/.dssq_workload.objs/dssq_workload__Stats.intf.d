lib/workload/stats.mli:
