lib/workload/report.ml: Array Buffer Format List Printf Stats String
