lib/workload/sim_throughput.mli: Dssq_core Dssq_pmem
