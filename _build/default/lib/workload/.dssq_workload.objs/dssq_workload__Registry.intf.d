lib/workload/registry.mli: Dssq_core Dssq_memory
