lib/workload/sim_throughput.ml: Array Dssq_core Dssq_pmem Dssq_sim Float Fun Hashtbl Heap Machine Option Random Registry Sim Sim_op
