lib/workload/native_throughput.mli:
