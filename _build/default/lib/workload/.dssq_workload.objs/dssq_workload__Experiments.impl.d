lib/workload/experiments.ml: Array Dssq_core Dssq_pmem Dssq_pmwcas Dssq_sim Heap List Native_throughput Registry Report Sim_throughput
