lib/workload/native_throughput.ml: Array Atomic Domain Dssq_core Dssq_memory Registry Sim_throughput Unix
