lib/workload/experiments.mli: Report
