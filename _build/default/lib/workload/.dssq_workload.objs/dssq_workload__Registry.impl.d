lib/workload/registry.ml: Dss_queue Dssq_baselines Dssq_core Dssq_memory List Printf Queue_intf String
