(** Wall-clock throughput over real OCaml domains and the native backend
    (calibrated persist cost) — the harness to use on an actual multicore
    machine; the shipped figures come from {!Sim_throughput} because this
    container has one core. *)

val measure :
  ?init_nodes:int ->
  ?det_pct:int ->
  mk:string ->
  nthreads:int ->
  duration:float ->
  unit ->
  float
(** Spawn [nthreads] domains alternating enqueue/dequeue pairs on a fresh
    queue ({!Registry} name [mk]) for [duration] seconds; Mops/s. *)
