(** Sample statistics for benchmark reporting (mean over runs with the
    sample standard deviation as the noise bound, as in the paper's
    Section 4). *)

val mean : float list -> float
(** [nan] on the empty list. *)

val stddev : float list -> float
(** Sample (n-1) standard deviation; 0 for fewer than two samples. *)

val rsd : float list -> float
(** Relative standard deviation, percent of the mean. *)

val minimum : float list -> float
val maximum : float list -> float
