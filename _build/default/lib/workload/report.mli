(** Plain-text, chart and CSV rendering of benchmark series — the same
    rows the paper plots in its figures. *)

type point = { x : int; samples : float list }
type series = { label : string; points : point list }

val mean_at : series -> int -> float option
val xs_of : series list -> int list

val print_table :
  ?out:Format.formatter ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  unit

val to_csv : x_label:string -> series list -> string

val print_chart : ?out:Format.formatter -> ?height:int -> series list -> unit
(** Compact ASCII scalability chart, so the figure's shape is visible in
    a terminal. *)
