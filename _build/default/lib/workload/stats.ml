(** Small statistics helpers for reporting benchmark samples the way the
    paper does (mean over a sample of runs, with the sample standard
    deviation as the noise bound — Section 4). *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      sqrt (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. (n -. 1.))

(** Relative standard deviation, in percent of the mean. *)
let rsd xs =
  let m = mean xs in
  if m = 0. then 0. else 100. *. stddev xs /. m

let minimum xs = List.fold_left min infinity xs
let maximum xs = List.fold_left max neg_infinity xs
