(** Wall-clock throughput harness over real OCaml domains and the native
    [Atomic.t] backend with the calibrated persist cost.

    This is the harness to use on an actual multicore machine.  The
    container this repository was developed in has a single core, so the
    shipped figures come from {!Sim_throughput} instead; this harness
    still runs there (domains timeslice), which is exercised by the test
    suite with small parameters. *)

module Native = Dssq_memory.Native
module R = Registry.Make (Native)

let now () = Unix.gettimeofday ()

(** Run [nthreads] domains alternating enqueue/dequeue pairs on a fresh
    queue for [duration] seconds; returns Mops/s.
    [det_pct] is as in {!Sim_throughput.pair_worker}. *)
let measure ?(init_nodes = 16) ?(det_pct = 100) ~mk ~nthreads ~duration () =
  let capacity = init_nodes + 8 + (nthreads * 4096) in
  let ops : Dssq_core.Queue_intf.ops = R.find mk ~nthreads ~capacity in
  for i = 1 to init_nodes do
    (* round-robin: per-thread node pools are striped *)
    ops.enqueue ~tid:(i mod nthreads) i
  done;
  let start = Atomic.make false in
  let stop = Atomic.make false in
  let worker tid () =
    while not (Atomic.get start) do
      Domain.cpu_relax ()
    done;
    let count = ref 0 in
    let i = ref 0 in
    while not (Atomic.get stop) do
      let detectable = Sim_throughput.detectable ~det_pct !i in
      let v = (tid * 1_000_000) + (!i land 0xFFFF) in
      if detectable then begin
        ops.d_enqueue ~tid v;
        ignore (ops.d_dequeue ~tid)
      end
      else begin
        ops.enqueue ~tid v;
        ignore (ops.dequeue ~tid)
      end;
      count := !count + 2;
      incr i
    done;
    !count
  in
  let domains = Array.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  let t0 = now () in
  Atomic.set start true;
  Unix.sleepf duration;
  Atomic.set stop true;
  let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let elapsed = now () -. t0 in
  float_of_int total /. elapsed /. 1e6
