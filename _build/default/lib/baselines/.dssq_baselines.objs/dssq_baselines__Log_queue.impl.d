lib/baselines/log_queue.ml: Array Dssq_core Dssq_ebr Dssq_memory List Node_pool Printf Queue_intf Tagged
