lib/baselines/caswe_queue.ml: Array Atomic Dssq_core Dssq_ebr Dssq_memory Dssq_pmwcas List Node_pool Printf Queue_intf Tagged
