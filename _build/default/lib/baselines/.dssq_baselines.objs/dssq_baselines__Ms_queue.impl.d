lib/baselines/ms_queue.ml: Dssq_core Dssq_ebr Dssq_memory List Node_pool Queue_intf Tagged
