lib/pmem/cell.ml: Format
