lib/pmem/heap.mli: Cell Random
