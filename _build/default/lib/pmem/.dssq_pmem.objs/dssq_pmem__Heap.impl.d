lib/pmem/heap.ml: Cell List Random
