lib/pmem/cell.mli: Format
