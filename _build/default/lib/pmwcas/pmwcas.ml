(** Persistent Multi-word Compare-And-Swap, after Wang, Levandoski &
    Larson (ICDE 2018) — the substrate of the paper's General and Fast
    CASWithEffect queue baselines (Figure 5b).

    Structure of an operation on descriptor [d]:

    + {b Install}: for each shared target word, in canonical (ascending
      address) order, replace the expected value with a pointer to [d]
      using an RDCSS sub-protocol (a conditional CAS that refuses to
      install once [d]'s status is decided, so late installs cannot
      corrupt a finished operation).  Any thread that reads a descriptor
      pointer helps the operation to completion first — the whole scheme
      is lock-free.
    + {b Persist + decide}: flush the installed words, then CAS the
      status from Undecided to Succeeded (or to Failed on an expected-
      value mismatch), and flush the status.  The status word is the
      linearization/persistence point.
    + {b Finalize}: replace each descriptor pointer with the new value
      (on success) or the expected value (on failure), flushing each.
      {e Private} words — words only their owner ever writes, the Fast
      CASWithEffect optimization — skip the install phase entirely and
      are simply written during finalize, saving a CAS, a read and an
      install flush per word.

    Descriptors live in per-thread pools of persistent words so that
    {b recovery} can roll every {e active} descriptor forward or back
    after a crash: an [active] flag is set (and flushed) before install
    and cleared after finalize, bounding exactly which descriptors
    recovery may touch (in particular, a stale Succeeded descriptor can
    never re-clobber a private word that later operations moved on).

    Word addresses are small ints handed out by {!alloc}; user values
    must be non-negative and below 2^52 (descriptor and RDCSS pointers
    are distinguished by tag bits 53 and 52, see [Dssq_core.Tagged]). *)

open Dssq_core

let undecided = 0
let succeeded = 1
let failed = 2

exception Descriptor_pool_exhausted of int

module Make (M : Dssq_memory.Memory_intf.S) = struct
  type t = {
    words : int M.cell array;
    mutable next_word : int;
    max_width : int;
    ring : int;
    nthreads : int;
    (* Descriptor pool, indexed 1 .. nthreads*ring.  Per-descriptor
       persistent fields: *)
    status : int M.cell array;
    meta : int M.cell array; (* word count lor [active_bit] *)
    (* Per-slot persistent descriptor content, one line per slot,
       indexed (d-1)*max_width + k: (target, expected, desired, private) *)
    slots : (int * int * int * bool) M.cell array;
    free_descs : int list ref array; (* volatile, thread-local *)
    ebr : int Dssq_ebr.Ebr.t;
  }

  let create ?(ring = 64) ?(max_width = 4) ~nwords ~nthreads () =
    let ndescs = nthreads * ring in
    let mk name count init =
      Array.init count (fun i -> M.alloc ~name:(Printf.sprintf "%s[%d]" name i) init)
    in
    let free_descs = Array.init nthreads (fun _ -> ref []) in
    for d = ndescs downto 1 do
      let owner = (d - 1) mod nthreads in
      free_descs.(owner) := d :: !(free_descs.(owner))
    done;
    let t =
      {
        words = mk "w" nwords 0;
        next_word = 0;
        max_width;
        ring;
        nthreads;
        status = mk "status" (ndescs + 1) undecided;
        meta = mk "meta" (ndescs + 1) 0;
        slots = mk "slot" (ndescs * max_width) (0, 0, 0, false);
        free_descs;
        ebr = Dssq_ebr.Ebr.create ~nthreads ~free:(fun ~tid:_ _ -> ()) ();
      }
    in
    (* EBR's free callback needs [t]; rebuild it with the real one. *)
    let ebr =
      Dssq_ebr.Ebr.create ~nthreads
        ~free:(fun ~tid d -> t.free_descs.(tid) := d :: !(t.free_descs.(tid)))
        ()
    in
    { t with ebr }

  (* -------------------- word management ---------------------------- *)

  let alloc t ?name v =
    ignore name;
    if t.next_word >= Array.length t.words then
      invalid_arg "Pmwcas.alloc: out of words";
    let a = t.next_word in
    t.next_word <- t.next_word + 1;
    M.write t.words.(a) v;
    M.flush t.words.(a);
    a

  let cell t a = t.words.(a)

  (** Direct store, for initialization and owner-private words that are
      not currently targeted by any descriptor. *)
  let write_quiet t a v =
    M.write t.words.(a) v;
    M.flush t.words.(a)

  let flush_word t a = M.flush t.words.(a)

  (* -------------------- descriptor encoding ------------------------ *)

  let desc_ptr d = Tagged.with_tag d Tagged.pmwcas_desc
  let is_desc v = v >= 0 && Tagged.has v Tagged.pmwcas_desc
  let desc_of v = Tagged.idx v
  let rdcss_ptr t d k = Tagged.with_tag (((d - 1) * t.max_width) + k) Tagged.pmwcas_rdcss
  let is_rdcss v = v >= 0 && Tagged.has v Tagged.pmwcas_rdcss

  let rdcss_of t v =
    let payload = Tagged.idx v in
    ((payload / t.max_width) + 1, payload mod t.max_width)

  let slot t d k = t.slots.(((d - 1) * t.max_width) + k)

  let active_bit = 1 lsl 30
  let count_of meta = meta land (active_bit - 1)
  let is_active meta = meta land active_bit <> 0

  (* Descriptors are striped across per-thread pools at creation. *)
  let owner_of t d = (d - 1) mod t.nthreads

  (* -------------------- the protocol ------------------------------- *)

  (* Finish an RDCSS in flight on some word: if the owning descriptor is
     still undecided the conditional holds and the descriptor pointer
     goes in; otherwise the expected value is restored. *)
  let complete_rdcss t ptr =
    let d, k = rdcss_of t ptr in
    let target_addr, expected, _, _ = M.read (slot t d k) in
    let target = t.words.(target_addr) in
    let replacement =
      if M.read t.status.(d) = undecided then desc_ptr d else expected
    in
    ignore (M.cas target ~expected:ptr ~desired:replacement)

  (* Install descriptor [d] into shared word slot [k].  [`Installed] if
     the word now holds (or held) [d]'s pointer; [`Failed v] on an
     expected-value mismatch. *)
  let rec install t ~tid d k =
    let target_addr, expected, _, _ = M.read (slot t d k) in
    let target = t.words.(target_addr) in
    let ptr = rdcss_ptr t d k in
    if M.cas target ~expected ~desired:ptr then begin
      complete_rdcss t ptr;
      `Installed
    end
    else begin
      let cur = M.read target in
      if cur = desc_ptr d then `Installed
      else if is_rdcss cur then begin
        complete_rdcss t cur;
        install t ~tid d k
      end
      else if is_desc cur then begin
        ignore (help t ~tid (desc_of cur));
        install t ~tid d k
      end
      else if cur = expected then install t ~tid d k
      else `Failed
    end

  (* Drive descriptor [d] to completion (install -> decide -> finalize);
     returns whether it succeeded.  Callable by any thread. *)
  and help t ~tid d =
    let n = count_of (M.read t.meta.(d)) in
    if M.read t.status.(d) = undecided then begin
      let rec install_all k =
        if k >= n then true
        else begin
          let _, _, _, priv = M.read (slot t d k) in
          if priv then install_all (k + 1)
          else
            match install t ~tid d k with
            | `Installed -> install_all (k + 1)
            | `Failed -> false
        end
      in
      if install_all 0 then begin
        (* Persist installed words before declaring success. *)
        for k = 0 to n - 1 do
          let target_addr, _, _, priv = M.read (slot t d k) in
          if not priv then M.flush t.words.(target_addr)
        done;
        ignore (M.cas t.status.(d) ~expected:undecided ~desired:succeeded)
      end
      else ignore (M.cas t.status.(d) ~expected:undecided ~desired:failed)
    end;
    M.flush t.status.(d);
    let st = M.read t.status.(d) in
    for k = 0 to n - 1 do
      let target_addr, expected, desired, priv = M.read (slot t d k) in
      let target = t.words.(target_addr) in
      if priv then begin
        (* Private words are plain stores, not CASes, so a stale helper
           could clobber a value the owner wrote for a LATER operation.
           Only the owner writes them (it always drives its own
           descriptor to completion before returning) — and recovery,
           which only processes still-active descriptors. *)
        if st = succeeded && tid = owner_of t d then begin
          M.write target desired;
          M.flush target
        end
      end
      else begin
        let final = if st = succeeded then desired else expected in
        (* The word may still hold an unfinished RDCSS of [d]. *)
        let cur = M.read target in
        if is_rdcss cur && fst (rdcss_of t cur) = d then complete_rdcss t cur;
        ignore (M.cas target ~expected:(desc_ptr d) ~desired:final);
        M.flush target
      end
    done;
    st = succeeded

  (* -------------------- public operations -------------------------- *)

  (** PMwCAS-aware read: helps any operation in flight on the word, then
      returns a plain value. *)
  let read t ~tid a =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec go () =
      let v = M.read t.words.(a) in
      if is_rdcss v then begin
        complete_rdcss t v;
        go ()
      end
      else if is_desc v then begin
        ignore (help t ~tid (desc_of v));
        go ()
      end
      else v
    in
    let v = go () in
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    v

  let alloc_desc t ~tid =
    match !(t.free_descs.(tid)) with
    | [] -> raise (Descriptor_pool_exhausted tid)
    | d :: rest ->
        t.free_descs.(tid) := rest;
        d

  (** [pmwcas t ~tid entries] atomically, and persistently, applies every
      [(addr, expected, desired, kind)] update, or none of them.  Entries
      are sorted by address internally.  Private entries must target
      words only [tid] ever writes; their expected value is not
      validated. *)
  let pmwcas t ~tid entries =
    let entries =
      List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) entries
    in
    let n = List.length entries in
    if n > t.max_width then invalid_arg "Pmwcas.pmwcas: too many words";
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let d = alloc_desc t ~tid in
    (* Publish the descriptor's content persistently before going live:
       one line per word slot, the status word, then the meta word whose
       active bit tells recovery this descriptor is in flight. *)
    List.iteri
      (fun k (addr, old_v, new_v, kind) ->
        let cell = slot t d k in
        M.write cell (addr, old_v, new_v, kind = `Private);
        M.flush cell)
      entries;
    M.write t.status.(d) undecided;
    M.flush t.status.(d);
    M.write t.meta.(d) (n lor active_bit);
    M.flush t.meta.(d);
    let ok = help t ~tid d in
    M.write t.meta.(d) n;
    M.flush t.meta.(d);
    Dssq_ebr.Ebr.retire t.ebr ~tid d;
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    ok

  (** Single-word CAS on a PMwCAS-managed word (helps in-flight
      operations as needed).  Does not flush on its own. *)
  let cas1 t ~tid a ~expected ~desired =
    Dssq_ebr.Ebr.enter t.ebr ~tid;
    let rec go () =
      if M.cas t.words.(a) ~expected ~desired then true
      else begin
        let cur = M.read t.words.(a) in
        if is_rdcss cur then begin
          complete_rdcss t cur;
          go ()
        end
        else if is_desc cur then begin
          ignore (help t ~tid (desc_of cur));
          go ()
        end
        else false
      end
    in
    let ok = go () in
    Dssq_ebr.Ebr.exit t.ebr ~tid;
    ok

  (* -------------------- recovery ----------------------------------- *)

  (** Post-crash recovery: roll every active descriptor forward
      (Succeeded) or back (Undecided/Failed).  Single-threaded, run
      before application threads resume. *)
  let recover t =
    let ndescs = t.nthreads * t.ring in
    for d = 1 to ndescs do
      let meta = M.read t.meta.(d) in
      if is_active meta then begin
        let st = M.read t.status.(d) in
        for k = 0 to count_of meta - 1 do
          let target_addr, expected, desired, priv = M.read (slot t d k) in
          let target = t.words.(target_addr) in
          let final = if st = succeeded then desired else expected in
          if priv then begin
            if st = succeeded then begin
              M.write target final;
              M.flush target
            end
          end
          else begin
            let cur = M.read target in
            if
              cur = desc_ptr d
              || (is_rdcss cur && fst (rdcss_of t cur) = d)
            then begin
              M.write target final;
              M.flush target
            end
          end
        done;
        M.write t.meta.(d) (count_of meta);
        M.flush t.meta.(d)
      end
    done;
    (* Reset volatile descriptor free lists. *)
    Array.iter (fun l -> l := []) t.free_descs;
    for d = ndescs downto 1 do
      let owner = (d - 1) mod t.nthreads in
      t.free_descs.(owner) := d :: !(t.free_descs.(owner))
    done
end
