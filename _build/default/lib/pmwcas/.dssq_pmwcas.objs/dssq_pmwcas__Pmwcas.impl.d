lib/pmwcas/pmwcas.ml: Array Dssq_core Dssq_ebr Dssq_memory List Printf Tagged
