lib/pmwcas/pmwcas.mli: Dssq_memory
