(** Persistent multi-word CAS (Wang, Levandoski & Larson) — the substrate
    of the General/Fast CASWithEffect baselines.  Descriptor-based:
    RDCSS-conditioned installs in canonical order with helping, a status
    word as the linearization/persistence point, per-word finalize, and
    an active flag bounding what post-crash recovery may roll forward or
    back.  {e Private} words (the Fast optimization) skip installation
    and are written at finalize by their owner only.

    Words are allocated through {!Make.alloc} and addressed by small
    ints; values must be non-negative and below 2^52. *)

val undecided : int
val succeeded : int
val failed : int

exception Descriptor_pool_exhausted of int

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type t

  val create : ?ring:int -> ?max_width:int -> nwords:int -> nthreads:int -> unit -> t
  (** [ring] descriptors per thread (default 64), [max_width] words per
      operation (default 4). *)

  val alloc : t -> ?name:string -> int -> int
  (** Allocate a managed word with an initial (persisted) value; returns
      its address. *)

  val read : t -> tid:int -> int -> int
  (** PMwCAS-aware read: helps any operation in flight, returns a plain
      value. *)

  val write_quiet : t -> int -> int -> unit
  (** Direct flushed store — initialization and owner-private words not
      currently targeted by any descriptor. *)

  val flush_word : t -> int -> unit

  val cell : t -> int -> int M.cell
  (** Raw cell access for recovery-time inspection (quiescent use). *)

  val pmwcas :
    t -> tid:int -> (int * int * int * [ `Shared | `Private ]) list -> bool
  (** [pmwcas t ~tid entries] atomically and persistently applies every
      [(addr, expected, desired, kind)] update, or none.  Private entries
      must target words only [tid] writes; their expected value is not
      validated. *)

  val cas1 : t -> tid:int -> int -> expected:int -> desired:int -> bool
  (** Single-word CAS on a managed word (helps as needed; no flush of its
      own). *)

  val recover : t -> unit
  (** Post-crash, single-threaded: roll every active descriptor forward
      (Succeeded) or back, including private-word redo; resets the
      volatile descriptor pools. *)
end
