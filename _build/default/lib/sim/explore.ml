(** Bounded-exhaustive schedule exploration.

    Enumerates {e every} interleaving of a small scenario (and optionally
    every crash point with both "nothing evicted" and "everything evicted"
    cache outcomes), replaying the scenario from scratch along each branch
    — continuations are one-shot, so replay is how we fork.  Exponential,
    so meant for scenarios with 2–3 threads and a dozen or two memory
    steps; within that scope it is a small model checker for the
    algorithms in this repository.

    [setup] must build a fresh, fully independent scenario each time it is
    called: a fresh heap, fresh memory module, fresh object, fresh thread
    closures.  [check] is called at the end of every complete execution
    and should raise (e.g. [Alcotest.fail]) on a violated property. *)

open Dssq_pmem

exception Too_many_executions of int

type decision = Sched of int | Crash of [ `Evict_none | `Evict_all ]

type 'ctx scenario = {
  ctx : 'ctx;
  heap : Heap.t;
  threads : (unit -> unit) list;
}

type 'ctx t = {
  setup : unit -> 'ctx scenario;
  check : 'ctx -> Heap.t -> crashed:bool -> unit;
  crashes : bool;
  max_steps : int;
  limit : int;
  max_preemptions : int option;
      (* CHESS-style bound: a context switch away from a thread that is
         still runnable counts as a preemption; most concurrency bugs
         manifest within 2-3 preemptions, and the bound turns an
         exponential schedule space into a polynomial one. *)
  mutable executions : int;
}

let make ?(crashes = false) ?(max_steps = 10_000) ?(limit = 2_000_000)
    ?max_preemptions ~setup ~check () =
  { setup; check; crashes; max_steps; limit; max_preemptions; executions = 0 }

(* Replay [prefix] on a fresh scenario.  Returns the machine positioned
   after the prefix, unless the prefix ends in a crash, in which case the
   crash is applied and [`Crashed] is returned. *)
let replay t prefix =
  let scenario = t.setup () in
  let machine = Machine.create scenario.heap scenario.threads in
  scenario.heap.Heap.in_sim <- true;
  let outcome =
    try
      List.iter
        (fun d ->
          match d with
          | Sched tid -> ignore (Machine.step machine tid : Machine.step_info)
          | Crash evict ->
              Machine.kill_all machine;
              scenario.heap.Heap.in_sim <- false;
              Heap.crash scenario.heap ~evict:(fun () -> evict = `Evict_all);
              raise Exit)
        prefix;
      `Running
    with Exit -> `Crashed
  in
  scenario.heap.Heap.in_sim <- false;
  (scenario, machine, outcome)

let finish t scenario ~crashed =
  t.executions <- t.executions + 1;
  if t.executions > t.limit then raise (Too_many_executions t.executions);
  t.check scenario.ctx scenario.heap ~crashed

let rec dfs t prefix depth ~last ~preemptions =
  let scenario, machine, state = replay t prefix in
  match state with
  | `Crashed -> finish t scenario ~crashed:true
  | `Running -> (
      if depth > t.max_steps then
        failwith "Explore: max_steps exceeded (livelock under exploration?)";
      match Machine.runnable machine with
      | [] ->
          scenario.heap.Heap.in_sim <- false;
          finish t scenario ~crashed:false
      | runnable ->
          List.iter
            (fun tid ->
              let preempts =
                last >= 0 && tid <> last && List.mem last runnable
              in
              let allowed =
                match t.max_preemptions with
                | Some bound when preempts -> preemptions < bound
                | _ -> true
              in
              if allowed then
                dfs t
                  (prefix @ [ Sched tid ])
                  (depth + 1) ~last:tid
                  ~preemptions:(if preempts then preemptions + 1 else preemptions))
            runnable;
          if t.crashes then begin
            dfs t (prefix @ [ Crash `Evict_none ]) (depth + 1) ~last ~preemptions;
            dfs t (prefix @ [ Crash `Evict_all ]) (depth + 1) ~last ~preemptions
          end)

(** Run the exploration; returns the number of complete executions
    checked. *)
let run t =
  t.executions <- 0;
  dfs t [] 0 ~last:(-1) ~preemptions:0;
  t.executions
