lib/sim/sim.mli: Dssq_memory Dssq_pmem Heap
