lib/sim/explore.mli: Dssq_pmem
