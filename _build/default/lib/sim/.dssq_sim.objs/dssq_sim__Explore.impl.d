lib/sim/explore.ml: Dssq_pmem Heap List Machine
