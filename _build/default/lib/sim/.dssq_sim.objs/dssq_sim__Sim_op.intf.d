lib/sim/sim_op.mli: Cell Dssq_pmem Heap
