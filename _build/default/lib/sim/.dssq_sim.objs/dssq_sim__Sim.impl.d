lib/sim/sim.ml: Array Cell Dssq_memory Dssq_pmem Effect Fun Heap List Machine Option Printf Random Sim_op
