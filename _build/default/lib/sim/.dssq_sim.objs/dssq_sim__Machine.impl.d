lib/sim/machine.ml: Array Dssq_pmem Effect Heap List Sim_op
