lib/sim/sim_op.ml: Cell Dssq_pmem Heap Printf
