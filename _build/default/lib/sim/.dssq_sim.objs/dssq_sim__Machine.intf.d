lib/sim/machine.mli: Dssq_pmem Effect Heap Sim_op
