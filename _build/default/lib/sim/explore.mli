(** Bounded-exhaustive schedule exploration: every interleaving of a
    small scenario (optionally bounded to a few CHESS-style preemptions),
    and optionally every crash point with both "nothing evicted" and
    "everything evicted" cache outcomes.  Replays the scenario from
    scratch along each branch, so [setup] must build a fresh, independent
    scenario each call. *)

exception Too_many_executions of int

type 'ctx scenario = {
  ctx : 'ctx;
  heap : Dssq_pmem.Heap.t;
  threads : (unit -> unit) list;
}

type 'ctx t

val make :
  ?crashes:bool ->
  ?max_steps:int ->
  ?limit:int ->
  ?max_preemptions:int ->
  setup:(unit -> 'ctx scenario) ->
  check:('ctx -> Dssq_pmem.Heap.t -> crashed:bool -> unit) ->
  unit ->
  'ctx t
(** [check] runs at the end of every complete execution and should raise
    on a violated property.  [max_preemptions] bounds context switches
    away from still-runnable threads (most concurrency bugs manifest
    within 2-3), turning the exponential schedule space polynomial.
    [limit] caps total executions (default 2e6; exceeding raises). *)

val run : 'ctx t -> int
(** Run the exploration; returns the number of executions checked. *)
