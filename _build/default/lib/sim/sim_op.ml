(** The atomic memory events a simulated thread can perform.

    Each constructor corresponds to one failure-atomic step of the
    modelled machine; the scheduler interleaves threads at exactly this
    granularity, and a crash can fall between any two of them. *)

open Dssq_pmem

type 'a t =
  | Read : 'a Cell.t -> 'a t
  | Write : 'a Cell.t * 'a -> unit t
  | Cas : 'a Cell.t * 'a * 'a -> bool t
  | Flush : 'a Cell.t -> unit t
  | Fence : unit t
  | Yield : unit t  (** scheduling point with no memory side effect *)

let apply : type a. Heap.t -> a t -> a =
 fun heap op ->
  match op with
  | Read c -> Heap.read heap c
  | Write (c, v) -> Heap.write heap c v
  | Cas (c, expected, desired) -> Heap.cas heap c ~expected ~desired
  | Flush c -> Heap.flush heap c
  | Fence -> Heap.fence heap
  | Yield -> ()

(** Cost classes for the discrete-event throughput model. *)
type kind = Read | Write | Cas | Flush | Fence | Yield

let kind : type a. a t -> kind = function
  | Read _ -> Read
  | Write _ -> Write
  | Cas _ -> Cas
  | Flush _ -> Flush
  | Fence -> Fence
  | Yield -> Yield

(** Id of the cell an operation targets (its "cache line"). *)
let target : type a. a t -> int option = function
  | Read c -> Some c.Cell.id
  | Write (c, _) -> Some c.Cell.id
  | Cas (c, _, _) -> Some c.Cell.id
  | Flush c -> Some c.Cell.id
  | Fence -> None
  | Yield -> None

let describe : type a. a t -> string = function
  | Read c -> Printf.sprintf "read %s#%d" c.Cell.name c.Cell.id
  | Write (c, _) -> Printf.sprintf "write %s#%d" c.Cell.name c.Cell.id
  | Cas (c, _, _) -> Printf.sprintf "cas %s#%d" c.Cell.name c.Cell.id
  | Flush c -> Printf.sprintf "flush %s#%d" c.Cell.name c.Cell.id
  | Fence -> "fence"
  | Yield -> "yield"
