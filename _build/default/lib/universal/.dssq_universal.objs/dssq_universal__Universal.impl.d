lib/universal/universal.ml: Array Dssq_memory Dssq_spec Printf
