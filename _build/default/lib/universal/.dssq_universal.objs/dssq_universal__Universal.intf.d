lib/universal/universal.mli: Dssq_memory Dssq_spec
