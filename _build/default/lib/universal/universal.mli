(** A recoverable universal construction of [D<T>] for any sequential
    type [T] (Section 2.2's computability argument): operations —
    including [prep-op]/[exec-op]/[resolve] — are agreed into a
    persistent log by CAS consensus per slot, with
    flush-predecessor-before-append so the persisted log is always a
    gap-free prefix; state is deterministic replay.  Lock-free;
    recovery is a no-op. *)

module Spec = Dssq_spec.Spec
module Dss_spec = Dssq_spec.Dss_spec

exception Log_full

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type ('s, 'op, 'r) t

  val create : nthreads:int -> capacity:int -> ('s, 'op, 'r) Spec.t -> ('s, 'op, 'r) t

  val perform :
    ('s, 'op, 'r) t -> tid:int -> 'op Dss_spec.op -> ('op, 'r) Dss_spec.response option
  (** Agree one [D<T>] operation into the log; [None] if it was not
      enabled at its linearization point (e.g. an exec never prepared). *)

  (** Convenience wrappers over the [D<T>] alphabet: *)

  val prep : ('s, 'op, 'r) t -> tid:int -> 'op -> unit
  val exec : ('s, 'op, 'r) t -> tid:int -> 'op -> 'r option
  val apply : ('s, 'op, 'r) t -> tid:int -> 'op -> 'r option
  val resolve : ('s, 'op, 'r) t -> tid:int -> 'op option * 'r option

  val length : ('s, 'op, 'r) t -> int
  (** Decided log prefix length (tests, space accounting). *)

  val recover : ('s, 'op, 'r) t -> int
  (** Trivial by construction; returns {!length}. *)
end
