(** A recoverable universal construction of [D<T>] for any sequential
    type [T] — the computability argument of Section 2.2: "a wait-free
    recoverable implementation of D<T> for any conventional type T can be
    obtained ... using Herlihy's universal construction", extended from
    the private-cache model to the volatile-cache model with explicit
    persistence instructions.

    Operations (including the auxiliary [prep-op], [exec-op] and
    [resolve] of [D<T>]) are agreed into a persistent log, one CAS
    consensus per slot; the abstract state — including the [A] and [R]
    detectability mappings — is a deterministic replay of the log.

    Persistence protocol: before attempting to append at slot [k], the
    appender flushes slot [k-1].  Hence the persisted log is always a
    {e prefix} of the volatile log (no holes), and recovery needs no
    repair at all: replaying the persisted prefix yields a strictly
    linearizable state in which every operation whose slot survived took
    effect and every other in-flight operation did not.  [resolve] after
    a crash is just another logged operation.

    This construction is lock-free (the paper's wait-free variant adds a
    helping/announce array; we keep the simple form and note that the
    transformation is standard).  It is linear-space in the number of
    operations, which also illustrates the linear space lower bound
    discussion of Section 2.2. *)

module Spec = Dssq_spec.Spec
module Dss_spec = Dssq_spec.Dss_spec

exception Log_full

module Make (M : Dssq_memory.Memory_intf.S) = struct
  type ('s, 'op, 'r) t = {
    dss : (('s, 'op, 'r) Dss_spec.state, 'op Dss_spec.op, ('op, 'r) Dss_spec.response) Spec.t;
    log : (int * 'op Dss_spec.op) option M.cell array; (* (tid, op) per slot *)
    capacity : int;
    hint : int array; (* volatile per-thread scan hint *)
  }

  let create ~nthreads ~capacity (spec : ('s, 'op, 'r) Spec.t) =
    {
      dss = Dss_spec.make ~nthreads spec;
      log =
        Array.init capacity (fun i ->
            M.alloc ~name:(Printf.sprintf "log[%d]" i) None);
      capacity;
      hint = Array.make nthreads 0;
    }

  (* Replay the log up to (and including) slot [upto]; returns the state
     before slot [upto] and the entry there.  Entries that are not
     enabled in the replayed state are skipped: consensus decides order,
     the specification decides effect, and a skipped operation's response
     is the reserved [None]. *)
  let replay t ~upto =
    let state = ref t.dss.Spec.init in
    let response = ref None in
    for k = 0 to upto do
      match M.read t.log.(k) with
      | None -> ()
      | Some (tid, op) -> (
          match t.dss.Spec.apply !state ~tid op with
          | Some (s', r) ->
              state := s';
              if k = upto then response := Some r
          | None -> if k = upto then response := None)
    done;
    !response

  (** Agree operation [op] by process [tid] into the log and return its
      response ([None] if the operation was not enabled at its
      linearization point, e.g. an [exec-op] that was never prepared). *)
  let perform t ~tid (op : 'op Dss_spec.op) =
    let entry = Some (tid, op) in
    let rec find k =
      if k >= t.capacity then raise Log_full
      else if M.read t.log.(k) = None then k
      else find (k + 1)
    in
    let rec attempt k =
      let k = find k in
      (* Persist the predecessor so the persisted log stays a prefix. *)
      if k > 0 then M.flush t.log.(k - 1);
      if M.cas t.log.(k) ~expected:None ~desired:entry then begin
        M.flush t.log.(k);
        t.hint.(tid) <- k;
        replay t ~upto:k
      end
      else attempt k
    in
    attempt t.hint.(tid)

  (* Convenience wrappers over the D<T> operation alphabet. *)

  let prep t ~tid op =
    ignore (perform t ~tid (Dss_spec.Prep op))

  let exec t ~tid op =
    match perform t ~tid (Dss_spec.Exec op) with
    | Some (Dss_spec.Ret r) -> Some r
    | Some (Dss_spec.Ack | Dss_spec.Status _) | None -> None

  let apply t ~tid op =
    match perform t ~tid (Dss_spec.Base op) with
    | Some (Dss_spec.Ret r) -> Some r
    | Some (Dss_spec.Ack | Dss_spec.Status _) | None -> None

  let resolve t ~tid =
    match perform t ~tid Dss_spec.Resolve with
    | Some (Dss_spec.Status (a, r)) -> (a, r)
    | Some (Dss_spec.Ack | Dss_spec.Ret _) | None -> (None, None)

  (** Number of decided log slots (for tests and space accounting). *)
  let length t =
    let rec go k =
      if k >= t.capacity then k
      else match M.read t.log.(k) with None -> k | Some _ -> go (k + 1)
    in
    go 0

  (** Recovery is trivial by construction (see module doc): the volatile
      log after a crash {e is} the persisted prefix.  Provided for
      interface symmetry; it re-reads the log and returns its length. *)
  let recover t = length t
end
