(** Epoch-based memory reclamation (Fraser), as used by the paper's
    evaluation for returning dequeued nodes to per-thread free pools
    (Section 4).

    Reclamation metadata is deliberately {e volatile}: it protects readers
    from use-after-free during failure-free execution, and after a crash
    the recovery procedure rebuilds the free pools from the persistent
    structure instead (DESIGN.md Section 5), so nothing here needs to be
    flushed.  State is [Atomic]-based so the same code is safe on real
    domains and trivially correct under the cooperative simulator.

    Classic 3-epoch scheme: a thread entering a critical region announces
    the global epoch; retired items go to the announcing thread's limbo
    bucket for the current epoch; the global epoch advances only when all
    in-region threads have announced it, at which point items two epochs
    old cannot be reachable by any in-region thread and are freed. *)

type 'a t = {
  global_epoch : int Atomic.t;
  announcements : int Atomic.t array; (* -1 = quiescent *)
  limbo : 'a list array array; (* [tid].[epoch mod 3] *)
  limbo_epoch : int array array; (* epoch each bucket belongs to *)
  free : tid:int -> 'a -> unit;
  enter_count : int array; (* per-thread, to pace advance attempts *)
  advance_period : int;
}

let create ?(advance_period = 8) ~nthreads ~free () =
  {
    global_epoch = Atomic.make 0;
    announcements = Array.init nthreads (fun _ -> Atomic.make (-1));
    limbo = Array.init nthreads (fun _ -> Array.make 3 []);
    limbo_epoch = Array.init nthreads (fun _ -> Array.make 3 0);
    free;
    enter_count = Array.make nthreads 0;
    advance_period;
  }

let free_bucket t ~tid bucket =
  List.iter (fun x -> t.free ~tid x) t.limbo.(tid).(bucket);
  t.limbo.(tid).(bucket) <- []

(* Free the buckets of [tid] whose epoch is at least two behind [epoch]. *)
let collect t ~tid ~epoch =
  for b = 0 to 2 do
    if
      t.limbo.(tid).(b) <> []
      && t.limbo_epoch.(tid).(b) <= epoch - 2
    then free_bucket t ~tid b
  done

let try_advance t =
  let e = Atomic.get t.global_epoch in
  let all_caught_up =
    Array.for_all
      (fun a ->
        let v = Atomic.get a in
        v = -1 || v = e)
      t.announcements
  in
  if all_caught_up then ignore (Atomic.compare_and_set t.global_epoch e (e + 1))

(** Enter a reclamation-protected region.  Pointers read inside the region
    stay valid until [exit]. *)
let enter t ~tid =
  t.enter_count.(tid) <- t.enter_count.(tid) + 1;
  if t.enter_count.(tid) mod t.advance_period = 0 then try_advance t;
  let e = Atomic.get t.global_epoch in
  Atomic.set t.announcements.(tid) e;
  collect t ~tid ~epoch:e

let exit t ~tid = Atomic.set t.announcements.(tid) (-1)

(** Retire an item removed from the shared structure; it is freed once no
    thread that was in-region at retirement can still hold it. *)
let retire t ~tid x =
  let e = Atomic.get t.global_epoch in
  let b = e mod 3 in
  if t.limbo_epoch.(tid).(b) <> e && t.limbo.(tid).(b) <> [] then
    (* Bucket still holds items from epoch e-3: they are old enough. *)
    free_bucket t ~tid b;
  t.limbo_epoch.(tid).(b) <- e;
  t.limbo.(tid).(b) <- x :: t.limbo.(tid).(b)

let pending t =
  Array.fold_left
    (fun acc buckets -> Array.fold_left (fun a l -> a + List.length l) acc buckets)
    0 t.limbo

(** Free everything unconditionally.  Only valid when no thread is
    in-region — e.g. single-threaded teardown or post-crash recovery. *)
let quiesce t =
  Array.iteri (fun tid _ -> for b = 0 to 2 do free_bucket t ~tid b done) t.limbo

(** Drop all reclamation state {e without} freeing anything: limbo lists,
    announcements, epochs.  This models process restart after a crash —
    reclamation metadata is volatile, and whoever recovers the protected
    structure accounts for the formerly-limbo items itself (e.g. the DSS
    queue recovery rebuilds free pools by reachability). *)
let clear t =
  Array.iter (fun buckets -> Array.iteri (fun b _ -> buckets.(b) <- []) buckets) t.limbo;
  Array.iter (fun a -> Atomic.set a (-1)) t.announcements;
  Atomic.set t.global_epoch 0

let global_epoch t = Atomic.get t.global_epoch
