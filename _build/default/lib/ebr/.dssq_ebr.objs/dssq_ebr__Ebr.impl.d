lib/ebr/ebr.ml: Array Atomic List
