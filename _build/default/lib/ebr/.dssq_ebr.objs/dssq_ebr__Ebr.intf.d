lib/ebr/ebr.mli:
