(** Epoch-based memory reclamation (Fraser's 3-epoch scheme).

    Protects readers of lock-free structures from use-after-free: items
    removed from a shared structure are {!retire}d and handed back to
    their {!create}-time [free] callback only once no thread that was
    inside an {!enter}/{!exit} region at retirement time can still hold
    them.

    All state is volatile by design: after a crash, call {!clear} and
    rebuild free pools from the persistent structure (see
    [Dssq_core.Dss_queue.recover]). *)

type 'a t

val create :
  ?advance_period:int ->
  nthreads:int ->
  free:(tid:int -> 'a -> unit) ->
  unit ->
  'a t
(** [create ~nthreads ~free ()] makes a reclamation domain for thread ids
    [0 .. nthreads-1].  [free] is invoked (on the retiring thread) once a
    retired item's grace period has elapsed.  [advance_period] is how many
    [enter]s between epoch-advance attempts (default 8). *)

val enter : 'a t -> tid:int -> unit
(** Enter a protected region: pointers read until the matching {!exit}
    stay valid.  Also paces epoch advancement and collects this thread's
    expired retirements. *)

val exit : 'a t -> tid:int -> unit
(** Leave the protected region. *)

val retire : 'a t -> tid:int -> 'a -> unit
(** Hand an item removed from the structure to the reclamation domain;
    it is freed after a grace period. *)

val pending : 'a t -> int
(** Number of retired-but-not-yet-freed items (for tests). *)

val quiesce : 'a t -> unit
(** Free everything unconditionally.  Only valid when no thread is
    in-region (teardown, tests). *)

val clear : 'a t -> unit
(** Drop all reclamation state {e without} freeing anything — models
    process restart after a crash.  Whoever recovers the protected
    structure accounts for formerly-limbo items itself. *)

val global_epoch : 'a t -> int
(** Current global epoch (diagnostics and tests). *)
