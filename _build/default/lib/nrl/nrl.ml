(** An executable rendering of the paper's foil: nesting-safe recoverable
    linearizability (NRL), Attiya, Ben-Baruch & Hendler (PODC 2018) — so
    that the DSS-vs-NRL comparison in Sections 1-2 of the paper can be
    demonstrated and tested rather than merely narrated.

    The two frameworks differ in exactly the ways the paper lists:

    + In NRL, {e every} operation is recoverable; in DSS, detectability
      is requested per operation ([prep-op]).
    + NRL's recovery function {e completes} the interrupted operation and
      returns its response; DSS's [resolve] merely {e reports} whether it
      took effect, leaving redo/skip policy to the application.
    + NRL relies on the system to resurrect a crashed process "by
      invoking the recovery function of the inner-most recoverable
      operation that was pending" — auxiliary state and machinery the
      paper calls crucial and difficult to implement.  {!Make.System}
      {e implements} that machinery, so its cost is visible: a persistent
      per-process stack of operation frames, pushed and flushed around
      every recoverable call.

    The implementation is deliberately a thin layer over the DSS base
    objects of [Dssq_core]: an NRL operation is [prep] + [exec], and the
    NRL recovery function is [resolve] + (if the operation did not take
    effect) [exec] again + return the response.  That this layering works
    at all is the paper's point that the DSS interface is the more
    primitive of the two; that the layer {e must} add announcements and a
    frame stack is the paper's point about NRL's hidden system support. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Cell = Dssq_core.Dss_cell.Make (M)

  (** The per-process operation-frame stack: the "system support"
      NRL assumes.  Every recoverable call pushes a persistent frame
      (which object, which operation) before running and pops it after;
      after a crash, {!System.recover_process} finds the inner-most
      pending frame and invokes its object's recovery function. *)
  module System = struct
    type frame = {
      obj_id : int;  (** registered object the operation targets *)
      opcode : int;
      arg : int;
      arg2 : int;  (** operation-specific auxiliary value *)
    }

    type t = {
      (* frames.(tid * max_depth + level): None = popped *)
      frames : frame option M.cell array;
      depth : int M.cell array; (* persistent stack pointer per process *)
      max_depth : int;
      nthreads : int;
      (* volatile registry: re-registered by the application at restart,
         like any function table *)
      mutable recoverers : (int * (tid:int -> frame -> int)) list;
    }

    let create ~nthreads ~max_depth =
      {
        frames =
          Array.init (nthreads * max_depth) (fun i ->
              M.alloc ~name:(Printf.sprintf "frame[%d]" i) None);
        depth =
          Array.init nthreads (fun i ->
              M.alloc ~name:(Printf.sprintf "depth[%d]" i) 0);
        max_depth;
        nthreads;
        recoverers = [];
      }

    (** Register the recovery function for an object id (done at startup,
        and again after every restart — code is volatile). *)
    let register t ~obj_id ~recover =
      t.recoverers <- (obj_id, recover) :: List.remove_assoc obj_id t.recoverers

    let slot t ~tid level = t.frames.((tid * t.max_depth) + level)

    (** Bracket a recoverable operation: persist the frame, run, pop.
        This pair of flushed writes around {e every} operation is the
        announcement cost NRL's model abstracts away. *)
    let call t ~tid ~obj_id ~opcode ~arg ?(arg2 = 0) body =
      let level = M.read t.depth.(tid) in
      if level >= t.max_depth then invalid_arg "Nrl.System.call: too deep";
      M.write (slot t ~tid level) (Some { obj_id; opcode; arg; arg2 });
      M.flush (slot t ~tid level);
      M.write t.depth.(tid) (level + 1);
      M.flush t.depth.(tid);
      let r = body () in
      M.write t.depth.(tid) level;
      M.flush t.depth.(tid);
      M.write (slot t ~tid level) None;
      M.flush (slot t ~tid level);
      r

    (** The system's post-crash duty: for process [tid], find the
        inner-most pending operation and invoke its recovery function,
        which completes the operation; then unwind the outer frames the
        same way, outermost last.  Returns the responses, inner-most
        first ([None] if nothing was pending). *)
    let recover_process t ~tid =
      let level = M.read t.depth.(tid) in
      let rec unwind l acc =
        if l < 0 then acc
        else begin
          match M.read (slot t ~tid l) with
          | None -> unwind (l - 1) acc
          | Some frame ->
              let recoverer =
                match List.assoc_opt frame.obj_id t.recoverers with
                | Some f -> f
                | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Nrl.System.recover_process: no recoverer for object %d"
                         frame.obj_id)
              in
              let r = recoverer ~tid frame in
              M.write (slot t ~tid l) None;
              M.flush (slot t ~tid l);
              unwind (l - 1) ((frame, r) :: acc)
        end
      in
      let results = unwind (level - 1) [] in
      M.write t.depth.(tid) 0;
      M.flush t.depth.(tid);
      results
  end

  (** A recoverable register with NRL semantics, layered on the
      detectable cell: [write] always recoverable; after a crash the
      recovery function {e completes} an interrupted write (re-executing
      it if it had not taken effect) and returns OK. *)
  module Register = struct
    let opcode_write = 1

    type t = {
      cell : int Cell.t;
      sys : System.t;
      obj_id : int;
    }

    let create ~sys ~obj_id ?(init = 0) ~nthreads () =
      let t = { cell = Cell.create ~nthreads init; sys; obj_id } in
      System.register sys ~obj_id
        ~recover:(fun ~tid (frame : System.frame) ->
          assert (frame.System.opcode = opcode_write);
          (match Cell.resolve t.cell ~tid with
          | Cell.Write_done v when v = frame.System.arg ->
              () (* took effect before the crash *)
          | Cell.Write_pending v when v = frame.System.arg ->
              Cell.exec_write t.cell ~tid
          | _ ->
              (* The cell's detection state predates this operation (the
                 prep itself was lost): start over.  NB the repeated-
                 identical-value corner here is the ambiguity the paper's
                 auxiliary-argument remedy (end of Section 2.1) exists
                 for. *)
              Cell.prep_write t.cell ~tid frame.System.arg;
              Cell.exec_write t.cell ~tid);
          0 (* OK *));
      t

    (** NRL-style recoverable write: announced via the system's frame
        stack, detectable underneath — unconditionally, which is the
        cost profile NRL imposes on every operation. *)
    let write t ~tid v =
      ignore
        (System.call t.sys ~tid ~obj_id:t.obj_id ~opcode:opcode_write ~arg:v
           (fun () ->
             Cell.prep_write t.cell ~tid v;
             Cell.exec_write t.cell ~tid;
             0))

    let read t = Cell.read t.cell
  end

  (** A recoverable counter (add), NRL semantics.  Counters are
      "doubly-perturbing" in the sense of Ben-Baruch, Hendler &
      Rusanovsky: recovering an interrupted increment exactly once
      requires per-process auxiliary state.  Here that state is explicit
      and classic: each process accumulates into its own single-writer
      contribution cell, the frame records the target value, and
      recovery compares — unambiguous because nobody else writes the
      cell.  The counter's value is the sum of contributions. *)
  module Counter = struct
    let opcode_add = 2

    type t = {
      contrib : int Cell.t array; (* single-writer per process *)
      sys : System.t;
      obj_id : int;
    }

    let create ~sys ~obj_id ~nthreads () =
      let t =
        {
          contrib = Array.init nthreads (fun _ -> Cell.create ~nthreads 0);
          sys;
          obj_id;
        }
      in
      System.register sys ~obj_id
        ~recover:(fun ~tid (frame : System.frame) ->
          let target = frame.System.arg2 in
          if Cell.read t.contrib.(tid) <> target then begin
            Cell.prep_write t.contrib.(tid) ~tid target;
            Cell.exec_write t.contrib.(tid) ~tid
          end;
          0);
      t

    let add t ~tid delta =
      let target = Cell.read t.contrib.(tid) + delta in
      ignore
        (System.call t.sys ~tid ~obj_id:t.obj_id ~opcode:opcode_add ~arg:delta
           ~arg2:target (fun () ->
             Cell.prep_write t.contrib.(tid) ~tid target;
             Cell.exec_write t.contrib.(tid) ~tid;
             0))

    let get t = Array.fold_left (fun acc c -> acc + Cell.read c) 0 t.contrib
  end
end
