lib/nrl/nrl.ml: Array Dssq_core Dssq_memory List Printf
