lib/lincheck/lincheck.mli: Dssq_history Dssq_spec Format
