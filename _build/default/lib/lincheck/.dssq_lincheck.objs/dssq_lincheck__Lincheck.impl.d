lib/lincheck/lincheck.ml: Array Dssq_history Dssq_spec Format Hashtbl List Option
