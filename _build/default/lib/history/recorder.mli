(** Records histories from executing (simulated) threads.  Appends are
    atomic within a scheduling slice, so the recorded order is a valid
    real-time order. *)

type ('op, 'r) t

val create : unit -> ('op, 'r) t

val invoke : ('op, 'r) t -> tid:int -> 'op -> int
(** Record an invocation; returns the uid to pass to {!response}. *)

val response : ('op, 'r) t -> uid:int -> 'r -> unit

val crash : ('op, 'r) t -> unit
(** Record a system-wide crash; operations invoked but not yet responded
    stay pending, which is what the checker expects. *)

val history : ('op, 'r) t -> ('op, 'r) History.t

val record : ('op, 'r) t -> tid:int -> 'op -> (unit -> 'r) -> 'r
(** [record t ~tid op f] wraps [f] between an invocation and a response;
    if [f] is cut off by a crash the invocation stays pending. *)
