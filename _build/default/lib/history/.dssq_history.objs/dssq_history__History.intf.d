lib/history/history.mli: Format
