lib/history/history.ml: Format Hashtbl List Printf
