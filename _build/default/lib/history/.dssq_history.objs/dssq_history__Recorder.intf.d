lib/history/recorder.mli: History
