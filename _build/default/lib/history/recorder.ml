(** Records histories from executing threads.

    In the cooperative simulator the recorder is mutated only from the
    single scheduling domain, so a plain reversed list is sufficient and
    the recorded order is a valid real-time order (each append happens
    within one atomic scheduling slice). *)

type ('op, 'r) t = {
  mutable events : ('op, 'r) History.event list; (* newest first *)
  mutable next_uid : int;
}

let create () = { events = []; next_uid = 0 }

(** Record an invocation; returns the uid to pass to [response]. *)
let invoke t ~tid op =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  t.events <- History.Inv { uid; tid; op } :: t.events;
  uid

let response t ~uid r = t.events <- History.Res { uid; r } :: t.events
let crash t = t.events <- History.Crash :: t.events
let history t : ('op, 'r) History.t = List.rev t.events

(** Record a complete operation around [f].  If [f] is cut off by a crash
    the invocation stays pending, which is exactly what the checker
    needs. *)
let record t ~tid op f =
  let uid = invoke t ~tid op in
  let r = f () in
  response t ~uid r;
  r
