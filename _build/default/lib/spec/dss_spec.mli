(** The detectable sequential specification (DSS) transformation —
    Section 2.1 / Figure 1 of the paper, executable and type-generic.

    Given [T = (S, s0, OP, R, delta, rho)], {!make} produces [D<T>]:
    states are [(s, A, R)] where [A] maps each process to its most
    recently prepared operation and [R] to that operation's response (or
    bottom), and the operation set gains [prep-op], [exec-op] and
    [resolve]. *)

type 'op op =
  | Prep of 'op  (** Axiom 1: record intent; total, idempotent *)
  | Exec of 'op  (** Axiom 2: apply; enabled iff A[p] = op, R[p] = bottom *)
  | Base of 'op  (** Axiom 4: the plain, non-detectable operation *)
  | Resolve  (** Axiom 3: return (A[p], R[p]); total, idempotent *)

type ('op, 'r) response =
  | Ack  (** prep-op returns bottom *)
  | Ret of 'r
  | Status of 'op option * 'r option  (** resolve's (A[p], R[p]) *)

type ('s, 'op, 'r) state = {
  base : 's;
  a : 'op option array;  (** A, indexed by tid *)
  r : 'r option array;  (** R, indexed by tid *)
}

val make :
  nthreads:int ->
  ('s, 'op, 'r) Spec.t ->
  (('s, 'op, 'r) state, 'op op, ('op, 'r) response) Spec.t
(** [make ~nthreads spec] is the sequential specification of [D<spec>]
    for processes [0 .. nthreads-1]. *)
