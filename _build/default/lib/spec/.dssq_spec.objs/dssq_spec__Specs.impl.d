lib/spec/specs.ml: Format Spec
