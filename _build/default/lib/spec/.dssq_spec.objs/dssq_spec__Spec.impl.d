lib/spec/spec.ml: Format List Option
