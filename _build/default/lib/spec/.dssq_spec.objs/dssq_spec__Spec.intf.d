lib/spec/spec.mli: Format
