lib/spec/dss_spec.ml: Array Format Spec
