lib/spec/dss_spec.mli: Spec
