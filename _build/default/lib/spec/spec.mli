(** Sequential specifications of object types as pure state machines —
    the tuple [(S, s0, OP, R, delta, rho)] of Section 2.1 of the paper,
    with [apply] combining the transition and response functions and
    returning [None] where an operation's precondition fails. *)

type ('s, 'op, 'r) t = {
  name : string;
  init : 's;
  apply : 's -> tid:int -> 'op -> ('s * 'r) option;
      (** [None] = the operation is not enabled in this state.  The
          process id is an argument because detectable types encode
          per-process recovery state (footnote 2 of the paper). *)
  equal_state : 's -> 's -> bool;
  equal_response : 'r -> 'r -> bool;
  pp_op : Format.formatter -> 'op -> unit;
  pp_response : Format.formatter -> 'r -> unit;
}

val make :
  ?equal_state:('s -> 's -> bool) ->
  ?equal_response:('r -> 'r -> bool) ->
  ?pp_op:(Format.formatter -> 'op -> unit) ->
  ?pp_response:(Format.formatter -> 'r -> unit) ->
  name:string ->
  init:'s ->
  apply:('s -> tid:int -> 'op -> ('s * 'r) option) ->
  unit ->
  ('s, 'op, 'r) t

val run_sequence :
  ('s, 'op, 'r) t -> (int * 'op) list -> ('s * 'r list) option
(** Fold a sequence of [(tid, op)] from the initial state; [None] if some
    operation was not enabled. *)

val with_aux : ('s, 'op, 'r) t -> ('s, 'op * int, 'r) t
(** Augment each operation with an auxiliary argument recorded in the
    operation's identity but ignored by the transition — the paper's
    remedy (end of Section 2.1) for disambiguating repeated identical
    operations under [resolve]. *)
