(** Sequential specifications of object types.

    Following Section 2.1 of the paper, a type [T] is a tuple
    [(S, s0, OP, R, delta, rho)]; we represent it as a pure state machine
    where [apply] combines the transition function [delta] and response
    function [rho], and returns [None] when an operation's precondition
    does not hold in the current state (the operation is not enabled
    there).  The process id is an argument of [apply] because detectable
    types encode per-process recovery state (footnote 2 of the paper). *)

type ('s, 'op, 'r) t = {
  name : string;
  init : 's;
  apply : 's -> tid:int -> 'op -> ('s * 'r) option;
  equal_state : 's -> 's -> bool;
  equal_response : 'r -> 'r -> bool;
  pp_op : Format.formatter -> 'op -> unit;
  pp_response : Format.formatter -> 'r -> unit;
}

let make ?(equal_state = ( = )) ?(equal_response = ( = ))
    ?(pp_op = fun fmt _ -> Format.pp_print_string fmt "<op>")
    ?(pp_response = fun fmt _ -> Format.pp_print_string fmt "<r>") ~name ~init
    ~apply () =
  { name; init; apply; equal_state; equal_response; pp_op; pp_response }

(** Run a sequence of (tid, op) pairs from the initial state; [None] if
    some operation was not enabled. *)
let run_sequence spec ops =
  List.fold_left
    (fun acc (tid, op) ->
      match acc with
      | None -> None
      | Some (s, rs) -> (
          match spec.apply s ~tid op with
          | None -> None
          | Some (s', r) -> Some (s', r :: rs)))
    (Some (spec.init, []))
    ops
  |> Option.map (fun (s, rs) -> (s, List.rev rs))

(** Augment each operation with an auxiliary argument that is recorded in
    the operation's identity but ignored by the state transition — the
    remedy the paper proposes (end of Section 2.1) for disambiguating
    repeated identical operations under [resolve].  A single parity bit
    suffices when the application counts its detectable operations. *)
let with_aux spec =
  {
    name = spec.name ^ "+aux";
    init = spec.init;
    apply =
      (fun s ~tid (op, _aux) ->
        match spec.apply s ~tid op with
        | None -> None
        | Some (s', r) -> Some (s', r));
    equal_state = spec.equal_state;
    equal_response = spec.equal_response;
    pp_op =
      (fun fmt (op, aux) -> Format.fprintf fmt "%a/%d" spec.pp_op op aux);
    pp_response = spec.pp_response;
  }
