(** Simulated asynchronous message passing over the shared memory
    substrate: one volatile mailbox cell per process.  A system-wide
    crash loses every in-flight message (mailboxes are never flushed);
    delivery is reliable and unordered while the system is up. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type 'msg t

  val create : nprocs:int -> 'msg t
  val send : 'msg t -> dst:int -> 'msg -> unit
  val broadcast : 'msg t -> 'msg -> unit

  val recv_all : 'msg t -> me:int -> 'msg list
  (** Drain the caller's mailbox; [] if nothing arrived yet (poll in a
      loop — every poll is a scheduling point on the simulator). *)
end
