(** A simulated asynchronous message-passing layer, built on the same
    memory substrate as everything else so that the one scheduler
    interleaves processes and injects crashes uniformly.

    Each process owns a mailbox: a single {e volatile} cell holding the
    list of undelivered messages.  [send] CAS-appends; [recv_all] swaps
    the list out.  Mailboxes are deliberately never flushed: a
    system-wide crash loses every message in flight, which is the
    message-passing analogue of losing the volatile cache — processes
    keep only what they explicitly persisted.

    Delivery is reliable and unordered while the system is up (the
    scheduler decides interleaving); there is no duplication. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  type 'msg t = {
    mailboxes : 'msg list M.cell array;
    nprocs : int;
  }

  let create ~nprocs =
    {
      mailboxes =
        Array.init nprocs (fun i -> M.alloc ~name:(Printf.sprintf "mbox[%d]" i) []);
      nprocs;
    }

  (** Send [msg] to process [dst] (never flushed: in-flight messages are
      volatile by design). *)
  let rec send t ~dst msg =
    let cur = M.read t.mailboxes.(dst) in
    if not (M.cas t.mailboxes.(dst) ~expected:cur ~desired:(msg :: cur)) then
      send t ~dst msg

  let broadcast t msg =
    for dst = 0 to t.nprocs - 1 do
      send t ~dst msg
    done

  (** Drain process [me]'s mailbox; [] if nothing arrived yet (poll in a
      loop — every poll is a scheduling point). *)
  let rec recv_all t ~me =
    let cur = M.read t.mailboxes.(me) in
    if cur = [] then []
    else if M.cas t.mailboxes.(me) ~expected:cur ~desired:[] then List.rev cur
    else recv_all t ~me
end
