(** A detectable replicated register in the message-passing model —
    ABD-style majority-quorum storage with the DSS interface at the
    client (the paper's portability claim D2, executable).

    Processes [0 .. nservers-1] are servers; client [ci] runs as process
    [nservers + ci].  Server state is persistent; messages are volatile.
    [resolve] decides an interrupted write conclusively: complete it via
    a quorum, or {e seal} it under a dominating timestamp so it can never
    surface — giving recoverable linearizability / persistent atomicity
    (Guerraoui & Levy).  See the implementation header for the protocol
    details and soundness argument. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type t

  val create : nservers:int -> nclients:int -> t

  val server : t -> sid:int -> until:int -> unit -> unit
  (** Server body; run as a simulated thread.  Serves until
      [clients_done] reaches [until] (failure-free shutdown convention;
      crashed runs are simply cut). *)

  val reset_done : t -> unit
  (** Clear the shutdown counter before (re)starting a serving phase. *)

  val client_finished : t -> unit

  (** {1 Client operations} *)

  val read : t -> ci:int -> int
  (** Linearizable read: collect a majority, adopt the max, write it
      back, return. *)

  val prep_write : t -> ci:int -> int -> unit
  val exec_write : t -> ci:int -> unit

  type resolved = Nothing | Write_pending of int | Write_done of int

  val pp_resolved : Format.formatter -> resolved -> unit

  val resolve : t -> ci:int -> resolved
  (** Run with the servers up; total, and stable across repeated crashes
      during resolution. *)
end
