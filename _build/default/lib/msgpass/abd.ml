(** A detectable replicated register in the {e message-passing} model —
    the executable witness for the paper's portability claim (D2):
    "sequential specifications in general are compatible with message
    passing, shared memory, and m&m models" (Section 2).

    The base protocol is ABD-style multi-writer atomic storage:
    [nservers] server processes each hold a persistent (timestamp, value)
    pair; a write reads timestamps from a majority, picks a larger one,
    and writes to a majority; a read collects a majority, adopts the
    maximum, writes it back to a majority, and returns it.  Messages are
    volatile (lost at a crash); server state is flushed.

    The DSS layer lives entirely at the client: [prep_write] persists the
    intent locally (Axiom 1); [exec_write] runs the protocol, persisting
    the chosen timestamp {e before} the first write message leaves
    (so detection never has to reason about unknown timestamps) and the
    completion after the quorum acks.  [resolve] (Axiom 3) decides an
    interrupted write {e conclusively}:

    - intent only (no timestamp persisted): no write message was ever
      sent — report [(write v, ⊥)];
    - timestamp persisted, visible in a majority read: propagate it to a
      majority and report [(write v, OK)];
    - timestamp persisted, not visible: {e seal} it by writing the
      current maximum value under a timestamp that dominates the
      interrupted one everywhere (same n, same writer, higher attempt) to
      a majority — afterwards the half-written value can never become
      the maximum, so reporting [(write v, ⊥)] stays true forever.

    The sealed/completed dichotomy gives {e recoverable linearizability /
    persistent atomicity} (Guerraoui & Levy — the paper's reference
    condition for crash-recovery message passing): a completed-by-resolve
    write linearizes after the crash but before the client's next
    operation.  The tests check exactly that with the checker's
    [Recoverable] mode. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Net = Net.Make (M)

  type ts = { n : int; writer : int; attempt : int }

  let ts_compare a b =
    match compare a.n b.n with
    | 0 -> (
        match compare a.writer b.writer with
        | 0 -> compare a.attempt b.attempt
        | c -> c)
    | c -> c

  let ts_zero = { n = 0; writer = -1; attempt = 0 }

  type msg =
    | Read_req of { from : int; rid : int }
    | Read_rep of { rid : int; ts : ts; v : int }
    | Write_req of { from : int; rid : int; ts : ts; v : int }
    | Write_ack of { rid : int }

  (* Client-side persistent announcement: the A/R state of D<register>
     specialized to this protocol. *)
  type ann =
    | Idle
    | Prep of { v : int }
    | Phase2 of { ts : ts; v : int; seals : int }
    | Committed of { v : int }
    | Sealed of { v : int }  (* decided: did NOT take effect, forever *)

  type t = {
    net : msg Net.t;
    nservers : int;
    nclients : int;
    (* server persistent state: one line per server *)
    store : (ts * int) M.cell array;
    (* per-client persistent announcement *)
    ann : ann M.cell array;
    (* volatile: request ids and shutdown coordination *)
    rids : int array;
    clients_done : int M.cell;
  }

  let quorum t = (t.nservers / 2) + 1

  let create ~nservers ~nclients =
    {
      net = Net.create ~nprocs:(nservers + nclients);
      nservers;
      nclients;
      store =
        Array.init nservers (fun i ->
            M.alloc ~name:(Printf.sprintf "store[%d]" i) (ts_zero, 0));
      ann =
        Array.init nclients (fun i ->
            M.alloc ~name:(Printf.sprintf "ann[%d]" i) Idle);
      rids = Array.make nclients 0;
      clients_done = M.alloc ~name:"clients_done" 0;
    }

  (* ----------------------------- servers ----------------------------- *)

  (** Body of server [sid]; run it as a simulated thread.  Serves until
      [clients_done] reaches [until] (a volatile shutdown convention for
      failure-free runs; crashed runs are cut by the scheduler). *)
  let server t ~sid ~until () =
    let me = sid in
    let continue_serving = ref true in
    while !continue_serving do
      let msgs = Net.recv_all t.net ~me in
      List.iter
        (fun msg ->
          match msg with
          | Read_req { from; rid } ->
              let ts, v = M.read t.store.(sid) in
              Net.send t.net ~dst:from (Read_rep { rid; ts; v })
          | Write_req { from; rid; ts; v } ->
              let cur_ts, _ = M.read t.store.(sid) in
              if ts_compare ts cur_ts > 0 then begin
                M.write t.store.(sid) (ts, v);
                M.flush t.store.(sid)
              end;
              Net.send t.net ~dst:from (Write_ack { rid })
          | Read_rep _ | Write_ack _ -> ())
        msgs;
      if M.read t.clients_done >= until then continue_serving := false
    done

  (** Harness convention for restarting after a crash: clear the
      shutdown counter (it is coordination scaffolding, not protocol
      state, but a cache eviction at the crash may have persisted it). *)
  let reset_done t =
    M.write t.clients_done 0;
    M.flush t.clients_done

  (** Failure-free harness convention: each client bumps this when its
      program is finished, releasing the servers. *)
  let client_finished t =
    let rec bump () =
      let cur = M.read t.clients_done in
      if not (M.cas t.clients_done ~expected:cur ~desired:(cur + 1)) then bump ()
    in
    bump ()

  (* ------------------------- client protocol ------------------------- *)

  let client_pid t ci = t.nservers + ci

  let fresh_rid t ci =
    t.rids.(ci) <- t.rids.(ci) + 1;
    (ci * 1_000_000) + t.rids.(ci)

  (* Broadcast a read request and collect a quorum of replies. *)
  let quorum_read t ~ci =
    let me = client_pid t ci in
    let rid = fresh_rid t ci in
    for sid = 0 to t.nservers - 1 do
      Net.send t.net ~dst:sid (Read_req { from = me; rid })
    done;
    let best = ref (ts_zero, 0) in
    let count = ref 0 in
    while !count < quorum t do
      List.iter
        (fun msg ->
          match msg with
          | Read_rep { rid = r; ts; v } when r = rid ->
              incr count;
              if ts_compare ts (fst !best) > 0 then best := (ts, v)
          | _ -> ())
        (Net.recv_all t.net ~me)
    done;
    !best

  (* Broadcast a write and await a quorum of acks. *)
  let quorum_write t ~ci ts v =
    let me = client_pid t ci in
    let rid = fresh_rid t ci in
    for sid = 0 to t.nservers - 1 do
      Net.send t.net ~dst:sid (Write_req { from = me; rid; ts; v })
    done;
    let count = ref 0 in
    while !count < quorum t do
      List.iter
        (fun msg ->
          match msg with
          | Write_ack { rid = r } when r = rid -> incr count
          | _ -> ())
        (Net.recv_all t.net ~me)
    done

  (** Linearizable read (non-detectable): collect, adopt max, write back,
      return. *)
  let read t ~ci =
    let ts, v = quorum_read t ~ci in
    if ts.n > 0 then quorum_write t ~ci ts v;
    v

  (* --------------------------- DSS interface ------------------------- *)

  let prep_write t ~ci v =
    M.write t.ann.(ci) (Prep { v });
    M.flush t.ann.(ci)

  let exec_write t ~ci =
    match M.read t.ann.(ci) with
    | Prep { v } | Phase2 { v; _ } ->
        let max_ts, _ = quorum_read t ~ci in
        let ts = { n = max_ts.n + 1; writer = client_pid t ci; attempt = 0 } in
        (* Persist the chosen timestamp BEFORE any write message leaves:
           this is what makes post-crash detection conclusive. *)
        M.write t.ann.(ci) (Phase2 { ts; v; seals = 0 });
        M.flush t.ann.(ci);
        quorum_write t ~ci ts v;
        M.write t.ann.(ci) (Committed { v });
        M.flush t.ann.(ci)
    | Idle | Committed _ | Sealed _ ->
        invalid_arg "Abd.exec_write: no write prepared"

  type resolved =
    | Nothing
    | Write_pending of int
    | Write_done of int

  let pp_resolved fmt = function
    | Nothing -> Format.pp_print_string fmt "(_|_, _|_)"
    | Write_pending v -> Format.fprintf fmt "(write %d, _|_)" v
    | Write_done v -> Format.fprintf fmt "(write %d, OK)" v

  (** Detection (Axiom 3), run with the servers up.  Decides the fate of
      an interrupted write conclusively (complete or seal) and reports
      it; idempotent across repeated crashes during resolution. *)
  let resolve t ~ci =
    match M.read t.ann.(ci) with
    | Idle -> Nothing
    | Committed { v } -> Write_done v
    | Sealed { v } -> Write_pending v
    | Prep { v } ->
        (* The timestamp was never persisted, hence no write message was
           ever sent: the write certainly has no footprint. *)
        Write_pending v
    | Phase2 { ts; v; seals } ->
        let max_ts, max_v = quorum_read t ~ci in
        if max_ts = ts then begin
          (* Our write is the maximum: make it majority-stable, then
             report success. *)
          quorum_write t ~ci ts v;
          M.write t.ann.(ci) (Committed { v });
          M.flush t.ann.(ci);
          Write_done v
        end
        else if
          ts_compare max_ts ts > 0
          && max_ts.writer = ts.writer && max_ts.n = ts.n
        then begin
          (* The dominator is our OWN seal from an interrupted earlier
             resolution: the verdict was (or was about to be) "did not
             take effect" and must stay that way. *)
          M.write t.ann.(ci) (Sealed { v });
          M.flush t.ann.(ci);
          Write_pending v
        end
        else if ts_compare max_ts ts > 0 then begin
          (* A later foreign timestamp already dominates.  Whether our
             write reached a majority or a single server, "it linearized
             immediately before its dominator" is a valid history: any
             reader that saw the value is explained, and a reader that
             never sees it is explained by the overwrite.  Report success
             (persistent atomicity lets the effect fall after the crash,
             before this resolve). *)
          M.write t.ann.(ci) (Committed { v });
          M.flush t.ann.(ci);
          Write_done v
        end
        else begin
          (* Not visible in this quorum, so it reached at most a minority:
             seal it under a dominating timestamp carrying the current
             maximum value, so the orphan can never surface later.
             Persist the attempt first so repeated crashes during sealing
             use fresh timestamps. *)
          let attempt = seals + 1 in
          M.write t.ann.(ci) (Phase2 { ts; v; seals = attempt });
          M.flush t.ann.(ci);
          quorum_write t ~ci { ts with attempt } max_v;
          M.write t.ann.(ci) (Sealed { v });
          M.flush t.ann.(ci);
          Write_pending v
        end
end
