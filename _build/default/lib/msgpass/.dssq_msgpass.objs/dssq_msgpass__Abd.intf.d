lib/msgpass/abd.mli: Dssq_memory Format
