lib/msgpass/net.ml: Array Dssq_memory List Printf
