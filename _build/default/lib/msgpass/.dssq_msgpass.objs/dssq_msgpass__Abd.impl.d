lib/msgpass/abd.ml: Array Dssq_memory Format List Net Printf
