lib/msgpass/net.mli: Dssq_memory
