(** Native backend: real OCaml domains over [Atomic.t] cells.

    OCaml's [Atomic] operations are sequentially consistent, matching the
    paper's use of C++ [std::atomic] with [seq_cst] ordering (Section 4).
    [flush] and [fence] charge the calibrated persist latency from
    {!Persist_cost}; on this backend the "persistence domain" is ordinary
    RAM, so correctness under crashes is exercised on the simulator
    backend instead (which is the point of having two backends sharing
    one algorithm source). *)

type 'a cell = 'a Atomic.t

let alloc ?name v =
  ignore name;
  Atomic.make v

let read = Atomic.get
let write = Atomic.set
let cas c ~expected ~desired = Atomic.compare_and_set c expected desired

let flush c =
  (* Force the store buffer to drain in the model: read back then pay. *)
  ignore (Sys.opaque_identity (Atomic.get c));
  Persist_cost.pay_flush ()

let fence () = Persist_cost.pay_fence ()
