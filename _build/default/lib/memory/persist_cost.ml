(** Calibrated latency model for persistence instructions on the native
    backend.

    The paper's testbed flushes with PMDK [pmem_persist] (CLWB + sfence)
    against Intel Optane DCPMM; published latencies for that pair are in
    the 100-300 ns range.  This container has neither Optane nor CLWB, so
    we charge a busy-wait of a configurable number of nanoseconds at every
    flush.  The Figure 5 curve shapes depend on the {e relative} number of
    persist instructions per operation across algorithms, which this
    preserves (see DESIGN.md, substitution table).

    Calibration runs once, before any domain is spawned; afterwards the
    spin tables are read-only, so cross-domain use is race-free. *)

let spins_per_ns = ref 0.25 (* overwritten by [calibrate] *)
let flush_ns = ref 150
let fence_ns = ref 30
let flush_spins = ref 0
let fence_spins = ref 0

let monotonic_ns () =
  let t = Unix.gettimeofday () in
  Int64.of_float (t *. 1e9)

(* A spin body the compiler cannot remove. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := Sys.opaque_identity (!acc + i)
  done;
  ignore (Sys.opaque_identity !acc)

let recompute_spins () =
  flush_spins := int_of_float (float_of_int !flush_ns *. !spins_per_ns);
  fence_spins := int_of_float (float_of_int !fence_ns *. !spins_per_ns)

(** Measure how many spin iterations fit in a nanosecond. *)
let calibrate () =
  let iters = 50_000_000 in
  let t0 = monotonic_ns () in
  spin iters;
  let t1 = monotonic_ns () in
  let elapsed = Int64.to_float (Int64.sub t1 t0) in
  if elapsed > 0. then spins_per_ns := float_of_int iters /. elapsed;
  recompute_spins ()

(** Configure the charged latencies (nanoseconds).  [fence] defaults to a
    fifth of [flush]: an sfence with nothing to drain is much cheaper than
    a CLWB + sfence pair. *)
let configure ?flush ?fence () =
  (match flush with Some ns -> flush_ns := ns | None -> ());
  (match fence with
  | Some ns -> fence_ns := ns
  | None -> fence_ns := max 0 (!flush_ns / 5));
  recompute_spins ()

let current_flush_ns () = !flush_ns
let pay_flush () = if !flush_spins > 0 then spin !flush_spins
let pay_fence () = if !fence_spins > 0 then spin !fence_spins
