lib/memory/native.ml: Atomic Persist_cost Sys
