lib/memory/persist_cost.ml: Int64 Sys Unix
