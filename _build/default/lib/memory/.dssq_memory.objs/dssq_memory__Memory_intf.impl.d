lib/memory/memory_intf.ml:
