lib/memory/persist_cost.mli:
