lib/memory/native.mli: Atomic
