(** Abstract shared-memory interface for persistent-memory algorithms.

    Every concurrent algorithm in this repository is a functor over {!S}, so
    the same source runs on two backends:

    - {!Dssq_memory.Native}: OCaml 5 [Atomic.t] cells across real domains,
      with a calibrated busy-wait charged at each [flush]/[fence] to model
      the latency of a CLWB + store-fence pair (PMDK's [pmem_persist]).
    - [Dssq_sim.Memory]: simulated cells with separate volatile and
      persisted values, driven by a deterministic scheduler that can crash
      the system between any two memory events.

    Cells are word-granularity: a cell models one failure-atomic machine
    word (the paper assumes 64-bit failure-atomic writes, Section 1).
    Algorithms that need pointer tagging pack index + tag bits into a
    single [int] cell (see [Dssq_core.Tagged]). *)

module type S = sig
  type 'a cell
  (** A shared memory word holding a value of type ['a].  On persistent
      backends the cell has both a volatile (cache) value, which all
      threads observe, and a persisted value, which survives crashes. *)

  val alloc : ?name:string -> 'a -> 'a cell
  (** [alloc v] allocates a fresh cell whose volatile {e and} persisted
      value is [v] (allocation happens during failure-free initialization
      or recovery, both of which persist initial state).  [name] is used
      only for diagnostics and traces. *)

  val read : 'a cell -> 'a
  (** Sequentially consistent load of the volatile value. *)

  val write : 'a cell -> 'a -> unit
  (** Sequentially consistent store to the volatile value.  The store is
      {e not} persisted until [flush] (or a simulated cache eviction). *)

  val cas : 'a cell -> expected:'a -> desired:'a -> bool
  (** Single-word compare-and-swap on the volatile value.  Comparison is
      physical equality, which coincides with value equality for the
      immediate (int) values used by all algorithms here. *)

  val flush : 'a cell -> unit
  (** Write the cell's current volatile value back to the persistence
      domain and drain it (CLWB + sfence, i.e. PMDK [pmem_persist]). *)

  val fence : unit -> unit
  (** Store fence without a write-back; orders prior flushes. *)
end

(** Statistics hooks a backend may expose (the simulator implements them;
    the native backend counts only when enabled). *)
module type COUNTED = sig
  include S

  val reads : unit -> int
  val writes : unit -> int
  val cases : unit -> int
  val flushes : unit -> int
  val fences : unit -> int
  val reset_counters : unit -> unit
end
