(** Calibrated latency model for persistence instructions on the native
    backend: a busy-wait of a configurable number of nanoseconds charged
    at every flush/fence, standing in for CLWB+sfence against Optane
    (see DESIGN.md).  Calibrate once, before spawning domains. *)

val calibrate : unit -> unit
(** Measure the spin rate of this machine (≈1s). *)

val configure : ?flush:int -> ?fence:int -> unit -> unit
(** Set the charged latencies in nanoseconds (defaults: flush 150,
    fence = flush/5). *)

val current_flush_ns : unit -> int

val pay_flush : unit -> unit
(** Busy-wait for the configured flush latency. *)

val pay_fence : unit -> unit
