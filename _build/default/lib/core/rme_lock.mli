(** A recoverable mutual exclusion lock on a detectable CAS cell (the
    Golab-Ramaraju problem the paper cites, as a worked example).  The
    lock word holds the owner and is its own announcement: post-crash
    ownership is decided by one read, and interrupted acquire/release
    transitions resolve like any detectable CAS. *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  module Cell : module type of Dss_cell.Make (M)

  type t

  val create : nthreads:int -> unit -> t

  val acquire : t -> tid:int -> unit
  (** Blocking detectable acquire (spins; each probe is a scheduling
      point on the simulator). *)

  val try_acquire : t -> tid:int -> bool
  val release : t -> tid:int -> unit
  (** @raise Invalid_argument if the caller does not hold the lock. *)

  val holder : t -> int option

  val recover : t -> tid:int -> [ `Held | `Not_held ]
  (** Post-crash self-diagnosis: [`Held] means the process crashed inside
      its critical section (or before its release took effect) and must
      run its recovery section, then {!release}. *)

  val resolve : t -> tid:int -> int Cell.resolved
  (** Fate of the caller's last lock transition (the underlying
      detectable CAS). *)
end
