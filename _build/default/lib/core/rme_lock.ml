(** A recoverable mutual exclusion lock (in the spirit of Golab &
    Ramaraju's RME, which the paper cites) built on a detectable CAS
    cell — a small worked example of the DSS base objects carrying a
    classic synchronization primitive across crashes.

    The lock word holds the owner (0 = free, [tid+1] = held).  Because
    only the owner ever releases, ownership after a crash is decidable by
    a single read: the lock word is its own announcement.  What the
    detectable CAS adds is a well-defined [resolve] story for the
    {e transitions} — an acquire or release cut down mid-flight is
    reported by the cell exactly like any other detectable operation, so
    the recovery section can be written without guesswork.

    Recovery protocol for a restarting process [p]:
    + [recover t ~tid] — if it returns [`Held], [p] crashed inside its
      critical section (or before its release took effect); [p] re-enters
      the critical section in recovery mode, makes the protected state
      consistent, and releases.  If [`Not_held], [p] holds nothing.
    The lock itself needs no global recovery procedure. *)

module Make (M : Dssq_memory.Memory_intf.S) = struct
  module Cell = Dss_cell.Make (M)

  type t = { cell : int Cell.t; nthreads : int }

  let create ~nthreads () = { cell = Cell.create ~nthreads 0; nthreads }

  let owner_word tid = tid + 1

  (** Blocking (lock-based, not lock-free — it is a lock) detectable
      acquire. *)
  let acquire t ~tid =
    let rec loop () =
      if Cell.read t.cell = 0 then begin
        Cell.prep_cas t.cell ~tid ~expected:0 ~desired:(owner_word tid);
        if not (Cell.exec_cas t.cell ~tid) then loop ()
      end
      else begin
        (* Spin; the read is a scheduling point on the simulator. *)
        ignore (Cell.read t.cell);
        loop ()
      end
    in
    loop ()

  (** Try-acquire without spinning; [true] on success. *)
  let try_acquire t ~tid =
    if Cell.read t.cell <> 0 then false
    else begin
      Cell.prep_cas t.cell ~tid ~expected:0 ~desired:(owner_word tid);
      Cell.exec_cas t.cell ~tid
    end

  let release t ~tid =
    Cell.prep_cas t.cell ~tid ~expected:(owner_word tid) ~desired:0;
    if not (Cell.exec_cas t.cell ~tid) then
      invalid_arg "Rme_lock.release: caller does not hold the lock"

  let holder t =
    match Cell.read t.cell with 0 -> None | w -> Some (w - 1)

  (** Post-crash self-diagnosis for process [tid]. *)
  let recover t ~tid =
    if Cell.read t.cell = owner_word tid then `Held else `Not_held

  (** Fate of the process's last lock {e transition} (the underlying
      detectable CAS), for recovery sections that need it. *)
  let resolve t ~tid = Cell.resolve t.cell ~tid
end
