(** Tagged machine words.

    The DSS queue stores, per thread, a node pointer with status tags
    packed into a single failure-atomic word (array [X] in the paper).
    The paper steals the 16 unimplemented high bits of x86-64 pointers
    (footnote 5); we do the equivalent with OCaml's 63-bit immediate
    ints: the node {e index} occupies the low 40 bits and the tags sit
    well above.  Everything the algorithms CAS — head, tail, next, X,
    PMwCAS words — is one such tagged int. *)

let index_bits = 40
let index_mask = (1 lsl index_bits) - 1

(* Status tags for X[tid] (Sections 3.1-3.2):
   - enq_prep (ENQ_PREP_TAG): a detectable enqueue was prepared;
   - enq_compl (ENQ_COMPL_TAG): the prepared enqueue took effect;
   - deq_prep (DEQ_PREP_TAG): a detectable dequeue was prepared;
   - empty (EMPTY_TAG): a prepared dequeue took effect on an empty queue. *)
let enq_prep = 1 lsl 58
let enq_compl = 1 lsl 57
let deq_prep = 1 lsl 56
let empty = 1 lsl 55

let deq_done = 1 lsl 54
(** Extra tag used by the CASWithEffect queues, whose multi-word CAS
    records dequeue completion in [X] atomically with the head swing. *)

(* Marks used by the PMwCAS substrate to distinguish descriptor pointers
   from plain values (see [Dssq_pmwcas]). *)
let pmwcas_desc = 1 lsl 53
let pmwcas_rdcss = 1 lsl 52

let null = 0

let idx x = x land index_mask
let has x tag = x land tag <> 0
let with_tag x tag = x lor tag
let without_tag x tag = x land lnot tag
let tags_of x = x land lnot index_mask
let make ~idx ~tags = idx lor tags

let pp fmt x =
  let tag_names =
    List.filter_map
      (fun (t, n) -> if has x t then Some n else None)
      [
        (enq_prep, "ENQ_PREP");
        (enq_compl, "ENQ_COMPL");
        (deq_prep, "DEQ_PREP");
        (empty, "EMPTY");
        (deq_done, "DEQ_DONE");
        (pmwcas_desc, "DESC");
        (pmwcas_rdcss, "RDCSS");
      ]
  in
  Format.fprintf fmt "%d[%s]" (idx x) (String.concat "|" tag_names)
