lib/core/dss_cell.ml: Array Dssq_memory
