lib/core/dss_cell.mli: Dssq_memory
