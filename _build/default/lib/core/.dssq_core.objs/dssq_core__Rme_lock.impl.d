lib/core/rme_lock.ml: Dss_cell Dssq_memory
