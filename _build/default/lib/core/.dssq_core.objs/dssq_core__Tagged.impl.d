lib/core/tagged.ml: Format List String
