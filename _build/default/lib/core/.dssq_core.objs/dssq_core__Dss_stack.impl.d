lib/core/dss_stack.ml: Array Dssq_ebr Dssq_memory List Node_pool Printf Queue_intf Tagged
