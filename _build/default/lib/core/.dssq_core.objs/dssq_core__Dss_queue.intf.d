lib/core/dss_queue.mli: Dssq_memory Node_pool Queue_intf
