lib/core/dss_register.mli: Dssq_memory Format
