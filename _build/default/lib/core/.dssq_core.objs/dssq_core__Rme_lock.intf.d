lib/core/rme_lock.mli: Dss_cell Dssq_memory
