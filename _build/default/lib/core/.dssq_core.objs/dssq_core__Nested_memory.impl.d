lib/core/nested_memory.ml: Dss_cell Dssq_memory
