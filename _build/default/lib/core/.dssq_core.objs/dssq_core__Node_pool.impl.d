lib/core/node_pool.ml: Array Atomic Dssq_ebr Dssq_memory List Printf Tagged
