lib/core/dss_register.ml: Array Dssq_memory Format Printf
