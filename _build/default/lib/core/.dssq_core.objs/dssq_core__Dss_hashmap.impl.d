lib/core/dss_hashmap.ml: Array Dss_cell Dssq_memory Format List Printf
