lib/core/node_pool.mli: Atomic Dssq_ebr Dssq_memory
