lib/core/dss_hashmap.mli: Dssq_memory Format
