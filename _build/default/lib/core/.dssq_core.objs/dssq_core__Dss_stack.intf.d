lib/core/dss_stack.mli: Dssq_memory Node_pool Queue_intf
