(** A detectable recoverable read/write register packed into single
    failure-atomic words — [D<register>] built from raw cells, with no
    recovery procedure and no auxiliary system state (Section 2.2's
    base-object story).

    The register word carries [(value, writer, seq)] provenance; writers
    {e help} persist the previous writer's completion before destroying
    its evidence, which is what keeps [resolve] sound across overwrites.
    Values are in [0 .. 2^40-1]; at most 4096 threads; the per-thread
    sequence number wraps at 256 (bounded helper staleness, like the log
    queue's entry ring). *)

module Make (M : Dssq_memory.Memory_intf.S) : sig
  type t

  type resolved =
    | Nothing
    | Write_pending of int
    | Write_done of int
    | Read_pending
    | Read_done of int

  val pp_resolved : Format.formatter -> resolved -> unit

  val create : ?init:int -> nthreads:int -> unit -> t

  (** {1 Non-detectable operations} *)

  val read : t -> tid:int -> int
  val write : t -> tid:int -> int -> unit

  (** {1 Detectable operations} *)

  val prep_write : t -> tid:int -> int -> unit
  val exec_write : t -> tid:int -> unit
  val prep_read : t -> tid:int -> unit
  val exec_read : t -> tid:int -> int
  val resolve : t -> tid:int -> resolved

  val recover : t -> unit
  (** No-op: detection state is maintained inline by helping. *)
end
