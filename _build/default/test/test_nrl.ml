(** Tests for the NRL comparison layer: recoverable operations whose
    recovery COMPLETES them (vs DSS resolve, which reports), driven by
    the frame-stack "system support" that NRL assumes — including nested
    operations recovered inner-most first, as the NRL model specifies. *)

open Helpers

(* Functor-generated types cannot escape their scope, so every scenario
   instantiates its world inline. *)

let test_register_failure_free () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module N = Dssq_nrl.Nrl.Make (M) in
  let sys = N.System.create ~nthreads:2 ~max_depth:4 in
  let r = N.Register.create ~sys ~obj_id:1 ~nthreads:2 () in
  N.Register.write r ~tid:0 5;
  Alcotest.(check int) "written" 5 (N.Register.read r);
  Alcotest.(check int) "no pending frames" 0
    (List.length (N.System.recover_process sys ~tid:0))

let test_register_crash_sweep () =
  (* NRL semantics: after ANY crash, recovery completes the interrupted
     write — the register must contain the value afterwards, always
     (contrast: DSS resolve may legitimately report "did not take
     effect" and leave redo to the application). *)
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let heap = Heap.create () in
        let (module M) = Sim.memory heap in
        let module N = Dssq_nrl.Nrl.Make (M) in
        let sys = N.System.create ~nthreads:1 ~max_depth:4 in
        let r = N.Register.create ~sys ~obj_id:1 ~nthreads:1 () in
        let t () = N.Register.write r ~tid:0 5 in
        let outcome =
          Sim.run heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash heap ~evict_p ~seed:(500_000 + !step);
          let recovered = N.System.recover_process sys ~tid:0 in
          (match recovered with
          | [] ->
              (* No pending frame: either the crash preceded the frame
                 persist (operation never happened; caller re-invokes) or
                 it hit after completion during the frame pop. *)
              Alcotest.(check bool)
                (Printf.sprintf "no frame => all-or-nothing (step %d)" !step)
                true
                (let v = N.Register.read r in
                 v = 0 || v = 5)
          | [ (frame, resp) ] ->
              Alcotest.(check int) "recovered write arg" 5 frame.N.System.arg;
              Alcotest.(check int) "response OK" 0 resp;
              Alcotest.(check int)
                (Printf.sprintf "write completed by recovery (step %d)" !step)
                5 (N.Register.read r)
          | _ -> Alcotest.fail "unexpected frame count");
          (* Recovery is idempotent: nothing left pending. *)
          Alcotest.(check int) "stack empty after recovery" 0
            (List.length (N.System.recover_process sys ~tid:0))
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_counter_crash_sweep_exactly_once () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let heap = Heap.create () in
        let (module M) = Sim.memory heap in
        let module N = Dssq_nrl.Nrl.Make (M) in
        let sys = N.System.create ~nthreads:1 ~max_depth:4 in
        let c = N.Counter.create ~sys ~obj_id:2 ~nthreads:1 () in
        let t () =
          N.Counter.add c ~tid:0 3;
          N.Counter.add c ~tid:0 4
        in
        let outcome =
          Sim.run heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then begin
          Alcotest.(check int) "both adds" 7 (N.Counter.get c);
          finished := true
        end
        else begin
          Sim.apply_crash heap ~evict_p ~seed:(600_000 + !step);
          let recovered = N.System.recover_process sys ~tid:0 in
          (* The interrupted add (if its frame persisted) completed
             exactly once; the total must be a prefix sum. *)
          let v = N.Counter.get c in
          let legal =
            match recovered with
            (* no pending frame: before the first add, between the adds,
               or after the second add completed (crash mid-pop) *)
            | [] -> v = 0 || v = 3 || v = 7
            | [ (f, _) ] when f.N.System.arg = 3 -> v = 3
            | [ (f, _) ] when f.N.System.arg = 4 -> v = 7
            | _ -> false
          in
          Alcotest.(check bool)
            (Printf.sprintf "prefix-sum after recovery (step %d, v=%d)" !step v)
            true legal
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_nested_recovery_innermost_first () =
  (* A composite recoverable operation: "write both registers".  The
     system must recover the inner-most pending write first, then the
     composite's own recovery completes the remainder — the nesting
     behaviour NRL's model postulates (Section 2 of the paper quotes it). *)
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let heap = Heap.create () in
    let (module M) = Sim.memory heap in
    let module N = Dssq_nrl.Nrl.Make (M) in
    let sys = N.System.create ~nthreads:1 ~max_depth:4 in
    let r1 = N.Register.create ~sys ~obj_id:1 ~nthreads:1 () in
    let r2 = N.Register.create ~sys ~obj_id:2 ~nthreads:1 () in
    (* Composite object 50: write (arg) to r1 and (arg2) to r2. *)
    let order = ref [] in
    N.System.register sys ~obj_id:50 ~recover:(fun ~tid frame ->
        order := `Outer :: !order;
        N.Register.write r1 ~tid frame.N.System.arg;
        N.Register.write r2 ~tid frame.N.System.arg2;
        0);
    (* Track inner recoveries through wrappers. *)
    N.System.register sys ~obj_id:1 ~recover:(fun ~tid frame ->
        order := `Inner1 :: !order;
        if N.Register.read r1 <> frame.N.System.arg then
          N.Register.write r1 ~tid frame.N.System.arg;
        0);
    N.System.register sys ~obj_id:2 ~recover:(fun ~tid frame ->
        order := `Inner2 :: !order;
        if N.Register.read r2 <> frame.N.System.arg then
          N.Register.write r2 ~tid frame.N.System.arg;
        0);
    let t () =
      ignore
        (N.System.call sys ~tid:0 ~obj_id:50 ~opcode:9 ~arg:7 ~arg2:8 (fun () ->
             N.Register.write r1 ~tid:0 7;
             N.Register.write r2 ~tid:0 8;
             0))
    in
    let outcome = Sim.run heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then begin
      Alcotest.(check int) "r1" 7 (N.Register.read r1);
      Alcotest.(check int) "r2" 8 (N.Register.read r2);
      finished := true
    end
    else begin
      Sim.apply_crash heap ~evict_p:0.5 ~seed:(700_000 + !step);
      let recovered = N.System.recover_process sys ~tid:0 in
      if recovered <> [] then begin
        (* If both an inner and the outer frame were pending, the inner
           ran first. *)
        (match List.rev !order with
        | `Outer :: rest ->
            Alcotest.(check bool) "outer recovered without pending inner" true
              (rest = [] || not (List.mem `Outer rest))
        | (`Inner1 | `Inner2) :: _ -> () (* inner-first: correct *)
        | [] -> ());
        (* If the OUTER frame was among the recovered, the composite is
           complete afterwards. *)
        if
          List.exists
            (fun ((f : N.System.frame), _) -> f.N.System.obj_id = 50)
            recovered
        then begin
          Alcotest.(check int)
            (Printf.sprintf "r1 complete (step %d)" !step)
            7 (N.Register.read r1);
          Alcotest.(check int)
            (Printf.sprintf "r2 complete (step %d)" !step)
            8 (N.Register.read r2)
        end
      end
    end;
    incr step
  done

let test_frame_stack_depth_guard () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module N = Dssq_nrl.Nrl.Make (M) in
  let sys = N.System.create ~nthreads:1 ~max_depth:1 in
  Alcotest.check_raises "depth guard"
    (Invalid_argument "Nrl.System.call: too deep") (fun () ->
      ignore
        (N.System.call sys ~tid:0 ~obj_id:1 ~opcode:1 ~arg:0 (fun () ->
             N.System.call sys ~tid:0 ~obj_id:1 ~opcode:1 ~arg:0 (fun () -> 0))))

let test_announcement_cost_visible () =
  (* The NRL layer's per-operation overhead (frame push/pop, 4 flushed
     writes) must show up in the memory-event statistics — this is the
     "detectability on demand" contrast, quantified. *)
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module N = Dssq_nrl.Nrl.Make (M) in
  let module C = Dssq_core.Dss_cell.Make (M) in
  let sys = N.System.create ~nthreads:1 ~max_depth:2 in
  let r = N.Register.create ~sys ~obj_id:1 ~nthreads:1 () in
  let plain = C.create ~nthreads:1 0 in
  Heap.reset_stats heap;
  N.Register.write r ~tid:0 1;
  let nrl_flushes = (Heap.stats heap).Heap.flushes in
  Heap.reset_stats heap;
  C.write plain 1;
  let plain_flushes = (Heap.stats heap).Heap.flushes in
  Alcotest.(check bool)
    (Printf.sprintf "NRL write (%d flushes) > plain write (%d flushes)"
       nrl_flushes plain_flushes)
    true
    (nrl_flushes >= plain_flushes + 4)

let suite =
  [
    Alcotest.test_case "register: failure-free" `Quick
      test_register_failure_free;
    Alcotest.test_case "register: crash sweep, recovery completes" `Quick
      test_register_crash_sweep;
    Alcotest.test_case "counter: exactly-once across crashes" `Quick
      test_counter_crash_sweep_exactly_once;
    Alcotest.test_case "nested recovery, inner-most first" `Quick
      test_nested_recovery_innermost_first;
    Alcotest.test_case "frame stack depth guard" `Quick
      test_frame_stack_depth_guard;
    Alcotest.test_case "announcement cost is visible" `Quick
      test_announcement_cost_visible;
  ]
