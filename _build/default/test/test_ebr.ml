(** Unit tests for epoch-based reclamation. *)

module Ebr = Dssq_ebr.Ebr

let make ?(nthreads = 2) () =
  let freed = ref [] in
  let ebr =
    Ebr.create ~advance_period:1 ~nthreads
      ~free:(fun ~tid:_ x -> freed := x :: !freed)
      ()
  in
  (ebr, freed)

let test_no_premature_free () =
  let ebr, freed = make () in
  Ebr.enter ebr ~tid:0;
  Ebr.enter ebr ~tid:1;
  Ebr.retire ebr ~tid:0 42;
  (* Thread 1 is still in its region announcing the current epoch: the
     item must not be freed however often thread 0 re-enters. *)
  Ebr.exit ebr ~tid:0;
  for _ = 1 to 10 do
    Ebr.enter ebr ~tid:0;
    Ebr.exit ebr ~tid:0
  done;
  Alcotest.(check bool) "not freed while t1 in region" true
    (not (List.mem 42 !freed))

let test_freed_after_grace () =
  let ebr, freed = make () in
  Ebr.enter ebr ~tid:0;
  Ebr.retire ebr ~tid:0 42;
  Ebr.exit ebr ~tid:0;
  (* With every thread quiescent, a few enters advance the epoch twice
     and collect. *)
  for _ = 1 to 10 do
    Ebr.enter ebr ~tid:0;
    Ebr.exit ebr ~tid:0;
    Ebr.enter ebr ~tid:1;
    Ebr.exit ebr ~tid:1
  done;
  Alcotest.(check bool) "freed after grace period" true (List.mem 42 !freed)

let test_epoch_advances_only_when_all_caught_up () =
  let ebr, _ = make () in
  Ebr.enter ebr ~tid:0;
  let e0 = Ebr.global_epoch ebr in
  (* t0 is pinned at e0; t1 churning cannot advance the epoch by more
     than one past t0's announcement. *)
  for _ = 1 to 20 do
    Ebr.enter ebr ~tid:1;
    Ebr.exit ebr ~tid:1
  done;
  Alcotest.(check bool) "epoch advance bounded by pinned thread" true
    (Ebr.global_epoch ebr - e0 <= 1)

let test_quiesce_frees_everything () =
  let ebr, freed = make () in
  Ebr.enter ebr ~tid:0;
  Ebr.retire ebr ~tid:0 1;
  Ebr.retire ebr ~tid:0 2;
  Ebr.exit ebr ~tid:0;
  Ebr.quiesce ebr;
  Alcotest.(check (list int)) "all freed" [ 1; 2 ] (List.sort compare !freed);
  Alcotest.(check int) "nothing pending" 0 (Ebr.pending ebr)

let test_pending_counts () =
  let ebr, _ = make () in
  Ebr.enter ebr ~tid:0;
  Ebr.retire ebr ~tid:0 1;
  Ebr.retire ebr ~tid:0 2;
  Alcotest.(check int) "pending" 2 (Ebr.pending ebr)

let test_stress_many_retirements () =
  (* Retire many items across interleaved regions; at the end everything
     must be freed exactly once. *)
  let freed = ref [] in
  let ebr =
    Ebr.create ~advance_period:3 ~nthreads:3
      ~free:(fun ~tid:_ x -> freed := x :: !freed)
      ()
  in
  let next = ref 0 in
  for round = 1 to 200 do
    let tid = round mod 3 in
    Ebr.enter ebr ~tid;
    incr next;
    Ebr.retire ebr ~tid !next;
    Ebr.exit ebr ~tid
  done;
  Ebr.quiesce ebr;
  let sorted = List.sort compare !freed in
  Alcotest.(check int) "all freed" 200 (List.length sorted);
  Alcotest.(check bool) "no duplicates" true
    (List.sort_uniq compare sorted = sorted)

let suite =
  [
    Alcotest.test_case "no free while a reader is in-region" `Quick
      test_no_premature_free;
    Alcotest.test_case "freed after grace period" `Quick test_freed_after_grace;
    Alcotest.test_case "epoch advance requires all announcements" `Quick
      test_epoch_advances_only_when_all_caught_up;
    Alcotest.test_case "quiesce frees everything" `Quick
      test_quiesce_frees_everything;
    Alcotest.test_case "pending counts retirements" `Quick test_pending_counts;
    Alcotest.test_case "stress: everything freed exactly once" `Quick
      test_stress_many_retirements;
  ]
