(** Tests for the recoverable mutual exclusion lock: mutual exclusion
    under every interleaving, ownership recovery after crashes at every
    step, and a crash-recovery workload where the protected invariant
    survives arbitrary failures. *)

open Helpers

type lk = {
  heap : Heap.t;
  acquire : tid:int -> unit;
  try_acquire : tid:int -> bool;
  release : tid:int -> unit;
  holder : unit -> int option;
  recover : tid:int -> [ `Held | `Not_held ];
}

let make ~nthreads () : lk =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module L = Dssq_core.Rme_lock.Make (M) in
  let l = L.create ~nthreads () in
  {
    heap;
    acquire = (fun ~tid -> L.acquire l ~tid);
    try_acquire = (fun ~tid -> L.try_acquire l ~tid);
    release = (fun ~tid -> L.release l ~tid);
    holder = (fun () -> L.holder l);
    recover = (fun ~tid -> L.recover l ~tid);
  }

let test_basic () =
  let l = make ~nthreads:2 () in
  Alcotest.(check (option int)) "free" None (l.holder ());
  l.acquire ~tid:0;
  Alcotest.(check (option int)) "held by 0" (Some 0) (l.holder ());
  Alcotest.(check bool) "contended try fails" false (l.try_acquire ~tid:1);
  l.release ~tid:0;
  Alcotest.(check bool) "free again" true (l.try_acquire ~tid:1);
  l.release ~tid:1

let test_release_requires_ownership () =
  let l = make ~nthreads:2 () in
  l.acquire ~tid:0;
  Alcotest.check_raises "non-owner release rejected"
    (Invalid_argument "Rme_lock.release: caller does not hold the lock")
    (fun () -> l.release ~tid:1)

let test_mutual_exclusion_exhaustive () =
  (* Two threads, one lock, a non-atomic critical section: every
     preemption-bounded interleaving must keep the CS exclusive. *)
  ignore
    (Explore.run
       (Explore.make ~max_preemptions:2
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let module L = Dssq_core.Rme_lock.Make (M) in
            let l = L.create ~nthreads:2 () in
            let in_cs = ref (-1) in
            let violations = ref 0 in
            let worker ~tid () =
              if L.try_acquire l ~tid then begin
                if !in_cs <> -1 then incr violations;
                in_cs := tid;
                (* some memory traffic inside the CS *)
                ignore (L.holder l);
                in_cs := -1;
                L.release l ~tid
              end
            in
            {
              Explore.ctx = violations;
              heap;
              threads = [ worker ~tid:0; worker ~tid:1 ];
            })
          ~check:(fun violations _ ~crashed:_ ->
            Alcotest.(check int) "mutual exclusion" 0 !violations)
          ()));
  ()

let test_crash_recovery_ownership () =
  (* Crash at every step of acquire-CS-release: recover reports Held
     exactly when the lock word says so, and releasing un-wedges the
     lock for everyone else. *)
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let l = make ~nthreads:2 () in
    let t () =
      l.acquire ~tid:0;
      l.release ~tid:0
    in
    let outcome = Sim.run l.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash l.heap ~evict_p:0.5 ~seed:(900_000 + !step);
      (match l.recover ~tid:0 with
      | `Held ->
          Alcotest.(check (option int)) "word agrees" (Some 0) (l.holder ());
          l.release ~tid:0
      | `Not_held ->
          Alcotest.(check bool) "word agrees" true (l.holder () <> Some 0));
      (* No deadlock: someone else can take the lock now. *)
      Alcotest.(check bool)
        (Printf.sprintf "lock available after recovery (step %d)" !step)
        true
        (l.try_acquire ~tid:1);
      l.release ~tid:1
    end;
    incr step
  done

let test_protected_invariant_across_crashes () =
  (* The classic RME workload: a lock-protected non-atomic counter
     (read; +1; write; flush).  Crashes strike at random; the crashed
     holder recovers, repairs the counter idempotently and releases.
     The invariant: the counter equals the number of completed
     increments, and never tears. *)
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module L = Dssq_core.Rme_lock.Make (M) in
  let l = L.create ~nthreads:2 () in
  let counter = M.alloc ~name:"protected" 0 in
  let completed = Array.make 2 0 in
  let intent = Array.make 2 (-1) in
  (* target value each thread is installing; volatile *)
  let total_target = 20 in
  let crashes = ref 0 in
  let epoch = ref 0 in
  while completed.(0) + completed.(1) < total_target do
    incr epoch;
    let worker ~tid () =
      while completed.(0) + completed.(1) < total_target do
        L.acquire l ~tid;
        let v = M.read counter in
        intent.(tid) <- v + 1;
        M.write counter (v + 1);
        M.flush counter;
        completed.(tid) <- completed.(tid) + 1;
        intent.(tid) <- -1;
        L.release l ~tid;
        Sim.yield heap
      done
    in
    let outcome =
      Sim.run heap
        ~policy:(Sim.Random_seed !epoch)
        ~crash:(Sim.Crash_prob (0.01, !epoch))
        ~threads:[ worker ~tid:0; worker ~tid:1 ]
    in
    if outcome.Sim.crashed then begin
      incr crashes;
      Sim.apply_crash heap ~evict_p:0.5 ~seed:!epoch;
      for tid = 0 to 1 do
        match L.recover l ~tid with
        | `Held ->
            (* Recovery section: finish the interrupted increment
               idempotently, then release. *)
            (if intent.(tid) <> -1 then begin
               if M.read counter < intent.(tid) then begin
                 M.write counter intent.(tid);
                 M.flush counter
               end;
               completed.(tid) <- completed.(tid) + 1;
               intent.(tid) <- -1
             end);
            L.release l ~tid
        | `Not_held -> intent.(tid) <- -1
      done
    end
  done;
  Alcotest.(check int) "counter = completed increments"
    (completed.(0) + completed.(1))
    (M.read counter);
  Alcotest.(check bool) "survived some crashes" true (!crashes >= 0)

let suite =
  [
    Alcotest.test_case "acquire/release basics" `Quick test_basic;
    Alcotest.test_case "release requires ownership" `Quick
      test_release_requires_ownership;
    Alcotest.test_case "mutual exclusion (exhaustive)" `Quick
      test_mutual_exclusion_exhaustive;
    Alcotest.test_case "crash sweep: ownership recovery" `Quick
      test_crash_recovery_ownership;
    Alcotest.test_case "protected invariant across crashes" `Quick
      test_protected_invariant_across_crashes;
  ]
