(** Tests for the sequential specifications and the DSS transformation of
    Section 2.1: the four axioms of Figure 1, totality and idempotence of
    prep/resolve, and the Figure 2 register scenarios expressed at
    specification level. *)

open Helpers
module Reg = Specs.Register
module Q = Specs.Queue
module Cnt = Specs.Counter

let apply spec s ~tid op =
  match spec.Spec.apply s ~tid op with
  | Some sr -> sr
  | None -> Alcotest.fail "operation unexpectedly disabled"

let disabled spec s ~tid op =
  match spec.Spec.apply s ~tid op with
  | None -> ()
  | Some _ -> Alcotest.fail "operation unexpectedly enabled"

(* ---------------- base specifications ---------------- *)

let test_register_spec () =
  let spec = Reg.spec () in
  let s, r = apply spec spec.Spec.init ~tid:0 (Reg.Write 5) in
  Alcotest.(check bool) "write ok" true (r = Reg.Ok);
  let _, r = apply spec s ~tid:1 Reg.Read in
  Alcotest.(check bool) "read sees write" true (r = Reg.Value 5)

let test_queue_spec_fifo () =
  let spec = Q.spec () in
  match
    Spec.run_sequence spec
      [ (0, Q.Enqueue 1); (0, Q.Enqueue 2); (1, Q.Dequeue); (1, Q.Dequeue); (1, Q.Dequeue) ]
  with
  | None -> Alcotest.fail "sequence disabled"
  | Some (s, rs) ->
      Alcotest.(check bool) "final empty" true (s = []);
      Alcotest.(check bool) "fifo order + empty" true
        (rs = [ Q.Ok; Q.Ok; Q.Value 1; Q.Value 2; Q.Empty ])

let test_counter_spec () =
  let spec = Cnt.spec () in
  match
    Spec.run_sequence spec [ (0, Cnt.Increment); (1, Cnt.Increment); (0, Cnt.Get) ]
  with
  | Some (s, rs) ->
      Alcotest.(check int) "state" 2 s;
      Alcotest.(check bool) "get sees both" true
        (List.nth rs 2 = Cnt.Value 2)
  | None -> Alcotest.fail "disabled"

(* ---------------- DSS transformation: Figure 1 axioms ---------------- *)

let dss = Dss_spec.make ~nthreads:2 (Reg.spec ())

let test_axiom1_prep () =
  (* prep-op: total; records A[p]=op, R[p]=bottom; responds bottom. *)
  let s, r = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  Alcotest.(check bool) "ack" true (r = Dss_spec.Ack);
  Alcotest.(check bool) "A[0] recorded" true (s.Dss_spec.a.(0) = Some (Reg.Write 1));
  Alcotest.(check bool) "R[0] bottom" true (s.Dss_spec.r.(0) = None);
  Alcotest.(check bool) "A[1] untouched" true (s.Dss_spec.a.(1) = None)

let test_axiom1_idempotent () =
  let s1, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  let s2, _ = apply dss s1 ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  Alcotest.(check bool) "prep twice = prep once" true
    (dss.Spec.equal_state s1 s2)

let test_axiom2_exec_requires_prep () =
  (* exec-op is enabled only when A[p] = op and R[p] = bottom. *)
  disabled dss dss.Spec.init ~tid:0 (Dss_spec.Exec (Reg.Write 1));
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  disabled dss s ~tid:0 (Dss_spec.Exec (Reg.Write 2));
  (* a different process did not prepare *)
  disabled dss s ~tid:1 (Dss_spec.Exec (Reg.Write 1));
  let s', r = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1)) in
  Alcotest.(check bool) "exec returns rho" true (r = Dss_spec.Ret Reg.Ok);
  Alcotest.(check int) "state transitioned" 1 s'.Dss_spec.base;
  Alcotest.(check bool) "R[0] set" true (s'.Dss_spec.r.(0) = Some Reg.Ok);
  (* exec cannot run twice for one prep (R[p] no longer bottom) *)
  disabled dss s' ~tid:0 (Dss_spec.Exec (Reg.Write 1))

let test_axiom3_resolve () =
  (* resolve: total, idempotent, returns (A[p], R[p]), no side effect. *)
  let _, r = apply dss dss.Spec.init ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "initially (bottom,bottom)" true
    (r = Dss_spec.Status (None, None));
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  let s, r = apply dss s ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "prepared, not executed" true
    (r = Dss_spec.Status (Some (Reg.Write 1), None));
  let s, _ = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1)) in
  let s1, r1 = apply dss s ~tid:0 Dss_spec.Resolve in
  let s2, r2 = apply dss s1 ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "executed" true
    (r1 = Dss_spec.Status (Some (Reg.Write 1), Some Reg.Ok));
  Alcotest.(check bool) "idempotent response" true (r1 = r2);
  Alcotest.(check bool) "no side effect" true (dss.Spec.equal_state s s2)

let test_axiom4_base_op () =
  (* plain op: state transition, no effect on A/R. *)
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 7)) in
  let s', r = apply dss s ~tid:0 (Dss_spec.Base (Reg.Write 9)) in
  Alcotest.(check bool) "base returns rho" true (r = Dss_spec.Ret Reg.Ok);
  Alcotest.(check int) "base transitions" 9 s'.Dss_spec.base;
  Alcotest.(check bool) "A untouched by base op" true
    (s'.Dss_spec.a.(0) = Some (Reg.Write 7));
  Alcotest.(check bool) "R untouched by base op" true (s'.Dss_spec.r.(0) = None)

let test_prep_overwrites_previous () =
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  let s, _ = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1)) in
  let s, _ = apply dss s ~tid:0 (Dss_spec.Prep Reg.Read) in
  let _, r = apply dss s ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "new prep resets R to bottom" true
    (r = Dss_spec.Status (Some Reg.Read, None))

let test_per_process_isolation () =
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  let s, _ = apply dss s ~tid:1 (Dss_spec.Prep Reg.Read) in
  let s, _ = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1)) in
  let _, r0 = apply dss s ~tid:0 Dss_spec.Resolve in
  let _, r1 = apply dss s ~tid:1 Dss_spec.Resolve in
  Alcotest.(check bool) "p0 sees own op" true
    (r0 = Dss_spec.Status (Some (Reg.Write 1), Some Reg.Ok));
  Alcotest.(check bool) "p1 sees own prep only" true
    (r1 = Dss_spec.Status (Some Reg.Read, None))

(* Figure 2, expressed as legal outcomes at spec level: after prep and a
   crash, resolve may observe the exec either way; exec-then-resolve must
   observe it. *)
let test_figure2_outcomes () =
  (* (a) prep; exec; resolve -> (write 1, OK) *)
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1)) in
  let s_exec, _ = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1)) in
  let _, ra = apply dss s_exec ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "(a)" true
    (ra = Dss_spec.Status (Some (Reg.Write 1), Some Reg.Ok));
  (* (b)/(c): crash before/within exec — the exec either linearized
     (state = s_exec, handled above) or did not (state = s): *)
  let _, rc = apply dss s ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "(b)/(c)" true
    (rc = Dss_spec.Status (Some (Reg.Write 1), None));
  (* (d): crash during prep — prep either linearized (state = s) or not
     (initial state): *)
  let _, rd = apply dss dss.Spec.init ~tid:0 Dss_spec.Resolve in
  Alcotest.(check bool) "(d)" true (rd = Dss_spec.Status (None, None))

(* ---------------- aux-argument disambiguation ---------------- *)

let test_with_aux () =
  let spec = Spec.with_aux (Reg.spec ()) in
  let dss = Dss_spec.make ~nthreads:1 spec in
  let s, _ = apply dss dss.Spec.init ~tid:0 (Dss_spec.Prep (Reg.Write 1, 0)) in
  let s, _ = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1, 0)) in
  let s, _ = apply dss s ~tid:0 (Dss_spec.Prep (Reg.Write 1, 1)) in
  let _, r = apply dss s ~tid:0 Dss_spec.Resolve in
  (* The parity bit distinguishes the second prepared instance of the
     same op, exactly the remedy described at the end of Section 2.1. *)
  Alcotest.(check bool) "aux distinguishes repeats" true
    (r = Dss_spec.Status (Some (Reg.Write 1, 1), None));
  (* exec with the wrong aux is disabled (it is a different op) *)
  disabled dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1, 0));
  let s', _ = apply dss s ~tid:0 (Dss_spec.Exec (Reg.Write 1, 1)) in
  Alcotest.(check int) "aux ignored by delta" 1 s'.Dss_spec.base

let test_dss_is_generic () =
  (* The transformation applies to any type: spot-check queue and stack. *)
  let dq = Dss_spec.make ~nthreads:1 (Q.spec ()) in
  let s, _ = apply dq dq.Spec.init ~tid:0 (Dss_spec.Prep (Q.Enqueue 3)) in
  let s, r = apply dq s ~tid:0 (Dss_spec.Exec (Q.Enqueue 3)) in
  Alcotest.(check bool) "queue exec" true (r = Dss_spec.Ret Q.Ok);
  Alcotest.(check bool) "queue state" true (s.Dss_spec.base = [ 3 ]);
  let module St = Specs.Stack in
  let ds = Dss_spec.make ~nthreads:1 (St.spec ()) in
  let s, _ = apply ds ds.Spec.init ~tid:0 (Dss_spec.Base (St.Push 1)) in
  let s, _ = apply ds s ~tid:0 (Dss_spec.Base (St.Push 2)) in
  let _, r = apply ds s ~tid:0 (Dss_spec.Base St.Pop) in
  Alcotest.(check bool) "stack lifo" true (r = Dss_spec.Ret (St.Value 2))

let suite =
  [
    Alcotest.test_case "register spec" `Quick test_register_spec;
    Alcotest.test_case "queue spec is FIFO with EMPTY" `Quick
      test_queue_spec_fifo;
    Alcotest.test_case "counter spec" `Quick test_counter_spec;
    Alcotest.test_case "axiom 1: prep records intent" `Quick test_axiom1_prep;
    Alcotest.test_case "axiom 1: prep idempotent" `Quick test_axiom1_idempotent;
    Alcotest.test_case "axiom 2: exec preconditions" `Quick
      test_axiom2_exec_requires_prep;
    Alcotest.test_case "axiom 3: resolve total and idempotent" `Quick
      test_axiom3_resolve;
    Alcotest.test_case "axiom 4: plain op leaves A/R alone" `Quick
      test_axiom4_base_op;
    Alcotest.test_case "prep overwrites previous context" `Quick
      test_prep_overwrites_previous;
    Alcotest.test_case "per-process A/R isolation" `Quick
      test_per_process_isolation;
    Alcotest.test_case "figure 2 outcomes" `Quick test_figure2_outcomes;
    Alcotest.test_case "aux argument disambiguates repeats" `Quick
      test_with_aux;
    Alcotest.test_case "transformation is type-generic" `Quick
      test_dss_is_generic;
  ]
