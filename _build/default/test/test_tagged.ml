(** Unit tests for tagged-word encoding. *)

module Tagged = Dssq_core.Tagged

let test_roundtrip () =
  let x = Tagged.make ~idx:12345 ~tags:(Tagged.enq_prep lor Tagged.enq_compl) in
  Alcotest.(check int) "idx" 12345 (Tagged.idx x);
  Alcotest.(check bool) "prep" true (Tagged.has x Tagged.enq_prep);
  Alcotest.(check bool) "compl" true (Tagged.has x Tagged.enq_compl);
  Alcotest.(check bool) "no deq" false (Tagged.has x Tagged.deq_prep)

let test_tags_disjoint () =
  let tags =
    [
      Tagged.enq_prep;
      Tagged.enq_compl;
      Tagged.deq_prep;
      Tagged.empty;
      Tagged.deq_done;
      Tagged.pmwcas_desc;
      Tagged.pmwcas_rdcss;
    ]
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check int)
              (Printf.sprintf "tags %d,%d disjoint" i j)
              0 (a land b))
        tags)
    tags;
  List.iter
    (fun t ->
      Alcotest.(check int) "tag above index bits" 0 (t land Tagged.index_mask))
    tags

let test_add_remove () =
  let x = Tagged.with_tag 7 Tagged.deq_prep in
  Alcotest.(check bool) "added" true (Tagged.has x Tagged.deq_prep);
  let x = Tagged.without_tag x Tagged.deq_prep in
  Alcotest.(check int) "removed leaves index" 7 x

let test_max_index () =
  let idx = Tagged.index_mask in
  let x = Tagged.make ~idx ~tags:Tagged.enq_prep in
  Alcotest.(check int) "max index survives" idx (Tagged.idx x);
  Alcotest.(check bool) "tag survives" true (Tagged.has x Tagged.enq_prep)

let test_tags_of () =
  let tags = Tagged.enq_prep lor Tagged.empty in
  let x = Tagged.make ~idx:99 ~tags in
  Alcotest.(check int) "tags_of" tags (Tagged.tags_of x)

let test_null () =
  Alcotest.(check int) "null is zero" 0 Tagged.null;
  Alcotest.(check int) "null has empty index" 0 (Tagged.idx Tagged.null)

let suite =
  [
    Alcotest.test_case "index/tag roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "all tags pairwise disjoint" `Quick test_tags_disjoint;
    Alcotest.test_case "with/without tag" `Quick test_add_remove;
    Alcotest.test_case "maximum index" `Quick test_max_index;
    Alcotest.test_case "tags_of extracts all tags" `Quick test_tags_of;
    Alcotest.test_case "null pointer" `Quick test_null;
  ]
