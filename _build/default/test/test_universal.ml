(** Tests for the recoverable universal construction of D<T>: it must
    implement the DSS of any base type, linearizably, with trivial
    recovery (the persisted log is always a prefix). *)

open Helpers
module Reg = Specs.Register
module Cnt = Specs.Counter

type ('s, 'op, 'r) u = {
  heap : Heap.t;
  prep : tid:int -> 'op -> unit;
  exec : tid:int -> 'op -> 'r option;
  apply : tid:int -> 'op -> 'r option;
  resolve : tid:int -> 'op option * 'r option;
  length : unit -> int;
}

let make_u ~nthreads ~capacity spec =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module U = Dssq_universal.Universal.Make (M) in
  let u = U.create ~nthreads ~capacity spec in
  {
    heap;
    prep = (fun ~tid op -> U.prep u ~tid op);
    exec = (fun ~tid op -> U.exec u ~tid op);
    apply = (fun ~tid op -> U.apply u ~tid op);
    resolve = (fun ~tid -> U.resolve u ~tid);
    length = (fun () -> U.length u);
  }

let test_register_lifecycle () =
  let u = make_u ~nthreads:2 ~capacity:64 (Reg.spec ()) in
  Alcotest.(check bool) "initially bottom" true (u.resolve ~tid:0 = (None, None));
  u.prep ~tid:0 (Reg.Write 5);
  Alcotest.(check bool) "prepared" true
    (u.resolve ~tid:0 = (Some (Reg.Write 5), None));
  Alcotest.(check bool) "exec returns OK" true
    (u.exec ~tid:0 (Reg.Write 5) = Some Reg.Ok);
  Alcotest.(check bool) "resolved done" true
    (u.resolve ~tid:0 = (Some (Reg.Write 5), Some Reg.Ok));
  Alcotest.(check bool) "read sees write" true
    (u.apply ~tid:1 Reg.Read = Some (Reg.Value 5))

let test_exec_without_prep_disabled () =
  let u = make_u ~nthreads:1 ~capacity:16 (Reg.spec ()) in
  Alcotest.(check bool) "exec without prep returns None" true
    (u.exec ~tid:0 (Reg.Write 1) = None);
  (* But the slot is consumed: the log records the attempt. *)
  Alcotest.(check bool) "attempt logged" true (u.length () >= 1)

let test_counter_many_threads () =
  let u = make_u ~nthreads:4 ~capacity:256 (Cnt.spec ()) in
  let program ~tid () =
    for _ = 1 to 5 do
      ignore (u.apply ~tid Cnt.Increment)
    done
  in
  let outcome =
    Sim.run u.heap ~policy:(Sim.Random_seed 3)
      ~threads:(List.init 4 (fun tid -> program ~tid))
  in
  Sim.check_thread_errors outcome;
  Alcotest.(check bool) "all increments counted" true
    (u.apply ~tid:0 Cnt.Get = Some (Cnt.Value 20))

let test_concurrent_detectable_ops () =
  for seed = 1 to 10 do
    let u = make_u ~nthreads:2 ~capacity:128 (Cnt.spec ()) in
    let program ~tid () =
      u.prep ~tid Cnt.Increment;
      ignore (u.exec ~tid Cnt.Increment)
    in
    let outcome =
      Sim.run u.heap ~policy:(Sim.Random_seed seed)
        ~threads:[ program ~tid:0; program ~tid:1 ]
    in
    Sim.check_thread_errors outcome;
    Alcotest.(check bool) "both took effect" true
      (u.apply ~tid:0 Cnt.Get = Some (Cnt.Value 2));
    Alcotest.(check bool) "t0 resolved" true
      (u.resolve ~tid:0 = (Some Cnt.Increment, Some Cnt.Ok));
    Alcotest.(check bool) "t1 resolved" true
      (u.resolve ~tid:1 = (Some Cnt.Increment, Some Cnt.Ok))
  done

let test_crash_every_step () =
  (* Crash a detectable increment at every step; after the crash, resolve
     reports effect iff the log slot persisted, and a retry yields
     exactly-once semantics. *)
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let u = make_u ~nthreads:1 ~capacity:64 (Cnt.spec ()) in
        let t () =
          u.prep ~tid:0 Cnt.Increment;
          ignore (u.exec ~tid:0 Cnt.Increment)
        in
        let outcome =
          Sim.run u.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash u.heap ~evict_p ~seed:!step;
          (match u.resolve ~tid:0 with
          | Some Cnt.Increment, Some Cnt.Ok -> ()
          | Some Cnt.Increment, None -> ignore (u.exec ~tid:0 Cnt.Increment)
          | None, None ->
              u.prep ~tid:0 Cnt.Increment;
              ignore (u.exec ~tid:0 Cnt.Increment)
          | _ -> Alcotest.fail "unexpected resolution");
          Alcotest.(check bool)
            (Printf.sprintf "exactly one increment (step %d)" !step)
            true
            (u.apply ~tid:0 Cnt.Get = Some (Cnt.Value 1))
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_log_prefix_property () =
  (* After any crash the persisted log has no holes: replay never skips
     a slot.  We check this by crashing at random points under a random
     schedule and verifying the state equals replaying some prefix. *)
  for seed = 1 to 15 do
    let u = make_u ~nthreads:2 ~capacity:128 (Cnt.spec ()) in
    let program ~tid () =
      for _ = 1 to 3 do
        ignore (u.apply ~tid Cnt.Increment)
      done
    in
    let outcome =
      Sim.run u.heap
        ~policy:(Sim.Random_seed seed)
        ~crash:(Sim.Crash_at_step (5 + (seed * 3)))
        ~threads:[ program ~tid:0; program ~tid:1 ]
    in
    if outcome.Sim.crashed then begin
      Sim.apply_crash u.heap ~evict_p:0.5 ~seed;
      let n = u.length () in
      match u.apply ~tid:0 Cnt.Get with
      | Some (Cnt.Value v) ->
          (* Get is logged too, so it occupies one slot itself. *)
          Alcotest.(check bool)
            (Printf.sprintf "count %d consistent with %d surviving slots" v n)
            true
            (v >= 0 && v <= n)
      | _ -> Alcotest.fail "get failed"
    end
  done

let test_stack_instance () =
  (* The construction is generic: D<stack> for free. *)
  let module St = Specs.Stack in
  let u = make_u ~nthreads:1 ~capacity:32 (St.spec ()) in
  ignore (u.apply ~tid:0 (St.Push 1));
  ignore (u.apply ~tid:0 (St.Push 2));
  u.prep ~tid:0 St.Pop;
  Alcotest.(check bool) "pop top" true (u.exec ~tid:0 St.Pop = Some (St.Value 2));
  Alcotest.(check bool) "resolve pop" true
    (u.resolve ~tid:0 = (Some St.Pop, Some (St.Value 2)))

let test_log_full () =
  let u = make_u ~nthreads:1 ~capacity:3 (Cnt.spec ()) in
  ignore (u.apply ~tid:0 Cnt.Increment);
  ignore (u.apply ~tid:0 Cnt.Increment);
  ignore (u.apply ~tid:0 Cnt.Increment);
  Alcotest.check_raises "log full" Dssq_universal.Universal.Log_full (fun () ->
      ignore (u.apply ~tid:0 Cnt.Increment))

let suite =
  [
    Alcotest.test_case "register: detectable lifecycle" `Quick
      test_register_lifecycle;
    Alcotest.test_case "exec without prep is a no-op" `Quick
      test_exec_without_prep_disabled;
    Alcotest.test_case "counter: concurrent increments" `Quick
      test_counter_many_threads;
    Alcotest.test_case "concurrent detectable ops" `Quick
      test_concurrent_detectable_ops;
    Alcotest.test_case "crash at every step: exactly once" `Quick
      test_crash_every_step;
    Alcotest.test_case "persisted log is a prefix" `Quick
      test_log_prefix_property;
    Alcotest.test_case "works for stacks too" `Quick test_stack_instance;
    Alcotest.test_case "log capacity exhaustion" `Quick test_log_full;
  ]
