(** Behavioural tests for the DSS queue in failure-free executions:
    FIFO semantics, the detectable operation protocol, resolve in every
    reachable X state, reclamation, and concurrent executions checked
    against D<queue> with the linearizability checker. *)

open Helpers

let dq ?(reclaim = true) ?(nthreads = 2) ?(capacity = 64) () =
  make_dss_queue ~reclaim ~nthreads ~capacity ()

(* ----------------------- sequential, non-detectable ------------------- *)

let test_fifo () =
  let q = dq () in
  List.iter (fun v -> q.enqueue ~tid:0 v) [ 1; 2; 3 ];
  Alcotest.(check int) "deq 1" 1 (q.dequeue ~tid:0);
  Alcotest.(check int) "deq 2" 2 (q.dequeue ~tid:1);
  q.enqueue ~tid:1 4;
  Alcotest.(check int) "deq 3" 3 (q.dequeue ~tid:0);
  Alcotest.(check int) "deq 4" 4 (q.dequeue ~tid:0);
  Alcotest.(check int) "empty" Queue_intf.empty_value (q.dequeue ~tid:0)

let test_empty_queue () =
  let q = dq () in
  Alcotest.(check int) "empty from start" Queue_intf.empty_value
    (q.dequeue ~tid:0);
  q.enqueue ~tid:0 9;
  Alcotest.(check int) "one in one out" 9 (q.dequeue ~tid:0);
  Alcotest.(check int) "empty again" Queue_intf.empty_value (q.dequeue ~tid:0)

let test_to_list () =
  let q = dq () in
  Alcotest.check int_list "initially empty" [] (q.to_list ());
  List.iter (fun v -> q.enqueue ~tid:0 v) [ 5; 6; 7 ];
  Alcotest.check int_list "contents" [ 5; 6; 7 ] (q.to_list ());
  ignore (q.dequeue ~tid:0);
  Alcotest.check int_list "after dequeue" [ 6; 7 ] (q.to_list ())

let test_interleaved_threads_sequential () =
  let q = dq ~nthreads:4 () in
  for tid = 0 to 3 do
    q.enqueue ~tid (100 + tid)
  done;
  let out = List.init 4 (fun tid -> q.dequeue ~tid) in
  Alcotest.check int_list "fifo across threads" [ 100; 101; 102; 103 ] out

(* ----------------------- detectable protocol -------------------------- *)

let test_resolve_initial () =
  let q = dq () in
  Alcotest.check resolved "nothing prepared" Queue_intf.Nothing (q.resolve ~tid:0)

let test_detectable_enqueue_lifecycle () =
  let q = dq () in
  q.prep_enqueue ~tid:0 11;
  Alcotest.check resolved "prepared" (Queue_intf.Enq_pending 11)
    (q.resolve ~tid:0);
  q.exec_enqueue ~tid:0;
  Alcotest.check resolved "completed" (Queue_intf.Enq_done 11) (q.resolve ~tid:0);
  Alcotest.check resolved "resolve idempotent" (Queue_intf.Enq_done 11)
    (q.resolve ~tid:0);
  Alcotest.check int_list "value in queue" [ 11 ] (q.to_list ())

let test_detectable_dequeue_lifecycle () =
  let q = dq () in
  q.enqueue ~tid:0 21;
  q.prep_dequeue ~tid:0;
  Alcotest.check resolved "prepared" Queue_intf.Deq_pending (q.resolve ~tid:0);
  let v = q.exec_dequeue ~tid:0 in
  Alcotest.(check int) "dequeued" 21 v;
  Alcotest.check resolved "completed" (Queue_intf.Deq_done 21) (q.resolve ~tid:0)

let test_detectable_dequeue_empty () =
  let q = dq () in
  q.prep_dequeue ~tid:0;
  Alcotest.(check int) "empty" Queue_intf.empty_value (q.exec_dequeue ~tid:0);
  Alcotest.check resolved "empty recorded" Queue_intf.Deq_empty (q.resolve ~tid:0)

let test_prep_overwrites () =
  let q = dq () in
  q.prep_enqueue ~tid:0 1;
  q.exec_enqueue ~tid:0;
  q.prep_dequeue ~tid:0;
  Alcotest.check resolved "new prep wins" Queue_intf.Deq_pending
    (q.resolve ~tid:0)

let test_per_thread_resolution () =
  let q = dq ~nthreads:3 () in
  q.prep_enqueue ~tid:0 1;
  q.exec_enqueue ~tid:0;
  q.prep_enqueue ~tid:1 2;
  Alcotest.check resolved "t0 done" (Queue_intf.Enq_done 1) (q.resolve ~tid:0);
  Alcotest.check resolved "t1 pending" (Queue_intf.Enq_pending 2)
    (q.resolve ~tid:1);
  Alcotest.check resolved "t2 nothing" Queue_intf.Nothing (q.resolve ~tid:2)

let test_nondetectable_dequeue_does_not_confuse_resolve () =
  (* Section 3.2: a non-detectable dequeue marks deqThreadID with an
     extra tag so a later resolve of a pending detectable dequeue by the
     same thread does not claim it. *)
  let q = dq () in
  q.enqueue ~tid:0 7;
  q.prep_dequeue ~tid:0;
  (* The detectable dequeue never executes; the thread (for this test's
     purposes) dequeues non-detectably instead. *)
  Alcotest.(check int) "nondet dequeue" 7 (q.dequeue ~tid:0);
  Alcotest.check resolved "detectable deq still pending" Queue_intf.Deq_pending
    (q.resolve ~tid:0)

let test_mixed_det_and_nondet () =
  let q = dq () in
  q.enqueue ~tid:0 1;
  q.prep_enqueue ~tid:0 2;
  q.exec_enqueue ~tid:0;
  q.enqueue ~tid:0 3;
  Alcotest.check int_list "order preserved" [ 1; 2; 3 ] (q.to_list ());
  q.prep_dequeue ~tid:1;
  Alcotest.(check int) "det deq" 1 (q.exec_dequeue ~tid:1);
  Alcotest.(check int) "nondet deq" 2 (q.dequeue ~tid:1);
  Alcotest.check resolved "last det deq reported" (Queue_intf.Deq_done 1)
    (q.resolve ~tid:1)

(* ----------------------- resource management -------------------------- *)

let test_pool_exhaustion () =
  let q = dq ~reclaim:false ~nthreads:1 ~capacity:4 () in
  (* capacity 4: one node is the sentinel; three enqueues fit. *)
  q.enqueue ~tid:0 1;
  q.enqueue ~tid:0 2;
  q.enqueue ~tid:0 3;
  Alcotest.check_raises "pool exhausted"
    (Dssq_core.Node_pool.Pool_exhausted 0) (fun () -> q.enqueue ~tid:0 4)

let test_reclamation_recycles_nodes () =
  (* With reclamation on, a small pool supports many operations. *)
  let q = dq ~reclaim:true ~nthreads:1 ~capacity:32 () in
  for i = 1 to 500 do
    q.enqueue ~tid:0 i;
    Alcotest.(check int) "fifo under recycling" i (q.dequeue ~tid:0)
  done

let test_reclamation_detectable_recycles_nodes () =
  let q = dq ~reclaim:true ~nthreads:1 ~capacity:32 () in
  for i = 1 to 500 do
    q.prep_enqueue ~tid:0 i;
    q.exec_enqueue ~tid:0;
    q.prep_dequeue ~tid:0;
    Alcotest.(check int) "fifo under recycling" i (q.exec_dequeue ~tid:0)
  done

(* ----------------------- concurrent, failure-free --------------------- *)

let run_concurrent ~seed ~nthreads ~program =
  let q = dq ~nthreads ~capacity:256 () in
  let rec_ = Recorder.create () in
  let threads = List.init nthreads (fun tid () -> program rec_ q ~tid) in
  let outcome = Sim.run q.heap ~policy:(Sim.Random_seed seed) ~threads in
  Sim.check_thread_errors outcome;
  Alcotest.(check bool) "no crash" false outcome.Sim.crashed;
  (q, Recorder.history rec_)

let test_concurrent_detectable_lincheck () =
  for seed = 1 to 25 do
    let program rec_ q ~tid =
      Record.prep_enqueue rec_ q ~tid (10 + tid);
      Record.exec_enqueue rec_ q ~tid (10 + tid);
      Record.prep_dequeue rec_ q ~tid;
      Record.exec_dequeue rec_ q ~tid;
      Record.resolve rec_ q ~tid
    in
    let _, history = run_concurrent ~seed ~nthreads:3 ~program in
    check_strict ~nthreads:3 history
  done

let test_concurrent_mixed_lincheck () =
  for seed = 1 to 25 do
    let program rec_ q ~tid =
      if tid mod 2 = 0 then begin
        Record.enqueue rec_ q ~tid (100 + tid);
        Record.prep_enqueue rec_ q ~tid (200 + tid);
        Record.exec_enqueue rec_ q ~tid (200 + tid);
        Record.resolve rec_ q ~tid
      end
      else begin
        Record.prep_dequeue rec_ q ~tid;
        Record.exec_dequeue rec_ q ~tid;
        Record.dequeue rec_ q ~tid;
        Record.resolve rec_ q ~tid
      end
    in
    let _, history = run_concurrent ~seed ~nthreads:4 ~program in
    check_strict ~nthreads:4 history
  done

let test_concurrent_values_conserved () =
  (* Every enqueued value is either still in the queue or was dequeued by
     exactly one thread; no duplicates, no inventions. *)
  for seed = 1 to 20 do
    let nthreads = 4 in
    let dequeued = Array.make nthreads [] in
    let q = dq ~nthreads ~capacity:512 () in
    let program ~tid () =
      for i = 0 to 9 do
        q.enqueue ~tid ((tid * 100) + i);
        let v = q.dequeue ~tid in
        if v <> Queue_intf.empty_value then
          dequeued.(tid) <- v :: dequeued.(tid)
      done
    in
    let outcome =
      Sim.run q.heap ~policy:(Sim.Random_seed seed)
        ~threads:(List.init nthreads (fun tid -> program ~tid))
    in
    Sim.check_thread_errors outcome;
    let out = Array.to_list dequeued |> List.concat in
    let remaining = q.to_list () in
    let all = List.sort compare (out @ remaining) in
    let expected =
      List.sort compare
        (List.concat_map
           (fun tid -> List.init 10 (fun i -> (tid * 100) + i))
           [ 0; 1; 2; 3 ])
    in
    Alcotest.check int_list "multiset conserved" expected all
  done

let test_explore_two_enqueues () =
  (* Exhaustively interleave two concurrent exec-enqueues: both values
     always end up in the queue, in either order, and both threads
     resolve as completed. *)
  let orders = ref [] in
  ignore
    (Explore.run
       (Explore.make ~max_preemptions:2
          ~setup:(fun () ->
            let q = dq ~nthreads:2 ~capacity:16 () in
            q.prep_enqueue ~tid:0 1;
            q.prep_enqueue ~tid:1 2;
            {
              Explore.ctx = q;
              heap = q.heap;
              threads =
                [ (fun () -> q.exec_enqueue ~tid:0); (fun () -> q.exec_enqueue ~tid:1) ];
            })
          ~check:(fun q _heap ~crashed:_ ->
            let contents = q.to_list () in
            orders := contents :: !orders;
            Alcotest.(check bool)
              "both enqueued" true
              (contents = [ 1; 2 ] || contents = [ 2; 1 ]);
            Alcotest.check resolved "t0 done" (Queue_intf.Enq_done 1)
              (q.resolve ~tid:0);
            Alcotest.check resolved "t1 done" (Queue_intf.Enq_done 2)
              (q.resolve ~tid:1))
          ()));
  let distinct = List.sort_uniq compare !orders in
  Alcotest.(check int) "both orders reachable" 2 (List.length distinct)

let test_explore_enqueue_vs_dequeue () =
  (* One enqueuer and one dequeuer over a queue holding one element. *)
  ignore
    (Explore.run
       (Explore.make ~max_preemptions:2
          ~setup:(fun () ->
            let q = dq ~nthreads:2 ~capacity:16 () in
            q.enqueue ~tid:0 1;
            q.prep_enqueue ~tid:0 2;
            q.prep_dequeue ~tid:1;
            let out = ref min_int in
            {
              Explore.ctx = (q, out);
              heap = q.heap;
              threads =
                [
                  (fun () -> q.exec_enqueue ~tid:0);
                  (fun () -> out := q.exec_dequeue ~tid:1);
                ];
            })
          ~check:(fun (q, out) _heap ~crashed:_ ->
            Alcotest.(check int) "dequeuer got the head" 1 !out;
            Alcotest.check resolved "deq resolved" (Queue_intf.Deq_done 1)
              (q.resolve ~tid:1);
            Alcotest.check int_list "enqueue landed" [ 2 ] (q.to_list ()))
          ()));
  ()

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "empty queue returns EMPTY" `Quick test_empty_queue;
    Alcotest.test_case "to_list reflects contents" `Quick test_to_list;
    Alcotest.test_case "fifo across threads (sequential)" `Quick
      test_interleaved_threads_sequential;
    Alcotest.test_case "resolve with nothing prepared" `Quick
      test_resolve_initial;
    Alcotest.test_case "detectable enqueue lifecycle" `Quick
      test_detectable_enqueue_lifecycle;
    Alcotest.test_case "detectable dequeue lifecycle" `Quick
      test_detectable_dequeue_lifecycle;
    Alcotest.test_case "detectable dequeue on empty queue" `Quick
      test_detectable_dequeue_empty;
    Alcotest.test_case "prep overwrites previous context" `Quick
      test_prep_overwrites;
    Alcotest.test_case "per-thread resolution" `Quick test_per_thread_resolution;
    Alcotest.test_case "non-detectable dequeue marking" `Quick
      test_nondetectable_dequeue_does_not_confuse_resolve;
    Alcotest.test_case "mixed detectable and plain operations" `Quick
      test_mixed_det_and_nondet;
    Alcotest.test_case "pool exhaustion raises" `Quick test_pool_exhaustion;
    Alcotest.test_case "reclamation recycles nodes (plain)" `Quick
      test_reclamation_recycles_nodes;
    Alcotest.test_case "reclamation recycles nodes (detectable)" `Quick
      test_reclamation_detectable_recycles_nodes;
    Alcotest.test_case "concurrent detectable ops strictly linearizable"
      `Quick test_concurrent_detectable_lincheck;
    Alcotest.test_case "concurrent mixed ops strictly linearizable" `Quick
      test_concurrent_mixed_lincheck;
    Alcotest.test_case "concurrent values conserved" `Quick
      test_concurrent_values_conserved;
    Alcotest.test_case "explore: two concurrent enqueues" `Quick
      test_explore_two_enqueues;
    Alcotest.test_case "explore: enqueue vs dequeue" `Quick
      test_explore_enqueue_vs_dequeue;
  ]
