(** Tests for the detectable hash map composed from detectable cells:
    functional behaviour against a model, probing/tombstone edge cases,
    detection lifecycle, crash sweeps with exactly-once retry, and
    concurrent use. *)

open Helpers

type hm = {
  heap : Heap.t;
  put : tid:int -> int -> int -> unit;
  remove : tid:int -> int -> unit;
  find : int -> int option;
  mem : int -> bool;
  resolve : tid:int -> string;
  resolve_kind :
    tid:int ->
    [ `Nothing
    | `Put_pending of int * int
    | `Put_done of int * int
    | `Remove_pending of int
    | `Remove_done of int ];
  to_alist : unit -> (int * int) list;
}

let make ~nthreads ~nbuckets () : hm =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module H = Dssq_core.Dss_hashmap.Make (M) in
  let h = H.create ~nthreads ~nbuckets () in
  {
    heap;
    put = (fun ~tid k v -> H.put h ~tid k v);
    remove = (fun ~tid k -> H.remove h ~tid k);
    find = (fun k -> H.find h k);
    mem = (fun k -> H.mem h k);
    resolve =
      (fun ~tid -> Format.asprintf "%a" H.pp_resolved (H.resolve h ~tid));
    resolve_kind =
      (fun ~tid ->
        match H.resolve h ~tid with
        | H.Nothing -> `Nothing
        | H.Put_pending (k, v) -> `Put_pending (k, v)
        | H.Put_done (k, v) -> `Put_done (k, v)
        | H.Remove_pending k -> `Remove_pending k
        | H.Remove_done k -> `Remove_done k);
    to_alist = (fun () -> H.to_alist h);
  }

let test_basic () =
  let h = make ~nthreads:1 ~nbuckets:16 () in
  Alcotest.(check (option int)) "absent" None (h.find 1);
  h.put ~tid:0 1 10;
  h.put ~tid:0 2 20;
  Alcotest.(check (option int)) "k1" (Some 10) (h.find 1);
  Alcotest.(check (option int)) "k2" (Some 20) (h.find 2);
  h.put ~tid:0 1 11;
  Alcotest.(check (option int)) "update" (Some 11) (h.find 1);
  h.remove ~tid:0 1;
  Alcotest.(check (option int)) "removed" None (h.find 1);
  Alcotest.(check bool) "mem" true (h.mem 2)

let test_collisions_and_tombstones () =
  (* Tiny table: forced collisions and tombstone reuse. *)
  let h = make ~nthreads:1 ~nbuckets:4 () in
  h.put ~tid:0 1 1;
  h.put ~tid:0 5 5;
  h.put ~tid:0 9 9;
  Alcotest.(check (option int)) "1" (Some 1) (h.find 1);
  Alcotest.(check (option int)) "5" (Some 5) (h.find 5);
  Alcotest.(check (option int)) "9" (Some 9) (h.find 9);
  h.remove ~tid:0 5;
  Alcotest.(check (option int)) "5 removed" None (h.find 5);
  (* 9 must still be reachable across the tombstone. *)
  Alcotest.(check (option int)) "9 probes across tombstone" (Some 9) (h.find 9);
  (* New key reuses the tombstone slot. *)
  h.put ~tid:0 13 13;
  Alcotest.(check (option int)) "13" (Some 13) (h.find 13)

let test_full () =
  let h = make ~nthreads:1 ~nbuckets:2 () in
  h.put ~tid:0 1 1;
  h.put ~tid:0 2 2;
  Alcotest.check_raises "full" Dssq_core.Dss_hashmap.Full (fun () ->
      h.put ~tid:0 3 3)

let test_detection_lifecycle () =
  let h = make ~nthreads:2 ~nbuckets:16 () in
  Alcotest.(check bool) "initially nothing" true (h.resolve_kind ~tid:0 = `Nothing);
  h.put ~tid:0 7 70;
  Alcotest.(check bool) "put done" true (h.resolve_kind ~tid:0 = `Put_done (7, 70));
  h.remove ~tid:0 7;
  Alcotest.(check bool) "remove done" true
    (h.resolve_kind ~tid:0 = `Remove_done 7);
  Alcotest.(check bool) "per-thread" true (h.resolve_kind ~tid:1 = `Nothing)

(* Model-based random testing against an association list. *)
let prop_matches_model =
  let arb =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 40)
          (frequency
             [
               (4, map2 (fun k v -> `Put (k, v)) (int_range 1 12) (int_range 0 99));
               (2, map (fun k -> `Remove k) (int_range 1 12));
               (3, map (fun k -> `Find k) (int_range 1 12));
             ]))
  in
  QCheck.Test.make ~count:200 ~name:"hashmap = assoc model" arb (fun ops ->
      let h = make ~nthreads:1 ~nbuckets:32 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | `Put (k, v) ->
              h.put ~tid:0 k v;
              Hashtbl.replace model k v;
              true
          | `Remove k ->
              h.remove ~tid:0 k;
              Hashtbl.remove model k;
              true
          | `Find k -> h.find k = Hashtbl.find_opt model k)
        ops
      && List.sort compare (h.to_alist ())
         = List.sort compare
             (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))

(* ---------------------------- crash sweeps ------------------------- *)

let test_crash_sweep_put () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let h = make ~nthreads:1 ~nbuckets:16 () in
        h.put ~tid:0 3 30;
        let t () = h.put ~tid:0 7 70 in
        let outcome =
          Sim.run h.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash h.heap ~evict_p ~seed:(300_000 + !step);
          (match h.resolve_kind ~tid:0 with
          | `Put_done (7, 70) ->
              Alcotest.(check (option int))
                (Printf.sprintf "done => stored (step %d)" !step)
                (Some 70) (h.find 7)
          | `Put_pending (7, 70) ->
              Alcotest.(check (option int))
                (Printf.sprintf "pending => absent (step %d)" !step)
                None (h.find 7);
              h.put ~tid:0 7 70;
              Alcotest.(check (option int)) "retry lands" (Some 70) (h.find 7)
          | `Put_done (3, 30) | `Nothing ->
              (* The announcement itself was lost: previous op (or none)
                 is reported; 7 cannot be present. *)
              Alcotest.(check (option int)) "ann lost => absent" None (h.find 7)
          | _ ->
              Alcotest.failf "unexpected resolution at step %d: %s" !step
                (h.resolve ~tid:0));
          Alcotest.(check (option int)) "pre-existing key survives" (Some 30)
            (h.find 3)
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_crash_sweep_remove () =
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let h = make ~nthreads:1 ~nbuckets:16 () in
    h.put ~tid:0 3 30;
    h.put ~tid:0 7 70;
    let t () = h.remove ~tid:0 7 in
    let outcome = Sim.run h.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash h.heap ~evict_p:0.5 ~seed:(400_000 + !step);
      (match h.resolve_kind ~tid:0 with
      | `Remove_done 7 ->
          Alcotest.(check (option int)) "done => gone" None (h.find 7)
      | `Remove_pending 7 ->
          (if h.mem 7 then begin
             h.remove ~tid:0 7;
             Alcotest.(check (option int)) "retry removes" None (h.find 7)
           end)
      | `Put_done (7, 70) | `Nothing ->
          (* announcement lost; remove never started *)
          Alcotest.(check (option int)) "still present" (Some 70) (h.find 7)
      | _ ->
          Alcotest.failf "unexpected resolution at step %d: %s" !step
            (h.resolve ~tid:0));
      Alcotest.(check (option int)) "other key survives" (Some 30) (h.find 3)
    end;
    incr step
  done

let test_concurrent_disjoint_keys () =
  for seed = 1 to 20 do
    let h = make ~nthreads:3 ~nbuckets:64 () in
    let prog ~tid () =
      for i = 0 to 5 do
        let k = 1 + (tid * 10) + i in
        h.put ~tid k (k * 2)
      done
    in
    let outcome =
      Sim.run h.heap ~policy:(Sim.Random_seed seed)
        ~threads:(List.init 3 (fun tid -> prog ~tid))
    in
    Sim.check_thread_errors outcome;
    for tid = 0 to 2 do
      for i = 0 to 5 do
        let k = 1 + (tid * 10) + i in
        Alcotest.(check (option int))
          (Printf.sprintf "key %d" k)
          (Some (k * 2)) (h.find k)
      done
    done
  done

let test_concurrent_same_key () =
  (* Racing puts on one key: the final value is one of the written
     values, and each thread's resolve reports its own op. *)
  for seed = 1 to 20 do
    let h = make ~nthreads:2 ~nbuckets:8 () in
    let prog ~tid () = h.put ~tid 5 (100 + tid) in
    let outcome =
      Sim.run h.heap ~policy:(Sim.Random_seed seed)
        ~threads:[ prog ~tid:0; prog ~tid:1 ]
    in
    Sim.check_thread_errors outcome;
    (match h.find 5 with
    | Some v -> Alcotest.(check bool) "one of the writes" true (v = 100 || v = 101)
    | None -> Alcotest.fail "key lost");
    Alcotest.(check bool) "t0 done" true
      (h.resolve_kind ~tid:0 = `Put_done (5, 100));
    Alcotest.(check bool) "t1 done" true
      (h.resolve_kind ~tid:1 = `Put_done (5, 101))
  done

let suite =
  [
    Alcotest.test_case "basic put/find/remove" `Quick test_basic;
    Alcotest.test_case "collisions and tombstones" `Quick
      test_collisions_and_tombstones;
    Alcotest.test_case "capacity exhaustion" `Quick test_full;
    Alcotest.test_case "detection lifecycle" `Quick test_detection_lifecycle;
    QCheck_alcotest.to_alcotest prop_matches_model;
    Alcotest.test_case "crash sweep: put" `Quick test_crash_sweep_put;
    Alcotest.test_case "crash sweep: remove" `Quick test_crash_sweep_remove;
    Alcotest.test_case "concurrent disjoint keys" `Quick
      test_concurrent_disjoint_keys;
    Alcotest.test_case "concurrent same key" `Quick test_concurrent_same_key;
  ]
