(** Tests for the generic boxed detectable cell ([Dss_cell]):
    register and CAS semantics over arbitrary value types, detection
    across overwrites, and crash sweeps for both operations. *)

open Helpers

(* Instantiate over the simulator with closures (the functor-generated
   types stay local). *)
type 'a dc = {
  heap : Heap.t;
  read : unit -> 'a;
  write : 'a -> unit;
  cas : expected:'a -> desired:'a -> bool;
  prep_write : tid:int -> 'a -> unit;
  exec_write : tid:int -> unit;
  prep_cas : tid:int -> expected:'a -> desired:'a -> unit;
  exec_cas : tid:int -> bool;
  prep_read : tid:int -> unit;
  exec_read : tid:int -> 'a;
  resolve : tid:int -> string;
  resolve_kind :
    tid:int ->
    [ `Nothing
    | `Write_pending
    | `Write_done
    | `Cas_pending
    | `Cas_done of bool
    | `Read_pending
    | `Read_done of 'a ];
}

let make ~nthreads (init : 'a) : 'a dc =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module C = Dssq_core.Dss_cell.Make (M) in
  let c = C.create ~nthreads init in
  let kind ~tid =
    match C.resolve c ~tid with
    | C.Nothing -> `Nothing
    | C.Write_pending _ -> `Write_pending
    | C.Write_done _ -> `Write_done
    | C.Cas_pending _ -> `Cas_pending
    | C.Cas_done (_, _, b) -> `Cas_done b
    | C.Read_pending -> `Read_pending
    | C.Read_done v -> `Read_done v
  in
  {
    heap;
    read = (fun () -> C.read c);
    write = (fun v -> C.write c v);
    cas = (fun ~expected ~desired -> C.cas c ~expected ~desired);
    prep_write = (fun ~tid v -> C.prep_write c ~tid v);
    exec_write = (fun ~tid -> C.exec_write c ~tid);
    prep_cas = (fun ~tid ~expected ~desired -> C.prep_cas c ~tid ~expected ~desired);
    exec_cas = (fun ~tid -> C.exec_cas c ~tid);
    prep_read = (fun ~tid -> C.prep_read c ~tid);
    exec_read = (fun ~tid -> C.exec_read c ~tid);
    resolve =
      (fun ~tid ->
        match C.resolve c ~tid with
        | C.Nothing -> "nothing"
        | C.Write_pending _ -> "write pending"
        | C.Write_done _ -> "write done"
        | C.Cas_pending _ -> "cas pending"
        | C.Cas_done (_, _, b) -> Printf.sprintf "cas done %b" b
        | C.Read_pending -> "read pending"
        | C.Read_done _ -> "read done");
    resolve_kind = kind;
  }

let test_plain_ops () =
  let c = make ~nthreads:2 0 in
  Alcotest.(check int) "init" 0 (c.read ());
  c.write 5;
  Alcotest.(check int) "write" 5 (c.read ());
  Alcotest.(check bool) "cas hit" true (c.cas ~expected:5 ~desired:6);
  Alcotest.(check bool) "cas miss" false (c.cas ~expected:5 ~desired:7);
  Alcotest.(check int) "value" 6 (c.read ())

let test_polymorphic_values () =
  let c = make ~nthreads:1 "a" in
  c.write "b";
  Alcotest.(check string) "string value" "b" (c.read ());
  (* Physical-equality CAS on boxed values: the exact read value works. *)
  let cur = c.read () in
  Alcotest.(check bool) "boxed cas" true (c.cas ~expected:cur ~desired:"c");
  Alcotest.(check string) "after" "c" (c.read ())

let test_detectable_write () =
  let c = make ~nthreads:2 0 in
  c.prep_write ~tid:0 9;
  Alcotest.(check bool) "pending" true (c.resolve_kind ~tid:0 = `Write_pending);
  c.exec_write ~tid:0;
  Alcotest.(check bool) "done" true (c.resolve_kind ~tid:0 = `Write_done);
  (* Overwrites preserve detection via helping. *)
  c.write 1;
  c.prep_write ~tid:1 2;
  c.exec_write ~tid:1;
  Alcotest.(check bool) "t0 still done" true (c.resolve_kind ~tid:0 = `Write_done)

let test_detectable_cas_success_and_failure () =
  let c = make ~nthreads:2 0 in
  c.prep_cas ~tid:0 ~expected:0 ~desired:1;
  Alcotest.(check bool) "pending" true (c.resolve_kind ~tid:0 = `Cas_pending);
  Alcotest.(check bool) "succeeds" true (c.exec_cas ~tid:0);
  Alcotest.(check bool) "done true" true (c.resolve_kind ~tid:0 = `Cas_done true);
  c.prep_cas ~tid:1 ~expected:0 ~desired:2;
  Alcotest.(check bool) "fails" false (c.exec_cas ~tid:1);
  Alcotest.(check bool) "done false" true
    (c.resolve_kind ~tid:1 = `Cas_done false);
  Alcotest.(check int) "value" 1 (c.read ())

let test_detectable_cas_detection_survives_overwrite () =
  let c = make ~nthreads:3 0 in
  c.prep_cas ~tid:0 ~expected:0 ~desired:1;
  Alcotest.(check bool) "cas lands" true (c.exec_cas ~tid:0);
  (* Another thread CASes past it (helping persists t0's result first). *)
  c.prep_cas ~tid:1 ~expected:1 ~desired:2;
  Alcotest.(check bool) "t1 lands" true (c.exec_cas ~tid:1);
  Alcotest.(check bool) "t0 still resolved true" true
    (c.resolve_kind ~tid:0 = `Cas_done true);
  Alcotest.(check bool) "t1 resolved true" true
    (c.resolve_kind ~tid:1 = `Cas_done true)

let test_detectable_read () =
  let c = make ~nthreads:1 4 in
  c.prep_read ~tid:0;
  Alcotest.(check int) "reads" 4 (c.exec_read ~tid:0);
  Alcotest.(check bool) "recorded" true (c.resolve_kind ~tid:0 = `Read_done 4)

(* ---------------------------- crash sweeps ------------------------- *)

let test_crash_sweep_cas () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let c = make ~nthreads:1 0 in
        let t () =
          c.prep_cas ~tid:0 ~expected:0 ~desired:1;
          ignore (c.exec_cas ~tid:0)
        in
        let outcome =
          Sim.run c.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash c.heap ~evict_p ~seed:!step;
          (match c.resolve_kind ~tid:0 with
          | `Cas_done true ->
              Alcotest.(check int)
                (Printf.sprintf "done => applied (step %d)" !step)
                1 (c.read ())
          | `Cas_pending ->
              Alcotest.(check int)
                (Printf.sprintf "pending => not applied (step %d)" !step)
                0 (c.read ());
              Alcotest.(check bool) "retry lands once" true (c.exec_cas ~tid:0);
              Alcotest.(check int) "applied exactly once" 1 (c.read ())
          | `Nothing -> Alcotest.(check int) "prep lost" 0 (c.read ())
          | _ ->
              Alcotest.failf "unexpected resolution at step %d: %s" !step
                (c.resolve ~tid:0));
          ()
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_crash_sweep_write () =
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let c = make ~nthreads:1 0 in
    let t () =
      c.prep_write ~tid:0 5;
      c.exec_write ~tid:0
    in
    let outcome = Sim.run c.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash c.heap ~evict_p:0.5 ~seed:!step;
      (match c.resolve_kind ~tid:0 with
      | `Write_done -> Alcotest.(check int) "done => present" 5 (c.read ())
      | `Write_pending ->
          Alcotest.(check int) "pending => absent" 0 (c.read ());
          c.exec_write ~tid:0;
          Alcotest.(check int) "retry lands" 5 (c.read ())
      | `Nothing -> Alcotest.(check int) "prep lost" 0 (c.read ())
      | _ ->
          Alcotest.failf "unexpected resolution at step %d: %s" !step
            (c.resolve ~tid:0));
      ()
    end;
    incr step
  done

let test_concurrent_cas_agreement () =
  (* Two detectable CASes with the same expectation: exactly one wins,
     and both resolve to their actual outcome. *)
  for seed = 1 to 30 do
    let c = make ~nthreads:2 0 in
    let results = Array.make 2 None in
    let caser ~tid v () =
      c.prep_cas ~tid ~expected:0 ~desired:v;
      results.(tid) <- Some (c.exec_cas ~tid)
    in
    let outcome =
      Sim.run c.heap ~policy:(Sim.Random_seed seed)
        ~threads:[ caser ~tid:0 1; caser ~tid:1 2 ]
    in
    Sim.check_thread_errors outcome;
    let r0 = Option.get results.(0) and r1 = Option.get results.(1) in
    Alcotest.(check bool) "exactly one winner" true (r0 <> r1);
    Alcotest.(check int) "value is the winner's" (if r0 then 1 else 2)
      (c.read ());
    Alcotest.(check bool) "t0 resolution matches outcome" true
      (c.resolve_kind ~tid:0 = `Cas_done r0);
    Alcotest.(check bool) "t1 resolution matches outcome" true
      (c.resolve_kind ~tid:1 = `Cas_done r1)
  done

let suite =
  [
    Alcotest.test_case "plain read/write/cas" `Quick test_plain_ops;
    Alcotest.test_case "polymorphic values" `Quick test_polymorphic_values;
    Alcotest.test_case "detectable write" `Quick test_detectable_write;
    Alcotest.test_case "detectable cas success/failure" `Quick
      test_detectable_cas_success_and_failure;
    Alcotest.test_case "cas detection survives overwrite" `Quick
      test_detectable_cas_detection_survives_overwrite;
    Alcotest.test_case "detectable read" `Quick test_detectable_read;
    Alcotest.test_case "crash sweep: cas" `Quick test_crash_sweep_cas;
    Alcotest.test_case "crash sweep: write" `Quick test_crash_sweep_write;
    Alcotest.test_case "concurrent detectable cas" `Quick
      test_concurrent_cas_agreement;
  ]
