(** Tests for the baseline queues: MS queue, durable queue, log queue —
    FIFO semantics, concurrency, persistence/detectability where each
    provides it. *)

open Helpers

(* Generic closures over any QUEUE-shaped instance. *)
type bq = {
  heap : Heap.t;
  enqueue : tid:int -> int -> unit;
  dequeue : tid:int -> int;
  to_list : unit -> int list;
}

let make_ms ~nthreads ~capacity : bq =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_baselines.Ms_queue.Make (M) in
  let q = Q.create ~nthreads ~capacity in
  {
    heap;
    enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
    dequeue = (fun ~tid -> Q.dequeue q ~tid);
    to_list = (fun () -> Q.to_list q);
  }

let fifo_smoke (q : bq) =
  List.iter (fun v -> q.enqueue ~tid:0 v) [ 1; 2; 3 ];
  Alcotest.(check int) "1" 1 (q.dequeue ~tid:1);
  Alcotest.(check int) "2" 2 (q.dequeue ~tid:0);
  Alcotest.(check int) "3" 3 (q.dequeue ~tid:1);
  Alcotest.(check int) "empty" Queue_intf.empty_value (q.dequeue ~tid:0)

let concurrency_conservation (q : bq) ~nthreads ~seed =
  let dequeued = Array.make nthreads [] in
  let program ~tid () =
    for i = 0 to 7 do
      q.enqueue ~tid ((tid * 100) + i);
      let v = q.dequeue ~tid in
      if v <> Queue_intf.empty_value then dequeued.(tid) <- v :: dequeued.(tid)
    done
  in
  let outcome =
    Sim.run q.heap ~policy:(Sim.Random_seed seed)
      ~threads:(List.init nthreads (fun tid -> program ~tid))
  in
  Sim.check_thread_errors outcome;
  let out = Array.to_list dequeued |> List.concat in
  let all = List.sort compare (out @ q.to_list ()) in
  let expected =
    List.sort compare
      (List.concat_map
         (fun tid -> List.init 8 (fun i -> (tid * 100) + i))
         (List.init nthreads Fun.id))
  in
  Alcotest.check int_list "values conserved" expected all

(* ------------------------------ MS queue ------------------------------ *)

let test_ms_fifo () = fifo_smoke (make_ms ~nthreads:2 ~capacity:64)

let test_ms_concurrent () =
  for seed = 1 to 15 do
    concurrency_conservation (make_ms ~nthreads:3 ~capacity:256) ~nthreads:3 ~seed
  done

let test_ms_recycles () =
  let q = make_ms ~nthreads:1 ~capacity:16 in
  for i = 1 to 300 do
    q.enqueue ~tid:0 i;
    Alcotest.(check int) "fifo under recycling" i (q.dequeue ~tid:0)
  done

let test_ms_uses_no_flushes () =
  let q = make_ms ~nthreads:1 ~capacity:16 in
  Heap.reset_stats q.heap;
  q.enqueue ~tid:0 1;
  ignore (q.dequeue ~tid:0);
  Alcotest.(check int) "volatile algorithm: zero flushes" 0
    (Heap.stats q.heap).Heap.flushes

(* ---------------------------- durable queue --------------------------- *)

type dur = {
  b : bq;
  recover : unit -> unit;
  returned_value : tid:int -> int option;
}

let make_durable ~nthreads ~capacity : dur =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_baselines.Durable_queue.Make (M) in
  let q = Q.create ~nthreads ~capacity in
  {
    b =
      {
        heap;
        enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        to_list = (fun () -> Q.to_list q);
      };
    recover = (fun () -> Q.recover q);
    returned_value = (fun ~tid -> Q.returned_value q ~tid);
  }

let test_durable_fifo () = fifo_smoke (make_durable ~nthreads:2 ~capacity:64).b

let test_durable_concurrent () =
  for seed = 1 to 15 do
    concurrency_conservation (make_durable ~nthreads:3 ~capacity:256).b
      ~nthreads:3 ~seed
  done

let test_durable_crash_preserves_contents () =
  (* Crash at every step of an enqueue+dequeue pair: after recovery the
     queue holds a sensible subset/superset per effects, and no value is
     duplicated. *)
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let d = make_durable ~nthreads:1 ~capacity:32 in
    List.iter (fun v -> d.b.enqueue ~tid:0 v) [ 1; 2 ];
    let t () =
      d.b.enqueue ~tid:0 3;
      ignore (d.b.dequeue ~tid:0)
    in
    let outcome = Sim.run d.b.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash d.b.heap ~evict_p:0.5 ~seed:!step;
      d.recover ();
      let contents = d.b.to_list () in
      let sorted = List.sort compare contents in
      Alcotest.(check bool)
        (Printf.sprintf "no duplicates after crash at %d" !step)
        true
        (List.sort_uniq compare sorted = sorted);
      (* 2 must still be present unless dequeued... 1 is the only
         possibly-dequeued value; 3 present only if its enqueue stuck. *)
      Alcotest.(check bool) "2 never lost" true (List.mem 2 contents)
    end;
    incr step
  done

let test_durable_recovery_publishes_pending_dequeue () =
  (* Find a crash point where the dequeue marked the node but the value
     was not yet returned: recovery must publish it in returnedValues. *)
  let observed_published = ref false in
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let d = make_durable ~nthreads:1 ~capacity:32 in
    d.b.enqueue ~tid:0 7;
    let t () = ignore (d.b.dequeue ~tid:0) in
    let outcome = Sim.run d.b.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash d.b.heap ~evict_p:1.0 ~seed:!step;
      d.recover ();
      (match d.returned_value ~tid:0 with
      | Some 7 ->
          observed_published := true;
          Alcotest.check int_list "value consumed" [] (d.b.to_list ())
      | Some v when v = Queue_intf.empty_value ->
          Alcotest.fail "queue was not empty"
      | Some v -> Alcotest.failf "unexpected returned value %d" v
      | None -> Alcotest.check int_list "value still queued" [ 7 ] (d.b.to_list ()))
    end;
    incr step
  done;
  Alcotest.(check bool) "some crash point exercised publication" true
    !observed_published

(* ------------------------------ log queue ----------------------------- *)

type lq = {
  b : bq;
  prep_enqueue : tid:int -> int -> unit;
  exec_enqueue : tid:int -> unit;
  prep_dequeue : tid:int -> unit;
  exec_dequeue : tid:int -> int;
  resolve : tid:int -> Queue_intf.resolved;
  recover : unit -> unit;
}

let make_log ~nthreads ~capacity : lq =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_baselines.Log_queue.Make (M) in
  let q = Q.create ~nthreads ~capacity in
  {
    b =
      {
        heap;
        enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        to_list = (fun () -> Q.to_list q);
      };
    prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
    exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
    prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
    exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
    resolve = (fun ~tid -> Q.resolve q ~tid);
    recover = (fun () -> Q.recover q);
  }

let test_log_fifo () = fifo_smoke (make_log ~nthreads:2 ~capacity:64).b

let test_log_concurrent () =
  for seed = 1 to 15 do
    concurrency_conservation (make_log ~nthreads:3 ~capacity:256).b ~nthreads:3
      ~seed
  done

let test_log_detectable_lifecycle () =
  let l = make_log ~nthreads:2 ~capacity:64 in
  Alcotest.check resolved "initially nothing" Queue_intf.Nothing
    (l.resolve ~tid:0);
  l.prep_enqueue ~tid:0 11;
  Alcotest.check resolved "enq pending" (Queue_intf.Enq_pending 11)
    (l.resolve ~tid:0);
  l.exec_enqueue ~tid:0;
  Alcotest.check resolved "enq done" (Queue_intf.Enq_done 11) (l.resolve ~tid:0);
  l.prep_dequeue ~tid:0;
  Alcotest.check resolved "deq pending" Queue_intf.Deq_pending (l.resolve ~tid:0);
  Alcotest.(check int) "dequeues" 11 (l.exec_dequeue ~tid:0);
  Alcotest.check resolved "deq done" (Queue_intf.Deq_done 11) (l.resolve ~tid:0);
  l.prep_dequeue ~tid:1;
  Alcotest.(check int) "empty" Queue_intf.empty_value (l.exec_dequeue ~tid:1);
  Alcotest.check resolved "deq empty" Queue_intf.Deq_empty (l.resolve ~tid:1)

let test_log_crash_detectability_enqueue () =
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let l = make_log ~nthreads:1 ~capacity:32 in
    let t () =
      l.prep_enqueue ~tid:0 5;
      l.exec_enqueue ~tid:0
    in
    let outcome = Sim.run l.b.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash l.b.heap ~evict_p:0.0 ~seed:!step;
      l.recover ();
      (match l.resolve ~tid:0 with
      | Queue_intf.Enq_done 5 ->
          Alcotest.check int_list "done => queued" [ 5 ] (l.b.to_list ())
      | Queue_intf.Enq_pending 5 ->
          Alcotest.check int_list "pending => absent" [] (l.b.to_list ());
          l.exec_enqueue ~tid:0;
          Alcotest.check int_list "retry lands once" [ 5 ] (l.b.to_list ())
      | Queue_intf.Nothing ->
          Alcotest.check int_list "nothing prepared => absent" []
            (l.b.to_list ())
      | r ->
          Alcotest.failf "unexpected resolution: %s"
            (Format.asprintf "%a" Queue_intf.pp_resolved r));
      ()
    end;
    incr step
  done

let test_log_crash_detectability_dequeue () =
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let l = make_log ~nthreads:1 ~capacity:32 in
    l.b.enqueue ~tid:0 1;
    l.b.enqueue ~tid:0 2;
    let t () =
      l.prep_dequeue ~tid:0;
      ignore (l.exec_dequeue ~tid:0)
    in
    let outcome = Sim.run l.b.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then finished := true
    else begin
      Sim.apply_crash l.b.heap ~evict_p:1.0 ~seed:!step;
      l.recover ();
      (match l.resolve ~tid:0 with
      | Queue_intf.Deq_done 1 ->
          Alcotest.check int_list "1 consumed" [ 2 ] (l.b.to_list ())
      | Queue_intf.Deq_pending | Queue_intf.Nothing ->
          Alcotest.check int_list "nothing consumed" [ 1; 2 ] (l.b.to_list ())
      | r ->
          Alcotest.failf "unexpected resolution: %s"
            (Format.asprintf "%a" Queue_intf.pp_resolved r));
      ()
    end;
    incr step
  done

let suite =
  [
    Alcotest.test_case "ms: fifo" `Quick test_ms_fifo;
    Alcotest.test_case "ms: concurrent conservation" `Quick test_ms_concurrent;
    Alcotest.test_case "ms: node recycling" `Quick test_ms_recycles;
    Alcotest.test_case "ms: no persistence instructions" `Quick
      test_ms_uses_no_flushes;
    Alcotest.test_case "durable: fifo" `Quick test_durable_fifo;
    Alcotest.test_case "durable: concurrent conservation" `Quick
      test_durable_concurrent;
    Alcotest.test_case "durable: crash preserves contents" `Quick
      test_durable_crash_preserves_contents;
    Alcotest.test_case "durable: recovery publishes pending dequeue" `Quick
      test_durable_recovery_publishes_pending_dequeue;
    Alcotest.test_case "log: fifo" `Quick test_log_fifo;
    Alcotest.test_case "log: concurrent conservation" `Quick test_log_concurrent;
    Alcotest.test_case "log: detectable lifecycle" `Quick
      test_log_detectable_lifecycle;
    Alcotest.test_case "log: crash detectability (enqueue)" `Quick
      test_log_crash_detectability_enqueue;
    Alcotest.test_case "log: crash detectability (dequeue)" `Quick
      test_log_crash_detectability_dequeue;
  ]
