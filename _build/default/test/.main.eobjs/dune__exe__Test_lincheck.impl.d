test/test_lincheck.ml: Alcotest Dss_spec Helpers History Lincheck List Random Spec Specs
