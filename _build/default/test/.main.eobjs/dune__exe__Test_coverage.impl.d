test/test_coverage.ml: Alcotest Dss_spec Dssq_pmwcas Dssq_universal Explore Heap Helpers Lincheck List Printf Queue_intf Recorder Sim Specs
