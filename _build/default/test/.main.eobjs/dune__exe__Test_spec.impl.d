test/test_spec.ml: Alcotest Array Dss_spec Helpers List Spec Specs
