test/main.mli:
