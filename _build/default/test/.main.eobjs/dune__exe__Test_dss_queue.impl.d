test/test_dss_queue.ml: Alcotest Array Dssq_core Explore Helpers List Queue_intf Record Recorder Sim
