test/test_sim.ml: Alcotest Array Dssq_memory Dssq_sim Explore Heap Helpers List Sim
