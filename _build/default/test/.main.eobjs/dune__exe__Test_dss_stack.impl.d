test/test_dss_stack.ml: Alcotest Array Dss_spec Dssq_core Format Heap Helpers Lincheck List Printf Queue_intf Recorder Sim Specs
