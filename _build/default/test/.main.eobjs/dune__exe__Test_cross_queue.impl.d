test/test_cross_queue.ml: Alcotest Dss_spec Format Helpers Lincheck List Printf Queue_intf Record Recorder Sim Specs
