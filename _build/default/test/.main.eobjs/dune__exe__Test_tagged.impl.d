test/test_tagged.ml: Alcotest Dssq_core List Printf
