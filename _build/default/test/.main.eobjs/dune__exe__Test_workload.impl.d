test/test_workload.ml: Alcotest Buffer Dssq_memory Dssq_workload Float Format List Printf String
