test/test_rme.ml: Alcotest Array Dssq_core Explore Heap Helpers Printf Sim
