test/test_hashmap.ml: Alcotest Dssq_core Format Hashtbl Heap Helpers List Printf QCheck QCheck_alcotest Sim
