test/test_ebr.ml: Alcotest Dssq_ebr List
