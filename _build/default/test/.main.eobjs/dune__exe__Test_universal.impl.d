test/test_universal.ml: Alcotest Dssq_universal Heap Helpers List Printf Sim Specs
