test/test_nrl.ml: Alcotest Dssq_core Dssq_nrl Heap Helpers List Printf Sim
