test/test_litmus.ml: Alcotest Array Explore Heap Helpers Sim
