test/test_pmem.ml: Alcotest Dssq_pmem Heap Helpers List Random
