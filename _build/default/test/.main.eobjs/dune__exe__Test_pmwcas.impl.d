test/test_pmwcas.ml: Alcotest Array Dssq_pmwcas Heap Helpers List Printf Sim
