test/test_nested.ml: Alcotest Dssq_core Dssq_memory Format Heap Helpers List Printf Queue_intf Record Recorder Sim
