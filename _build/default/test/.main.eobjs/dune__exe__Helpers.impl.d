test/helpers.ml: Alcotest Buffer Dssq_baselines Dssq_core Dssq_history Dssq_lincheck Dssq_pmem Dssq_sim Dssq_spec Format
