test/test_dss_register.ml: Alcotest Dss_spec Dssq_core Format Heap Helpers Lincheck List Printf Recorder Sim Specs
