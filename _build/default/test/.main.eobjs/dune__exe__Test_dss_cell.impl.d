test/test_dss_cell.ml: Alcotest Array Dssq_core Heap Helpers List Option Printf Sim
