test/test_caswe.ml: Alcotest Array Dssq_baselines Format Heap Helpers List Printf Queue_intf Sim
