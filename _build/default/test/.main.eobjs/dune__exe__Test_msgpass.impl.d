test/test_msgpass.ml: Alcotest Dss_spec Dssq_msgpass Heap Helpers Lincheck List Printf Recorder Sim Specs
