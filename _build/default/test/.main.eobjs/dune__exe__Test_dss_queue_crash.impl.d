test/test_dss_queue_crash.ml: Alcotest Dss_spec Explore Format Helpers List Printf Queue_intf Record Recorder Sim Specs String
