test/test_baselines.ml: Alcotest Array Dssq_baselines Format Fun Heap Helpers List Printf Queue_intf Sim
