(** Tests for the persistent multi-word CAS: atomicity, helping,
    failure, the private-word fast path, crash recovery at every step,
    and concurrent exploration. *)

open Helpers

type pm = {
  heap : Heap.t;
  alloc : int -> int;
  read : tid:int -> int -> int;
  pmwcas : tid:int -> (int * int * int * [ `Shared | `Private ]) list -> bool;
  cas1 : tid:int -> int -> expected:int -> desired:int -> bool;
  recover : unit -> unit;
}

let make ?(nthreads = 2) ?(nwords = 16) () : pm =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module P = Dssq_pmwcas.Pmwcas.Make (M) in
  let p = P.create ~nwords ~nthreads () in
  {
    heap;
    alloc = (fun v -> P.alloc p v);
    read = (fun ~tid a -> P.read p ~tid a);
    pmwcas = (fun ~tid entries -> P.pmwcas p ~tid entries);
    cas1 = (fun ~tid a ~expected ~desired -> P.cas1 p ~tid a ~expected ~desired);
    recover = (fun () -> P.recover p);
  }

let test_single_word_success () =
  let p = make () in
  let a = p.alloc 1 in
  Alcotest.(check bool) "succeeds" true (p.pmwcas ~tid:0 [ (a, 1, 2, `Shared) ]);
  Alcotest.(check int) "updated" 2 (p.read ~tid:0 a)

let test_single_word_failure () =
  let p = make () in
  let a = p.alloc 1 in
  Alcotest.(check bool) "fails on mismatch" false
    (p.pmwcas ~tid:0 [ (a, 9, 2, `Shared) ]);
  Alcotest.(check int) "unchanged" 1 (p.read ~tid:0 a)

let test_multi_word_all_or_nothing () =
  let p = make () in
  let a = p.alloc 1 and b = p.alloc 2 and c = p.alloc 3 in
  Alcotest.(check bool) "3-word success" true
    (p.pmwcas ~tid:0 [ (a, 1, 10, `Shared); (b, 2, 20, `Shared); (c, 3, 30, `Shared) ]);
  Alcotest.(check int) "a" 10 (p.read ~tid:0 a);
  Alcotest.(check int) "b" 20 (p.read ~tid:0 b);
  Alcotest.(check int) "c" 30 (p.read ~tid:0 c);
  (* One stale expectation poisons the whole operation. *)
  Alcotest.(check bool) "partial mismatch fails" false
    (p.pmwcas ~tid:0 [ (a, 10, 11, `Shared); (b, 99, 21, `Shared) ]);
  Alcotest.(check int) "a untouched" 10 (p.read ~tid:0 a);
  Alcotest.(check int) "b untouched" 20 (p.read ~tid:0 b)

let test_private_word () =
  let p = make () in
  let shared = p.alloc 1 and priv = p.alloc 5 in
  Alcotest.(check bool) "success with private word" true
    (p.pmwcas ~tid:0 [ (shared, 1, 2, `Shared); (priv, 5, 6, `Private) ]);
  Alcotest.(check int) "shared updated" 2 (p.read ~tid:0 shared);
  Alcotest.(check int) "private updated" 6 (p.read ~tid:0 priv);
  (* On failure (shared mismatch) the private word must stay put. *)
  Alcotest.(check bool) "failure" false
    (p.pmwcas ~tid:0 [ (shared, 99, 3, `Shared); (priv, 6, 7, `Private) ]);
  Alcotest.(check int) "private untouched on failure" 6 (p.read ~tid:0 priv)

let test_cas1 () =
  let p = make () in
  let a = p.alloc 1 in
  Alcotest.(check bool) "cas1 hit" true (p.cas1 ~tid:0 a ~expected:1 ~desired:2);
  Alcotest.(check bool) "cas1 miss" false (p.cas1 ~tid:0 a ~expected:1 ~desired:3);
  Alcotest.(check int) "value" 2 (p.read ~tid:0 a)

let test_descriptor_reuse_many_ops () =
  let p = make ~nthreads:1 () in
  let a = p.alloc 0 in
  for i = 0 to 499 do
    Alcotest.(check bool) "op succeeds" true
      (p.pmwcas ~tid:0 [ (a, i, i + 1, `Shared) ])
  done;
  Alcotest.(check int) "final value" 500 (p.read ~tid:0 a)

let test_concurrent_disjoint () =
  (* Two pmwcas on disjoint word sets, random schedules: both always
     succeed. *)
  for seed = 1 to 20 do
    let p = make () in
    let a = p.alloc 1 and b = p.alloc 2 and c = p.alloc 3 and d = p.alloc 4 in
    let ok = Array.make 2 false in
    let t0 () = ok.(0) <- p.pmwcas ~tid:0 [ (a, 1, 10, `Shared); (b, 2, 20, `Shared) ] in
    let t1 () = ok.(1) <- p.pmwcas ~tid:1 [ (c, 3, 30, `Shared); (d, 4, 40, `Shared) ] in
    let outcome = Sim.run p.heap ~policy:(Sim.Random_seed seed) ~threads:[ t0; t1 ] in
    Sim.check_thread_errors outcome;
    Alcotest.(check bool) "t0 ok" true ok.(0);
    Alcotest.(check bool) "t1 ok" true ok.(1);
    Alcotest.(check int) "a" 10 (p.read ~tid:0 a);
    Alcotest.(check int) "d" 40 (p.read ~tid:0 d)
  done

let test_concurrent_conflicting () =
  (* Two pmwcas over the same two words with the same expectations:
     exactly one must win, and the final state must be the winner's. *)
  for seed = 1 to 40 do
    let p = make () in
    let a = p.alloc 0 and b = p.alloc 0 in
    let ok = Array.make 2 false in
    let t0 () = ok.(0) <- p.pmwcas ~tid:0 [ (a, 0, 1, `Shared); (b, 0, 1, `Shared) ] in
    let t1 () = ok.(1) <- p.pmwcas ~tid:1 [ (a, 0, 2, `Shared); (b, 0, 2, `Shared) ] in
    let outcome = Sim.run p.heap ~policy:(Sim.Random_seed seed) ~threads:[ t0; t1 ] in
    Sim.check_thread_errors outcome;
    Alcotest.(check bool) "exactly one winner" true (ok.(0) <> ok.(1));
    let winner = if ok.(0) then 1 else 2 in
    Alcotest.(check int) "a consistent" winner (p.read ~tid:0 a);
    Alcotest.(check int) "b consistent" winner (p.read ~tid:0 b)
  done

let test_concurrent_opposite_order () =
  (* Same words, opposite textual order: internal sorting prevents the
     livelock/deadlock pattern, and atomicity holds. *)
  for seed = 1 to 40 do
    let p = make () in
    let a = p.alloc 0 and b = p.alloc 0 in
    let ok = Array.make 2 false in
    let t0 () = ok.(0) <- p.pmwcas ~tid:0 [ (a, 0, 1, `Shared); (b, 0, 1, `Shared) ] in
    let t1 () = ok.(1) <- p.pmwcas ~tid:1 [ (b, 0, 2, `Shared); (a, 0, 2, `Shared) ] in
    let outcome = Sim.run p.heap ~policy:(Sim.Random_seed seed) ~threads:[ t0; t1 ] in
    Sim.check_thread_errors outcome;
    Alcotest.(check bool) "one winner" true (ok.(0) <> ok.(1));
    Alcotest.(check bool) "words agree" true
      (p.read ~tid:0 a = p.read ~tid:0 b)
  done

let test_reader_never_sees_descriptor () =
  (* While a pmwcas is in flight, a concurrent reader must observe either
     the old or the new value — never a descriptor pointer or a torn
     state. *)
  for seed = 1 to 30 do
    let p = make () in
    let a = p.alloc 0 and b = p.alloc 0 in
    let observations = ref [] in
    let writer () = ignore (p.pmwcas ~tid:0 [ (a, 0, 1, `Shared); (b, 0, 1, `Shared) ]) in
    let reader () =
      for _ = 1 to 5 do
        let va = p.read ~tid:1 a in
        let vb = p.read ~tid:1 b in
        observations := (va, vb) :: !observations
      done
    in
    let outcome =
      Sim.run p.heap ~policy:(Sim.Random_seed seed) ~threads:[ writer; reader ]
    in
    Sim.check_thread_errors outcome;
    List.iter
      (fun (va, vb) ->
        Alcotest.(check bool) "clean values" true
          (List.mem va [ 0; 1 ] && List.mem vb [ 0; 1 ]);
        (* b is installed after a (ascending address order), so seeing
           b=1 while a=0 would be torn... but a reader that helps can
           only see committed states: both orders b<=a must hold. *)
        Alcotest.(check bool) "no torn read" true (va >= vb))
      !observations
  done

(* -------------------------- crash recovery --------------------------- *)

let test_crash_recovery_every_step () =
  (* Crash a 2-word pmwcas at every step, with full and zero eviction;
     after recovery both words agree: either both old or both new. *)
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let p = make ~nthreads:1 () in
        let a = p.alloc 0 and b = p.alloc 0 in
        let t () = ignore (p.pmwcas ~tid:0 [ (a, 0, 1, `Shared); (b, 0, 1, `Shared) ]) in
        let outcome =
          Sim.run p.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash p.heap ~evict_p ~seed:(4000 + !step);
          p.recover ();
          let va = p.read ~tid:0 a and vb = p.read ~tid:0 b in
          Alcotest.(check bool)
            (Printf.sprintf "atomic after crash at step %d (evict %.1f)" !step
               evict_p)
            true
            ((va = 0 && vb = 0) || (va = 1 && vb = 1))
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_crash_recovery_private_word () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let p = make ~nthreads:1 () in
        let a = p.alloc 0 and priv = p.alloc 0 in
        let t () =
          ignore (p.pmwcas ~tid:0 [ (a, 0, 1, `Shared); (priv, 0, 1, `Private) ])
        in
        let outcome =
          Sim.run p.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash p.heap ~evict_p ~seed:(5000 + !step);
          p.recover ();
          let va = p.read ~tid:0 a and vp = p.read ~tid:0 priv in
          Alcotest.(check bool)
            (Printf.sprintf
               "private word atomic with shared after crash at %d" !step)
            true
            ((va = 0 && vp = 0) || (va = 1 && vp = 1))
        end;
        incr step
      done)
    [ 0.0; 1.0 ]

let test_recovery_is_idempotent () =
  let p = make ~nthreads:1 () in
  let a = p.alloc 0 and b = p.alloc 0 in
  let t () = ignore (p.pmwcas ~tid:0 [ (a, 0, 1, `Shared); (b, 0, 1, `Shared) ]) in
  let outcome = Sim.run p.heap ~crash:(Sim.Crash_at_step 12) ~threads:[ t ] in
  Alcotest.(check bool) "crashed mid-operation" true outcome.Sim.crashed;
  Sim.apply_crash p.heap ~evict_p:0.5 ~seed:99;
  p.recover ();
  let va = p.read ~tid:0 a and vb = p.read ~tid:0 b in
  p.recover ();
  Alcotest.(check int) "a stable" va (p.read ~tid:0 a);
  Alcotest.(check int) "b stable" vb (p.read ~tid:0 b)

let suite =
  [
    Alcotest.test_case "single word success" `Quick test_single_word_success;
    Alcotest.test_case "single word failure" `Quick test_single_word_failure;
    Alcotest.test_case "multi-word all-or-nothing" `Quick
      test_multi_word_all_or_nothing;
    Alcotest.test_case "private word fast path" `Quick test_private_word;
    Alcotest.test_case "cas1 on managed words" `Quick test_cas1;
    Alcotest.test_case "descriptor pool reuse over many ops" `Quick
      test_descriptor_reuse_many_ops;
    Alcotest.test_case "concurrent disjoint operations" `Quick
      test_concurrent_disjoint;
    Alcotest.test_case "concurrent conflicting operations" `Quick
      test_concurrent_conflicting;
    Alcotest.test_case "opposite word order (no livelock)" `Quick
      test_concurrent_opposite_order;
    Alcotest.test_case "readers never see descriptors" `Quick
      test_reader_never_sees_descriptor;
    Alcotest.test_case "crash at every step: words atomic" `Quick
      test_crash_recovery_every_step;
    Alcotest.test_case "crash: private word atomic with shared" `Quick
      test_crash_recovery_private_word;
    Alcotest.test_case "recovery idempotent" `Quick test_recovery_is_idempotent;
  ]
