(** Tests for the General and Fast CASWithEffect queues: semantics,
    detectability, the atomicity advantage (X always consistent with the
    structure, even mid-crash), and crash sweeps. *)

open Helpers

type cq = {
  heap : Heap.t;
  enqueue : tid:int -> int -> unit;
  dequeue : tid:int -> int;
  prep_enqueue : tid:int -> int -> unit;
  exec_enqueue : tid:int -> unit;
  prep_dequeue : tid:int -> unit;
  exec_dequeue : tid:int -> int;
  resolve : tid:int -> Queue_intf.resolved;
  recover : unit -> unit;
  to_list : unit -> int list;
}

let make ~variant ~nthreads ~capacity : cq =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  match variant with
  | `General ->
      let module Q = Dssq_baselines.Caswe_queue.General (M) in
      let q = Q.create ~nthreads ~capacity () in
      {
        heap;
        enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
        to_list = (fun () -> Q.to_list q);
      }
  | `Fast ->
      let module Q = Dssq_baselines.Caswe_queue.Fast (M) in
      let q = Q.create ~nthreads ~capacity () in
      {
        heap;
        enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
        to_list = (fun () -> Q.to_list q);
      }

let variants = [ ("general", `General); ("fast", `Fast) ]

let for_variants f () = List.iter (fun (name, v) -> f name v) variants

let test_fifo =
  for_variants (fun name v ->
      let q = make ~variant:v ~nthreads:2 ~capacity:64 in
      List.iter (fun x -> q.enqueue ~tid:0 x) [ 1; 2; 3 ];
      Alcotest.(check int) (name ^ ": 1") 1 (q.dequeue ~tid:1);
      Alcotest.(check int) (name ^ ": 2") 2 (q.dequeue ~tid:0);
      Alcotest.(check int) (name ^ ": 3") 3 (q.dequeue ~tid:0);
      Alcotest.(check int)
        (name ^ ": empty")
        Queue_intf.empty_value (q.dequeue ~tid:0))

let test_detectable_lifecycle =
  for_variants (fun name v ->
      let q = make ~variant:v ~nthreads:2 ~capacity:64 in
      Alcotest.check resolved (name ^ ": nothing") Queue_intf.Nothing
        (q.resolve ~tid:0);
      q.prep_enqueue ~tid:0 11;
      Alcotest.check resolved (name ^ ": enq pending")
        (Queue_intf.Enq_pending 11) (q.resolve ~tid:0);
      q.exec_enqueue ~tid:0;
      Alcotest.check resolved (name ^ ": enq done") (Queue_intf.Enq_done 11)
        (q.resolve ~tid:0);
      q.prep_dequeue ~tid:1;
      Alcotest.check resolved (name ^ ": deq pending") Queue_intf.Deq_pending
        (q.resolve ~tid:1);
      Alcotest.(check int) (name ^ ": deq value") 11 (q.exec_dequeue ~tid:1);
      Alcotest.check resolved (name ^ ": deq done") (Queue_intf.Deq_done 11)
        (q.resolve ~tid:1);
      q.prep_dequeue ~tid:0;
      Alcotest.(check int)
        (name ^ ": empty deq")
        Queue_intf.empty_value (q.exec_dequeue ~tid:0);
      Alcotest.check resolved (name ^ ": deq empty") Queue_intf.Deq_empty
        (q.resolve ~tid:0))

let test_concurrent_conservation =
  for_variants (fun name v ->
      for seed = 1 to 8 do
        let nthreads = 2 in
        let q = make ~variant:v ~nthreads ~capacity:128 in
        let dequeued = Array.make nthreads [] in
        let program ~tid () =
          for i = 0 to 4 do
            q.prep_enqueue ~tid ((tid * 100) + i);
            q.exec_enqueue ~tid;
            q.prep_dequeue ~tid;
            let x = q.exec_dequeue ~tid in
            if x <> Queue_intf.empty_value then
              dequeued.(tid) <- x :: dequeued.(tid)
          done
        in
        let outcome =
          Sim.run q.heap ~policy:(Sim.Random_seed seed)
            ~threads:(List.init nthreads (fun tid -> program ~tid))
        in
        Sim.check_thread_errors outcome;
        let out = Array.to_list dequeued |> List.concat in
        let all = List.sort compare (out @ q.to_list ()) in
        let expected =
          List.sort compare
            (List.concat_map
               (fun tid -> List.init 5 (fun i -> (tid * 100) + i))
               [ 0; 1 ])
        in
        Alcotest.check int_list
          (Printf.sprintf "%s: conserved (seed %d)" name seed)
          expected all
      done)

(* The headline property of CASWithEffect: because the structure and X
   change in one PMwCAS, a crash can never leave an enqueue visible in
   the list but unrecorded in X, or vice versa. *)
let test_crash_atomic_detectability =
  for_variants (fun name v ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let q = make ~variant:v ~nthreads:1 ~capacity:32 in
        let t () =
          q.prep_enqueue ~tid:0 5;
          q.exec_enqueue ~tid:0
        in
        let outcome =
          Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash q.heap ~evict_p:0.5 ~seed:(!step * 7);
          q.recover ();
          let in_list = List.mem 5 (q.to_list ()) in
          (match q.resolve ~tid:0 with
          | Queue_intf.Enq_done 5 ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: done <=> queued (step %d)" name !step)
                true in_list
          | Queue_intf.Enq_pending 5 ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: pending <=> absent (step %d)" name !step)
                false in_list;
              q.exec_enqueue ~tid:0;
              Alcotest.(check bool) (name ^ ": retry lands") true
                (List.mem 5 (q.to_list ()))
          | Queue_intf.Nothing ->
              Alcotest.(check bool) (name ^ ": nothing => absent") false in_list
          | r ->
              Alcotest.failf "%s: unexpected resolution: %s" name
                (Format.asprintf "%a" Queue_intf.pp_resolved r));
          ()
        end;
        incr step
      done)

let test_crash_atomic_dequeue =
  for_variants (fun name v ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let q = make ~variant:v ~nthreads:1 ~capacity:32 in
        q.enqueue ~tid:0 1;
        q.enqueue ~tid:0 2;
        let t () =
          q.prep_dequeue ~tid:0;
          ignore (q.exec_dequeue ~tid:0)
        in
        let outcome =
          Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash q.heap ~evict_p:0.5 ~seed:(!step * 13);
          q.recover ();
          (match q.resolve ~tid:0 with
          | Queue_intf.Deq_done 1 ->
              Alcotest.check int_list
                (Printf.sprintf "%s: consumed (step %d)" name !step)
                [ 2 ] (q.to_list ())
          | Queue_intf.Deq_pending | Queue_intf.Nothing ->
              Alcotest.check int_list
                (Printf.sprintf "%s: untouched (step %d)" name !step)
                [ 1; 2 ] (q.to_list ())
          | r ->
              Alcotest.failf "%s: unexpected resolution: %s" name
                (Format.asprintf "%a" Queue_intf.pp_resolved r));
          ()
        end;
        incr step
      done)

let test_fast_uses_fewer_events () =
  (* The Fast variant's private-X optimization must show up as strictly
     fewer CAS+flush events per detectable pair. *)
  let count variant =
    let q = make ~variant ~nthreads:1 ~capacity:64 in
    Heap.reset_stats q.heap;
    for i = 1 to 20 do
      q.prep_enqueue ~tid:0 i;
      q.exec_enqueue ~tid:0;
      q.prep_dequeue ~tid:0;
      ignore (q.exec_dequeue ~tid:0)
    done;
    let s = Heap.stats q.heap in
    s.Heap.cases + s.Heap.flushes
  in
  let fast = count `Fast and general = count `General in
  Alcotest.(check bool)
    (Printf.sprintf "fast (%d) < general (%d)" fast general)
    true (fast < general)

let suite =
  [
    Alcotest.test_case "fifo (both variants)" `Quick test_fifo;
    Alcotest.test_case "detectable lifecycle (both variants)" `Quick
      test_detectable_lifecycle;
    Alcotest.test_case "concurrent conservation (both variants)" `Quick
      test_concurrent_conservation;
    Alcotest.test_case "crash: enqueue atomic with X (both)" `Quick
      test_crash_atomic_detectability;
    Alcotest.test_case "crash: dequeue atomic with X (both)" `Quick
      test_crash_atomic_dequeue;
    Alcotest.test_case "fast variant does fewer CAS+flush" `Quick
      test_fast_uses_fewer_events;
  ]
