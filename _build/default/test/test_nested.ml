(** Application-managed nesting (Section 2.2): the unmodified DSS queue
    algorithm running over base objects that are themselves detectable
    ([Dss_cell] via [Nested_memory]), as the paper describes —
    "D<queue> can be constructed using implementations of
    D<read/write register> and D<CAS>".

    The whole DSS-queue test battery is replayed on the nested
    instantiation: sequential semantics, detectable lifecycle, concurrent
    strict linearizability, and crash sweeps with exactly-once retry.
    A final test exercises detectability at BOTH levels at once. *)

open Helpers

module Config2 = struct
  let nthreads = 2
end

let make_nested ?(reclaim = true) ~capacity () =
  let heap = Heap.create () in
  let (module B) = Sim.memory heap in
  let module NM = Dssq_core.Nested_memory.Make ((val (module B : Dssq_memory.Memory_intf.S))) (Config2) in
  let module Q = Dssq_core.Dss_queue.Make (NM) in
  let q = Q.create ~reclaim ~nthreads:2 ~capacity () in
  ( heap,
    {
      heap;
      prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
      exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
      prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
      exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
      enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
      dequeue = (fun ~tid -> Q.dequeue q ~tid);
      resolve = (fun ~tid -> Q.resolve q ~tid);
      recover = (fun () -> Q.recover q);
      recover_thread = (fun ~tid -> Q.recover_thread q ~tid);
      to_list = (fun () -> Q.to_list q);
      free_count = (fun () -> Q.free_count q);
      recovered_violations = (fun () -> Q.recovered_violations q);
      reset_volatile = (fun () -> Q.reset_volatile q);
    } )

let test_fifo_over_nested_memory () =
  let _, q = make_nested ~capacity:64 () in
  List.iter (fun v -> q.enqueue ~tid:0 v) [ 1; 2; 3 ];
  Alcotest.(check int) "1" 1 (q.dequeue ~tid:1);
  Alcotest.(check int) "2" 2 (q.dequeue ~tid:0);
  Alcotest.(check int) "3" 3 (q.dequeue ~tid:0);
  Alcotest.(check int) "empty" Queue_intf.empty_value (q.dequeue ~tid:0)

let test_detectable_lifecycle_nested () =
  let _, q = make_nested ~capacity:64 () in
  q.prep_enqueue ~tid:0 11;
  Alcotest.check resolved "prepared" (Queue_intf.Enq_pending 11)
    (q.resolve ~tid:0);
  q.exec_enqueue ~tid:0;
  Alcotest.check resolved "done" (Queue_intf.Enq_done 11) (q.resolve ~tid:0);
  q.prep_dequeue ~tid:1;
  Alcotest.(check int) "dequeues" 11 (q.exec_dequeue ~tid:1);
  Alcotest.check resolved "deq done" (Queue_intf.Deq_done 11) (q.resolve ~tid:1)

let test_concurrent_lincheck_nested () =
  for seed = 1 to 10 do
    let _, q = make_nested ~capacity:128 () in
    let rec_ = Recorder.create () in
    let program rec_ q ~tid =
      Record.prep_enqueue rec_ q ~tid (10 + tid);
      Record.exec_enqueue rec_ q ~tid (10 + tid);
      Record.prep_dequeue rec_ q ~tid;
      Record.exec_dequeue rec_ q ~tid;
      Record.resolve rec_ q ~tid
    in
    let outcome =
      Sim.run q.heap ~policy:(Sim.Random_seed seed)
        ~threads:[ (fun () -> program rec_ q ~tid:0); (fun () -> program rec_ q ~tid:1) ]
    in
    Sim.check_thread_errors outcome;
    check_strict ~nthreads:2 (Recorder.history rec_)
  done

let test_crash_sweep_nested () =
  (* The crash sweep on the nested instantiation, sampled (every step is
     slow: each queue word is a full detectable object). *)
  let step = ref 0 in
  let finished = ref false in
  while not !finished do
    let _, q = make_nested ~capacity:48 () in
    let rec_ = Recorder.create () in
    Record.enqueue rec_ q ~tid:1 90;
    let t () =
      Record.prep_enqueue rec_ q ~tid:0 5;
      Record.exec_enqueue rec_ q ~tid:0 5
    in
    let outcome = Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ] in
    if not outcome.Sim.crashed then begin
      Sim.check_thread_errors outcome;
      finished := true
    end
    else begin
      Recorder.crash rec_;
      Sim.apply_crash q.heap ~evict_p:0.5 ~seed:(9000 + !step);
      q.recover ();
      Record.resolve rec_ q ~tid:0;
      (match q.resolve ~tid:0 with
      | Queue_intf.Enq_done 5 -> ()
      | Queue_intf.Enq_pending 5 -> Record.exec_enqueue rec_ q ~tid:0 5
      | Queue_intf.Nothing ->
          Record.prep_enqueue rec_ q ~tid:0 5;
          Record.exec_enqueue rec_ q ~tid:0 5
      | r ->
          Alcotest.failf "unexpected resolution: %s"
            (Format.asprintf "%a" Queue_intf.pp_resolved r));
      let fives = List.filter (( = ) 5) (q.to_list ()) in
      Alcotest.(check int)
        (Printf.sprintf "exactly one 5 (nested, crash step %d)" !step)
        1 (List.length fives);
      check_strict ~nthreads:2 (Recorder.history rec_)
    end;
    step := !step + 3 (* sample every third step; nested ops are long *)
  done

let test_both_levels_detectable () =
  (* A thread uses the queue detectably while another uses a raw
     detectable cell — and after a crash both resolve correctly:
     detection composes. *)
  for crash_step = 2 to 40 do
    let heap = Heap.create () in
    let (module B) = Sim.memory heap in
    let module NM =
      Dssq_core.Nested_memory.Make
        ((val (module B : Dssq_memory.Memory_intf.S)))
        (Config2)
    in
    let module Q = Dssq_core.Dss_queue.Make (NM) in
    let module C = Dssq_core.Dss_cell.Make (B) in
    let q = Q.create ~nthreads:2 ~capacity:48 () in
    let c = C.create ~nthreads:2 0 in
    let t0 () =
      Q.prep_enqueue q ~tid:0 5;
      Q.exec_enqueue q ~tid:0
    in
    let t1 () =
      C.prep_write c ~tid:1 7;
      C.exec_write c ~tid:1
    in
    let outcome =
      Sim.run heap ~policy:(Sim.Random_seed crash_step)
        ~crash:(Sim.Crash_at_step crash_step) ~threads:[ t0; t1 ]
    in
    if outcome.Sim.crashed then begin
      Sim.apply_crash heap ~evict_p:0.5 ~seed:crash_step;
      Q.recover q;
      (* Queue-level detection. *)
      (match Q.resolve q ~tid:0 with
      | Queue_intf.Enq_done 5 ->
          Alcotest.(check bool) "enq done => present" true
            (List.mem 5 (Q.to_list q))
      | Queue_intf.Enq_pending 5 ->
          Alcotest.(check bool) "enq pending => absent" false
            (List.mem 5 (Q.to_list q))
      | Queue_intf.Nothing -> ()
      | r ->
          Alcotest.failf "queue: unexpected resolution %s"
            (Format.asprintf "%a" Queue_intf.pp_resolved r));
      (* Cell-level detection. *)
      match C.resolve c ~tid:1 with
      | C.Write_done 7 -> Alcotest.(check int) "cell done => present" 7 (C.read c)
      | C.Write_pending 7 -> Alcotest.(check int) "cell pending => absent" 0 (C.read c)
      | C.Nothing -> Alcotest.(check int) "cell prep lost" 0 (C.read c)
      | _ -> Alcotest.fail "cell: unexpected resolution"
    end
  done

let suite =
  [
    Alcotest.test_case "fifo over nested memory" `Quick
      test_fifo_over_nested_memory;
    Alcotest.test_case "detectable lifecycle (nested)" `Quick
      test_detectable_lifecycle_nested;
    Alcotest.test_case "concurrent lincheck (nested)" `Quick
      test_concurrent_lincheck_nested;
    Alcotest.test_case "crash sweep (nested, sampled)" `Quick
      test_crash_sweep_nested;
    Alcotest.test_case "detection composes across levels" `Quick
      test_both_levels_detectable;
  ]
