(* DSS vs NRL, side by side — the paper's central comparison (Sections
   1-2), executed.

   Same object (a recoverable register), same crash. Under DSS, the
   recovering thread calls resolve, learns whether its write took effect,
   and decides what to do — including doing nothing. Under NRL, the
   system finds the pending operation (via the frame stack it must
   maintain) and its recovery function COMPLETES the write,
   unconditionally. And under DSS, a plain write pays no detection cost
   at all, while every NRL operation carries the announcement overhead —
   we print the flush counts to make that concrete.

   Run:  dune exec examples/nrl_vs_dss.exe *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "Crash mid-write: DSS resolve (report) vs NRL recovery (complete)";
  (* DSS side. *)
  let dss_outcomes = Hashtbl.create 4 in
  let nrl_outcomes = Hashtbl.create 4 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let steps = ref 0 in
  let running = ref true in
  while !running do
    (* --- DSS --- *)
    let heap = Heap.create () in
    let (module M) = Sim.memory heap in
    let module R = Dssq_core.Dss_register.Make (M) in
    let r = R.create ~nthreads:1 () in
    let t () =
      R.prep_write r ~tid:0 5;
      R.exec_write r ~tid:0
    in
    let outcome = Sim.run heap ~crash:(Sim.Crash_at_step !steps) ~threads:[ t ] in
    if not outcome.Sim.crashed then running := false
    else begin
      Sim.apply_crash heap ~evict_p:0.0 ~seed:!steps;
      (match R.resolve r ~tid:0 with
      | R.Write_done _ -> bump dss_outcomes "resolve: took effect — app may skip redo"
      | R.Write_pending _ -> bump dss_outcomes "resolve: no effect — app decides (redo or drop)"
      | R.Nothing -> bump dss_outcomes "resolve: nothing prepared"
      | _ -> ());
      (* --- NRL, same crash point --- *)
      let heap2 = Heap.create () in
      let (module M2) = Sim.memory heap2 in
      let module N = Dssq_nrl.Nrl.Make (M2) in
      let sys = N.System.create ~nthreads:1 ~max_depth:4 in
      let nr = N.Register.create ~sys ~obj_id:1 ~nthreads:1 () in
      let t2 () = N.Register.write nr ~tid:0 5 in
      let o2 = Sim.run heap2 ~crash:(Sim.Crash_at_step !steps) ~threads:[ t2 ] in
      if o2.Sim.crashed then begin
        Sim.apply_crash heap2 ~evict_p:0.0 ~seed:!steps;
        match N.System.recover_process sys ~tid:0 with
        | [] -> bump nrl_outcomes "no pending frame (op never started or finished)"
        | _ ->
            assert (N.Register.read nr = 5);
            bump nrl_outcomes "recovery COMPLETED the write (register = 5)"
      end
    end;
    incr steps
  done;
  Printf.printf "DSS outcomes across %d crash points:\n" !steps;
  Hashtbl.iter (fun k n -> Printf.printf "  %-52s x%d\n" k n) dss_outcomes;
  Printf.printf "NRL outcomes across the same crash points:\n";
  Hashtbl.iter (fun k n -> Printf.printf "  %-52s x%d\n" k n) nrl_outcomes;

  section "Detectability on demand: per-operation cost (flushes)";
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module R = Dssq_core.Dss_register.Make (M) in
  let module N = Dssq_nrl.Nrl.Make (M) in
  let r = R.create ~nthreads:1 () in
  let sys = N.System.create ~nthreads:1 ~max_depth:4 in
  let nr = N.Register.create ~sys ~obj_id:1 ~nthreads:1 () in
  let count f =
    Heap.reset_stats heap;
    f ();
    (Heap.stats heap).Heap.flushes
  in
  let plain = count (fun () -> R.write r ~tid:0 1) in
  let detectable =
    count (fun () ->
        R.prep_write r ~tid:0 2;
        R.exec_write r ~tid:0)
  in
  let nrl = count (fun () -> N.Register.write nr ~tid:0 3) in
  Printf.printf "  DSS plain write       : %d flushes  (detectability not requested)\n" plain;
  Printf.printf "  DSS detectable write  : %d flushes  (prep + exec)\n" detectable;
  Printf.printf "  NRL recoverable write : %d flushes  (always: frame push/pop + detectable write)\n" nrl;
  print_endline
    "\nDSS lets the application choose, per operation, whether to pay for\n\
     detection; NRL charges every operation, and additionally needs the\n\
     frame-stack machinery that the DSS paper points out is assumed, not\n\
     provided, by the NRL model."
