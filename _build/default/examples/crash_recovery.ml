(* Crash and recovery walkthrough — the executions of Figure 2 of the
   paper, reproduced live on the simulator, first on a detectable
   register (D<register>, via the universal construction) and then on
   the DSS queue with its native recovery procedure.

   Run:  dune exec examples/crash_recovery.exe *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Spec = Dssq_spec.Spec
module Dss_spec = Dssq_spec.Dss_spec
module Reg = Dssq_spec.Specs.Register
open Dssq_core.Queue_intf

let section title =
  Printf.printf "\n=== %s ===\n" title

(* ---------------------------------------------------------------- *)
(* Part 1: Figure 2 on D<register>                                   *)
(* ---------------------------------------------------------------- *)

(* Run "prep-write(1); exec-write(1)" and crash at [crash_step]
   (or run to completion if the step is beyond the program).  Returns
   the post-recovery resolution. *)
let figure2_run ~crash_step ~evict_p =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module U = Dssq_universal.Universal.Make (M) in
  let u = U.create ~nthreads:1 ~capacity:16 (Reg.spec ()) in
  let thread () =
    U.prep u ~tid:0 (Reg.Write 1);
    ignore (U.exec u ~tid:0 (Reg.Write 1))
  in
  let outcome = Sim.run heap ~crash:(Sim.Crash_at_step crash_step) ~threads:[ thread ] in
  if outcome.Sim.crashed then Sim.apply_crash heap ~evict_p ~seed:crash_step;
  (outcome.Sim.crashed, U.resolve u ~tid:0)

let pp_reg_resolution (a, r) =
  let op = function
    | Some (Reg.Write v) -> Printf.sprintf "write(%d)" v
    | Some Reg.Read -> "read"
    | None -> "_|_"
  in
  let resp = function
    | Some Reg.Ok -> "OK"
    | Some (Reg.Value v) -> string_of_int v
    | None -> "_|_"
  in
  Printf.sprintf "(%s, %s)" (op a) (resp r)

let () =
  section "Figure 2: detectable register, crash at every point";
  let step = ref 0 in
  let running = ref true in
  while !running do
    let crashed, resolution = figure2_run ~crash_step:!step ~evict_p:0.0 in
    if crashed then
      Printf.printf "crash after step %2d -> resolve returns %s\n" !step
        (pp_reg_resolution resolution)
    else begin
      Printf.printf "no crash          -> resolve returns %s   (execution (a))\n"
        (pp_reg_resolution resolution);
      running := false
    end;
    incr step
  done;
  print_endline
    "Outcomes (write(1), OK) / (write(1), _|_) / (_|_, _|_) correspond to\n\
     executions (a)-(d) of the paper: the crash point determines which are\n\
     legal, and resolve never lies about whether the write took effect."

(* ---------------------------------------------------------------- *)
(* Part 2: the DSS queue, crash mid-operation, recover, resolve       *)
(* ---------------------------------------------------------------- *)

let () =
  section "DSS queue: crash mid-enqueue, recover, resolve, retry";
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let q = Q.create ~nthreads:2 ~capacity:64 () in
  Q.enqueue q ~tid:1 7 (* pre-existing state *);

  (* Thread 0 prepares and starts applying enqueue(42); the system
     crashes somewhere in the middle. *)
  let thread () =
    Q.prep_enqueue q ~tid:0 42;
    Q.exec_enqueue q ~tid:0
  in
  let outcome = Sim.run heap ~crash:(Sim.Crash_at_step 9) ~threads:[ thread ] in
  Printf.printf "system crashed: %b\n" outcome.Sim.crashed;

  (* Power comes back: unflushed cache lines are gone. *)
  Sim.apply_crash heap ~evict_p:0.0 ~seed:1;
  Q.recover q;

  (* The thread resumes under the same id and asks what happened. *)
  (match Q.resolve q ~tid:0 with
  | Enq_done v ->
      Printf.printf "resolve: enqueue(%d) TOOK EFFECT — nothing to redo\n" v
  | Enq_pending v ->
      Printf.printf
        "resolve: enqueue(%d) did NOT take effect — retrying exactly once\n" v;
      Q.exec_enqueue q ~tid:0
  | Nothing -> print_endline "resolve: nothing was even prepared"
  | _ -> assert false);

  let rec drain acc =
    let v = Q.dequeue q ~tid:1 in
    if v = empty_value then List.rev acc else drain (v :: acc)
  in
  let contents = drain [] in
  Printf.printf "queue contents after recovery + retry: [%s]\n"
    (String.concat "; " (List.map string_of_int contents));
  assert (List.filter (( = ) 42) contents = [ 42 ])

(* ---------------------------------------------------------------- *)
(* Part 3: crash mid-dequeue — the value is never lost nor duplicated *)
(* ---------------------------------------------------------------- *)

let () =
  section "DSS queue: crash mid-dequeue at every step";
  let outcomes = Hashtbl.create 8 in
  let step = ref 0 in
  let running = ref true in
  while !running do
    let heap = Heap.create () in
    let (module M) = Sim.memory heap in
    let module Q = Dssq_core.Dss_queue.Make (M) in
    let q = Q.create ~nthreads:1 ~capacity:64 () in
    List.iter (fun v -> Q.enqueue q ~tid:0 v) [ 1; 2; 3 ];
    let thread () =
      Q.prep_dequeue q ~tid:0;
      ignore (Q.exec_dequeue q ~tid:0)
    in
    let outcome = Sim.run heap ~crash:(Sim.Crash_at_step !step) ~threads:[ thread ] in
    if not outcome.Sim.crashed then running := false
    else begin
      Sim.apply_crash heap ~evict_p:0.5 ~seed:!step;
      Q.recover q;
      let status =
        match Q.resolve q ~tid:0 with
        | Deq_done v -> Printf.sprintf "took effect (got %d)" v
        | Deq_pending ->
            ignore (Q.exec_dequeue q ~tid:0);
            "pending -> retried"
        | Nothing -> "prep lost -> would re-prepare"
        | _ -> assert false
      in
      Hashtbl.replace outcomes status
        (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes status))
    end;
    incr step
  done;
  Hashtbl.iter
    (fun status n -> Printf.printf "%-28s at %2d crash points\n" status n)
    outcomes;
  print_endline "In every case the head value was consumed exactly once."
