(* Quickstart: the DSS queue API in five minutes.

   Build and run:  dune exec examples/quickstart.exe

   This example uses the native backend (real atomics); the detectable
   protocol is exactly the same on the simulator backend, which is where
   crashes can actually be injected — see crash_recovery.ml for that. *)

module Q = Dssq_core.Dss_queue.Make (Dssq_memory.Native)
open Dssq_core.Queue_intf

let () =
  (* One queue, two application threads (0 and 1), room for 1024 nodes. *)
  let q = Q.create ~nthreads:2 ~capacity:1024 () in

  (* Plain (non-detectable) operations: ordinary lock-free queue. *)
  Q.enqueue q ~tid:0 1;
  Q.enqueue q ~tid:0 2;
  Printf.printf "dequeue -> %d\n" (Q.dequeue q ~tid:1);

  (* Detectable operations: declare intent with prep-*, apply with
     exec-*.  After a crash, resolve tells you whether the prepared
     operation took effect and what it returned — here, in a failure-free
     run, it simply reports completion. *)
  Q.prep_enqueue q ~tid:0 42;
  (match Q.resolve q ~tid:0 with
  | Enq_pending v -> Printf.printf "prepared enqueue(%d), not yet applied\n" v
  | _ -> assert false);
  Q.exec_enqueue q ~tid:0;
  (match Q.resolve q ~tid:0 with
  | Enq_done v -> Printf.printf "enqueue(%d) took effect\n" v
  | _ -> assert false);

  Q.prep_dequeue q ~tid:1;
  let v = Q.exec_dequeue q ~tid:1 in
  Printf.printf "detectable dequeue -> %d\n" v;
  (match Q.resolve q ~tid:1 with
  | Deq_done v' -> Printf.printf "resolve confirms dequeue -> %d\n" v'
  | _ -> assert false);

  (* Detectability is on demand: this dequeue doesn't pay for it. *)
  Printf.printf "plain dequeue -> %d\n" (Q.dequeue q ~tid:0);
  Printf.printf "queue is now %s\n"
    (if Q.dequeue q ~tid:0 = empty_value then "empty" else "non-empty")
