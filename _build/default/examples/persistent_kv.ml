(* A tiny persistent key-value store with exactly-once read-modify-write,
   built directly on detectable base objects (Dss_cell = D<register>+D<CAS>).

   Each key is one detectable cell.  An update is a detectable CAS
   (read-modify-write): prep-cas records the intent persistently, exec-cas
   applies it, and after a crash resolve says whether it landed — so a
   client that retries "increment k by d" across any number of crashes
   applies it exactly once.  No queue, no log, no transaction layer: the
   detectable object alone carries the recovery protocol.

   Run:  dune exec examples/persistent_kv.exe *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim

let nkeys = 4
let updates_per_client = 12
let nclients = 2

let () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module C = Dssq_core.Dss_cell.Make (M) in
  let store =
    Array.init nkeys (fun k ->
        C.create ~name:(Printf.sprintf "key%d" k) ~nthreads:nclients 0)
  in

  (* Deterministic workload: client i applies deltas to keys round-robin. *)
  let plan tid =
    List.init updates_per_client (fun i ->
        ((i + tid) mod nkeys, 1 + ((i * 7) + tid) mod 9))
  in

  (* Volatile progress; after a crash the in-flight update's fate is
     recovered from resolve, everything else from this counter. *)
  let applied = Array.make nclients 0 in
  let in_flight : (int * int) option array = Array.make nclients None in

  let apply_one ~tid (key, delta) =
    (* Detectable read-modify-write: CAS from the current value. *)
    let rec attempt () =
      let cur = C.read store.(key) in
      C.prep_cas store.(key) ~tid ~expected:cur ~desired:(cur + delta);
      in_flight.(tid) <- Some (key, delta);
      if C.exec_cas store.(key) ~tid then begin
        in_flight.(tid) <- None;
        applied.(tid) <- applied.(tid) + 1
      end
      else attempt () (* value moved under us: retry with a fresh read *)
    in
    attempt ()
  in

  let resolve_in_flight ~tid =
    match in_flight.(tid) with
    | None -> ()
    | Some (key, delta) -> (
        ignore delta;
        match C.resolve store.(key) ~tid with
        | C.Cas_done (_, _, true) ->
            (* Landed before the crash: count it, do not redo. *)
            in_flight.(tid) <- None;
            applied.(tid) <- applied.(tid) + 1
        | C.Cas_done (_, _, false) | C.Cas_pending _ | C.Nothing ->
            (* Did not land: the main loop will redo it. *)
            ()
        | _ -> ())
  in

  let crashes = ref 0 in
  let epoch = ref 0 in
  let all_done () =
    Array.for_all (fun a -> a >= updates_per_client) applied
  in
  while not (all_done ()) do
    incr epoch;
    let client ~tid () =
      while applied.(tid) < updates_per_client do
        (match in_flight.(tid) with
        | Some upd -> (
            (* Redo the interrupted update (exec again after re-prep via
               attempt's fresh read). *)
            match upd with key, delta -> apply_one ~tid (key, delta))
        | None -> apply_one ~tid (List.nth (plan tid) applied.(tid)));
        Sim.yield heap
      done
    in
    let outcome =
      Sim.run heap
        ~policy:(Sim.Random_seed !epoch)
        ~crash:(Sim.Crash_prob (0.01, !epoch))
        ~threads:(List.init nclients (fun tid -> client ~tid))
    in
    if outcome.Sim.crashed then begin
      incr crashes;
      Sim.apply_crash heap ~evict_p:0.4 ~seed:!epoch;
      for tid = 0 to nclients - 1 do
        resolve_in_flight ~tid
      done
    end
  done;

  (* Verify: the store sums to exactly the sum of all planned deltas. *)
  let expected =
    List.init nclients (fun tid -> List.map snd (plan tid))
    |> List.concat |> List.fold_left ( + ) 0
  in
  let total =
    Array.fold_left (fun acc cell -> acc + C.read cell) 0 store
  in
  Printf.printf
    "applied %d updates across %d clients and %d crashes; store total = %d \
     (expected %d)\n"
    (nclients * updates_per_client)
    nclients !crashes total expected;
  assert (total = expected);
  print_endline "every read-modify-write applied exactly once"
