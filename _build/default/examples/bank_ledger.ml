(* Bank ledger: exactly-once transaction processing over the DSS queue.

   The scenario the paper's introduction motivates: an application that
   "is directly responsible for deciding the correct redo and undo
   actions" because it has no transactions.  A producer submits transfer
   orders into a persistent queue; a consumer applies them to account
   balances.  The machine crashes repeatedly at random points.  Thanks to
   detectability, after each crash both threads resolve their in-flight
   operation and redo it only if it did not take effect — so no transfer
   is ever applied twice or lost, across any number of crashes.

   Run:  dune exec examples/bank_ledger.exe *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
open Dssq_core.Queue_intf

let n_transfers = 40
let accounts = 4

(* A transfer order packed into one queue value: a unique serial number
   plus (from, to, amount).  The serial number is exactly the auxiliary
   disambiguating argument of Section 2.1 of the paper: it makes repeated
   otherwise-identical transfers distinguishable under resolve. *)
let encode ~serial ~src ~dst ~amount =
  (serial * 1_000_000) + (((src * accounts) + dst) * 1000) + amount

let decode v =
  let v = v mod 1_000_000 in
  ((v / 1000 / accounts, v / 1000 mod accounts), v mod 1000)

let () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let q = Q.create ~nthreads:2 ~capacity:256 () in

  (* Balances live in persistent cells too (flushed on every update, so a
     crash cannot tear them — a real system would make the balance update
     and the dequeue one recoverable transaction; here the queue IS the
     ledger and balances are a materialized view we rebuild checks on). *)
  let balances = Array.init accounts (fun i -> M.alloc ~name:(Printf.sprintf "balance%d" i) 1000) in
  let apply_transfer v =
    let (src, dst), amount = decode v in
    M.write balances.(src) (M.read balances.(src) - amount);
    M.flush balances.(src);
    M.write balances.(dst) (M.read balances.(dst) + amount);
    M.flush balances.(dst)
  in

  let rng = Random.State.make [| 2026 |] in
  let transfers =
    List.init n_transfers (fun i ->
        let src = Random.State.int rng accounts in
        let dst = (src + 1 + Random.State.int rng (accounts - 1)) mod accounts in
        let amount = 1 + Random.State.int rng 50 in
        encode ~serial:i ~src ~dst ~amount)
  in

  (* Volatile progress trackers: lost at every crash, rebuilt from
     resolve — that is the whole point of the exercise. *)
  let submitted = ref [] (* producer's log of definitely-submitted orders *)
  and applied = ref [] (* consumer's log of definitely-applied orders *) in

  let producer_queue = ref transfers in
  let produce_one ~tid =
    match !producer_queue with
    | [] -> false
    | v :: rest ->
        Q.prep_enqueue q ~tid v;
        Q.exec_enqueue q ~tid;
        submitted := v :: !submitted;
        producer_queue := rest;
        true
  in
  let consume_one ~tid =
    Q.prep_dequeue q ~tid;
    let v = Q.exec_dequeue q ~tid in
    if v <> empty_value then begin
      apply_transfer v;
      applied := v :: !applied
    end;
    v <> empty_value
  in

  (* Recovery logic per thread: decide redo/skip from resolve. *)
  let recover_producer () =
    match Q.resolve q ~tid:0 with
    | Enq_done v ->
        (* Took effect before the crash but we may not have logged it. *)
        if not (List.mem v !submitted) then begin
          submitted := v :: !submitted;
          producer_queue := List.filter (( <> ) v) !producer_queue
        end
    | Enq_pending _ | Nothing ->
        (* Did not take effect; the order is still in producer_queue and
           will be re-submitted by the normal loop. *)
        ()
    | _ -> ()
  in
  let recover_consumer () =
    match Q.resolve q ~tid:1 with
    | Deq_done v ->
        if not (List.mem v !applied) then begin
          (* Dequeued before the crash, application not logged: redo the
             balance update exactly once. *)
          apply_transfer v;
          applied := v :: !applied
        end
    | Deq_pending | Deq_empty | Nothing -> ()
    | _ -> ()
  in

  (* Main loop: run both threads; crash with some probability per step;
     recover; repeat until all transfers are submitted and applied. *)
  let crashes = ref 0 in
  let epoch = ref 0 in
  while List.length !applied < n_transfers do
    incr epoch;
    let producer () = while produce_one ~tid:0 do () done in
    let consumer () =
      let continue_consuming = ref true in
      while !continue_consuming do
        if not (consume_one ~tid:1) then
          (* Queue empty: stop if the producer is done. *)
          continue_consuming := List.length !submitted < n_transfers
      done
    in
    let outcome =
      Sim.run heap
        ~policy:(Sim.Random_seed !epoch)
        ~crash:(Sim.Crash_prob (0.004, !epoch))
        ~threads:[ producer; consumer ]
    in
    if outcome.Sim.crashed then begin
      incr crashes;
      (* NB: volatile logs survive in this process, but the in-flight
         operation's fate is genuinely unknown — exactly the ambiguity
         resolve removes. *)
      Sim.apply_crash heap ~evict_p:0.3 ~seed:!epoch;
      Q.recover q;
      recover_producer ();
      recover_consumer ()
    end
  done;

  Printf.printf "processed %d transfers across %d crashes\n" n_transfers !crashes;

  (* Verification: every transfer applied exactly once, money conserved. *)
  let sorted l = List.sort compare l in
  assert (sorted !applied = sorted transfers);
  let total = Array.fold_left (fun acc b -> acc + M.read b) 0 balances in
  Printf.printf "final balances: [%s] (total %d)\n"
    (String.concat "; "
       (Array.to_list (Array.map (fun b -> string_of_int (M.read b)) balances)))
    total;
  assert (total = accounts * 1000);
  print_endline "every transfer applied exactly once; money conserved"
