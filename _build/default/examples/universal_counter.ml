(* Universal construction demo: a detectable counter, D<counter>,
   obtained for free from the sequential specification of a counter —
   the computability argument of Section 2.2 of the paper, live.

   The construction agrees operations into a persistent log (one CAS
   consensus per slot, flush-predecessor-before-append), so recovery is
   trivial: the persisted log is always a prefix of the volatile one and
   resolve is just another logged operation.

   This example also shows the auxiliary-argument remedy from the end of
   Section 2.1: each increment carries a serial number that is recorded
   in A[p] but ignored by the transition function, so that resolve can
   distinguish "the increment I already accounted for" from "a repeat of
   the same operation" — without it, exactly-once retry of {e identical}
   operations is ambiguous.

   Run:  dune exec examples/universal_counter.exe *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Spec = Dssq_spec.Spec
module Cnt = Dssq_spec.Specs.Counter

let () =
  let total_increments = 10 in
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module U = Dssq_universal.Universal.Make (M) in
  (* with_aux: operations become (op, serial); delta ignores serial. *)
  let u = U.create ~nthreads:2 ~capacity:32768 (Spec.with_aux (Cnt.spec ())) in

  (* Two threads each perform detectable increments; the system keeps
     crashing; on restart each thread resolves and counts or retries.
     The final count must equal the number of intended increments. *)
  let done_count = Array.make 2 0 in
  let crashes = ref 0 in
  let epoch = ref 0 in
  while done_count.(0) + done_count.(1) < 2 * total_increments do
    incr epoch;
    let worker ~tid () =
      while done_count.(tid) < total_increments do
        let serial = done_count.(tid) in
        U.prep u ~tid (Cnt.Increment, serial);
        (match U.exec u ~tid (Cnt.Increment, serial) with
        | Some Cnt.Ok -> done_count.(tid) <- done_count.(tid) + 1
        | Some (Cnt.Value _) | None -> ());
        Sim.yield heap
      done
    in
    let outcome =
      Sim.run heap
        ~policy:(Sim.Random_seed !epoch)
        ~crash:(Sim.Crash_prob (0.003, !epoch))
        ~threads:[ worker ~tid:0; worker ~tid:1 ]
    in
    if outcome.Sim.crashed then begin
      incr crashes;
      Sim.apply_crash heap ~evict_p:0.4 ~seed:!epoch;
      (* On restart, each thread resolves its in-flight increment.  The
         serial number disambiguates: only an increment whose serial
         equals the local progress counter is both completed and not yet
         accounted for. *)
      for tid = 0 to 1 do
        match U.resolve u ~tid with
        | Some (Cnt.Increment, serial), Some Cnt.Ok
          when serial = done_count.(tid) ->
            done_count.(tid) <- done_count.(tid) + 1
        | _ -> ()
      done
    end
  done;

  (match U.apply u ~tid:0 (Cnt.Get, 0) with
  | Some (Cnt.Value v) ->
      Printf.printf
        "intended %d increments, survived %d crashes, counter reads %d\n"
        (2 * total_increments) !crashes v;
      assert (v = 2 * total_increments)
  | _ -> assert false);
  print_endline
    "exactly-once semantics from D<counter> via the universal construction"
