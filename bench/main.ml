(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figure 5a and Figure 5b), the DESIGN.md ablations, and per-operation
   Bechamel latency benchmarks.

     dune exec bench/main.exe                 # everything, short defaults
     dune exec bench/main.exe -- fig5a        # one experiment
     dune exec bench/main.exe -- fig5b --repeats 5 --horizon-us 1000
     dune exec bench/main.exe -- fig5a --backend native --duration 1.0
     dune exec bench/main.exe -- bechamel     # wall-clock op latency

   The default backend is the discrete-event simulated multiprocessor
   (see DESIGN.md: this container has one core, so domain-based scaling
   curves are physically meaningless here; the native backend remains
   available for real multicore machines). *)

module Experiments = Dssq_workload.Experiments
module Report = Dssq_workload.Report
open Cmdliner

(* ------------------------- common options ---------------------------- *)

let backend_conv =
  Arg.enum [ ("sim", Experiments.Sim_model); ("native", Experiments.Native_domains) ]

let backend =
  Arg.(
    value
    & opt backend_conv Experiments.Sim_model
    & info [ "backend" ] ~doc:"sim or native")

let repeats =
  Arg.(value & opt int 3 & info [ "repeats" ] ~doc:"samples per point")

let horizon_us =
  Arg.(
    value & opt float 300.
    & info [ "horizon-us" ] ~doc:"simulated time per sample (sim backend)")

let duration =
  Arg.(
    value & opt float 0.2
    & info [ "duration" ] ~doc:"seconds per sample (native backend)")

let threads =
  Arg.(
    value
    & opt (list int) Experiments.default_threads
    & info [ "threads" ] ~doc:"thread counts to sweep")

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"also print CSV")

(* Reject non-positive line sizes at parse time rather than letting
   [Line.Alloc.create] raise [Invalid_argument] mid-run. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let line_size =
  Arg.(
    value & opt pos_int 1
    & info [ "line-size" ] ~docv:"WORDS"
        ~doc:
          "persist-line size in words (1, the default, is the legacy \
           word-granular model)")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write a schema-versioned JSON run report (with memory-event and \
           latency instrumentation) to $(docv)")

let render ~title ~x_label ~y_label ~csv:want_csv series =
  Report.print_table ~title ~x_label ~y_label series;
  Report.print_chart series;
  if want_csv then print_string (Report.to_csv ~x_label series)

let backend_name = function
  | Experiments.Sim_model -> "sim"
  | Experiments.Native_domains -> "native"

(* Each report gets the registry-metrics delta over its own run, not the
   process-lifetime snapshot: the default `bench` invocation writes
   several reports from one process, and without {!Metrics.mark}
   isolation every later report would silently include the earlier runs'
   counters (trace drops included). *)
let write_report ~backend ~experiment ~x_label ~y_label ?(provenance = [])
    ~marked series file =
  let report =
    Dssq_obs.Run_report.make ~backend:(backend_name backend) ~experiment
      ~x_label ~y_label ~provenance
      ~metrics:(Dssq_obs.Metrics.delta_since marked)
      series
  in
  match Dssq_obs.Run_report.write file report with
  | () ->
      Printf.printf "wrote %s (%s v%d)\n" file Dssq_obs.Run_report.schema_name
        Dssq_obs.Run_report.schema_version
  | exception Sys_error msg ->
      Printf.eprintf "bench: cannot write report: %s\n" msg;
      exit 1

(* ------------------------- figure commands --------------------------- *)

let run_fig backend csv json ~experiment ~title ~provenance f =
  let marked = Dssq_obs.Metrics.mark () in
  let series = f ~instrument:(Option.is_some json) in
  render ~title ~x_label:"threads" ~y_label:"Mops/s" ~csv
    (Report.of_run series);
  Option.iter
    (write_report ~backend ~experiment ~x_label:"threads" ~y_label:"Mops/s"
       ~provenance ~marked series)
    json

let fig_provenance ~threads ~line_size =
  [
    ("threads", String.concat "," (List.map string_of_int threads));
    ("line_size", string_of_int line_size);
    ("coalesce", "false");
  ]

let run_fig5a backend threads repeats horizon_us duration line_size csv json =
  run_fig backend csv json ~experiment:"fig5a"
    ~provenance:(fig_provenance ~threads ~line_size)
    ~title:
      "Figure 5a: levels of detectability and persistence (alternating \
       enqueue/dequeue pairs, queue seeded with 16 nodes)"
    (fun ~instrument ->
      Experiments.fig5a_ex ~backend ~threads ~repeats
        ~horizon_ns:(horizon_us *. 1000.)
        ~duration ~line_size ~instrument ())

let fig5a_cmd =
  Cmd.v (Cmd.info "fig5a" ~doc:"MS queue vs DSS non-detectable vs DSS detectable")
    Term.(
      const run_fig5a $ backend $ threads $ repeats $ horizon_us $ duration
      $ line_size $ csv $ json)

let run_fig5b backend threads repeats horizon_us duration line_size csv json =
  run_fig backend csv json ~experiment:"fig5b"
    ~provenance:(fig_provenance ~threads ~line_size)
    ~title:
      "Figure 5b: detectable queue implementations (all operations \
       detectable)"
    (fun ~instrument ->
      Experiments.fig5b_ex ~backend ~threads ~repeats
        ~horizon_ns:(horizon_us *. 1000.)
        ~duration ~line_size ~instrument ())

let fig5b_cmd =
  Cmd.v
    (Cmd.info "fig5b"
       ~doc:"DSS queue vs log queue vs Fast/General CASWithEffect")
    Term.(
      const run_fig5b $ backend $ threads $ repeats $ horizon_us $ duration
      $ line_size $ csv $ json)

(* ------------------------- ablation commands ------------------------- *)

let nthreads_opt =
  Arg.(value & opt int 8 & info [ "nthreads" ] ~doc:"thread count")

let run_ablate_flush nthreads repeats horizon_us csv =
  let series =
    Experiments.ablate_flush ~nthreads ~repeats ~horizon_ns:(horizon_us *. 1000.) ()
  in
  render
    ~title:
      (Printf.sprintf
         "Ablation: persist-instruction latency sweep (%d threads)" nthreads)
    ~x_label:"flush_ns" ~y_label:"Mops/s" ~csv series

let ablate_flush_cmd =
  Cmd.v
    (Cmd.info "ablate-flush" ~doc:"sweep the simulated CLWB+sfence latency")
    Term.(const run_ablate_flush $ nthreads_opt $ repeats $ horizon_us $ csv)

let run_ablate_demand nthreads repeats horizon_us csv =
  let series =
    Experiments.ablate_demand ~nthreads ~repeats ~horizon_ns:(horizon_us *. 1000.) ()
  in
  render
    ~title:
      (Printf.sprintf
         "Ablation: detectability on demand — fraction of detectable pairs \
          (%d threads, DSS queue)"
         nthreads)
    ~x_label:"det_pct" ~y_label:"Mops/s" ~csv series

let ablate_demand_cmd =
  Cmd.v
    (Cmd.info "ablate-demand"
       ~doc:"sweep the fraction of operations requesting detectability")
    Term.(const run_ablate_demand $ nthreads_opt $ repeats $ horizon_us $ csv)

let run_ablate_recovery csv =
  let series = Experiments.ablate_recovery () in
  render
    ~title:
      "Ablation: recovery styles — memory events to recover vs queue length"
    ~x_label:"queue_len" ~y_label:"memory events" ~csv series

let ablate_recovery_cmd =
  Cmd.v
    (Cmd.info "ablate-recovery"
       ~doc:"centralized (Figure 6) vs per-thread recovery cost")
    Term.(const run_ablate_recovery $ csv)

let run_ablate_depth csv =
  let series = Experiments.ablate_depth () in
  render
    ~title:"Ablation: initial queue depth (8 threads)"
    ~x_label:"depth" ~y_label:"Mops/s" ~csv series

let ablate_depth_cmd =
  Cmd.v
    (Cmd.info "ablate-depth" ~doc:"initial queue depth sweep")
    Term.(const run_ablate_depth $ csv)

let run_ablate_crashes csv =
  let series = Experiments.ablate_crash_mtbf () in
  render
    ~title:
      "Ablation: failure-full throughput — effective Mops/s vs crash MTBF \
       (8 threads, recovery charged)"
    ~x_label:"mtbf_us" ~y_label:"Mops/s" ~csv series

let ablate_crashes_cmd =
  Cmd.v
    (Cmd.info "ablate-crashes"
       ~doc:"throughput under periodic crashes (MTBF sweep)")
    Term.(const run_ablate_crashes $ csv)

let run_ablate_pmwcas csv =
  let series = Experiments.ablate_pmwcas () in
  render
    ~title:"Ablation: PMwCAS width — modelled ns per operation"
    ~x_label:"width" ~y_label:"ns/op" ~csv series

let ablate_pmwcas_cmd =
  Cmd.v
    (Cmd.info "ablate-pmwcas" ~doc:"PMwCAS cost vs number of words")
    Term.(const run_ablate_pmwcas $ csv)

let run_ablate_linesize nthreads repeats horizon_us csv json =
  let marked = Dssq_obs.Metrics.mark () in
  let series =
    Experiments.ablate_linesize ~nthreads ~repeats
      ~horizon_ns:(horizon_us *. 1000.) ()
  in
  render
    ~title:
      (Printf.sprintf
         "Ablation: persist-line size — cache-line-granular flushing (%d \
          threads; flushes/op and elided/op in the JSON report)"
         nthreads)
    ~x_label:"line_size" ~y_label:"Mops/s" ~csv (Report.of_run series);
  Option.iter
    (write_report ~backend:Experiments.Sim_model ~experiment:"ablate-linesize"
       ~x_label:"line_size" ~y_label:"Mops/s"
       ~provenance:
         [ ("threads", string_of_int nthreads); ("coalesce", "false") ]
       ~marked series)
    json

let ablate_linesize_cmd =
  Cmd.v
    (Cmd.info "ablate-linesize"
       ~doc:"persist-line size sweep (instrumented flush/elision counts)")
    Term.(
      const run_ablate_linesize $ nthreads_opt $ repeats $ horizon_us $ csv
      $ json)

(* ------------------------- regression sweep -------------------------- *)

let quick_flag =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "CI smoke configuration: sim backend only, two thread counts, one \
           repeat (deterministic)")

let regress_out =
  Arg.(
    value
    & opt string "BENCH_PR5.json"
    & info [ "json" ] ~docv:"FILE" ~doc:"where to write the run report")

let run_regress quick out =
  let marked = Dssq_obs.Metrics.mark () in
  let series = Experiments.regress ~quick () in
  let recovery = Experiments.recovery_latency ~quick () in
  render
    ~title:
      "Benchmark regression sweep: flush coalescing off vs on (line size 1; \
       compare reports with `dssq bench-diff`)"
    ~x_label:"threads" ~y_label:"Mops/s" ~csv:false (Report.of_run series);
  let report =
    Dssq_obs.Run_report.make ~backend:"mixed" ~experiment:"regress"
      ~x_label:"threads" ~y_label:"Mops/s"
      ~params:[ ("quick", string_of_bool quick); ("line_size", "1") ]
      ~metrics:(Dssq_obs.Metrics.delta_since marked)
      ~provenance:[ ("line_size", "1"); ("coalesce", "off+on") ]
      ~recovery series
  in
  (match Dssq_obs.Run_report.write out report with
  | () ->
      Printf.printf "wrote %s (%s v%d)\n" out Dssq_obs.Run_report.schema_name
        Dssq_obs.Run_report.schema_version
  | exception Sys_error msg ->
      Printf.eprintf "bench: cannot write report: %s\n" msg;
      exit 1);
  (* Make the tentpole claim visible in the terminal: coalescing-on vs
     -off mean throughput of the detectable DSS queue, per backend and
     thread count. *)
  let find label =
    List.find_opt (fun (s : Dssq_obs.Run_report.series) -> s.label = label)
      series
  in
  List.iter
    (fun backend ->
      match (find (backend ^ "/dss-det"), find (backend ^ "+co/dss-det")) with
      | Some off, Some on ->
          List.iter2
            (fun (po : Dssq_obs.Run_report.point)
                 (pn : Dssq_obs.Run_report.point) ->
              let mean = Dssq_workload.Stats.mean in
              let fpo (p : Dssq_obs.Run_report.point) =
                if p.ops = 0 then 0.
                else
                  float_of_int p.events.Dssq_memory.Memory_intf.flushes
                  /. float_of_int p.ops
              in
              Printf.printf
                "%s dss-det %2d threads: %.3f -> %.3f Mops/s (%+.1f%%), \
                 flushes/op %.2f -> %.2f\n"
                backend po.x (mean po.samples) (mean pn.samples)
                (100. *. ((mean pn.samples /. mean po.samples) -. 1.))
                (fpo po) (fpo pn))
            off.points on.points
      | _ -> ())
    [ "sim"; "native" ];
  (* And the flat-combining claim: the engine-backed FC queue (one
     persist epoch per batch) against the eager detectable queue. *)
  (match (find "sim/dss-det", find "sim+fc/dss-det") with
  | Some eager, Some fc ->
      List.iter
        (fun (pf : Dssq_obs.Run_report.point) ->
          match
            List.find_opt
              (fun (pe : Dssq_obs.Run_report.point) -> pe.x = pf.x)
              eager.points
          with
          | None -> ()
          | Some pe ->
              let mean = Dssq_workload.Stats.mean in
              Printf.printf
                "fc dss-det %2d threads: %.3f vs eager %.3f Mops/s (%.2fx)\n"
                pf.x (mean pf.samples) (mean pe.samples)
                (mean pf.samples /. mean pe.samples))
        fc.points
  | _ -> ());
  List.iter
    (fun (r : Dssq_obs.Run_report.recovery_point) ->
      Printf.printf "recovery %s/%s: %.4f ms (%d wal records replayed, %d \
                     leaked)\n"
        r.r_object r.r_backend r.r_ms r.r_replayed r.r_leaked)
    recovery

let regress_cmd =
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "benchmark-regression sweep (coalescing off vs on) emitting a \
          BENCH_*.json run report")
    Term.(const run_regress $ quick_flag $ regress_out)

(* ------------------------- flat combining ---------------------------- *)

(* The ISSUE-10 tentpole table: threads x batch size x Mops/s x
   flushes/op for the engine-backed flat-combining queue against the
   eager detectable queue, all on the simulated multiprocessor (the
   shipped numbers; see EXPERIMENTS.md).  One persist epoch per batch
   should make flushes/op strictly decreasing in the batch size and the
   8-thread speedup >= 2x — `dssq bench-diff --speedup-*` gates the
   latter in CI from the regress report. *)
let batches_arg =
  Arg.(
    value
    & opt (list pos_int) [ 1; 2; 4; 8; 16; 32 ]
    & info [ "batches" ] ~docv:"SIZES"
        ~doc:"batch sizes (operation pairs per persist epoch) to sweep")

let fc_threads_arg =
  Arg.(
    value
    & opt (list pos_int) [ 1; 4; 8 ]
    & info [ "threads" ] ~docv:"COUNTS" ~doc:"thread counts to sweep")

let run_combine threads batches =
  let module MI = Dssq_memory.Memory_intf in
  let per (s : Dssq_obs.Run_report.sample) c =
    float_of_int c /. float_of_int (max 1 s.Dssq_obs.Run_report.ops)
  in
  Printf.printf
    "## Flat combining: one persist epoch per batch (sim; dss-fc engine \
     queue vs eager dss-queue, det 100%%)\n";
  Printf.printf "%8s%8s%12s%10s%10s%10s\n" "threads" "batch" "Mops/s" "fl/op"
    "fen/op" "speedup";
  List.iter
    (fun n ->
      let eager =
        Dssq_workload.Sim_throughput.measure_ex ~seed:1 ~mk:"dss-queue"
          ~det_pct:100 ~nthreads:n ()
      in
      let em = eager.Dssq_obs.Run_report.mops in
      Printf.printf "%8d%8s%12.3f%10.3f%10.3f%10s\n" n "eager" em
        (per eager eager.Dssq_obs.Run_report.events.MI.flushes)
        (per eager eager.Dssq_obs.Run_report.events.MI.fences)
        "1.00x";
      List.iter
        (fun b ->
          let s =
            Dssq_workload.Sim_throughput.measure_ex ~seed:1 ~mk:"dss-fc"
              ~det_pct:100 ~combine:true ~batch:b ~nthreads:n ()
          in
          Printf.printf "%8d%8d%12.3f%10.3f%10.3f%9.2fx\n" n b
            s.Dssq_obs.Run_report.mops
            (per s s.Dssq_obs.Run_report.events.MI.flushes)
            (per s s.Dssq_obs.Run_report.events.MI.fences)
            (s.Dssq_obs.Run_report.mops /. em))
        batches)
    threads

let combine_cmd =
  Cmd.v
    (Cmd.info "combine"
       ~doc:
         "flat-combining sweep: threads x batch size x Mops/s x flushes/op \
          (sim backend)")
    Term.(const run_combine $ fc_threads_arg $ batches_arg)

(* NUMA-ish padding-stride sweep on the native backend: how much
   isolation stride the contended cells (head/tail/announces) want on
   real hardware.  Flat on the single-core CI container by construction;
   shipped for multicore machines. *)
let pads_arg =
  Arg.(
    value
    & opt (list Arg.int) [ 0; 7; 15; 31 ]
    & info [ "pads" ] ~docv:"WORDS"
        ~doc:"padding strides (filler words per isolated cell) to sweep")

let run_pad_sweep pads nthreads duration combine batch =
  Printf.printf
    "## Padding-stride sweep (native domains, %d thread(s)%s)\n" nthreads
    (if combine then Printf.sprintf ", combine batch=%d" batch else "");
  Printf.printf "%10s%12s\n" "pad_words" "Mops/s";
  List.iter
    (fun (pad, mops) -> Printf.printf "%10d%12.3f\n" pad mops)
    (Dssq_workload.Native_throughput.pad_sweep ~pads ~det_pct:100 ~combine
       ~batch
       ~mk:(if combine then "dss-fc" else "dss-queue")
       ~nthreads ~duration ())

let pad_sweep_cmd =
  let combine_flag =
    Arg.(
      value & flag
      & info [ "combine" ]
          ~doc:"measure the flat-combining engine queue instead of the eager \
                linked queue")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"PAIRS"
          ~doc:"operation pairs per persist epoch (with $(b,--combine))")
  in
  Cmd.v
    (Cmd.info "pad-sweep"
       ~doc:"NUMA-ish padding-stride sweep on the native backend")
    Term.(
      const run_pad_sweep $ pads_arg $ nthreads_opt $ duration $ combine_flag
      $ batch_arg)

let run_latency () =
  Printf.printf
    "## Modelled single-thread latency per operation (ns, no contention)\n";
  Printf.printf "%-16s%14s%14s%9s\n" "queue" "plain_ns" "detectable_ns" "ratio";
  List.iter
    (fun (name, nondet, det) ->
      Printf.printf "%-16s%14.0f%14.0f%9.2f\n" name nondet det
        (if nondet > 0. then det /. nondet else 0.))
    (Experiments.op_latency ());
  print_newline ()

let latency_cmd =
  Cmd.v
    (Cmd.info "latency" ~doc:"modelled per-operation latency table")
    Term.(const run_latency $ const ())

(* ------------------------- bechamel latency -------------------------- *)

(* Wall-clock per-operation latency on the native backend, one
   Test.make per queue implementation and detectability mode. *)
let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  Dssq_memory.Persist_cost.calibrate ();
  Dssq_memory.Persist_cost.configure ~flush:150 ();
  let module R = Dssq_workload.Registry.Make (Dssq_memory.Native) in
  let mk_test (name, mk) =
    let ops : Dssq_core.Queue_intf.ops =
      mk ?system:None (Dssq_core.Queue_intf.config ~nthreads:1 ~capacity:4096 ())
    in
    let i = ref 0 in
    [
      Test.make
        ~name:(name ^ "/plain-pair")
        (Staged.stage (fun () ->
             incr i;
             ops.enqueue ~tid:0 (!i land 0xFFFF);
             ignore (ops.dequeue ~tid:0)));
      Test.make
        ~name:(name ^ "/detectable-pair")
        (Staged.stage (fun () ->
             incr i;
             ops.d_enqueue ~tid:0 (!i land 0xFFFF);
             ignore (ops.d_dequeue ~tid:0)));
    ]
  in
  let tests = List.concat_map mk_test R.all in
  let test = Test.make_grouped ~name:"queues" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  Printf.printf "## Bechamel wall-clock latency (native backend, %d ns/flush charged)\n"
    (Dssq_memory.Persist_cost.current_flush_ns ());
  Hashtbl.iter
    (fun label result_tbl ->
      if label = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "%-44s %10.0f ns/pair\n" name est
            | _ -> ())
          result_tbl)
    results;
  print_newline ()

let bechamel_cmd =
  Cmd.v
    (Cmd.info "bechamel" ~doc:"wall-clock op latency via bechamel")
    Term.(const run_bechamel $ const ())

(* ------------------------- default: everything ----------------------- *)

let run_all backend threads repeats horizon_us duration csv =
  run_fig5a backend threads repeats horizon_us duration 1 csv None;
  run_fig5b backend threads repeats horizon_us duration 1 csv None;
  run_ablate_flush 8 repeats horizon_us csv;
  run_ablate_demand 8 repeats horizon_us csv;
  run_ablate_recovery csv;
  run_ablate_depth csv;
  run_ablate_crashes csv;
  run_ablate_pmwcas csv;
  run_ablate_linesize 8 repeats horizon_us csv None;
  run_latency ()

let all_cmd =
  Term.(const run_all $ backend $ threads $ repeats $ horizon_us $ duration $ csv)

let () =
  let info =
    Cmd.info "bench"
      ~doc:
        "Regenerate the paper's figures (5a, 5b) and the DESIGN.md ablations"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:all_cmd info
          [
            fig5a_cmd;
            fig5b_cmd;
            ablate_flush_cmd;
            ablate_demand_cmd;
            ablate_recovery_cmd;
            ablate_depth_cmd;
            ablate_crashes_cmd;
            ablate_pmwcas_cmd;
            ablate_linesize_cmd;
            regress_cmd;
            combine_cmd;
            pad_sweep_cmd;
            latency_cmd;
            bechamel_cmd;
          ]))
